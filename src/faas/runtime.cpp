#include "faas/runtime.hpp"

#include "common/result.hpp"

namespace canary::faas {

namespace {
// Startup figures follow public serverless cold-start measurements
// (python/nodejs sub-second, JVM close to a second) and the paper's custom
// image composition: the DL image pays a TensorFlow import of several
// seconds, the Spark image a JVM + SparkContext start.
constexpr RuntimeProfile kProfiles[] = {
    {RuntimeImage::kPython3, "python3", Duration::msec(450),
     Duration::msec(350), Duration::msec(8), Bytes::mib(256)},
    {RuntimeImage::kNodeJs14, "nodejs14", Duration::msec(380),
     Duration::msec(250), Duration::msec(5), Bytes::mib(256)},
    {RuntimeImage::kJava8, "java8", Duration::msec(820), Duration::msec(900),
     Duration::msec(12), Bytes::mib(512)},
    {RuntimeImage::kDlTrain, "dl-train", Duration::msec(900),
     Duration::msec(6500), Duration::msec(15), Bytes::gib(4)},
    {RuntimeImage::kDbQuery, "db-query", Duration::msec(500),
     Duration::msec(700), Duration::msec(8), Bytes::mib(512)},
    {RuntimeImage::kSparkDiversity, "spark-diversity", Duration::msec(1100),
     Duration::msec(4200), Duration::msec(20), Bytes::gib(4)},
    {RuntimeImage::kCompressionPy, "compression-py", Duration::msec(470),
     Duration::msec(400), Duration::msec(8), Bytes::gib(1)},
    {RuntimeImage::kGraphBfsPy, "graph-bfs-py", Duration::msec(480),
     Duration::msec(1300), Duration::msec(8), Bytes::gib(2)},
    // Real-execution substrate: fork + hello, then in-process input
    // synthesis. Measured scale on the validation kernels, not a
    // container runtime's.
    {RuntimeImage::kNativeProc, "native-proc", Duration::msec(4),
     Duration::msec(15), Duration::msec(1), Bytes::mib(128)},
};
}  // namespace

const RuntimeProfile& profile(RuntimeImage image) {
  for (const auto& p : kProfiles) {
    if (p.image == image) return p;
  }
  CANARY_CHECK(false, "unknown runtime image");
  return kProfiles[0];  // unreachable
}

std::string_view to_string_view(RuntimeImage image) {
  return profile(image).name;
}

}  // namespace canary::faas
