#include "faas/platform.hpp"

#include <algorithm>

#include "common/logging.hpp"
#include "obs/critical_path.hpp"

namespace canary::faas {

namespace {
/// Builds the trigger graph (reverse adjacency + indegrees) and verifies
/// it is acyclic with in-range dependency indices (Kahn's algorithm).
bool build_trigger_graph(const JobSpec& spec,
                         std::vector<std::vector<std::size_t>>& dependents,
                         std::vector<std::size_t>& unmet_deps) {
  const std::size_t n = spec.functions.size();
  // Trigger-free jobs (the overwhelming batch/traffic case) keep both
  // vectors empty: acyclicity is vacuous, every function queues at
  // submit, and the job record carries no per-job graph allocations.
  bool has_deps = false;
  for (const auto& fn : spec.functions) {
    if (!fn.depends_on.empty()) {
      has_deps = true;
      break;
    }
  }
  if (!has_deps) return true;
  dependents.assign(n, {});
  unmet_deps.assign(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    for (const std::size_t dep : spec.functions[i].depends_on) {
      if (dep >= n || dep == i) return false;
      dependents[dep].push_back(i);
      ++unmet_deps[i];
    }
  }
  std::vector<std::size_t> indegree = unmet_deps;
  std::vector<std::size_t> ready;
  for (std::size_t i = 0; i < n; ++i) {
    if (indegree[i] == 0) ready.push_back(i);
  }
  std::size_t processed = 0;
  while (!ready.empty()) {
    const std::size_t done = ready.back();
    ready.pop_back();
    ++processed;
    for (const std::size_t next : dependents[done]) {
      if (--indegree[next] == 0) ready.push_back(next);
    }
  }
  return processed == n;
}

Duration work_floor(const FunctionSpec& spec, std::size_t from_state) {
  Duration floor = Duration::zero();
  for (std::size_t i = 0; i < from_state && i < spec.states.size(); ++i) {
    floor += spec.states[i].duration;
  }
  return floor;
}
}  // namespace

Platform::Platform(sim::Simulator& simulator, cluster::Cluster& cluster,
                   cluster::NetworkModel& network, PlatformConfig config,
                   obs::MetricRegistry& metrics)
    : sim_(simulator),
      cluster_(cluster),
      network_(network),
      config_(config),
      metrics_(metrics),
      inflight_launches_(cluster.size(), 0u) {}

void Platform::add_observer(PlatformObserver* observer) {
  observers_.push_back(observer);
}

obs::SpanLabels Platform::obs_labels(const InvocationInternal& inv) const {
  return obs::SpanLabels{inv.job, inv.id, inv.container, inv.node,
                         inv.attempt};
}

void Platform::obs_phase(InvocationInternal& inv, obs::SpanKind kind,
                         const char* name) {
  if (spans_ == nullptr) return;
  spans_->close(inv.phase_span, sim_.now());
  inv.phase_span = spans_->open(kind, name, sim_.now(), obs_labels(inv));
}

void Platform::obs_end_phase(InvocationInternal& inv) {
  if (spans_ == nullptr) return;
  spans_->close(inv.phase_span, sim_.now());
}

obs::EventId Platform::obs_event(InvocationInternal& inv, obs::EventKind kind,
                                 std::string_view name, obs::EventId cause) {
  if (events_ == nullptr) return obs::kNoEvent;
  if (!inv.trace.trace.valid()) inv.trace.trace = events_->new_trace();
  return events_->extend(inv.trace, kind, std::string(name), sim_.now(),
                         obs_labels(inv), cause);
}

void Platform::arm_slo(InvocationInternal& inv, Duration sla,
                       TimePoint anchor) {
  if (slo_ == nullptr || sla <= Duration::zero()) return;
  const TimePoint deadline = anchor + sla;
  slo_->arm(inv.id, deadline);
  const FunctionId id = inv.id;
  // An arrival-anchored deadline can already be in the past when the
  // request spent longer than its SLA waiting in admission control.
  const Duration delay =
      deadline > sim_.now() ? deadline - sim_.now() : Duration::zero();
  sim_.schedule_after(delay, [this, id, deadline] {
    auto& target = internal(id);
    if (target.phase == Phase::kCompleted &&
        target.completion_time <= deadline) {
      return;
    }
    if (!slo_->record_violation(id, sim_.now())) return;
    m_slo_violations_.add();
    obs_event(target, obs::EventKind::kSlaViolation, "sla_violation");
  });
}

Platform::InvocationInternal& Platform::internal(FunctionId id) {
  CANARY_CHECK(id.valid() && id.value() <= invocations_.size(),
               "unknown function id");
  return invocations_[id.value() - 1];
}

const Platform::InvocationInternal& Platform::internal(FunctionId id) const {
  CANARY_CHECK(id.valid() && id.value() <= invocations_.size(),
               "unknown function id");
  return invocations_[id.value() - 1];
}

Platform::JobRecord& Platform::job_record(JobId id) {
  CANARY_CHECK(id.valid() && id.value() <= jobs_.size(), "unknown job id");
  return jobs_[id.value() - 1];
}

const Platform::JobRecord& Platform::job_record(JobId id) const {
  CANARY_CHECK(id.valid() && id.value() <= jobs_.size(), "unknown job id");
  return jobs_[id.value() - 1];
}

Container& Platform::container_ref(ContainerId id) {
  CANARY_CHECK(id.valid() && id.value() <= containers_.size(),
               "unknown container");
  return containers_[id.value() - 1];
}

const Container& Platform::container_ref(ContainerId id) const {
  CANARY_CHECK(id.valid() && id.value() <= containers_.size(),
               "unknown container");
  return containers_[id.value() - 1];
}

Container* Platform::alive_container(ContainerId id) {
  if (!id.valid() || id.value() > containers_.size()) return nullptr;
  Container& c = containers_[id.value() - 1];
  return c.alive() ? &c : nullptr;
}

Platform::InvocationInternal* Platform::attempt_guard(FunctionId id,
                                                      int attempt,
                                                      ContainerId cid) {
  auto& target = internal(id);
  if (target.attempt != attempt) return nullptr;
  if (alive_container(cid) == nullptr) return nullptr;
  return &target;
}

void Platform::warm_index_add(const Container& c) {
  warm_idle_[static_cast<std::size_t>(c.purpose)]
            [static_cast<std::size_t>(c.image)]
                .insert(c.id);
}

void Platform::warm_index_remove(const Container& c) {
  warm_idle_[static_cast<std::size_t>(c.purpose)]
            [static_cast<std::size_t>(c.image)]
                .erase(c.id);
}

void Platform::release_inflight_launch(NodeId node) {
  unsigned& inflight = inflight_launches_[node.value() - 1];
  if (inflight > 0) --inflight;
}

Result<JobId> Platform::submit_job(JobSpec spec) {
  return submit_job(std::make_shared<const JobSpec>(std::move(spec)));
}

Result<JobId> Platform::submit_job(std::shared_ptr<const JobSpec> spec_ptr) {
  CANARY_CHECK(spec_ptr != nullptr, "null job spec");
  const JobSpec& spec = *spec_ptr;
  if (spec.functions.empty()) {
    return Error::invalid_argument("job has no functions");
  }
  if (spec.functions.size() > config_.limits.max_functions_per_job) {
    return Error::resource_exhausted("job exceeds max functions per job");
  }
  for (const auto& fn : spec.functions) {
    if (fn.effective_memory() > config_.limits.max_function_memory) {
      return Error::resource_exhausted("function '" + fn.name +
                                       "' exceeds the memory limit");
    }
  }

  // Validate the trigger graph before issuing any ids: ids index the
  // entity slabs, so a rejected job must not consume one.
  std::vector<std::vector<std::size_t>> dependents;
  std::vector<std::size_t> unmet_deps;
  if (!build_trigger_graph(spec, dependents, unmet_deps)) {
    return Error::invalid_argument(
        "job trigger graph has a cycle or an out-of-range dependency");
  }

  const JobId job_id = job_ids_.next();
  CANARY_CHECK(job_id.value() == jobs_.size() + 1, "job id / slab desync");
  jobs_.emplace_back();
  JobRecord& record = jobs_.back();
  record.spec = std::move(spec_ptr);
  record.submitted = sim_.now();
  record.remaining = record.spec->functions.size();
  record.dependents = std::move(dependents);
  record.unmet_deps = std::move(unmet_deps);

  record.functions.reserve(record.spec->functions.size());
  for (std::size_t i = 0; i < record.spec->functions.size(); ++i) {
    const auto& fn = record.spec->functions[i];
    const FunctionId fid = function_ids_.next();
    CANARY_CHECK(fid.value() == invocations_.size() + 1,
                 "function id / slab desync");
    invocations_.emplace_back();
    InvocationInternal& inv = invocations_.back();
    inv.id = fid;
    inv.job = job_id;
    inv.spec = &fn;
    inv.index_in_job = i;
    inv.submit_time = sim_.now();
    // Open-loop requests carry their admission-control arrival: a kQueued
    // event at that instant roots the trace so the analyzer attributes
    // the pre-submission wait to the queueing component, and the SLO
    // deadline anchors at arrival instead of submission.
    const TimePoint enqueued = record.spec->enqueued_at;
    const bool open_loop =
        enqueued != TimePoint::max() && enqueued < sim_.now();
    if (open_loop && events_ != nullptr) {
      if (!inv.trace.trace.valid()) inv.trace.trace = events_->new_trace();
      events_->extend(inv.trace, obs::EventKind::kQueued, fn.name, enqueued,
                      obs_labels(inv));
    }
    obs_event(inv, obs::EventKind::kSubmit, fn.name);
    arm_slo(inv, fn.sla > Duration::zero() ? fn.sla : record.spec->sla,
            open_loop ? enqueued : sim_.now());
    record.functions.push_back(fid);
    // Functions with open dependencies wait for their trigger; the rest
    // queue immediately (empty unmet_deps = trigger-free job).
    if (record.unmet_deps.empty() || record.unmet_deps[i] == 0) {
      pending_.push_back(fid);
    }
  }

  for (auto* obs : observers_) obs->on_job_submitted(job_id);
  pump_pending_queue();
  return job_id;
}

Result<JobId> Platform::shed_job(JobSpec spec) {
  if (spec.functions.empty()) {
    return Error::invalid_argument("job has no functions");
  }
  const JobId job_id = job_ids_.next();
  CANARY_CHECK(job_id.value() == jobs_.size() + 1, "job id / slab desync");
  jobs_.emplace_back();
  JobRecord& record = jobs_.back();
  record.spec = std::make_shared<const JobSpec>(std::move(spec));
  record.submitted = sim_.now();
  record.completed = sim_.now();
  record.remaining = 0;  // terminal at birth: nothing will ever run

  const TimePoint enqueued = record.spec->enqueued_at;
  for (std::size_t i = 0; i < record.spec->functions.size(); ++i) {
    const auto& fn = record.spec->functions[i];
    const FunctionId fid = function_ids_.next();
    CANARY_CHECK(fid.value() == invocations_.size() + 1,
                 "function id / slab desync");
    invocations_.emplace_back();
    InvocationInternal& inv = invocations_.back();
    inv.id = fid;
    inv.job = job_id;
    inv.spec = &fn;
    inv.index_in_job = i;
    inv.submit_time = sim_.now();
    inv.completion_time = sim_.now();
    inv.phase = Phase::kShed;
    record.functions.push_back(fid);
    if (events_ != nullptr && enqueued != TimePoint::max() &&
        enqueued < sim_.now()) {
      if (!inv.trace.trace.valid()) inv.trace.trace = events_->new_trace();
      events_->extend(inv.trace, obs::EventKind::kQueued, fn.name, enqueued,
                      obs_labels(inv));
    }
    obs_event(inv, obs::EventKind::kShed, fn.name);
    m_functions_shed_.add();
    if (series_ != nullptr) series_->count("shed", sim_.now());
  }
  return job_id;
}

const Invocation& Platform::invocation(FunctionId id) const {
  return internal(id);
}

const JobSpec& Platform::job_spec(JobId id) const {
  return *job_record(id).spec;
}

const std::vector<FunctionId>& Platform::job_functions(JobId id) const {
  return job_record(id).functions;
}

bool Platform::job_completed(JobId id) const {
  return job_record(id).remaining == 0;
}

bool Platform::all_jobs_completed() const {
  return std::all_of(jobs_.begin(), jobs_.end(),
                     [](const JobRecord& j) { return j.remaining == 0; });
}

TimePoint Platform::job_submit_time(JobId id) const {
  return job_record(id).submitted;
}

TimePoint Platform::job_completion_time(JobId id) const {
  return job_record(id).completed;
}

std::vector<JobId> Platform::all_job_ids() const {
  // Slab order is id order, so no sort is needed.
  std::vector<JobId> ids;
  ids.reserve(jobs_.size());
  for (std::size_t i = 0; i < jobs_.size(); ++i) {
    ids.push_back(JobId{i + 1});
  }
  return ids;
}

std::vector<FunctionId> Platform::all_function_ids() const {
  std::vector<FunctionId> ids;
  ids.reserve(invocations_.size());
  for (std::size_t i = 0; i < invocations_.size(); ++i) {
    ids.push_back(FunctionId{i + 1});
  }
  return ids;
}

void Platform::pump_pending_queue() {
  if (pump_scheduled_ || pending_.empty()) return;
  if (running_count_ >= config_.limits.max_concurrent_invocations) return;
  pump_scheduled_ = true;
  // The controller admits one invocation per scheduler tick, which models
  // a serial controller loop and staggers mass submissions.
  sim_.schedule_after(config_.scheduler_overhead, [this] {
    pump_scheduled_ = false;
    if (pending_.empty() ||
        running_count_ >= config_.limits.max_concurrent_invocations) {
      return;
    }
    const FunctionId id = pending_.front();
    pending_.pop_front();
    auto& inv = internal(id);
    inv.counted_running = true;
    ++running_count_;
    start_attempt(id, StartSpec{});
    pump_pending_queue();
  });
}

void Platform::retry_capacity_waiters() {
  while (!capacity_waiters_.empty()) {
    auto [id, spec] = capacity_waiters_.front();
    auto& inv = internal(id);
    const Bytes memory = inv.spec->effective_memory();
    std::optional<NodeId> node = pick_node(memory, spec.node_pref);
    if (!node) return;  // still saturated; keep FIFO order
    capacity_waiters_.pop_front();
    start_cold(inv, *node, spec);
  }
}

std::optional<NodeId> Platform::pick_node(Bytes memory,
                                          std::optional<NodeId> pref) const {
  if (pref && cluster_.contains(*pref) && cluster_.node(*pref).can_host(memory)) {
    return pref;
  }
  return cluster_.least_loaded(memory);
}

void Platform::start_attempt(FunctionId id, StartSpec spec) {
  auto& inv = internal(id);
  CANARY_CHECK(inv.phase != Phase::kCompleted, "function already completed");
  CANARY_CHECK(spec.from_state <= inv.spec->states.size(),
               "restore point beyond the state sequence");

  if (inv.phase == Phase::kFailed) {
    // Work between the restore point and the failure point is lost and
    // will be redone (the in-flight partial state was accounted at kill).
    const Duration floor = work_floor(*inv.spec, spec.from_state);
    if (inv.last_failure_work > floor) {
      inv.lost_work += inv.last_failure_work - floor;
    }
  }

  if (spec.container) {
    Container& c = container_ref(*spec.container);
    CANARY_CHECK(c.warm_idle(), "container is not warm-idle");
    CANARY_CHECK(cluster_.node(c.node).alive(), "container's node is down");
    start_warm(inv, c, spec);
    return;
  }

  // Warm pool: adopt an idle same-runtime function container if reuse is
  // enabled, skipping its cold start entirely.
  if (config_.reuse_containers) {
    const auto pooled = find_warm_container(inv.spec->runtime, spec.node_pref,
                                            ContainerPurpose::kFunction);
    if (pooled) {
      m_pool_reuses_.add();
      start_warm(inv, container_ref(*pooled), spec);
      return;
    }
  }

  const Bytes memory = inv.spec->effective_memory();
  std::optional<NodeId> node = pick_node(memory, spec.node_pref);
  if (!node) {
    inv.phase = Phase::kPending;
    spec.container.reset();
    capacity_waiters_.emplace_back(id, spec);
    m_capacity_waits_.add();
    return;
  }
  start_cold(inv, *node, spec);
}

ContainerId Platform::create_container(NodeId node, RuntimeImage image,
                                       Bytes memory,
                                       ContainerPurpose purpose) {
  const ContainerId cid = container_ids_.next();
  CANARY_CHECK(cid.value() == containers_.size() + 1,
               "container id / slab desync");
  containers_.emplace_back();
  Container& c = containers_.back();
  c.id = cid;
  c.node = node;
  c.image = image;
  c.memory = memory;
  c.purpose = purpose;
  c.state = ContainerState::kLaunching;
  c.created = sim_.now();
  ledger_.open(c);
  ++inflight_launches_[node.value() - 1];
  return cid;
}

double Platform::launch_contention_multiplier(NodeId node) const {
  const unsigned inflight = inflight_launches_[node.value() - 1];
  if (inflight <= 1) return 1.0;
  const double mult =
      1.0 + config_.cold_start_contention * static_cast<double>(inflight - 1);
  return std::min(mult, config_.contention_cap);
}

Duration Platform::epilogue_nominal(const Invocation& inv,
                                    std::size_t state_idx) {
  return hooks_ ? hooks_->state_epilogue(inv, state_idx) : Duration::zero();
}

Duration Platform::attempt_busy_estimate(const InvocationInternal& inv,
                                         const StartSpec& spec, double speed,
                                         bool cold) const {
  const auto& rt = profile(inv.spec->runtime);
  Duration est = Duration::zero();
  if (cold) {
    est += (rt.cold_launch + rt.init) * speed;
  } else {
    est += rt.warm_dispatch * speed;
  }
  est += spec.extra_setup;
  auto* self = const_cast<Platform*>(this);
  for (std::size_t i = spec.from_state; i < inv.spec->states.size(); ++i) {
    est += (inv.spec->states[i].duration + self->epilogue_nominal(inv, i)) *
           speed;
  }
  est += inv.spec->finalize * speed;
  return est;
}

void Platform::arm_kill_timer(InvocationInternal& inv,
                              Duration busy_estimate) {
  inv.kill_event.cancel();
  inv.timeout_event.cancel();
  if (config_.limits.function_timeout < Duration::max()) {
    const FunctionId timeout_id = inv.id;
    const int timeout_attempt = inv.attempt;
    inv.timeout_event = sim_.schedule_after(
        config_.limits.function_timeout, [this, timeout_id, timeout_attempt] {
          auto& target = internal(timeout_id);
          if (target.attempt != timeout_attempt) return;
          if (target.phase == Phase::kCompleted ||
              target.phase == Phase::kFailed) {
            return;
          }
          m_timeouts_.add();
          handle_kill(target, FailureKind::kTimeout);
        });
  }
  if (failure_policy_ == nullptr) return;
  const auto offset = failure_policy_->plan_kill(inv, inv.attempt, busy_estimate);
  if (!offset) return;
  const FunctionId id = inv.id;
  const int attempt = inv.attempt;
  inv.kill_event = sim_.schedule_after(*offset, [this, id, attempt] {
    auto& target = internal(id);
    if (target.attempt != attempt) return;
    if (target.phase == Phase::kCompleted || target.phase == Phase::kFailed) {
      return;
    }
    handle_kill(target, FailureKind::kContainerKill);
  });
}

void Platform::start_cold(InvocationInternal& inv, NodeId node,
                          StartSpec spec) {
  auto& host = cluster_.node(node);
  const Bytes memory = inv.spec->effective_memory();
  const Status reserved = host.reserve(memory);
  if (!reserved.ok()) {
    inv.phase = Phase::kPending;
    capacity_waiters_.emplace_back(inv.id, spec);
    return;
  }

  ++inv.attempt;
  const int attempt = inv.attempt;
  inv.next_state = spec.from_state;
  inv.work_done = work_floor(*inv.spec, spec.from_state);
  inv.node = node;
  inv.phase = Phase::kLaunching;

  const ContainerId cid = create_container(node, inv.spec->runtime, memory,
                                           ContainerPurpose::kFunction);
  {
    Container& c = container_ref(cid);
    c.assigned = inv.id;
    c.state = ContainerState::kLaunching;
  }
  inv.container = cid;
  m_cold_starts_.add();
  if (series_ != nullptr) series_->count("cold_starts", sim_.now());
  obs_phase(inv, obs::SpanKind::kLaunch, "launch");
  obs_event(inv, obs::EventKind::kLaunch, "launch");

  const double speed = host.speed();
  arm_kill_timer(inv, attempt_busy_estimate(inv, spec, speed, /*cold=*/true));

  const auto& rt = profile(inv.spec->runtime);
  const Duration launch =
      rt.cold_launch * speed * launch_contention_multiplier(node);
  const Duration init = rt.init * speed;
  const Duration setup = spec.extra_setup;
  const FunctionId id = inv.id;

  inv.progress_event = sim_.schedule_after(launch, [this, id, attempt, cid,
                                                    init, setup] {
    // A container destroyed mid-launch already released its in-flight
    // launch slot in destroy_container().
    Container* c = alive_container(cid);
    if (c == nullptr) return;
    release_inflight_launch(c->node);
    auto* target = attempt_guard(id, attempt, cid);
    if (target == nullptr) return;
    c->state = ContainerState::kInitializing;
    target->phase = Phase::kInitializing;
    obs_phase(*target, obs::SpanKind::kInit, "init");
    obs_event(*target, obs::EventKind::kInit, "init");
    target->progress_event =
        sim_.schedule_after(init, [this, id, attempt, cid, setup] {
          auto* target = attempt_guard(id, attempt, cid);
          if (target == nullptr) return;
          container_ref(cid).state = ContainerState::kBusy;
          target->phase = Phase::kStarting;
          if (setup > Duration::zero()) {
            obs_phase(*target, obs::SpanKind::kRestore, "restore");
            obs_event(*target, obs::EventKind::kRestore, "restore");
          }
          target->progress_event =
              sim_.schedule_after(setup, [this, id, attempt, cid] {
                auto* target = attempt_guard(id, attempt, cid);
                if (target == nullptr) return;
                begin_execution(*target, attempt);
              });
        });
  });
}

void Platform::start_warm(InvocationInternal& inv, Container& c,
                          StartSpec spec) {
  ++inv.attempt;
  const int attempt = inv.attempt;
  inv.next_state = spec.from_state;
  inv.work_done = work_floor(*inv.spec, spec.from_state);
  inv.node = c.node;
  inv.container = c.id;
  inv.phase = Phase::kStarting;
  warm_index_remove(c);  // leaving the Warm state (keyed by old purpose)
  c.state = ContainerState::kBusy;
  c.assigned = inv.id;
  c.idle_since = TimePoint::max();
  // Cost attribution: any prior interval (replica/standby warm-up, or a
  // previous function's execution on a reused pool container) is closed;
  // from adoption on, occupancy bills as this function's execution.
  ledger_.close(c.id, sim_.now());
  c.purpose = ContainerPurpose::kFunction;
  ledger_.open_at(c, sim_.now());
  m_warm_starts_.add();
  // Warm adoption skips launch+init (the replication win); the dispatch
  // window plus any checkpoint restore is the whole pre-exec cost.
  obs_phase(inv, obs::SpanKind::kRestore, "warm_dispatch");
  obs_event(inv, obs::EventKind::kRestore, "warm_dispatch");

  const double speed = cluster_.node(c.node).speed();
  arm_kill_timer(inv, attempt_busy_estimate(inv, spec, speed, /*cold=*/false));

  const auto& rt = profile(inv.spec->runtime);
  const Duration setup = rt.warm_dispatch * speed + spec.extra_setup;
  const FunctionId id = inv.id;
  const ContainerId cid = c.id;
  inv.progress_event = sim_.schedule_after(setup, [this, id, attempt, cid] {
    auto* target = attempt_guard(id, attempt, cid);
    if (target == nullptr) return;
    begin_execution(*target, attempt);
  });
}

void Platform::begin_execution(InvocationInternal& inv, int attempt) {
  CANARY_CHECK(inv.attempt == attempt, "stale execution event");
  inv.phase = Phase::kExecuting;
  obs_phase(inv, obs::SpanKind::kExec, "exec");
  obs_event(inv, obs::EventKind::kExec, "exec");
  if (inv.first_dispatch_time == TimePoint::max()) {
    inv.first_dispatch_time = sim_.now();
  }
  for (auto* obs : observers_) obs->on_attempt_started(inv);
  resolve_recovery_markers(inv);
  schedule_next_state(inv);
}

void Platform::schedule_next_state(InvocationInternal& inv) {
  const double speed = cluster_.node(inv.node).speed();
  const FunctionId id = inv.id;
  const int attempt = inv.attempt;

  if (inv.next_state >= inv.spec->states.size()) {
    inv.phase = Phase::kFinalizing;
    obs_phase(inv, obs::SpanKind::kFinalize, "finalize");
    obs_event(inv, obs::EventKind::kFinalize, "finalize");
    const Duration fin = inv.spec->finalize * speed;
    inv.progress_event = sim_.schedule_after(fin, [this, id, attempt] {
      auto& target = internal(id);
      if (target.attempt != attempt || target.phase != Phase::kFinalizing) {
        return;
      }
      complete_function(target);
    });
    return;
  }

  const std::size_t idx = inv.next_state;
  const StateSpec& state = inv.spec->states[idx];
  const Duration epilogue = epilogue_nominal(inv, idx);
  const Duration dur = (state.duration + epilogue) * speed;
  inv.state_start = sim_.now();
  inv.state_planned_end = sim_.now() + dur;
  inv.progress_event = sim_.schedule_after(dur, [this, id, attempt, idx] {
    auto& target = internal(id);
    if (target.attempt != attempt || target.phase != Phase::kExecuting) {
      return;
    }
    target.work_done += target.spec->states[idx].duration;
    target.next_state = idx + 1;
    obs_event(target, obs::EventKind::kStateCommit,
              "state_" + std::to_string(idx));
    if (hooks_ != nullptr) hooks_->on_state_committed(target, idx);
    resolve_recovery_markers(target);
    schedule_next_state(target);
  });
}

void Platform::complete_function(InvocationInternal& inv) {
  inv.phase = Phase::kCompleted;
  inv.completion_time = sim_.now();
  inv.kill_event.cancel();
  inv.timeout_event.cancel();
  inv.progress_event.cancel();
  obs_end_phase(inv);
  m_function_latency_.record_duration(sim_.now() - inv.submit_time);
  record_tail_latency(inv);
  if (inv.first_dispatch_time != TimePoint::max()) {
    m_function_queue_wait_.record_duration(inv.first_dispatch_time -
                                           inv.submit_time);
  }
  resolve_recovery_markers(inv);
  obs_event(inv, obs::EventKind::kComplete, "complete");

  if (inv.container.valid()) {
    Container* c = alive_container(inv.container);
    if (c != nullptr) {
      if (config_.reuse_containers && cluster_.node(c->node).alive()) {
        // Return the container to the warm pool: billing pauses, and an
        // idle timer reclaims it if nothing adopts it.
        c->state = ContainerState::kWarm;
        c->assigned = FunctionId::invalid();
        c->idle_since = sim_.now();
        warm_index_add(*c);
        ledger_.close(c->id, sim_.now());
        m_containers_pooled_.add();
        const ContainerId cid = c->id;
        const TimePoint idle_mark = c->idle_since;
        sim_.schedule_after(config_.warm_pool_idle_timeout,
                            [this, cid, idle_mark] {
                              Container& pooled = container_ref(cid);
                              if (!pooled.warm_idle()) return;
                              if (pooled.idle_since != idle_mark) {
                                return;  // re-pooled since; newer timer owns it
                              }
                              destroy_container(cid);
                            });
      } else {
        destroy_container(inv.container);
      }
    }
  }
  if (inv.counted_running) {
    inv.counted_running = false;
    CANARY_CHECK(running_count_ > 0, "running count underflow");
    --running_count_;
  }
  m_functions_completed_.add();
  for (auto* obs : observers_) obs->on_function_completed(inv);

  auto& job = job_record(inv.job);
  CANARY_CHECK(job.remaining > 0, "job function count underflow");
  // Trigger the dependents whose last dependency just completed
  // (trigger-free jobs carry no graph at all).
  if (!job.dependents.empty()) {
    for (const std::size_t next : job.dependents[inv.index_in_job]) {
      CANARY_CHECK(job.unmet_deps[next] > 0, "dependency count underflow");
      if (--job.unmet_deps[next] == 0) {
        pending_.push_back(job.functions[next]);
      }
    }
  }
  if (--job.remaining == 0) {
    job.completed = sim_.now();
    for (auto* obs : observers_) obs->on_job_completed(inv.job);
  }
  pump_pending_queue();
  retry_capacity_waiters();
}

void Platform::enable_tail_attribution(const obs::ExemplarConfig& config) {
  tail_exemplars_ = config;
  // The run-wide tail histogram exists from the start so its reservoir
  // sees every completion; per-family histograms opt in lazily as
  // families first complete.
  if (config.enabled) metrics_.enable_exemplars("tail_latency", config);
}

void Platform::record_tail_latency(InvocationInternal& inv) {
  const bool series_on = series_ != nullptr && series_->enabled();
  if (!tail_exemplars_.enabled && !series_on) return;

  // Anchor at the admission arrival for open-loop requests — the same
  // instant the retroactive kQueued event carries — so the recorded value
  // is exactly the causal chain's end-to-end window and the tail
  // analyzer's partition sums back to it.
  const TimePoint enqueued = job_record(inv.job).spec->enqueued_at;
  const TimePoint anchor =
      enqueued != TimePoint::max() && enqueued < inv.submit_time
          ? enqueued
          : inv.submit_time;
  const double latency = (sim_.now() - anchor).to_seconds();

  if (series_on) {
    series_->count("completions", sim_.now());
    series_->sample("latency", sim_.now(), latency);
  }
  if (!tail_exemplars_.enabled) return;

  const std::uint64_t trace = inv.trace.trace.value();
  metrics_.sample_traced("tail_latency", latency, trace, inv.id.value());
  obs::Histogram& family = metrics_.histogram_ref(
      "tail_latency.fn." + obs::base_function_name(inv.spec->name));
  if (!family.exemplars_enabled()) family.enable_exemplars(tail_exemplars_);
  family.record_traced(latency, trace, inv.id.value());
}

void Platform::handle_kill(InvocationInternal& inv, FailureKind kind) {
  if (inv.phase == Phase::kCompleted || inv.phase == Phase::kFailed ||
      inv.phase == Phase::kPending || inv.phase == Phase::kShed) {
    return;
  }
  inv.progress_event.cancel();
  inv.kill_event.cancel();
  inv.timeout_event.cancel();

  // The kFailure DAG node: opened before the markers so each marker can
  // carry it — kRecovered draws its cause edge back to this event. During
  // fail_node() the node-level kNodeFailure event is the failure's cause.
  const obs::EventId fail_event =
      obs_event(inv, obs::EventKind::kFailure, to_string_view(kind),
                node_failure_cause_);

  // In-flight partial state work is lost outright.
  if (inv.phase == Phase::kExecuting &&
      inv.next_state < inv.spec->states.size()) {
    const Duration planned = inv.state_planned_end - inv.state_start;
    if (planned > Duration::zero()) {
      const double frac =
          std::min(1.0, (sim_.now() - inv.state_start) / planned);
      const Duration partial = inv.spec->states[inv.next_state].duration * frac;
      inv.lost_work += partial;
      inv.markers.push_back({inv.work_done + partial, sim_.now(), fail_event});
    } else {
      inv.markers.push_back({inv.work_done, sim_.now(), fail_event});
    }
  } else {
    inv.markers.push_back({inv.work_done, sim_.now(), fail_event});
  }
  inv.last_failure_work = inv.work_done;

  ++inv.failures;
  inv.phase = Phase::kFailed;
  m_failures_.add();
  if (series_ != nullptr) series_->count("failures", sim_.now());
  obs_end_phase(inv);
  if (spans_ != nullptr) {
    spans_->instant(obs::SpanKind::kFailure, std::string(to_string_view(kind)),
                    sim_.now(), obs_labels(inv));
  }

  FailureInfo info;
  info.kind = kind;
  info.node = inv.node;
  info.container = inv.container;

  if (inv.container.valid() && alive_container(inv.container) != nullptr) {
    destroy_container(inv.container);
  }
  for (auto* obs : observers_) obs->on_function_failed(inv, info);

  const FunctionId id = inv.id;
  const int attempt = inv.attempt;
  if (config_.detection_mode == DetectionMode::kHeartbeat &&
      kind == FailureKind::kNodeFailure) {
    // Nobody watches a dead node's containers: the failure surfaces only
    // once the heartbeat detector confirms the node (confirm_node_dead).
    undetected_.push_back({id, attempt, info});
    return;
  }
  // Watchdog stalls are controller-initiated — the controller already
  // knows, so the invoker's detection delay does not apply.
  const Duration detect_delay = kind == FailureKind::kRecoveryStall
                                    ? Duration::zero()
                                    : config_.failure_detect_delay;
  sim_.schedule_after(detect_delay, [this, id, attempt, info] {
    auto& target = internal(id);
    if (target.attempt != attempt || target.phase != Phase::kFailed) return;
    obs_event(target, obs::EventKind::kDetect, "detect");
    if (series_ != nullptr) series_->count("detections", sim_.now());
    if (recovery_ != nullptr) recovery_->on_failure(target, info);
  });
}

void Platform::confirm_node_dead(NodeId node) {
  if (cluster_.contains(node) && cluster_.node(node).alive()) {
    if (network_.reaches_majority(node)) {
      // Fencing: the detector may confirm a live-but-unresponsive worker.
      // Killing it outright before redeploying its functions is what makes
      // recovery exactly-once — the fenced attempts can never complete
      // concurrently with their replacements. The kills stash into
      // undetected_ and drain below.
      metrics_.count("nodes_fenced");
      fail_node(node);
    } else {
      // Split-brain case: the worker is alive on the minority side of a
      // partition, so there is no way to kill it from here. Fence it
      // logically — its replacements redeploy on the majority side while
      // the zombie's eventual commit is rejected by the KV epoch gate.
      logically_fence(node);
    }
  }
  std::vector<UndetectedFailure> drained;
  for (auto it = undetected_.begin(); it != undetected_.end();) {
    if (it->info.node == node) {
      drained.push_back(*it);
      it = undetected_.erase(it);
    } else {
      ++it;
    }
  }
  for (const UndetectedFailure& stash : drained) {
    auto& target = internal(stash.id);
    if (target.attempt != stash.attempt || target.phase != Phase::kFailed) {
      continue;
    }
    obs_event(target, obs::EventKind::kDetect, "detect");
    if (series_ != nullptr) series_->count("detections", sim_.now());
    if (recovery_ != nullptr) recovery_->on_failure(target, stash.info);
  }
}

void Platform::logically_fence(NodeId node) {
  fenced_nodes_.insert(node);
  metrics_.count("nodes_fenced_logical");
  // The fence is an ambient root event like a node failure: every victim
  // invocation's kFailure chains off it, and so does the zombie's later
  // rejected commit annotation.
  if (events_ != nullptr) {
    obs::SpanLabels labels;
    labels.node = node;
    node_failure_cause_ =
        events_->append_raw(events_->new_trace(), obs::kNoEvent,
                            obs::EventKind::kAnnotation, "node_fenced",
                            sim_.now(), labels);
  }

  // Zombie commit attempts: each executing invocation on the minority
  // side keeps running over there and tries to commit its in-flight state
  // when that state finishes. The hook routes the attempt through the
  // real KV put path, where the stale-epoch gate rejects it. Scheduled
  // before the kills below so the projected end times are still intact.
  std::vector<ContainerId> on_node;
  for (const auto& c : containers_) {
    if (c.node == node && c.alive()) on_node.push_back(c.id);
  }
  if (zombie_commit_hook_) {
    for (const ContainerId cid : on_node) {
      const auto& c = container_ref(cid);
      if (!c.assigned.valid()) continue;
      const InvocationInternal& inv = internal(c.assigned);
      if (inv.container != cid || inv.phase != Phase::kExecuting) continue;
      const TimePoint commit_at = std::max(sim_.now(), inv.state_planned_end);
      const FunctionId id = inv.id;
      // Deliberately not attempt-guarded: the replacement's progress on
      // the majority side cannot call the zombie back.
      sim_.schedule_at(commit_at, [this, node, id] {
        zombie_commit_hook_(node, id);
      });
    }
  }

  // Retire the node from the scheduler's view (placement, alive_count,
  // quorum size) and fail its invocations so recovery redeploys them; in
  // kHeartbeat mode the kills stash into undetected_ and our caller
  // drains them.
  cluster_.fail_node(node);
  if (series_ != nullptr) {
    series_->set_level("nodes_up", sim_.now(),
                       static_cast<double>(cluster_.alive_count()));
  }
  for (const ContainerId cid : on_node) {
    auto& c = container_ref(cid);
    if (!c.alive()) continue;
    if (c.assigned.valid() && internal(c.assigned).container == cid &&
        !internal(c.assigned).completed()) {
      handle_kill(internal(c.assigned), FailureKind::kNodeFailure);
    } else {
      destroy_container(cid);
    }
  }
  node_failure_cause_ = obs::kNoEvent;
}

void Platform::resolve_recovery_markers(InvocationInternal& inv) {
  const TimePoint now = sim_.now();
  auto it = inv.markers.begin();
  while (it != inv.markers.end()) {
    if (it->floor <= inv.work_done) {
      const Duration recovery = now - it->fail_time;
      inv.recovery_time += recovery;
      m_recovery_time_.record_duration(recovery);
      m_recoveries_.add();
      if (series_ != nullptr) {
        series_->count("recoveries", now);
        series_->sample("recovery_time", now, recovery.to_seconds());
      }
      if (spans_ != nullptr) {
        spans_->record(obs::SpanKind::kRecovery, "recovery", it->fail_time,
                       now, obs_labels(inv));
      }
      obs_event(inv, obs::EventKind::kRecovered, "recovered", it->fail_event);
      it = inv.markers.erase(it);
    } else {
      ++it;
    }
  }
}

void Platform::kill_function(FunctionId id, FailureKind kind) {
  handle_kill(internal(id), kind);
}

void Platform::log_recovery_action(FunctionId id, const char* action) {
  obs_event(internal(id), obs::EventKind::kRecoveryAction, action);
}

void Platform::join_trace(FunctionId follower, FunctionId leader) {
  if (events_ == nullptr) return;
  auto& lead = internal(leader);
  auto& follow = internal(follower);
  if (!lead.trace.trace.valid()) lead.trace.trace = events_->new_trace();
  if (follow.trace.trace == lead.trace.trace) return;
  // Re-root the follower's chain onto the leader's trace: its first event
  // becomes a child of the leader's latest, so primary and shadow share
  // one DAG and the replica race is visible as a fork.
  if (follow.trace.last != obs::kNoEvent) {
    events_->rebind(follow.trace.last, lead.trace.trace, lead.trace.last);
  }
  follow.trace.trace = lead.trace.trace;
}

void Platform::discard_function(FunctionId id) {
  auto& inv = internal(id);
  if (inv.phase == Phase::kCompleted || inv.phase == Phase::kShed) return;
  inv.progress_event.cancel();
  inv.kill_event.cancel();
  inv.timeout_event.cancel();
  inv.markers.clear();  // a discarded loser owes no recovery
  if (inv.phase == Phase::kPending) {
    // Remove from whichever queue holds it.
    auto pending = std::find(pending_.begin(), pending_.end(), id);
    if (pending != pending_.end()) pending_.erase(pending);
    auto waiter = std::find_if(
        capacity_waiters_.begin(), capacity_waiters_.end(),
        [id](const auto& entry) { return entry.first == id; });
    if (waiter != capacity_waiters_.end()) capacity_waiters_.erase(waiter);
  }
  // A stashed node-failure notification (heartbeat mode) for a discarded
  // invocation is moot — it must not linger as a stranded failure when
  // the run ends before the detector confirms the node.
  undetected_.erase(
      std::remove_if(undetected_.begin(), undetected_.end(),
                     [id](const UndetectedFailure& u) { return u.id == id; }),
      undetected_.end());
  m_functions_discarded_.add();
  obs_event(inv, obs::EventKind::kAnnotation, "discarded");
  complete_function(inv);
}

FunctionId Platform::hedge_clone(FunctionId primary) {
  auto& inv = internal(primary);
  CANARY_CHECK(inv.phase != Phase::kCompleted && inv.phase != Phase::kShed,
               "cannot hedge a terminal invocation");
  JobRecord& job = job_record(inv.job);

  const FunctionId fid = function_ids_.next();
  CANARY_CHECK(fid.value() == invocations_.size() + 1,
               "function id / slab desync");
  invocations_.emplace_back();  // slab: `inv` stays valid across growth
  InvocationInternal& clone = invocations_.back();
  clone.id = fid;
  clone.job = inv.job;
  // The clone shares the primary's spec verbatim — growing
  // JobRecord::spec.functions would invalidate every spec pointer of the
  // job, and an identical name keeps the pair in one workload family and
  // one exactly-once identity per FunctionId.
  clone.spec = inv.spec;
  clone.index_in_job = job.functions.size();
  clone.submit_time = sim_.now();

  // The clone is a first-class member of the job: `remaining` counts it,
  // so the job completes only once both copies reach a terminal state
  // (the loser via discard). Its dependents entry is empty — completing
  // a clone can never double-trigger the primary's dependents. A
  // trigger-free job keeps its graph vectors empty, clones included.
  job.functions.push_back(fid);
  if (!job.dependents.empty()) {
    job.dependents.emplace_back();
    job.unmet_deps.push_back(0);
  }
  ++job.remaining;

  // kHedged on the primary marks the fork point; the clone's kSubmit then
  // joins the primary's trace so the race is one causal DAG.
  obs_event(inv, obs::EventKind::kHedged, "hedged");
  obs_event(clone, obs::EventKind::kSubmit, clone.spec->name);
  join_trace(fid, primary);

  // No SLO target and no account concurrency slot: the primary already
  // owns both, and a speculative copy must not double the request's
  // deadline bookkeeping or starve admission. Clones prefer a node other
  // than the primary's — a hedge against a gray host is useless if it
  // lands on the same host.
  StartSpec spec;
  if (inv.node.valid()) {
    spec.node_pref =
        config_.spread_fault_domains
            ? cluster_.least_loaded_avoiding_zone(
                  clone.spec->effective_memory(),
                  cluster_.zone_of(inv.node), {inv.node})
            : cluster_.least_loaded_excluding(clone.spec->effective_memory(),
                                              {inv.node});
  }
  start_attempt(fid, spec);
  return fid;
}

void Platform::cancel_hedge(FunctionId loser, FunctionId winner) {
  auto& lose = internal(loser);
  // Exactly-once by construction: a loser that already completed (same
  // sim-tick race) or was shed is terminal and must stay untouched.
  if (lose.phase == Phase::kCompleted || lose.phase == Phase::kShed) return;
  auto& win = internal(winner);
  // The cause edge points at the winner's latest event, so the chrome
  // trace renders the race resolution as a flow arrow across the fork.
  obs_event(lose, obs::EventKind::kHedgeCancelled, "hedge_cancelled",
            win.trace.last);
  discard_function(loser);
}

void Platform::fail_node(NodeId node, obs::EventId cause) {
  cluster_.fail_node(node);
  m_node_failures_.add();
  if (series_ != nullptr) {
    series_->count("node_failures", sim_.now());
    series_->set_level("nodes_up", sim_.now(),
                       static_cast<double>(cluster_.alive_count()));
  }
  if (spans_ != nullptr) {
    obs::SpanLabels labels;
    labels.node = node;
    spans_->instant(obs::SpanKind::kNodeFailure, "node_failure", sim_.now(),
                    labels);
  }
  // The node failure is an ambient root event on its own trace; every
  // victim invocation's kFailure event points back to it via a cause
  // edge, so one chrome flow fans out from the node to all casualties.
  if (events_ != nullptr) {
    obs::SpanLabels labels;
    labels.node = node;
    node_failure_cause_ =
        events_->append_raw(events_->new_trace(), obs::kNoEvent,
                            obs::EventKind::kNodeFailure, "node_failure",
                            sim_.now(), labels, cause);
  }

  // Slab order is id order, so the victim list is already sorted.
  std::vector<ContainerId> on_node;
  for (const auto& c : containers_) {
    if (c.node == node && c.alive()) on_node.push_back(c.id);
  }
  for (const ContainerId cid : on_node) {
    auto& c = container_ref(cid);
    if (!c.alive()) continue;  // may have died while killing its sibling
    // Any container with an assigned function — launching, initializing,
    // or executing — takes its invocation down with it; only unassigned
    // warm replicas/standbys are plain teardowns.
    if (c.assigned.valid() &&
        internal(c.assigned).container == cid &&
        !internal(c.assigned).completed()) {
      handle_kill(internal(c.assigned), FailureKind::kNodeFailure);
    } else {
      destroy_container(cid);
    }
  }
  node_failure_cause_ = obs::kNoEvent;
}

Result<ContainerId> Platform::launch_warm_container(
    NodeId node, RuntimeImage image, ContainerPurpose purpose,
    std::function<void(ContainerId)> on_ready) {
  if (!cluster_.contains(node)) return Error::invalid_argument("unknown node");
  auto& host = cluster_.node(node);
  const Bytes memory = profile(image).memory;
  const Status reserved = host.reserve(memory);
  if (!reserved.ok()) return reserved.error();

  const ContainerId cid = create_container(node, image, memory, purpose);
  const double speed = host.speed();
  const auto& rt = profile(image);
  const Duration launch =
      rt.cold_launch * speed * launch_contention_multiplier(node);
  const Duration init = rt.init * speed;

  // Warm provisioning gets its own little trace: provision → ready. The
  // adopting invocation later chains off its own trace, so these stay a
  // side branch rather than polluting an invocation's critical path.
  obs::TraceContext warm_trace;
  if (events_ != nullptr) {
    warm_trace.trace = events_->new_trace();
    obs::SpanLabels labels;
    labels.container = cid;
    labels.node = node;
    events_->extend(warm_trace, obs::EventKind::kReplica, "replica_provision",
                    sim_.now(), labels);
  }

  sim_.schedule_after(launch, [this, cid, init, node, warm_trace,
                               on_ready = std::move(on_ready)]() mutable {
    Container* c = alive_container(cid);
    if (c == nullptr) return;
    release_inflight_launch(node);
    c->state = ContainerState::kInitializing;
    sim_.schedule_after(init, [this, cid, warm_trace,
                               on_ready = std::move(on_ready)] {
      Container* inner = alive_container(cid);
      if (inner == nullptr) return;
      inner->state = ContainerState::kWarm;
      warm_index_add(*inner);
      if (events_ != nullptr && warm_trace.valid()) {
        obs::SpanLabels labels;
        labels.container = cid;
        labels.node = inner->node;
        events_->append(warm_trace, obs::EventKind::kReplica, "replica_ready",
                        sim_.now(), labels);
      }
      for (auto* obs : observers_) obs->on_container_ready(*inner);
      if (on_ready) on_ready(cid);
    });
  });
  return cid;
}

std::optional<ContainerId> Platform::find_warm_container(
    RuntimeImage image, std::optional<NodeId> prefer_node,
    std::optional<ContainerPurpose> purpose) const {
  const std::size_t img = static_cast<std::size_t>(image);
  // Selection mirrors the old full scan exactly: a container on the
  // preferred node wins (lowest id among those), else the lowest id
  // overall. The index sets are ascending, so the first alive hit per set
  // is that set's lowest candidate.
  ContainerId best_preferred = ContainerId::invalid();
  ContainerId best_any = ContainerId::invalid();
  auto scan = [&](const std::set<ContainerId>& pool) {
    for (const ContainerId cid : pool) {
      const Container& c = container_ref(cid);
      // A node death destroys its containers synchronously, but observers
      // run mid-teardown, so skip (don't trust) dead-node entries.
      if (!cluster_.node(c.node).alive()) continue;
      if (!best_any.valid() || cid < best_any) best_any = cid;
      if (prefer_node && c.node == *prefer_node) {
        if (!best_preferred.valid() || cid < best_preferred) {
          best_preferred = cid;
        }
        break;  // ascending set: later entries can't beat this one
      }
      if (!prefer_node) break;  // lowest id found and no preference to chase
    }
  };
  if (purpose) {
    scan(warm_idle_[static_cast<std::size_t>(*purpose)][img]);
  } else {
    for (std::size_t p = 0; p < kPurposeCount; ++p) {
      scan(warm_idle_[p][img]);
    }
  }
  if (best_preferred.valid()) return best_preferred;
  if (best_any.valid()) return best_any;
  return std::nullopt;
}

void Platform::destroy_warm_container(ContainerId id) {
  Container& c = container_ref(id);
  CANARY_CHECK(c.warm_idle(), "container is not warm-idle");
  destroy_container(id);
}

const Container& Platform::container(ContainerId id) const {
  return container_ref(id);
}

std::vector<const Container*> Platform::containers_on(NodeId node) const {
  // Slab order is id order, so the result needs no sort.
  std::vector<const Container*> result;
  for (const auto& c : containers_) {
    if (c.node == node && c.alive()) result.push_back(&c);
  }
  return result;
}

std::size_t Platform::warm_idle_count(RuntimeImage image,
                                      ContainerPurpose purpose) const {
  const auto& index = warm_idle_[static_cast<std::size_t>(purpose)]
                               [static_cast<std::size_t>(image)];
  std::size_t count = 0;
  for (const ContainerId cid : index) {
    if (cluster_.node(container_ref(cid).node).alive()) ++count;
  }
  return count;
}

std::size_t Platform::warm_container_count(RuntimeImage image) const {
  const std::size_t img = static_cast<std::size_t>(image);
  std::size_t count = 0;
  for (std::size_t p = 0; p < kPurposeCount; ++p) {
    for (const ContainerId cid : warm_idle_[p][img]) {
      if (cluster_.node(container_ref(cid).node).alive()) ++count;
    }
  }
  return count;
}

void Platform::destroy_container(ContainerId id) {
  Container& c = container_ref(id);
  if (!c.alive()) return;
  if (c.state == ContainerState::kLaunching) {
    release_inflight_launch(c.node);
  }
  if (c.state == ContainerState::kWarm) warm_index_remove(c);
  c.state = ContainerState::kDead;
  c.destroyed = sim_.now();
  ledger_.close(id, sim_.now());
  if (cluster_.contains(c.node) && cluster_.node(c.node).alive()) {
    cluster_.node(c.node).release(c.memory);
  }
  for (auto* obs : observers_) obs->on_container_destroyed(c);
  retry_capacity_waiters();
}

void Platform::finalize_usage() { ledger_.close_all_open(sim_.now()); }

}  // namespace canary::faas
