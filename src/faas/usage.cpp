#include "faas/usage.hpp"

namespace canary::faas {

void UsageLedger::open(const Container& c) { open_at(c, c.created); }

void UsageLedger::open_at(const Container& c, TimePoint start) {
  UsageRecord rec;
  rec.container = c.id;
  rec.node = c.node;
  rec.image = c.image;
  rec.memory = c.memory;
  rec.purpose = c.purpose;
  rec.start = start;
  rec.end = TimePoint::max();
  open_[c.id] = records_.size();
  records_.push_back(rec);
}

void UsageLedger::close(ContainerId id, TimePoint end) {
  // A container has at most one open interval; the index replaces the old
  // backwards scan over the (ever-growing) ledger.
  auto it = open_.find(id);
  if (it == open_.end()) return;
  records_[it->second].end = end;
  open_.erase(it);
}

void UsageLedger::close_all_open(TimePoint end) {
  for (auto& rec : records_) {
    if (rec.end == TimePoint::max()) rec.end = end;
  }
  open_.clear();
}

double UsageLedger::total_gb_seconds() const {
  double total = 0.0;
  for (const auto& rec : records_) {
    if (rec.end == TimePoint::max()) continue;
    total += rec.gb_seconds();
  }
  return total;
}

double UsageLedger::gb_seconds_for(ContainerPurpose purpose) const {
  double total = 0.0;
  for (const auto& rec : records_) {
    if (rec.end == TimePoint::max()) continue;
    if (rec.purpose == purpose) total += rec.gb_seconds();
  }
  return total;
}

}  // namespace canary::faas
