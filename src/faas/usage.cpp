#include "faas/usage.hpp"

namespace canary::faas {

void UsageLedger::open(const Container& c) { open_at(c, c.created); }

void UsageLedger::open_at(const Container& c, TimePoint start) {
  UsageRecord rec;
  rec.container = c.id;
  rec.node = c.node;
  rec.image = c.image;
  rec.memory = c.memory;
  rec.purpose = c.purpose;
  rec.start = start;
  rec.end = TimePoint::max();
  const std::size_t slot = c.id.value() - 1;
  if (slot >= open_.size()) open_.resize(slot + 1, kClosed);
  open_[slot] = records_.size();
  records_.push_back(rec);
}

void UsageLedger::close(ContainerId id, TimePoint end) {
  // A container has at most one open interval; the index replaces the old
  // backwards scan over the (ever-growing) ledger.
  const std::size_t slot = id.value() - 1;
  if (slot >= open_.size() || open_[slot] == kClosed) return;
  records_[open_[slot]].end = end;
  open_[slot] = kClosed;
}

void UsageLedger::close_all_open(TimePoint end) {
  for (auto& rec : records_) {
    if (rec.end == TimePoint::max()) rec.end = end;
  }
  open_.assign(open_.size(), kClosed);
}

double UsageLedger::total_gb_seconds() const {
  double total = 0.0;
  for (const auto& rec : records_) {
    if (rec.end == TimePoint::max()) continue;
    total += rec.gb_seconds();
  }
  return total;
}

double UsageLedger::gb_seconds_for(ContainerPurpose purpose) const {
  double total = 0.0;
  for (const auto& rec : records_) {
    if (rec.end == TimePoint::max()) continue;
    if (rec.purpose == purpose) total += rec.gb_seconds();
  }
  return total;
}

}  // namespace canary::faas
