#include "faas/usage.hpp"

namespace canary::faas {

void UsageLedger::open(const Container& c) { open_at(c, c.created); }

void UsageLedger::open_at(const Container& c, TimePoint start) {
  UsageRecord rec;
  rec.container = c.id;
  rec.node = c.node;
  rec.image = c.image;
  rec.memory = c.memory;
  rec.purpose = c.purpose;
  rec.start = start;
  rec.end = TimePoint::max();
  records_.push_back(rec);
}

void UsageLedger::close(ContainerId id, TimePoint end) {
  // Scan from the back: the open record for a container is its newest.
  for (auto it = records_.rbegin(); it != records_.rend(); ++it) {
    if (it->container == id && it->end == TimePoint::max()) {
      it->end = end;
      return;
    }
  }
}

void UsageLedger::close_all_open(TimePoint end) {
  for (auto& rec : records_) {
    if (rec.end == TimePoint::max()) rec.end = end;
  }
}

double UsageLedger::total_gb_seconds() const {
  double total = 0.0;
  for (const auto& rec : records_) {
    if (rec.end == TimePoint::max()) continue;
    total += rec.gb_seconds();
  }
  return total;
}

double UsageLedger::gb_seconds_for(ContainerPurpose purpose) const {
  double total = 0.0;
  for (const auto& rec : records_) {
    if (rec.end == TimePoint::max()) continue;
    if (rec.purpose == purpose) total += rec.gb_seconds();
  }
  return total;
}

}  // namespace canary::faas
