// The FaaS platform (OpenWhisk substitute).
//
// Owns jobs, function invocations and containers; drives their lifecycle
// on the discrete-event simulator; enforces account limits; and delegates
// policy to the extension points in events.hpp:
//   * FailurePolicy decides whether/when each attempt's container is
//     killed (the evaluation's error-rate-driven random kills);
//   * RecoveryHandler reacts to failures — RetryHandler reproduces the
//     platform default, canary::CoreModule replaces it;
//   * ExecutionHooks lets Canary's Checkpointing Module add per-state
//     checkpoint overhead and record restore points.
//
// Scheduling is least-loaded-node with capacity probing; concurrent cold
// starts on one node contend (image pull / containerd contention), which
// is what makes mass retry storms slow in Fig. 4/11.
#pragma once

#include <deque>
#include <iterator>
#include <memory>
#include <optional>
#include <set>
#include <string_view>
#include <vector>

#include "cluster/cluster.hpp"
#include "cluster/network.hpp"
#include "common/ids.hpp"
#include "common/result.hpp"
#include "common/slab.hpp"
#include "faas/container.hpp"
#include "faas/events.hpp"
#include "faas/function.hpp"
#include "faas/usage.hpp"
#include "obs/event_log.hpp"
#include "obs/metric_registry.hpp"
#include "obs/slo_monitor.hpp"
#include "obs/span.hpp"
#include "obs/time_series.hpp"
#include "sim/simulator.hpp"

namespace canary::faas {

struct PlatformLimits {
  /// Maximum concurrently running invocations per account (concurrency
  /// failures happen beyond this; the Request Validator queues instead).
  unsigned max_concurrent_invocations = 1000;
  /// Maximum memory a single function may request (request failures).
  Bytes max_function_memory = Bytes::gib(8);
  std::size_t max_functions_per_job = 4096;
  /// Per-attempt execution timeout (§II's "network timeouts" failure
  /// class): an attempt running longer than this is killed with
  /// FailureKind::kTimeout and handled by the recovery strategy.
  /// Duration::max() disables enforcement.
  Duration function_timeout = Duration::max();
};

/// How the platform learns about node-level failures.
enum class DetectionMode {
  /// Legacy oracle: every failure is reported to the recovery handler a
  /// constant `failure_detect_delay` after it happens.
  kOracle,
  /// Heartbeat detection: node-level failures are *not* reported until a
  /// failure detector (canary::core::FailureDetector or equivalent) calls
  /// confirm_node_dead() — detection latency becomes an emergent quantity
  /// of the heartbeat interval, timeout multiplier and injected network
  /// faults. Container-local failures (kills, timeouts) are still noticed
  /// by the node's invoker after `failure_detect_delay`.
  kHeartbeat,
};

struct PlatformConfig {
  PlatformLimits limits;
  /// Controller overhead to schedule one invocation.
  Duration scheduler_overhead = Duration::msec(15);
  /// Delay between a container dying and the failure being detected and
  /// reported to the recovery handler.
  Duration failure_detect_delay = Duration::msec(300);
  /// Node-failure detection mode; kOracle preserves the legacy constant
  /// delay, kHeartbeat defers to confirm_node_dead().
  DetectionMode detection_mode = DetectionMode::kOracle;
  /// Cold-launch slowdown per additional concurrent launch on the same
  /// node, capped at `contention_cap` (multiplier on cold_launch).
  double cold_start_contention = 0.12;
  double contention_cap = 4.0;
  /// Container reuse (the paper's future work: "consolidating multiple
  /// functions in a single container to reduce the cold start latency"):
  /// completed functions return their container to a warm pool instead of
  /// tearing it down, and new invocations of the same runtime adopt pool
  /// containers. Idle pool containers are destroyed after
  /// `warm_pool_idle_timeout`. Billing pauses while a pool container
  /// idles (providers do not charge users for the warm pool).
  bool reuse_containers = false;
  Duration warm_pool_idle_timeout = Duration::sec(60.0);
  /// Fault-domain-aware dispatch: hedge clones prefer a node in a
  /// *different zone* than the primary (not merely a different node), so
  /// a zone outage cannot take both copies down together. Off by default;
  /// disabled runs are byte-identical to builds without the feature.
  bool spread_fault_domains = false;
};

/// How a (re)start should run: from which state, on which container/node,
/// and how much setup time (checkpoint restore, state migration) precedes
/// execution.
struct StartSpec {
  std::size_t from_state = 0;
  std::optional<ContainerId> container;  // warm container to adopt
  std::optional<NodeId> node_pref;
  Duration extra_setup = Duration::zero();
};

class Platform {
 public:
  Platform(sim::Simulator& simulator, cluster::Cluster& cluster,
           cluster::NetworkModel& network, PlatformConfig config,
           obs::MetricRegistry& metrics);

  Platform(const Platform&) = delete;
  Platform& operator=(const Platform&) = delete;

  // ---- policy installation -------------------------------------------
  void set_failure_policy(FailurePolicy* policy) { failure_policy_ = policy; }
  void set_recovery_handler(RecoveryHandler* handler) { recovery_ = handler; }
  void set_hooks(ExecutionHooks* hooks) { hooks_ = hooks; }
  void add_observer(PlatformObserver* observer);
  /// Install a span recorder capturing the lifecycle phases (launch, init,
  /// restore, exec, finalize) plus failure/recovery windows on the sim
  /// clock. Null disables span recording (the default).
  void set_span_recorder(obs::SpanRecorder* spans) { spans_ = spans; }
  obs::SpanRecorder* spans() const { return spans_; }
  /// Install a causal event log: every invocation becomes a trace whose
  /// lifecycle steps, failures, detections and recovery actions chain
  /// into a per-trace DAG. Null disables event recording (the default).
  void set_event_log(obs::EventLog* events) { events_ = events; }
  obs::EventLog* events() const { return events_; }
  /// Install the SLO watchdog: SLA-carrying functions (FunctionSpec::sla,
  /// falling back to the job deadline) are armed at submission and their
  /// breaches recorded online as kSlaViolation events.
  void set_slo_monitor(obs::SloMonitor* slo) { slo_ = slo; }
  obs::SloMonitor* slo_monitor() const { return slo_; }
  /// Install windowed time-series rollups: completions, failures,
  /// detections, cold starts and node health land in fixed sim-interval
  /// windows. Null disables (the default).
  void set_time_series(obs::TimeSeries* series) { series_ = series; }
  obs::TimeSeries* time_series() const { return series_; }
  /// Enable tail-latency attribution: completions additionally record
  /// into exemplar-carrying histograms ("tail_latency" plus one per
  /// workload family) whose tail buckets retain trace ids, anchored at
  /// the admission arrival for open-loop requests so the recorded value
  /// equals the causal chain's end-to-end window. Off by default;
  /// attribution-off runs emit byte-identical reports.
  void enable_tail_attribution(const obs::ExemplarConfig& config);
  bool tail_attribution_enabled() const { return tail_exemplars_.enabled; }
  const obs::ExemplarConfig& tail_exemplar_config() const {
    return tail_exemplars_;
  }

  /// Current simulated time (handlers recording into the time series
  /// need a timestamp without holding their own simulator reference).
  TimePoint now() const { return sim_.now(); }

  // ---- job/function API ----------------------------------------------
  /// Validate against platform limits and enqueue every function of the
  /// job. Functions start as account concurrency and node capacity allow.
  Result<JobId> submit_job(JobSpec spec);
  /// Zero-copy submission: the platform shares `spec` instead of owning a
  /// deep copy. Batch harnesses pass a non-owning alias of their (longer
  /// lived) job list, so a million-invocation run never duplicates the
  /// function specs; dynamic producers wrap a temporary in one
  /// make_shared. The spec must stay immutable and outlive the platform.
  Result<JobId> submit_job(std::shared_ptr<const JobSpec> spec);

  /// Record a job rejected by admission control: every function becomes a
  /// terminal Phase::kShed invocation that never executes (no container,
  /// no SLO target, no observer callbacks) but still appears in the event
  /// log — a kQueued event at JobSpec::enqueued_at chained to a kShed
  /// event at the current time — so rejected load is never silently
  /// dropped and the shed count is exactly-once auditable.
  Result<JobId> shed_job(JobSpec spec);

  const Invocation& invocation(FunctionId id) const;
  const JobSpec& job_spec(JobId id) const;
  const std::vector<FunctionId>& job_functions(JobId id) const;
  bool job_completed(JobId id) const;
  bool all_jobs_completed() const;
  TimePoint job_submit_time(JobId id) const;
  TimePoint job_completion_time(JobId id) const;
  std::vector<JobId> all_job_ids() const;

  std::vector<FunctionId> all_function_ids() const;

  // ---- primitives used by recovery handlers ---------------------------
  /// (Re)start a function according to `spec`. With a warm container the
  /// launch+init phases are skipped (that is the replication win); without
  /// one a cold container is created. Recovering invocations bypass the
  /// account concurrency queue — they already hold their slot.
  void start_attempt(FunctionId id, StartSpec spec);

  /// Launch a warm container (runtime replica / standby). `on_ready` fires
  /// when it reaches the Warm state; if the node dies first the callback
  /// is dropped and observers see the container's destruction.
  Result<ContainerId> launch_warm_container(
      NodeId node, RuntimeImage image, ContainerPurpose purpose,
      std::function<void(ContainerId)> on_ready);

  /// Idle warm container running `image` (optionally restricted by
  /// purpose), preferring `prefer_node`, else the lowest id.
  std::optional<ContainerId> find_warm_container(
      RuntimeImage image, std::optional<NodeId> prefer_node,
      std::optional<ContainerPurpose> purpose) const;

  /// Tear down an idle warm container (replica retirement).
  void destroy_warm_container(ContainerId id);

  /// Append a kRecoveryAction event to `id`'s causal chain — recovery
  /// strategies call this so the trace DAG records which path (retry,
  /// replica migration, standby activation, ...) handled each failure.
  void log_recovery_action(FunctionId id, const char* action);

  /// Merge `follower`'s causal chain into `leader`'s trace. Request
  /// replication joins each shadow to its primary so the whole race is
  /// one trace.
  void join_trace(FunctionId follower, FunctionId leader);

  const Container& container(ContainerId id) const;
  std::vector<const Container*> containers_on(NodeId node) const;
  std::size_t warm_container_count(RuntimeImage image) const;
  /// Warm-idle containers of `image` with `purpose` (the autoscaler's
  /// supply signal; O(1) from the warm index).
  std::size_t warm_idle_count(RuntimeImage image, ContainerPurpose purpose)
      const;

  // ---- failure entry points -------------------------------------------
  /// Kill the container currently hosting `id` (injected failure).
  void kill_function(FunctionId id, FailureKind kind);
  /// Discard an invocation without running it to completion: its container
  /// (if any) is torn down and it counts as done for job completion. Used
  /// by the request-replication baseline, where the first replica to
  /// respond wins and "the rest are discarded".
  void discard_function(FunctionId id);
  /// Dispatch a speculative clone of a still-unfinished invocation: a new
  /// function appended to the same job, sharing `primary`'s spec (and so
  /// its workload family) and racing it to completion — anti-affine to
  /// the primary's node when the cluster has another candidate. The clone
  /// joins the primary's causal trace (a kHedged event on the primary is
  /// the fork point) and bypasses the account concurrency queue: the
  /// primary already holds the request's slot, and amplification is
  /// bounded by the caller's hedge budget.
  FunctionId hedge_clone(FunctionId primary);
  /// Resolve a hedge race exactly-once: `winner` finished first, so
  /// `loser` is cancelled — a kHedgeCancelled event (cause = the winner's
  /// latest event) followed by discard_function. A loser that already
  /// reached a terminal state is left untouched, so double resolution
  /// and completion races are no-ops by construction.
  void cancel_hedge(FunctionId loser, FunctionId winner);
  /// Node-level failure: every hosted container dies; busy invocations
  /// fail, warm replicas are destroyed. When `cause` is a valid event id
  /// (a zone-outage annotation), the node's kNodeFailure root event chains
  /// off it, so correlated kills share one causal ancestor in the DAG.
  void fail_node(NodeId node, obs::EventId cause = obs::kNoEvent);
  /// Heartbeat-mode detection endpoint: the failure detector confirmed
  /// `node` dead. A still-alive node that can reach the majority side is
  /// fenced physically (failed outright — the exactly-once guarantee for
  /// false confirmations on gray workers). A still-alive node cut off by
  /// a partition cannot be reached to kill: it is fenced *logically* —
  /// marked fenced, excluded from placement, its invocations redeployed —
  /// while the minority-side zombie runs to its natural completion and
  /// attempts its commit through the zombie-commit hook, where the KV
  /// store's epoch gate rejects it. Either way every stashed undetected
  /// failure on the node is then reported to the recovery handler.
  void confirm_node_dead(NodeId node);
  /// True when `node` was logically fenced by confirm_node_dead (alive
  /// but partitioned away from the majority at confirmation time).
  bool node_fenced(NodeId node) const {
    return fenced_nodes_.count(node) > 0;
  }
  /// Install the zombie-commit hook: called at the sim-time a logically
  /// fenced invocation would have committed its in-flight state, with the
  /// fenced node and invocation id. The canary checkpointing layer wires
  /// this to a real (stale-epoch, rejected) KV put.
  void set_zombie_commit_hook(std::function<void(NodeId, FunctionId)> hook) {
    zombie_commit_hook_ = std::move(hook);
  }
  /// Node failures awaiting heartbeat confirmation (kHeartbeat mode).
  std::size_t undetected_failures() const { return undetected_.size(); }

  // ---- accounting ------------------------------------------------------
  const UsageLedger& usage() const { return ledger_; }
  /// Close open usage intervals at the current simulated time.
  void finalize_usage();

  sim::Simulator& simulator() { return sim_; }
  cluster::Cluster& cluster() { return cluster_; }
  cluster::NetworkModel& network() { return network_; }
  const cluster::NetworkModel& network() const { return network_; }
  const PlatformConfig& config() const { return config_; }
  obs::MetricRegistry& metrics() { return metrics_; }

 private:
  static constexpr std::size_t kPurposeCount = 4;
  static constexpr std::size_t kImageCount = std::size(kAllRuntimeImages);
  struct RecoveryMarker {
    Duration floor;      // nominal work to regain
    TimePoint fail_time;
    obs::EventId fail_event = obs::kNoEvent;  // the kFailure DAG node
  };

  // Defined in the header (not pimpl'd) so the records can live directly
  // in the entity slabs below — std::deque needs a complete element type.
  struct InvocationInternal : Invocation {
    std::size_t index_in_job = 0;
    sim::EventHandle progress_event;
    sim::EventHandle kill_event;
    sim::EventHandle timeout_event;
    obs::SpanHandle phase_span;
    std::vector<RecoveryMarker> markers;
    TimePoint state_start;
    TimePoint state_planned_end;
    /// work_done captured at the last failure; used to compute lost work
    /// once the restore point of the next attempt is known.
    Duration last_failure_work = Duration::zero();
    bool counted_running = false;
  };

  struct JobRecord {
    /// Shared, immutable: submission never deep-copies the spec (see the
    /// shared_ptr submit_job overload). Invocation::spec points into
    /// spec->functions, so stability follows from the shared ownership.
    std::shared_ptr<const JobSpec> spec;
    std::vector<FunctionId> functions;
    std::size_t remaining = 0;
    TimePoint submitted;
    TimePoint completed = TimePoint::max();
    /// Trigger graph: dependents[i] lists the function indices unblocked
    /// by function i's completion; unmet_deps[i] counts i's open
    /// dependencies. Both stay empty for trigger-free jobs — the common
    /// batch/traffic case submits without any per-job graph allocation.
    std::vector<std::vector<std::size_t>> dependents;
    std::vector<std::size_t> unmet_deps;
  };

  InvocationInternal& internal(FunctionId id);
  const InvocationInternal& internal(FunctionId id) const;
  JobRecord& job_record(JobId id);
  const JobRecord& job_record(JobId id) const;
  Container& container_ref(ContainerId id);
  const Container& container_ref(ContainerId id) const;
  /// The container if it exists and is alive, else nullptr. Replaces the
  /// old map-find-plus-alive guard on deferred event paths.
  Container* alive_container(ContainerId id);
  /// Deferred-event guard: the invocation if it is still on `attempt`
  /// with `cid` alive, else nullptr (the event is stale).
  InvocationInternal* attempt_guard(FunctionId id, int attempt,
                                    ContainerId cid);

  void warm_index_add(const Container& c);
  void warm_index_remove(const Container& c);
  void release_inflight_launch(NodeId node);

  void pump_pending_queue();
  void retry_capacity_waiters();
  std::optional<NodeId> pick_node(Bytes memory,
                                  std::optional<NodeId> pref) const;

  ContainerId create_container(NodeId node, RuntimeImage image, Bytes memory,
                               ContainerPurpose purpose);
  void destroy_container(ContainerId id);
  double launch_contention_multiplier(NodeId node) const;

  void start_cold(InvocationInternal& inv, NodeId node, StartSpec spec);
  void start_warm(InvocationInternal& inv, Container& c, StartSpec spec);
  void arm_kill_timer(InvocationInternal& inv, Duration busy_estimate);
  Duration attempt_busy_estimate(const InvocationInternal& inv,
                                 const StartSpec& spec, double speed,
                                 bool cold) const;
  Duration epilogue_nominal(const Invocation& inv, std::size_t state_idx);

  /// Close the invocation's open phase span (if any) and open a new one.
  void obs_phase(InvocationInternal& inv, obs::SpanKind kind,
                 const char* name);
  /// Close the invocation's open phase span (if any).
  void obs_end_phase(InvocationInternal& inv);
  obs::SpanLabels obs_labels(const InvocationInternal& inv) const;
  /// Append an event to the invocation's causal chain (no-op without an
  /// installed EventLog). Returns the event id for cause edges. Takes a
  /// view so the no-op path never copies the name — materializing the
  /// string only behind the events_ check keeps recording-off runs free
  /// of per-event string allocations.
  obs::EventId obs_event(InvocationInternal& inv, obs::EventKind kind,
                         std::string_view name,
                         obs::EventId cause = obs::kNoEvent);
  /// Arm the SLO watchdog for a newly submitted invocation. The deadline
  /// is `anchor + sla`; open-loop requests anchor at their arrival
  /// instant (JobSpec::enqueued_at), everything else at submission.
  void arm_slo(InvocationInternal& inv, Duration sla, TimePoint anchor);

  void begin_execution(InvocationInternal& inv, int attempt);
  void schedule_next_state(InvocationInternal& inv);
  void complete_function(InvocationInternal& inv);
  void handle_kill(InvocationInternal& inv, FailureKind kind);
  /// Logical fence for a confirmed-dead node the majority cannot reach:
  /// mark fenced, retire it from placement, schedule zombie commit
  /// attempts for its executing invocations, then kill-and-redeploy them.
  void logically_fence(NodeId node);
  void resolve_recovery_markers(InvocationInternal& inv);
  /// Tail-histogram + time-series recording at completion (no-op unless
  /// attribution or the series is installed).
  void record_tail_latency(InvocationInternal& inv);

  sim::Simulator& sim_;
  cluster::Cluster& cluster_;
  cluster::NetworkModel& network_;
  PlatformConfig config_;
  obs::MetricRegistry& metrics_;

  FailurePolicy* failure_policy_ = nullptr;
  RecoveryHandler* recovery_ = nullptr;
  ExecutionHooks* hooks_ = nullptr;
  obs::SpanRecorder* spans_ = nullptr;
  obs::EventLog* events_ = nullptr;
  obs::SloMonitor* slo_ = nullptr;
  obs::TimeSeries* series_ = nullptr;
  /// Exemplar shape for the tail histograms; .enabled gates the whole
  /// attribution path.
  obs::ExemplarConfig tail_exemplars_;
  /// While fail_node() kills a node's containers, the kNodeFailure event
  /// whose cause edge every victim's kFailure event carries.
  obs::EventId node_failure_cause_ = obs::kNoEvent;
  std::vector<PlatformObserver*> observers_;

  IdGenerator<JobId> job_ids_;
  IdGenerator<FunctionId> function_ids_;
  IdGenerator<ContainerId> container_ids_;

  // Entity slabs. Ids are issued sequentially from 1 and records are
  // never erased, so a StableSlab indexed by id-1 replaces the old
  // unordered_map<Id, unique_ptr<T>> tables: O(1) lookup with no hashing,
  // stable addresses across growth, and O(log n) total allocations via
  // geometrically doubling blocks (a deque's fixed 512-byte chunks cost
  // an allocation every couple of appends for records this size).
  StableSlab<JobRecord> jobs_;
  StableSlab<InvocationInternal> invocations_;
  StableSlab<Container> containers_;
  /// In-flight cold launches per node, indexed by node id - 1 (the
  /// cluster's node set is fixed at construction).
  std::vector<unsigned> inflight_launches_;

  /// Warm-idle container index: [purpose][image] -> ids of containers in
  /// the Warm state, ascending. Maintained at every transition into/out
  /// of Warm so find_warm_container()/warm_container_count() touch only
  /// actual candidates instead of scanning every container ever created.
  std::set<ContainerId> warm_idle_[kPurposeCount][kImageCount];

  /// Node failures not yet reported to the recovery handler: in
  /// kHeartbeat mode a dead node's victims wait here until the failure
  /// detector calls confirm_node_dead().
  struct UndetectedFailure {
    FunctionId id;
    int attempt = 0;
    FailureInfo info;
  };
  std::vector<UndetectedFailure> undetected_;

  /// Nodes logically fenced by confirm_node_dead: alive but unreachable
  /// from the majority at confirmation, excluded from placement forever
  /// after (re-admission after heal is out of scope).
  std::set<NodeId> fenced_nodes_;
  std::function<void(NodeId, FunctionId)> zombie_commit_hook_;

  std::deque<FunctionId> pending_;  // waiting on account concurrency
  std::deque<std::pair<FunctionId, StartSpec>> capacity_waiters_;
  unsigned running_count_ = 0;
  bool pump_scheduled_ = false;

  UsageLedger ledger_;

  // Per-event metric handles: one map lookup each for the whole run
  // instead of one per increment.
  obs::CounterHandle m_cold_starts_{metrics_, "cold_starts"};
  obs::CounterHandle m_warm_starts_{metrics_, "warm_starts"};
  obs::CounterHandle m_pool_reuses_{metrics_, "pool_reuses"};
  obs::CounterHandle m_capacity_waits_{metrics_, "capacity_waits"};
  obs::CounterHandle m_functions_completed_{metrics_, "functions_completed"};
  obs::CounterHandle m_functions_discarded_{metrics_, "functions_discarded"};
  obs::CounterHandle m_functions_shed_{metrics_, "functions_shed"};
  obs::CounterHandle m_failures_{metrics_, "failures"};
  obs::CounterHandle m_recoveries_{metrics_, "recoveries"};
  obs::CounterHandle m_timeouts_{metrics_, "timeouts"};
  obs::CounterHandle m_containers_pooled_{metrics_, "containers_pooled"};
  obs::CounterHandle m_node_failures_{metrics_, "node_failures"};
  obs::CounterHandle m_slo_violations_{metrics_, "slo_violations"};
  obs::HistogramHandle m_function_latency_{metrics_, "function_latency"};
  obs::HistogramHandle m_function_queue_wait_{metrics_, "function_queue_wait"};
  obs::HistogramHandle m_recovery_time_{metrics_, "recovery_time"};
};

}  // namespace canary::faas
