// Container lifecycle model.
//
// One container per function (paper §V-A: "we launch one container per
// function"); Canary additionally keeps warm replicated runtimes
// (containers that finished launch+init and idle, ready to adopt a failed
// function). Containers transition Launching -> Initializing -> Warm ->
// Busy, and to Dead on kill, node failure, or teardown.
#pragma once

#include <string_view>

#include "common/bytes.hpp"
#include "common/ids.hpp"
#include "common/time.hpp"
#include "faas/runtime.hpp"

namespace canary::faas {

enum class ContainerState {
  kLaunching,
  kInitializing,
  kWarm,  // initialized and idle — usable as a warm runtime replica
  kBusy,  // executing a function
  kDead,
};

/// Why the container exists; used by the usage ledger to attribute dollar
/// cost to primary execution vs. the redundancy mechanisms being compared
/// (Canary replicas, RR request replicas, AS standby instances).
enum class ContainerPurpose {
  kFunction,        // launched to run a specific function
  kRuntimeReplica,  // Canary replicated runtime (§IV-C5)
  kRequestReplica,  // RR baseline replica instance
  kStandby,         // AS baseline standby instance
};

std::string_view to_string_view(ContainerState s);
std::string_view to_string_view(ContainerPurpose p);

struct Container {
  ContainerId id;
  NodeId node;
  RuntimeImage image = RuntimeImage::kPython3;
  Bytes memory = Bytes::zero();
  ContainerState state = ContainerState::kLaunching;
  ContainerPurpose purpose = ContainerPurpose::kFunction;
  FunctionId assigned;  // invalid when warm/idle
  TimePoint created;
  TimePoint destroyed = TimePoint::max();
  /// When the container last entered the Warm state (pool idle tracking).
  TimePoint idle_since = TimePoint::max();

  bool alive() const { return state != ContainerState::kDead; }
  bool warm_idle() const { return state == ContainerState::kWarm; }
};

inline std::string_view to_string_view(ContainerState s) {
  switch (s) {
    case ContainerState::kLaunching: return "launching";
    case ContainerState::kInitializing: return "initializing";
    case ContainerState::kWarm: return "warm";
    case ContainerState::kBusy: return "busy";
    case ContainerState::kDead: return "dead";
  }
  return "unknown";
}

inline std::string_view to_string_view(ContainerPurpose p) {
  switch (p) {
    case ContainerPurpose::kFunction: return "function";
    case ContainerPurpose::kRuntimeReplica: return "runtime-replica";
    case ContainerPurpose::kRequestReplica: return "request-replica";
    case ContainerPurpose::kStandby: return "standby";
  }
  return "unknown";
}

}  // namespace canary::faas
