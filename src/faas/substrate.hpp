// Substrate seam: which implementation executes the platform's work.
//
// Every result in this repo used to come from one substrate — the
// discrete-event simulator. The real-execution backend (src/realexec)
// is a second implementation that runs invocations as forked OS worker
// processes behind the same harness-facing surface. This header is the
// seam both share: the backend selector parsed by experiment_cli's
// `--backend sim|real`, and the substrate-neutral run summary that the
// calibration report compares across the two.
#pragma once

#include <optional>
#include <string>
#include <string_view>

namespace canary::faas {

enum class BackendKind {
  kSim,   // discrete-event simulator (default; deterministic)
  kReal,  // forked OS worker processes, wall-clock time
};

inline std::string_view to_string_view(BackendKind kind) {
  switch (kind) {
    case BackendKind::kSim: return "sim";
    case BackendKind::kReal: return "real";
  }
  return "unknown";
}

inline std::optional<BackendKind> parse_backend(std::string_view text) {
  if (text == "sim") return BackendKind::kSim;
  if (text == "real") return BackendKind::kReal;
  return std::nullopt;
}

/// Substrate-neutral summary of one run's recovery behaviour: the
/// quantities both backends can measure, in the units the calibration
/// gate compares. Components follow the paper's recovery decomposition
/// (detection + scheduling + launch + init + restore + re-exec == the
/// failure-to-recovery window).
struct SubstrateRunSummary {
  std::string backend;  // "sim" | "real"
  bool completed = false;
  std::uint64_t invocations = 0;
  std::uint64_t failures = 0;
  std::uint64_t recoveries = 0;
  double makespan_s = 0.0;
  double recovery_window_s = 0.0;  // summed over recoveries
  double detection_s = 0.0;
  double scheduling_s = 0.0;
  double launch_s = 0.0;
  double init_s = 0.0;
  double restore_s = 0.0;
  double re_exec_s = 0.0;
  /// Exactly-once accounting: writer-attributed commits the KV store
  /// rejected because the writer had been epoch-fenced.
  std::uint64_t stale_epoch_rejects = 0;
};

}  // namespace canary::faas
