// Usage ledger: container occupancy intervals for the dollar-cost model.
//
// The paper prices execution at $0.000017 per second per GB allocated
// (IBM Cloud Functions, §V-D4) and aggregates the cost of concurrent
// functions and replicated runtimes. Every container contributes one
// interval from creation to destruction; the purpose tag attributes cost
// to primary execution vs. replication/standby overhead.
#pragma once

#include <cstddef>
#include <vector>

#include "common/bytes.hpp"
#include "common/ids.hpp"
#include "common/time.hpp"
#include "faas/container.hpp"

namespace canary::faas {

struct UsageRecord {
  ContainerId container;
  NodeId node;
  RuntimeImage image;
  Bytes memory;
  ContainerPurpose purpose;
  TimePoint start;
  TimePoint end;

  Duration duration() const { return end - start; }
  double gb_seconds() const {
    return duration().to_seconds() * memory.to_gib();
  }
};

class UsageLedger {
 public:
  void open(const Container& c);
  /// Open an interval starting at `start` instead of the container's
  /// creation time — used when a warm replica/standby is adopted by a
  /// function and its remaining occupancy re-attributes to execution.
  void open_at(const Container& c, TimePoint start);
  void close(ContainerId id, TimePoint end);
  /// Close any still-open interval at `end` (simulation teardown).
  void close_all_open(TimePoint end);

  const std::vector<UsageRecord>& records() const { return records_; }

  double total_gb_seconds() const;
  double gb_seconds_for(ContainerPurpose purpose) const;

 private:
  static constexpr std::size_t kClosed = static_cast<std::size_t>(-1);

  std::vector<UsageRecord> records_;
  /// Open-interval index: open_[container id - 1] holds the index of the
  /// container's open record in records_ (kClosed when none). Container
  /// ids are issued sequentially from 1, so a flat vector replaces the
  /// old hash map — close() is one array read and the per-container index
  /// maintenance stops allocating a hash node per interval.
  std::vector<std::size_t> open_;
};

}  // namespace canary::faas
