// Usage ledger: container occupancy intervals for the dollar-cost model.
//
// The paper prices execution at $0.000017 per second per GB allocated
// (IBM Cloud Functions, §V-D4) and aggregates the cost of concurrent
// functions and replicated runtimes. Every container contributes one
// interval from creation to destruction; the purpose tag attributes cost
// to primary execution vs. replication/standby overhead.
#pragma once

#include <cstddef>
#include <unordered_map>
#include <vector>

#include "common/bytes.hpp"
#include "common/ids.hpp"
#include "common/time.hpp"
#include "faas/container.hpp"

namespace canary::faas {

struct UsageRecord {
  ContainerId container;
  NodeId node;
  RuntimeImage image;
  Bytes memory;
  ContainerPurpose purpose;
  TimePoint start;
  TimePoint end;

  Duration duration() const { return end - start; }
  double gb_seconds() const {
    return duration().to_seconds() * memory.to_gib();
  }
};

class UsageLedger {
 public:
  void open(const Container& c);
  /// Open an interval starting at `start` instead of the container's
  /// creation time — used when a warm replica/standby is adopted by a
  /// function and its remaining occupancy re-attributes to execution.
  void open_at(const Container& c, TimePoint start);
  void close(ContainerId id, TimePoint end);
  /// Close any still-open interval at `end` (simulation teardown).
  void close_all_open(TimePoint end);

  const std::vector<UsageRecord>& records() const { return records_; }

  double total_gb_seconds() const;
  double gb_seconds_for(ContainerPurpose purpose) const;

 private:
  std::vector<UsageRecord> records_;
  /// Open-interval index: container id -> index of its open record in
  /// records_. A container has at most one open interval at a time, so
  /// close() is a hash lookup instead of a backwards scan over the whole
  /// ledger (which grows with every pooled/destroyed container).
  std::unordered_map<ContainerId, std::size_t> open_;
};

}  // namespace canary::faas
