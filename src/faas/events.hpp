// Extension-point interfaces between the platform and the fault-tolerance
// layers built on top of it.
//
// The platform stays policy-free: failures are *injected* through
// FailurePolicy, *reacted to* through RecoveryHandler (retry by default,
// Canary's Core Module when installed), and execution is *decorated*
// through ExecutionHooks (Canary's Checkpointing Module adds per-state
// checkpoint overhead and records restore points).
#pragma once

#include <cstddef>
#include <optional>
#include <string_view>

#include "common/ids.hpp"
#include "common/time.hpp"
#include "faas/container.hpp"
#include "faas/function.hpp"

namespace canary::faas {

enum class FailureKind {
  kContainerKill,  // injected container kill (docker kill equivalent)
  kNodeFailure,    // hosting node died
  kTimeout,        // exceeded the platform's function timeout
  /// A recovery dispatch stalled (gray node, slow launch) and the
  /// controller's watchdog killed it to re-route. Controller-initiated,
  /// so it skips the failure-detection delay entirely.
  kRecoveryStall,
};

inline std::string_view to_string_view(FailureKind kind) {
  switch (kind) {
    case FailureKind::kContainerKill: return "container_kill";
    case FailureKind::kNodeFailure: return "node_failure";
    case FailureKind::kTimeout: return "timeout";
    case FailureKind::kRecoveryStall: return "recovery_stall";
  }
  return "unknown";
}

struct FailureInfo {
  FailureKind kind = FailureKind::kContainerKill;
  NodeId node;
  ContainerId container;
};

/// Decides whether/when an attempt is killed. Implemented by
/// failure::FailureInjector; the platform calls it once per attempt with
/// the attempt's planned busy duration (launch through finalize).
class FailurePolicy {
 public:
  virtual ~FailurePolicy() = default;
  /// Offset from attempt start at which to kill the container, or nullopt
  /// for a clean run.
  virtual std::optional<Duration> plan_kill(const Invocation& inv, int attempt,
                                            Duration busy_estimate) = 0;
};

/// Reacts to function failures. Exactly one handler is installed; the
/// platform reports the failure after the configured detection delay.
class RecoveryHandler {
 public:
  virtual ~RecoveryHandler() = default;
  virtual void on_failure(const Invocation& inv, const FailureInfo& info) = 0;
};

/// Decorates execution. Epilogue duration must be a pure function of
/// (invocation, state index) — it is used both for scheduling and for
/// attempt-duration estimates handed to the failure policy.
class ExecutionHooks {
 public:
  virtual ~ExecutionHooks() = default;
  /// Extra time appended after state `state_idx` commits (checkpoint
  /// write). Nominal (speed-1.0) time.
  virtual Duration state_epilogue(const Invocation& inv,
                                  std::size_t state_idx) = 0;
  /// State `state_idx` committed (including its epilogue). The
  /// Checkpointing Module records the checkpoint here.
  virtual void on_state_committed(const Invocation& inv,
                                  std::size_t state_idx) = 0;
};

/// Passive observation of platform events (metrics, Canary bookkeeping).
class PlatformObserver {
 public:
  virtual ~PlatformObserver() = default;
  virtual void on_job_submitted(JobId) {}
  virtual void on_attempt_started(const Invocation&) {}
  virtual void on_function_completed(const Invocation&) {}
  virtual void on_function_failed(const Invocation&, const FailureInfo&) {}
  virtual void on_container_ready(const Container&) {}
  virtual void on_container_destroyed(const Container&) {}
  virtual void on_job_completed(JobId) {}
};

}  // namespace canary::faas
