#include "faas/trace.hpp"

#include <ostream>
#include <sstream>

namespace canary::faas {

std::string_view to_string_view(TraceEventKind kind) {
  switch (kind) {
    case TraceEventKind::kJobSubmitted: return "job-submitted";
    case TraceEventKind::kAttemptStarted: return "attempt-started";
    case TraceEventKind::kFunctionCompleted: return "function-completed";
    case TraceEventKind::kFunctionFailed: return "function-failed";
    case TraceEventKind::kContainerReady: return "container-ready";
    case TraceEventKind::kContainerDestroyed: return "container-destroyed";
    case TraceEventKind::kJobCompleted: return "job-completed";
  }
  return "unknown";
}

std::string TraceEvent::format() const {
  std::ostringstream oss;
  oss << "[" << when.to_seconds() << "s] " << to_string_view(kind);
  if (job.valid()) oss << " job=" << to_string(job);
  if (function.valid()) oss << " fn=" << to_string(function);
  if (container.valid()) oss << " container=" << to_string(container);
  if (node.valid()) oss << " node=" << to_string(node);
  if (attempt > 0) oss << " attempt=" << attempt;
  if (kind == TraceEventKind::kFunctionFailed) {
    oss << " cause="
        << (failure == FailureKind::kNodeFailure ? "node-failure"
                                                 : "container-kill");
  }
  return oss.str();
}

void TraceLog::push(TraceEvent event) {
  event.when = sim_.now();
  events_.push_back(std::move(event));
  while (events_.size() > capacity_) {
    events_.pop_front();
    ++dropped_;
  }
}

void TraceLog::on_job_submitted(JobId job) {
  TraceEvent event;
  event.kind = TraceEventKind::kJobSubmitted;
  event.job = job;
  push(event);
}

void TraceLog::on_attempt_started(const Invocation& inv) {
  TraceEvent event;
  event.kind = TraceEventKind::kAttemptStarted;
  event.job = inv.job;
  event.function = inv.id;
  event.container = inv.container;
  event.node = inv.node;
  event.attempt = inv.attempt;
  push(event);
}

void TraceLog::on_function_completed(const Invocation& inv) {
  TraceEvent event;
  event.kind = TraceEventKind::kFunctionCompleted;
  event.job = inv.job;
  event.function = inv.id;
  event.attempt = inv.attempt;
  push(event);
}

void TraceLog::on_function_failed(const Invocation& inv,
                                  const FailureInfo& info) {
  TraceEvent event;
  event.kind = TraceEventKind::kFunctionFailed;
  event.job = inv.job;
  event.function = inv.id;
  event.container = info.container;
  event.node = info.node;
  event.attempt = inv.attempt;
  event.failure = info.kind;
  push(event);
}

void TraceLog::on_container_ready(const Container& c) {
  TraceEvent event;
  event.kind = TraceEventKind::kContainerReady;
  event.container = c.id;
  event.node = c.node;
  push(event);
}

void TraceLog::on_container_destroyed(const Container& c) {
  TraceEvent event;
  event.kind = TraceEventKind::kContainerDestroyed;
  event.container = c.id;
  event.node = c.node;
  push(event);
}

void TraceLog::on_job_completed(JobId job) {
  TraceEvent event;
  event.kind = TraceEventKind::kJobCompleted;
  event.job = job;
  push(event);
}

void TraceLog::clear() {
  events_.clear();
  dropped_ = 0;
}

std::size_t TraceLog::count(TraceEventKind kind) const {
  std::size_t total = 0;
  for (const auto& event : events_) {
    if (event.kind == kind) ++total;
  }
  return total;
}

std::vector<TraceEvent> TraceLog::history_of(FunctionId function) const {
  std::vector<TraceEvent> history;
  for (const auto& event : events_) {
    if (event.function == function) history.push_back(event);
  }
  return history;
}

void TraceLog::dump(std::ostream& os) const {
  for (const auto& event : events_) os << event.format() << '\n';
}

}  // namespace canary::faas
