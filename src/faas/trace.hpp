// Execution trace: a bounded, structured log of platform lifecycle
// events. Install as a PlatformObserver to capture what happened during a
// run — the equivalent of the OpenWhisk activation log that log-based
// fault-tolerance systems mine (paper §VI-C), and the first tool to reach
// for when an experiment behaves unexpectedly.
#pragma once

#include <deque>
#include <iosfwd>
#include <string>

#include "faas/events.hpp"
#include "sim/simulator.hpp"

namespace canary::faas {

enum class TraceEventKind {
  kJobSubmitted,
  kAttemptStarted,
  kFunctionCompleted,
  kFunctionFailed,
  kContainerReady,
  kContainerDestroyed,
  kJobCompleted,
};

std::string_view to_string_view(TraceEventKind kind);

struct TraceEvent {
  TimePoint when;
  TraceEventKind kind;
  JobId job;
  FunctionId function;
  ContainerId container;
  NodeId node;
  int attempt = 0;
  FailureKind failure = FailureKind::kContainerKill;

  std::string format() const;
};

class TraceLog final : public PlatformObserver {
 public:
  /// Keeps the newest `capacity` events; older ones are dropped.
  TraceLog(sim::Simulator& simulator, std::size_t capacity = 65536)
      : sim_(simulator), capacity_(capacity) {}

  // PlatformObserver
  void on_job_submitted(JobId job) override;
  void on_attempt_started(const Invocation& inv) override;
  void on_function_completed(const Invocation& inv) override;
  void on_function_failed(const Invocation& inv,
                          const FailureInfo& info) override;
  void on_container_ready(const Container& c) override;
  void on_container_destroyed(const Container& c) override;
  void on_job_completed(JobId job) override;

  const std::deque<TraceEvent>& events() const { return events_; }
  std::size_t size() const { return events_.size(); }
  std::size_t dropped() const { return dropped_; }
  void clear();

  /// Count of retained events of `kind`.
  std::size_t count(TraceEventKind kind) const;
  /// Retained events touching `function`, in order.
  std::vector<TraceEvent> history_of(FunctionId function) const;

  /// One line per event.
  void dump(std::ostream& os) const;

 private:
  void push(TraceEvent event);

  sim::Simulator& sim_;
  std::size_t capacity_;
  std::deque<TraceEvent> events_;
  std::size_t dropped_ = 0;
};

}  // namespace canary::faas
