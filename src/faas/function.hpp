// Function and job specifications.
//
// A function executes a sequence of states (paper §II-A: "a function can
// consume input data and process the data in a single or multiple phases
// called states"); each state has a nominal duration and a checkpoint
// payload size that Canary's Checkpointing Module would persist after the
// state commits. Eq. (1) decomposes a function's execution into launch
// (lch_f), initialization (ini_f), workload execution (exec_f — the state
// sequence), and the remainder fin_f.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "common/ids.hpp"
#include "common/time.hpp"
#include "faas/runtime.hpp"
#include "obs/event_log.hpp"

namespace canary::faas {

struct StateSpec {
  /// Nominal compute time for this state on a speed-1.0 node.
  Duration duration;
  /// Application state + critical data the Checkpointing Module persists
  /// after this state commits (e.g. model weights after an epoch).
  Bytes checkpoint_payload = Bytes::zero();
};

struct FunctionSpec {
  std::string name;
  RuntimeImage runtime = RuntimeImage::kPython3;
  /// Memory request; zero means "use the runtime image default".
  Bytes memory = Bytes::zero();
  std::vector<StateSpec> states;
  /// fin_f: from the last state update to function completion.
  Duration finalize = Duration::zero();
  /// Per-function completion deadline relative to submission; zero = none
  /// (the job-level SLA, if any, applies instead). The platform arms the
  /// SLO watchdog with whichever deadline is in effect.
  Duration sla = Duration::zero();
  /// Trigger dependencies (paper §II-A: "a function can invoke other
  /// functions which work on the data produced by the previous
  /// functions"): indices of functions *within the same job* that must
  /// complete before this function is triggered. Empty = triggered at
  /// job submission. MapReduce-style stages chain through this.
  std::vector<std::size_t> depends_on;

  Bytes effective_memory() const {
    return memory.count() > 0 ? memory : profile(runtime).memory;
  }
  /// Total nominal state work (exec_f without checkpoint overheads).
  Duration total_state_work() const {
    Duration total = Duration::zero();
    for (const auto& s : states) total += s.duration;
    return total;
  }
};

struct JobSpec {
  std::string name;
  AccountId account = AccountId{1};
  /// Completion deadline relative to submission; zero = best effort.
  /// Used by SLA-aware recovery (Canary's future-work extension): the
  /// Core Module prioritises the recovery of deadline-threatened
  /// functions.
  Duration sla = Duration::zero();
  /// Open-loop arrival instant, set by the traffic generator when the
  /// request entered admission control (TimePoint::max() = not traffic-
  /// driven). When set, SLO deadlines anchor here instead of at platform
  /// submission and the pre-admission wait is attributed to the
  /// `queueing` critical-path component.
  TimePoint enqueued_at = TimePoint::max();
  std::vector<FunctionSpec> functions;
};

/// Execution phase of a function invocation, following Fig. 1's execution
/// flow (job launch, container launch, container initialization, execution
/// startup, state updates, function completion).
enum class Phase {
  kPending,       // submitted, waiting for concurrency/capacity
  kLaunching,     // container launch (lch_f)
  kInitializing,  // runtime initialization (ini_f)
  kStarting,      // dispatch/migration/restore onto a ready container
  kExecuting,     // state updates
  kFinalizing,    // fin_f
  kCompleted,
  kFailed,        // currently failed, awaiting recovery decision
  kShed,          // rejected by admission control; never executed
};

std::string_view to_string_view(Phase phase);

/// Public, read-only view of one function invocation's progress. Owned by
/// the Platform; recovery handlers and observers receive const references.
struct Invocation {
  FunctionId id;
  JobId job;
  const FunctionSpec* spec = nullptr;

  Phase phase = Phase::kPending;
  int attempt = 0;           // 1-based once started
  std::size_t next_state = 0;  // index of the next state to execute
  NodeId node;               // current/last hosting node
  ContainerId container;     // current/last container

  /// Causal-trace position: the invocation's trace id plus its most
  /// recent event (the parent of whatever happens to it next). Only
  /// populated when an obs::EventLog is installed on the platform.
  obs::TraceContext trace;

  TimePoint submit_time;
  TimePoint first_dispatch_time = TimePoint::max();
  TimePoint completion_time = TimePoint::max();

  /// Nominal work completed in the current lineage (restored floor plus
  /// states completed since). Microsecond units of speed-1.0 time.
  Duration work_done = Duration::zero();

  int failures = 0;
  /// Total time spent regaining lost progress (see DESIGN.md metrics).
  Duration recovery_time = Duration::zero();
  /// Nominal work discarded by failures (re-executed from scratch or from
  /// a checkpoint).
  Duration lost_work = Duration::zero();

  bool completed() const { return phase == Phase::kCompleted; }
};

inline std::string_view to_string_view(Phase phase) {
  switch (phase) {
    case Phase::kPending: return "pending";
    case Phase::kLaunching: return "launching";
    case Phase::kInitializing: return "initializing";
    case Phase::kStarting: return "starting";
    case Phase::kExecuting: return "executing";
    case Phase::kFinalizing: return "finalizing";
    case Phase::kCompleted: return "completed";
    case Phase::kFailed: return "failed";
    case Phase::kShed: return "shed";
  }
  return "unknown";
}

}  // namespace canary::faas
