#include "faas/retry.hpp"

#include "common/logging.hpp"

namespace canary::faas {

void RetryHandler::on_failure(const Invocation& inv, const FailureInfo& info) {
  (void)info;
  if (config_.max_retries > 0 && inv.failures > config_.max_retries) {
    ++giveups_;
    CANARY_LOG_WARN("retry budget exhausted for function "
                    << to_string(inv.id));
    return;
  }
  platform_.metrics().count("retry_restarts");
  platform_.log_recovery_action(inv.id, "retry_restart");
  // Restart from the first instruction in a new cold container; no state
  // survives the failure.
  StartSpec spec;
  spec.from_state = 0;
  platform_.start_attempt(inv.id, spec);
}

}  // namespace canary::faas
