// Container runtime images and their startup profiles.
//
// FaaS platforms ship pre-built runtime images per language (paper §I);
// the evaluation uses Python, Node.js and Java runtimes plus the custom
// per-workload images from the artifact appendix (hpdsl/canary:dltrain,
// :dbquery, :sparkdiversity, ...). Cold-start latency, runtime
// initialization time and warm-dispatch latency are the quantities that
// replication removes from the recovery path, so they are first-class
// here.
#pragma once

#include <string_view>

#include "common/bytes.hpp"
#include "common/time.hpp"

namespace canary::faas {

enum class RuntimeImage {
  kPython3,
  kNodeJs14,
  kJava8,
  kDlTrain,         // OpenWhisk python3 action + tensorflow/tensorflow:2.4.1
  kDbQuery,         // python3 + psycopg2
  kSparkDiversity,  // java + Spark 3.0.0 jar
  kCompressionPy,   // python3 + zip tooling (SeBS 311.compression)
  kGraphBfsPy,      // python3 + igraph (SeBS 501.graph-bfs)
  /// Forked native worker process (the real-execution substrate's
  /// container stand-in). Launch is a fork + control-plane hello, init
  /// is in-process input synthesis — milliseconds, not the hundreds of
  /// milliseconds a container runtime pays. The calibration twin uses
  /// this image so the simulator models the real backend's cost scale.
  kNativeProc,
};

inline constexpr RuntimeImage kAllRuntimeImages[] = {
    RuntimeImage::kPython3,        RuntimeImage::kNodeJs14,
    RuntimeImage::kJava8,          RuntimeImage::kDlTrain,
    RuntimeImage::kDbQuery,        RuntimeImage::kSparkDiversity,
    RuntimeImage::kCompressionPy,  RuntimeImage::kGraphBfsPy,
    RuntimeImage::kNativeProc,
};

struct RuntimeProfile {
  RuntimeImage image;
  std::string_view name;
  /// Container creation + image start on a warm node (no image pull).
  Duration cold_launch;
  /// Language runtime + dependency initialization inside the container
  /// (JVM start, TensorFlow import, Spark context, ...).
  Duration init;
  /// Dispatch latency onto an already-initialized warm container.
  Duration warm_dispatch;
  /// Default memory allocation for functions on this image.
  Bytes memory;
};

const RuntimeProfile& profile(RuntimeImage image);
std::string_view to_string_view(RuntimeImage image);

}  // namespace canary::faas
