// The platform's default retry-based recovery strategy (paper §II,
// §IV-C4c): a failed function is relaunched from its first instruction in
// a fresh cold container; all computation since the start of the attempt
// is lost, and simultaneous failures restart concurrently, contending for
// cold-start resources.
#pragma once

#include "faas/events.hpp"
#include "faas/platform.hpp"

namespace canary::faas {

class RetryHandler : public RecoveryHandler {
 public:
  struct Config {
    /// Cap on restarts per function; 0 means unlimited. Public platforms
    /// retry a bounded number of times; the evaluation's failures always
    /// eventually succeed, so the default is unlimited.
    int max_retries = 0;
  };

  explicit RetryHandler(Platform& platform) : platform_(platform) {}
  RetryHandler(Platform& platform, Config config)
      : platform_(platform), config_(config) {}

  void on_failure(const Invocation& inv, const FailureInfo& info) override;

  int giveups() const { return giveups_; }

 private:
  Platform& platform_;
  Config config_;
  int giveups_ = 0;
};

}  // namespace canary::faas
