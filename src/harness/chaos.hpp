// Chaos campaign support: seeded multi-fault scenario generation and the
// invariant oracles that every scenario must satisfy regardless of what
// was injected.
//
// A chaos scenario draws a small cluster, a handful of jobs and a random
// mix of the v2 fault surface (container kills, node failures, gray
// slowdown windows, heartbeat delay/drop, KV checkpoint loss/corruption)
// from one seed, runs it under the Canary strategy with heartbeat
// detection and the recovery watchdog enabled, and then checks:
//
//   1. completion    — every job finished (recovery terminated);
//   2. exactly-once  — each function has exactly one kComplete event;
//   3. clean restore — no corrupt checkpoint was ever selected for
//                      restore (the checksum skip worked);
//   4. bounded detection — every failure-to-detect window is within the
//                      analytic bound of the active detection mode plus
//                      injected heartbeat delay;
//   5. ledger balance — usage intervals non-negative, purpose split sums
//                      to the total;
//   6. no stranded failures — nothing left in the platform's undetected
//                      stash after completion.
//   7. conservation  — when open-loop traffic rides along, every offered
//                      arrival is accounted exactly once
//                      (offered == admitted + shed + queued_end and
//                      admitted == completed + failed + in_flight), and a
//                      completed run leaves nothing queued or in flight;
//   8. hedge exactly-once — when speculative clones race (hedge
//                      scenarios), every fired hedge resolves exactly
//                      once (fired == wins + cancelled, no race left
//                      open on a completed run) and the causal log
//                      agrees (#kHedged == fired, #kHedgeCancelled ==
//                      resolved races);
//   9. no split brain — at most one committed side effect per invocation
//                      even when both sides of a partition execute it:
//                      every commit attempted by a logically fenced
//                      (minority-side zombie) worker is rejected at the
//                      store's epoch gate (zombie_commits_committed == 0,
//                      on top of oracle 2's per-function completion
//                      count);
//  10. heal convergence — every partition window that started also
//                      healed, no reachability rule outlives the run,
//                      the controller's worker_info liveness view agrees
//                      with the cluster ground truth, and no invocation
//                      is left stranded (oracle 6 under partitions).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "harness/scenario.hpp"

namespace canary::harness {

/// One generated scenario: the config plus its jobs.
struct ChaosScenario {
  ScenarioConfig config;
  std::vector<faas::JobSpec> jobs;
  /// Largest injected heartbeat delivery delay (feeds the detection
  /// bound oracle).
  Duration max_heartbeat_delay = Duration::zero();
};

/// Deterministically derive a scenario from `seed`.
ChaosScenario make_chaos_scenario(std::uint64_t seed);

/// The same scenario with an open-loop burst stream layered on top: an
/// on/off arrival process driven through admission control and the
/// warm-pool autoscaler, plus one guaranteed node failure timed to land
/// inside the traffic window. Derived from `Rng(seed).child(4)`, so the
/// base scenario's draws are untouched.
ChaosScenario make_traffic_chaos_scenario(std::uint64_t seed);

/// The base scenario re-armed for the hedge strategy: speculative clones
/// race their primaries while a guaranteed extra node failure lands
/// mid-race and a gray window manufactures the stragglers that make
/// hedges fire. Derived from `Rng(seed).child(5)`, so the base draws
/// (and the traffic stream's child(4)) are untouched.
ChaosScenario make_hedge_chaos_scenario(std::uint64_t seed);

/// The base scenario scaled out over the conservative parallel engine:
/// four partitions advanced by four worker threads, with KV checkpoint
/// mirroring and completion beacons crossing shard boundaries. The
/// cluster is grown 4x so each partition keeps a full base-sized slice —
/// a one-node slice could not survive its share of the node kills, which
/// would fail the completion oracle for reasons unrelated to sharding.
/// Every oracle is evaluated inside each partition (function ids and
/// causal trace ids are partition-local) and the scalar oracles are
/// re-evaluated on the merged result.
ChaosScenario make_sharded_chaos_scenario(std::uint64_t seed);

/// The fifth family: partition/zone/heal storms. The base scenario gains
/// 1-2 long zone bipartitions (cutting the cluster's last fault domain,
/// sized so the majority side always survives), an optional short
/// asymmetric window (one-way heartbeat loss that must un-suspect cleanly
/// on heal), and an optional correlated zone outage racing the windows.
/// Half the seeds turn on fault-domain-aware placement. Derived from
/// `Rng(seed).child(6)`, so the base draws (and every other overlay's
/// stream) are untouched.
ChaosScenario make_partition_chaos_scenario(std::uint64_t seed);

/// The partition scenario scaled out over the conservative parallel
/// engine (4 partitions x 4 workers), the same way
/// make_sharded_chaos_scenario scales the base: each shard keeps a full
/// base-sized cluster slice and resolves its zone windows/outages against
/// its own slice.
ChaosScenario make_sharded_partition_chaos_scenario(std::uint64_t seed);

struct ChaosOutcome {
  std::uint64_t seed = 0;
  bool completed = false;
  double makespan_s = 0.0;
  double failures = 0.0;
  double max_detection_latency_s = 0.0;
  double detection_bound_s = 0.0;
  // Injected fault totals (for the campaign report).
  std::uint64_t node_kills = 0;
  std::uint64_t gray_windows = 0;
  std::uint64_t heartbeats_dropped = 0;
  std::uint64_t heartbeats_delayed = 0;
  std::uint64_t store_entries_dropped = 0;
  std::uint64_t store_entries_corrupted = 0;
  std::uint64_t detector_suspicions = 0;
  std::uint64_t detector_false_suspicions = 0;
  std::uint64_t recovery_stalls = 0;
  // Open-loop traffic totals (zero for non-traffic scenarios).
  std::uint64_t traffic_offered = 0;
  std::uint64_t traffic_admitted = 0;
  std::uint64_t traffic_shed = 0;
  std::uint64_t traffic_completed = 0;
  // Hedge-race totals (zero for non-hedge scenarios).
  std::uint64_t hedges_fired = 0;
  std::uint64_t hedge_wins = 0;
  std::uint64_t hedges_cancelled = 0;
  // Partition-surface totals (zero for non-partition scenarios).
  std::uint64_t partitions_started = 0;
  std::uint64_t partitions_healed = 0;
  std::uint64_t zone_outages = 0;
  std::uint64_t heartbeats_partition_dropped = 0;
  std::uint64_t stale_epoch_rejects = 0;
  std::uint64_t quorum_blocked_puts = 0;
  std::uint64_t zombie_commit_attempts = 0;
  std::uint64_t zombie_commits_rejected = 0;
  /// Human-readable oracle violations; empty = scenario passed.
  std::vector<std::string> violations;
};

/// Run one seeded scenario and evaluate every oracle.
ChaosOutcome run_chaos_scenario(std::uint64_t seed);

/// Run one seeded traffic scenario (burst + node failure) and evaluate
/// every oracle, conservation included.
ChaosOutcome run_traffic_chaos_scenario(std::uint64_t seed);

/// Run one seeded hedge scenario (racing clones + mid-race node failure)
/// and evaluate every oracle, hedge exactly-once included.
ChaosOutcome run_hedge_chaos_scenario(std::uint64_t seed);

/// Run one seeded sharded scenario (4 partitions x 4 workers over the
/// parallel engine) and evaluate every oracle per shard plus the merged
/// scalars. Exactly-once must survive cross-shard traffic and node kills.
ChaosOutcome run_sharded_chaos_scenario(std::uint64_t seed);

/// Run one seeded partition scenario (zone cuts + asymmetric windows +
/// correlated outages) and evaluate every oracle, no-split-brain and
/// heal-convergence included.
ChaosOutcome run_partition_chaos_scenario(std::uint64_t seed);

/// Run one seeded sharded partition scenario (4 partitions x 4 workers).
ChaosOutcome run_sharded_partition_chaos_scenario(std::uint64_t seed);

/// Oracle evaluation, separated for tests: checks `result` (and the
/// scenario it came from) and returns the violations. For sharded
/// results, recurses into each per-partition result (violations gain a
/// "shard N: " prefix) before checking the merged scalars.
std::vector<std::string> chaos_oracles(const ChaosScenario& scenario,
                                       const RunResult& result);

}  // namespace canary::harness
