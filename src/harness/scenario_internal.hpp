// Shared internals of the scenario runner: the full set of live objects
// behind one simulated scenario, constructed against an externally owned
// simulator so the same wiring drives both execution modes —
//   * the monolithic path (ScenarioRunner::run, sharding disabled) builds
//     one instance over one sim::Simulator and calls simulator.run();
//   * the sharded path (run_sharded) builds one instance per partition
//     over sim::ShardEngine partitions and advances them conservatively.
// Keeping construction and result collection in one place is what makes
// the two modes comparable: a partition IS a scenario, just a smaller
// one, and its RunResult is harvested by the exact same code.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "canary/core.hpp"
#include "canary/failure_detector.hpp"
#include "cluster/cluster.hpp"
#include "cluster/network.hpp"
#include "cluster/storage.hpp"
#include "common/logging.hpp"
#include "faas/platform.hpp"
#include "faas/retry.hpp"
#include "failure/injector.hpp"
#include "harness/scenario.hpp"
#include "kvstore/kvstore.hpp"
#include "obs/slo_monitor.hpp"
#include "recovery/active_standby.hpp"
#include "recovery/request_replication.hpp"
#include "sim/simulator.hpp"
#include "traffic/autoscaler.hpp"
#include "traffic/generator.hpp"

namespace canary::harness::internal {

/// One fully wired scenario over a borrowed simulator. The constructor
/// performs the complete setup — platform, strategy, traffic, fault
/// schedule, detector start — in the exact statement order the monolithic
/// runner always used; the caller then drives the simulator (run() or a
/// shard scheduler) and harvests the result with collect().
///
/// `install_log_hooks` controls the thread-scoped log clock/mirror. The
/// monolithic path installs them (records carry simulated time, kWarn+
/// mirrors into the causal log). Sharded partitions must NOT: the hooks
/// are thread-local, partition callbacks run on worker threads, and any
/// cross-thread mirroring would make the event log depend on the worker
/// count.
struct ScenarioInstance {
  ScenarioInstance(sim::Simulator& sim, const ScenarioConfig& cfg,
                   const std::vector<faas::JobSpec>& jobs,
                   bool install_log_hooks);
  ScenarioInstance(const ScenarioInstance&) = delete;
  ScenarioInstance& operator=(const ScenarioInstance&) = delete;

  /// Harvest the RunResult after the simulator has quiesced. Finalizes
  /// the usage ledger and closes open spans; call exactly once.
  RunResult collect();

  ScenarioConfig config;  // owned copy: partition configs are derived
  sim::Simulator& simulator;
  cluster::Cluster cluster;
  cluster::NetworkModel network;
  cluster::StorageHierarchy storage;
  kv::KvStore store;
  obs::MetricRegistry metrics;
  faas::Platform platform;

  std::shared_ptr<obs::SpanRecorder> spans;
  std::shared_ptr<obs::EventLog> events;
  obs::SloMonitor slo;
  obs::TimeSeries series;

  std::optional<ScopedLogClock> log_clock;
  std::optional<ScopedLogMirror> log_mirror;

  std::optional<failure::FailureInjector> injector;
  std::optional<core::FailureDetector> detector;

  // Exactly one strategy object is materialised per instance; optionals
  // keep construction in-place without heap indirection.
  std::optional<faas::RetryHandler> retry;
  std::optional<core::CoreModule> canary_fw;
  std::optional<recovery::RequestReplicationHandler> rr;
  std::optional<recovery::ActiveStandbyHandler> as;
  std::optional<recovery::HedgeHandler> hedge;

  std::optional<traffic::TrafficGenerator> traffic_gen;
  std::optional<traffic::WarmPoolAutoscaler> autoscaler;
};

/// Derive partition `p`'s scenario from the sharded top-level config:
/// its slice of the cluster (testbed node ids are partition-local), a
/// decorrelated RNG seed, and the round-robin share of faults, traffic
/// streams, and batch jobs. Pure; the same inputs always produce the
/// same partition configs regardless of worker count.
ScenarioConfig derive_partition_config(const ScenarioConfig& config,
                                       unsigned partition, unsigned partitions);

/// Reduce per-partition results into one merged RunResult, in partition
/// order (every constituent merge — metrics, breakdown, tail, series —
/// is deterministic and order-fixed). The inputs are retained in
/// RunResult::shards.
RunResult merge_sharded_results(std::vector<std::shared_ptr<RunResult>> parts);

/// Execute a sharding-enabled scenario on a ShardEngine.
RunResult run_sharded(const ScenarioConfig& config,
                      const std::vector<faas::JobSpec>& jobs);

}  // namespace canary::harness::internal
