#include "harness/experiment.hpp"

#include <future>

namespace canary::harness {

void Aggregate::add(const RunResult& run) {
  makespan_s.add(run.makespan_s);
  total_recovery_s.add(run.total_recovery_s);
  mean_recovery_s.add(run.mean_recovery_s);
  cost_usd.add(run.cost_usd);
  replica_cost_usd.add(run.cost.replica_usd);
  failures.add(run.failures);
  lost_work_s.add(run.lost_work_s);
  sla_violations.add(run.sla_violations);
  for (const auto& [name, value] : run.counters) counter_sums[name] += value;
  metrics.merge(run.metrics);
  breakdown.merge(run.breakdown);
  span_health.merge({run.spans_recorded, run.spans_dropped});
  obs::RecorderHealth events{run.events_recorded, run.events_dropped};
  events.dropped_by_kind = run.events_dropped_by_kind;
  event_health.merge(events);
  tail.merge(run.tail);
  timeseries.merge(run.timeseries);
  if (!run.completed) ++incomplete_runs;
}

double Aggregate::counter_mean(const std::string& name) const {
  auto it = counter_sums.find(name);
  if (it == counter_sums.end() || makespan_s.count() == 0) return 0.0;
  return it->second / static_cast<double>(makespan_s.count());
}

Aggregate run_repetitions(ScenarioConfig config,
                          const std::vector<faas::JobSpec>& jobs, int reps) {
  std::vector<std::future<RunResult>> futures;
  futures.reserve(static_cast<std::size_t>(reps));
  for (int rep = 0; rep < reps; ++rep) {
    ScenarioConfig rep_config = config;
    // Decorrelate repetitions while keeping the whole experiment
    // reproducible from the base seed.
    std::uint64_t sm = config.seed + static_cast<std::uint64_t>(rep);
    rep_config.seed = splitmix64(sm);
    // The flight recorder writes files; one repetition (the base seed) is
    // enough and keeps dump names collision-free.
    if (rep > 0) rep_config.flight_recorder_path.clear();
    futures.push_back(std::async(std::launch::async, [rep_config, &jobs] {
      return ScenarioRunner::run(rep_config, jobs);
    }));
  }
  Aggregate agg;
  for (auto& f : futures) agg.add(f.get());
  return agg;
}

double reduction_pct(double baseline, double ours) {
  if (baseline <= 0.0) return 0.0;
  return (baseline - ours) / baseline * 100.0;
}

double overhead_pct(double baseline, double ours) {
  if (baseline <= 0.0) return 0.0;
  return (ours - baseline) / baseline * 100.0;
}

obs::RunReport make_report(std::string name, const ScenarioConfig& config,
                           const Aggregate& agg) {
  obs::RunReport report;
  report.name = std::move(name);
  report.set_param("strategy", config.strategy.label());
  report.set_param("error_rate", config.error_rate);
  report.set_param("cluster_nodes", static_cast<double>(config.cluster_nodes));
  report.set_param("seed", static_cast<double>(config.seed));
  report.set_param("repetitions", static_cast<double>(agg.makespan_s.count()));
  report.set_scalar("makespan_s_mean", agg.makespan_s.mean());
  report.set_scalar("makespan_s_stddev", agg.makespan_s.stddev());
  report.set_scalar("total_recovery_s_mean", agg.total_recovery_s.mean());
  report.set_scalar("mean_recovery_s_mean", agg.mean_recovery_s.mean());
  report.set_scalar("cost_usd_mean", agg.cost_usd.mean());
  report.set_scalar("replica_cost_usd_mean", agg.replica_cost_usd.mean());
  report.set_scalar("failures_mean", agg.failures.mean());
  report.set_scalar("lost_work_s_mean", agg.lost_work_s.mean());
  report.set_scalar("sla_violations_mean", agg.sla_violations.mean());
  report.set_scalar("incomplete_runs",
                    static_cast<double>(agg.incomplete_runs));
  report.metrics = agg.metrics;
  report.breakdown = agg.breakdown;
  report.span_health = agg.span_health;
  report.event_health = agg.event_health;
  report.tail = agg.tail;
  report.timeseries = agg.timeseries;
  return report;
}

}  // namespace canary::harness
