#include "harness/experiment.hpp"

#include <future>

namespace canary::harness {

void Aggregate::add(const RunResult& run) {
  makespan_s.add(run.makespan_s);
  total_recovery_s.add(run.total_recovery_s);
  mean_recovery_s.add(run.mean_recovery_s);
  cost_usd.add(run.cost_usd);
  replica_cost_usd.add(run.cost.replica_usd);
  failures.add(run.failures);
  lost_work_s.add(run.lost_work_s);
  sla_violations.add(run.sla_violations);
  for (const auto& [name, value] : run.counters) counter_sums[name] += value;
  if (!run.completed) ++incomplete_runs;
}

double Aggregate::counter_mean(const std::string& name) const {
  auto it = counter_sums.find(name);
  if (it == counter_sums.end() || makespan_s.count() == 0) return 0.0;
  return it->second / static_cast<double>(makespan_s.count());
}

Aggregate run_repetitions(ScenarioConfig config,
                          const std::vector<faas::JobSpec>& jobs, int reps) {
  std::vector<std::future<RunResult>> futures;
  futures.reserve(static_cast<std::size_t>(reps));
  for (int rep = 0; rep < reps; ++rep) {
    ScenarioConfig rep_config = config;
    // Decorrelate repetitions while keeping the whole experiment
    // reproducible from the base seed.
    std::uint64_t sm = config.seed + static_cast<std::uint64_t>(rep);
    rep_config.seed = splitmix64(sm);
    futures.push_back(std::async(std::launch::async, [rep_config, &jobs] {
      return ScenarioRunner::run(rep_config, jobs);
    }));
  }
  Aggregate agg;
  for (auto& f : futures) agg.add(f.get());
  return agg;
}

double reduction_pct(double baseline, double ours) {
  if (baseline <= 0.0) return 0.0;
  return (baseline - ours) / baseline * 100.0;
}

double overhead_pct(double baseline, double ours) {
  if (baseline <= 0.0) return 0.0;
  return (ours - baseline) / baseline * 100.0;
}

}  // namespace canary::harness
