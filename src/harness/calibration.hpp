// Sim-side calibration twin for the real-execution backend.
//
// Predictive validation (Quaresma et al.): configure the simulator from
// quantities *measured* on the real substrate — per-step execution
// time, checkpoint payload size, failure-injection offset, heartbeat
// cadence — run the same fail/recover scenario in simulated time, and
// compare the per-component recovery decomposition. The ratio between
// the two substrates is the calibration delta that
// tools/check_report.py --calibrate gates against a committed band.
#pragma once

#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "common/time.hpp"
#include "harness/scenario.hpp"

namespace canary::harness {

/// One externally measured workload, in harness-native terms.
struct CalibrationWorkload {
  std::string name;  // kernel label, e.g. "graph-bfs"
  unsigned steps = 8;
  /// Measured mean execution time of one step on the real substrate.
  Duration step_exec = Duration::msec(20);
  /// Measured size of one checkpoint commit.
  Bytes checkpoint_bytes = Bytes::zero();
  /// Measured offset of the (first) node kill from run start.
  Duration kill_offset = Duration::msec(60);
  /// Recovery strategy under calibration (retry / canary-ckpt / AS).
  recovery::StrategyConfig strategy = recovery::StrategyConfig::retry();
  /// Real backend's detection parameters, mirrored exactly.
  Duration heartbeat_interval = Duration::msec(40);
  double timeout_multiplier = 4.0;
  std::uint64_t seed = 20240501;
  int repetitions = 5;
};

/// Per-component recovery seconds, averaged per recovery across the
/// twin's repetitions (a run whose random victim misses the busy node
/// contributes no recovery and is excluded by construction).
struct CalibrationTwinResult {
  std::uint64_t recoveries = 0;
  double window_s = 0.0;
  double detection_s = 0.0;
  double scheduling_s = 0.0;
  double launch_s = 0.0;
  double init_s = 0.0;
  double restore_s = 0.0;
  double re_exec_s = 0.0;
};

/// The twin's scenario: a 2-node cluster running one kNativeProc
/// function whose states mirror the measured steps, heartbeat detection
/// on with the real backend's parameters, and one node failure at the
/// measured offset.
ScenarioConfig calibration_scenario(const CalibrationWorkload& workload);

/// The single-function job matching calibration_scenario.
std::vector<faas::JobSpec> calibration_jobs(
    const CalibrationWorkload& workload);

/// Run the twin and reduce its critical-path breakdown to per-recovery
/// component means.
CalibrationTwinResult run_calibration_twin(const CalibrationWorkload& workload);

}  // namespace canary::harness
