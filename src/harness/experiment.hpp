// Repetition driver: the paper runs every experiment 10 times and reports
// averages (variance < 5%, §V-B). Repetitions differ only in their seed
// and execute in parallel across hardware threads; each run is fully
// self-contained and deterministic.
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "harness/scenario.hpp"
#include "obs/report.hpp"

namespace canary::harness {

struct Aggregate {
  SampleSet makespan_s;
  SampleSet total_recovery_s;
  SampleSet mean_recovery_s;
  SampleSet cost_usd;
  SampleSet replica_cost_usd;
  SampleSet failures;
  SampleSet lost_work_s;
  SampleSet sla_violations;
  std::size_t incomplete_runs = 0;
  /// Per-run-mean of every metrics counter (e.g. "replica_recoveries").
  std::map<std::string, double> counter_sums;
  /// Merged registry across repetitions: counters sum, histograms merge
  /// bucket-wise (so percentiles cover every repetition's samples).
  obs::MetricRegistry metrics;
  /// Merged critical-path breakdown across repetitions: component seconds
  /// sum, recovery/violation counts accumulate.
  obs::BreakdownReport breakdown;
  /// Recorder overflow accounting summed across repetitions.
  obs::RecorderHealth span_health;
  obs::RecorderHealth event_health;
  /// Merged tail attribution across repetitions (sample counts add, the
  /// deeper-tail representative wins); empty unless tail attribution ran.
  obs::TailReport tail;
  /// Merged windowed rollups (windows align by start, counters add,
  /// per-window histograms merge); empty unless time-series ran.
  obs::TimeSeries timeseries;

  void add(const RunResult& run);
  double counter_mean(const std::string& name) const;
};

/// Run `reps` repetitions of `config` over `jobs`, seeds derived from
/// config.seed, in parallel. Deterministic in (config, jobs, reps).
Aggregate run_repetitions(ScenarioConfig config,
                          const std::vector<faas::JobSpec>& jobs, int reps);

/// Percentage improvement of `ours` over `baseline` (positive = lower).
double reduction_pct(double baseline, double ours);
/// Percentage overhead of `ours` over `baseline` (positive = higher).
double overhead_pct(double baseline, double ours);

/// Build a machine-readable run report for one aggregated configuration:
/// scenario parameters, headline scalars (means across repetitions), and
/// the merged metric registry. Callers add claims/series and save().
obs::RunReport make_report(std::string name, const ScenarioConfig& config,
                           const Aggregate& agg);

}  // namespace canary::harness
