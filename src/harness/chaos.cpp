#include "harness/chaos.hpp"

#include <algorithm>
#include <sstream>
#include <unordered_map>

#include "common/rng.hpp"

namespace canary::harness {

namespace {

faas::RuntimeImage pick_runtime(Rng& rng) {
  static constexpr faas::RuntimeImage kPool[] = {
      faas::RuntimeImage::kPython3,
      faas::RuntimeImage::kNodeJs14,
      faas::RuntimeImage::kDlTrain,
      faas::RuntimeImage::kDbQuery,
  };
  return kPool[rng.uniform_int(0, 3)];
}

}  // namespace

ChaosScenario make_chaos_scenario(std::uint64_t seed) {
  ChaosScenario out;
  ScenarioConfig& cfg = out.config;
  cfg.seed = seed;

  Rng root(seed);
  // Independent child streams per concern: adding a fault class never
  // perturbs how the workload itself is drawn.
  Rng shape = root.child(1);
  Rng jobs_rng = root.child(2);
  Rng faults = root.child(3);

  cfg.cluster_nodes = shape.uniform_int(6, 12);
  cfg.error_rate = shape.uniform(0.05, 0.30);
  cfg.injection_mode = failure::InjectionMode::kHazardRate;

  cfg.strategy = recovery::StrategyConfig::canary_full();
  cfg.strategy.canary.sla_aware = shape.bernoulli(0.5);
  cfg.strategy.canary.recovery_action_timeout =
      Duration::sec(shape.uniform(1.0, 3.0));

  cfg.detection.enabled = true;
  cfg.detection.heartbeat_interval =
      Duration::msec(shape.uniform_int(200, 800));
  cfg.detection.timeout_multiplier = shape.uniform(2.0, 4.0);
  cfg.detection.confirm_multiplier = shape.uniform(1.0, 3.0);
  cfg.detection.sweep_interval = Duration::msec(shape.uniform_int(50, 150));
  cfg.detection.horizon = Duration::sec(1200.0);

  if (shape.bernoulli(0.3)) {
    cfg.kv.mode = kv::CacheMode::kPartitioned;
    cfg.kv.backups = 1;
    cfg.kv.native_persistence = shape.bernoulli(0.5);
  }

  // ---- workload ---------------------------------------------------------
  const std::size_t job_count = jobs_rng.uniform_int(2, 4);
  for (std::size_t j = 0; j < job_count; ++j) {
    faas::JobSpec job;
    job.name = "chaos-job-" + std::to_string(j);
    job.account = AccountId{1};
    const std::size_t fn_count = jobs_rng.uniform_int(4, 10);
    Duration longest = Duration::zero();
    for (std::size_t f = 0; f < fn_count; ++f) {
      faas::FunctionSpec fn;
      fn.name = "chaos-fn-" + std::to_string(j) + "-" + std::to_string(f);
      fn.runtime = pick_runtime(jobs_rng);
      const std::size_t state_count = jobs_rng.uniform_int(2, 4);
      Duration work = Duration::zero();
      for (std::size_t s = 0; s < state_count; ++s) {
        faas::StateSpec state;
        state.duration = Duration::msec(jobs_rng.uniform_int(300, 1500));
        state.checkpoint_payload =
            Bytes::of(jobs_rng.uniform_int(512, 2048) * 1024);
        work += state.duration;
        fn.states.push_back(state);
      }
      fn.finalize = Duration::msec(jobs_rng.uniform_int(100, 300));
      work += fn.finalize;
      if (work > longest) longest = work;
      // Occasional chains exercise the trigger graph under faults.
      if (f > 0 && jobs_rng.bernoulli(0.3)) {
        fn.depends_on.push_back(f - 1);
      }
      job.functions.push_back(std::move(fn));
    }
    if (jobs_rng.bernoulli(0.5)) {
      job.sla = longest * 3.0 + Duration::sec(20.0);
    }
    out.jobs.push_back(std::move(job));
  }

  // ---- fault schedule ---------------------------------------------------
  const std::size_t node_failures = faults.uniform_int(0, 2);
  for (std::size_t i = 0; i < node_failures; ++i) {
    cfg.node_failure_offsets.push_back(
        Duration::sec(faults.uniform(2.0, 20.0)));
  }

  const std::size_t gray_count = faults.uniform_int(0, 2);
  for (std::size_t i = 0; i < gray_count; ++i) {
    ScenarioConfig::GrayFailure gray;
    gray.at = Duration::sec(faults.uniform(1.0, 15.0));
    gray.duration = Duration::sec(faults.uniform(2.0, 6.0));
    gray.slowdown = faults.uniform(3.0, 8.0);
    cfg.gray_failures.push_back(gray);
  }

  const std::size_t hb_count = faults.uniform_int(0, 2);
  for (std::size_t i = 0; i < hb_count; ++i) {
    ScenarioConfig::HeartbeatFaultCfg fault;
    fault.at = Duration::sec(faults.uniform(1.0, 15.0));
    fault.duration = Duration::sec(faults.uniform(1.0, 4.0));
    // Delays up to ~80% of the confirm threshold: long enough to trigger
    // suspicions (false ones included), short enough that live workers
    // are eventually un-suspected rather than fenced en masse.
    const double max_mult = 0.8 * (cfg.detection.timeout_multiplier +
                                   cfg.detection.confirm_multiplier);
    fault.delay = cfg.detection.heartbeat_interval *
                  faults.uniform(0.0, max_mult);
    fault.drop_rate = faults.uniform(0.0, 0.6);
    // Scope each window to one worker. A cluster-wide drop window longer
    // than the confirm threshold would fence every node at once — the
    // detector behaving exactly as specified, but leaving zero capacity
    // to recover onto, which no strategy can survive.
    fault.node = NodeId{faults.uniform_int(1, cfg.cluster_nodes)};
    cfg.heartbeat_faults.push_back(fault);
    if (fault.delay > out.max_heartbeat_delay) {
      out.max_heartbeat_delay = fault.delay;
    }
  }

  const std::size_t store_count = faults.uniform_int(0, 2);
  for (std::size_t i = 0; i < store_count; ++i) {
    ScenarioConfig::StoreFault fault;
    fault.at = Duration::sec(faults.uniform(3.0, 18.0));
    fault.lose = static_cast<unsigned>(faults.uniform_int(0, 2));
    fault.corrupt = static_cast<unsigned>(faults.uniform_int(0, 2));
    if (fault.lose == 0 && fault.corrupt == 0) fault.corrupt = 1;
    cfg.store_faults.push_back(fault);
  }

  return out;
}

ChaosScenario make_traffic_chaos_scenario(std::uint64_t seed) {
  ChaosScenario out = make_chaos_scenario(seed);
  // child(4): the base scenario consumes child(1..3), so layering traffic
  // on top never perturbs the shape/job/fault draws — the same seed with
  // traffic disabled reproduces the plain chaos scenario exactly.
  Rng traffic = Rng(seed).child(4);

  traffic::TrafficConfig& cfg = out.config.traffic;
  cfg.enabled = true;
  cfg.horizon = Duration::sec(traffic.uniform(12.0, 18.0));

  traffic::StreamConfig stream;
  stream.name = "chaos-burst";
  stream.fn.runtime = pick_runtime(traffic);
  const std::size_t state_count = traffic.uniform_int(1, 2);
  for (std::size_t s = 0; s < state_count; ++s) {
    faas::StateSpec state;
    state.duration = Duration::msec(traffic.uniform_int(100, 400));
    state.checkpoint_payload = Bytes::of(traffic.uniform_int(64, 512) * 1024);
    stream.fn.states.push_back(state);
  }
  stream.fn.finalize = Duration::msec(traffic.uniform_int(30, 100));
  stream.arrival.kind = traffic::ArrivalSpec::Kind::kOnOff;
  stream.arrival.rate_hz = traffic.uniform(8.0, 18.0);
  stream.arrival.off_rate_hz = traffic.uniform(0.0, 2.0);
  stream.arrival.on_mean = Duration::sec(traffic.uniform(1.0, 3.0));
  stream.arrival.off_mean = Duration::sec(traffic.uniform(1.0, 3.0));
  if (traffic.bernoulli(0.5)) {
    stream.sla = Duration::sec(traffic.uniform(4.0, 10.0));
  }
  stream.admission.max_concurrent = traffic.uniform_int(4, 8);
  stream.admission.queue_capacity = traffic.uniform_int(8, 24);
  cfg.streams.push_back(std::move(stream));

  cfg.autoscaler.enabled = true;
  cfg.autoscaler.max_warm = traffic.uniform_int(4, 8);
  cfg.autoscaler.max_step = 2;

  // One node failure guaranteed to land inside the burst window, so every
  // seed exercises shed/queue accounting concurrent with recovery.
  out.config.node_failure_offsets.push_back(
      Duration::sec(traffic.uniform(4.0, 10.0)));
  return out;
}

ChaosScenario make_hedge_chaos_scenario(std::uint64_t seed) {
  ChaosScenario out = make_chaos_scenario(seed);
  // child(5): the base scenario consumes child(1..3) and the traffic
  // overlay child(4), so the hedge overlay draws from its own stream —
  // disabling it reproduces the plain chaos scenario exactly.
  Rng hedge = Rng(seed).child(5);

  recovery::HedgeConfig cfg;
  cfg.percentile = hedge.uniform(80.0, 97.0);
  cfg.min_samples = hedge.uniform_int(4, 12);
  cfg.initial_delay = Duration::msec(hedge.uniform_int(300, 1500));
  cfg.max_outstanding = hedge.uniform_int(4, 16);
  // Half the seeds retry with a backoff, opening the window in which a
  // hedge can fire while its primary is down.
  if (hedge.bernoulli(0.5)) {
    cfg.retry_backoff = Duration::msec(hedge.uniform_int(50, 400));
  }
  out.config.strategy = recovery::StrategyConfig::hedged(cfg);

  // A gray window manufactures the stragglers that make hedges fire, and
  // an extra node failure is guaranteed to land inside the racing phase —
  // the clone (or its primary) dies mid-race on every seed.
  ScenarioConfig::GrayFailure gray;
  gray.at = Duration::sec(hedge.uniform(0.5, 3.0));
  gray.duration = Duration::sec(hedge.uniform(3.0, 8.0));
  gray.slowdown = hedge.uniform(3.0, 8.0);
  out.config.gray_failures.push_back(gray);
  out.config.node_failure_offsets.push_back(
      Duration::sec(hedge.uniform(2.0, 8.0)));
  return out;
}

ChaosScenario make_partition_chaos_scenario(std::uint64_t seed) {
  ChaosScenario out = make_chaos_scenario(seed);
  // child(6): the base consumes child(1..3), traffic child(4), hedge
  // child(5); the partition overlay draws from its own stream, so the
  // same seed without the overlay reproduces the plain chaos scenario.
  Rng part = Rng(seed).child(6);
  ScenarioConfig& cfg = out.config;

  // Re-size the cluster so cutting the last (smallest) fault domain
  // always leaves a strict majority in the worst case. Ten nodes put two
  // in the last zone (testbed racks hold four); even with every other
  // possible death landing outside it — two base kills, two node-scoped
  // heartbeat-fault fences, the asymmetric window's victim — five alive
  // nodes remain, of which three reach each other: still more than the
  // two cut off. Eleven or twelve nodes would widen the cut zone enough
  // for that same worst case to deadlock both sides below quorum.
  cfg.cluster_nodes = 10;
  const std::uint32_t cut_zone =
      static_cast<std::uint32_t>((cfg.cluster_nodes - 1) / 4);

  // Tighten detection so every zone cut outlasts the confirm threshold:
  // bound <= 400ms * (1 + 3 + 2) + 2*150ms = 2.7s, below the shortest
  // window. The majority side fences-and-redeploys while the minority
  // keeps executing — the zombie-commit probe fires on every such seed.
  cfg.detection.heartbeat_interval =
      Duration::msec(part.uniform_int(200, 400));
  cfg.detection.timeout_multiplier = part.uniform(2.0, 3.0);
  cfg.detection.confirm_multiplier = part.uniform(1.0, 2.0);

  // Half the seeds exercise fault-domain-aware placement, half the
  // domain-blind baseline — the oracles must hold for both.
  cfg.fault_domain_spread = part.bernoulli(0.5);

  const std::size_t cut_count = part.uniform_int(1, 2);
  for (std::size_t i = 0; i < cut_count; ++i) {
    ScenarioConfig::PartitionFault window;
    window.at = Duration::sec(part.uniform(1.0, 6.0));
    window.duration = Duration::sec(part.uniform(4.0, 10.0));
    window.zone = cut_zone;
    cfg.partitions.push_back(window);
  }

  // An optional short asymmetric window: one victim loses its outbound
  // path only (one-way heartbeat loss). Shorter than the confirm
  // threshold on most draws, so the suspicion it raises must cancel
  // cleanly when the window heals instead of fencing a live node.
  if (part.bernoulli(0.7)) {
    ScenarioConfig::PartitionFault window;
    window.at = Duration::sec(part.uniform(1.0, 8.0));
    window.duration = Duration::sec(part.uniform(0.4, 1.6));
    const NodeId victim{part.uniform_int(1, cfg.cluster_nodes)};
    window.from.push_back(victim);
    for (std::size_t n = 1; n <= cfg.cluster_nodes; ++n) {
      if (NodeId{n} != victim) window.to.push_back(NodeId{n});
    }
    window.symmetric = false;
    cfg.partitions.push_back(window);
  }

  // An optional correlated outage of the cut zone, racing the windows.
  // Landing inside a cut it kills already-fenced members (the injector's
  // overlap accounting must count them as skipped, not double deaths);
  // landing outside it turns the later cut into a window over dead nodes.
  // Targeting only the cut zone keeps the loss bounded at one domain, so
  // completion stays achievable on every seed.
  if (part.bernoulli(0.5)) {
    ScenarioConfig::ZoneOutage outage;
    outage.at = Duration::sec(part.uniform(2.0, 12.0));
    outage.zone = cut_zone;
    cfg.zone_outages.push_back(outage);
  }

  return out;
}

ChaosScenario make_sharded_partition_chaos_scenario(std::uint64_t seed) {
  ChaosScenario out = make_partition_chaos_scenario(seed);
  out.config.sharding.enabled = true;
  out.config.sharding.partitions = 4;
  out.config.sharding.workers = 4;
  // As in make_sharded_chaos_scenario: grow the cluster by the partition
  // count so each engine partition keeps a full base-sized slice. Zone
  // windows and outages carry zone ids (slice-local layout is identical)
  // and the node-set windows' ids remap modularly, so every slice sees
  // the same storm the monolithic run would.
  out.config.cluster_nodes *= out.config.sharding.partitions;
  return out;
}

ChaosScenario make_sharded_chaos_scenario(std::uint64_t seed) {
  ChaosScenario out = make_chaos_scenario(seed);
  out.config.sharding.enabled = true;
  out.config.sharding.partitions = 4;
  out.config.sharding.workers = 4;
  // Grow the cluster by the partition count so each partition keeps a
  // full base-sized slice. Fault node ids were drawn against the base
  // cluster size, so they stay in range inside every slice after the
  // round-robin split's modular remap.
  out.config.cluster_nodes *= out.config.sharding.partitions;
  return out;
}

std::vector<std::string> chaos_oracles(const ChaosScenario& scenario,
                                       const RunResult& result) {
  std::vector<std::string> violations;
  auto violate = [&violations](const std::string& what) {
    violations.push_back(what);
  };

  // Sharded runs: every oracle must hold within each partition —
  // function ids and causal trace ids are partition-local, so the
  // event-derived oracles (exactly-once, detection bound, hedge event
  // identities) are only meaningful per shard. The merged result carries
  // no event log of its own, so falling through below re-checks just the
  // scalar oracles across the reduction.
  for (std::size_t i = 0; i < result.shards.size(); ++i) {
    for (const std::string& violation :
         chaos_oracles(scenario, *result.shards[i])) {
      violations.push_back("shard " + std::to_string(i) + ": " + violation);
    }
  }

  // 1. Completion: recovery terminated and every job finished.
  if (!result.completed) {
    violate("completion: run ended with incomplete jobs");
  }

  // 6. No stranded failures awaiting detection.
  if (result.undetected_failures != 0) {
    std::ostringstream os;
    os << "stranded: " << result.undetected_failures
       << " node failure(s) never confirmed by the detector";
    violate(os.str());
  }

  // 3. A corrupt checkpoint must never be selected for restore.
  if (auto it = result.counters.find("restored_corrupt_checkpoints");
      it != result.counters.end() && it->second > 0.0) {
    violate("corrupt-restore: a damaged checkpoint was selected");
  }

  // 5. Usage ledger balances.
  if (result.usage_unbalanced != 0) {
    std::ostringstream os;
    os << "ledger: " << result.usage_unbalanced
       << " unbalanced usage record(s)";
    violate(os.str());
  }

  // 7. Traffic conservation: exactly-once accounting for every arrival.
  if (result.traffic.enabled) {
    const auto& t = result.traffic;
    if (!t.conservation_ok) {
      std::ostringstream os;
      os << "conservation: offered=" << t.offered << " admitted=" << t.admitted
         << " shed=" << t.shed << " completed=" << t.completed
         << " failed=" << t.failed << " in_flight=" << t.in_flight
         << " queued_end=" << t.queued_end;
      violate(os.str());
    }
    if (result.completed && (t.in_flight != 0 || t.queued_end != 0)) {
      std::ostringstream os;
      os << "conservation: completed run left " << t.in_flight
         << " arrival(s) in flight and " << t.queued_end << " queued";
      violate(os.str());
    }
  }

  // 8. Hedge exactly-once: every fired hedge resolves exactly once.
  if (result.hedge.enabled) {
    const auto& h = result.hedge;
    if (h.fired != h.wins + h.cancelled + h.open) {
      std::ostringstream os;
      os << "hedge-exactly-once: fired=" << h.fired << " != wins=" << h.wins
         << " + cancelled=" << h.cancelled << " + open=" << h.open;
      violate(os.str());
    }
    if (result.completed && h.open != 0) {
      std::ostringstream os;
      os << "hedge-exactly-once: completed run left " << h.open
         << " race(s) open";
      violate(os.str());
    }
  }

  // 9. No split brain: a logically fenced minority-side zombie finishes
  // executing, but every commit it attempts must be rejected at the
  // store's epoch gate. Together with oracle 2 (one kComplete per
  // function) this bounds committed side effects at one per invocation.
  auto counter = [&result](const char* name) -> double {
    auto it = result.counters.find(name);
    return it == result.counters.end() ? 0.0 : it->second;
  };
  const double zombie_attempts = counter("zombie_commit_attempts");
  const double zombie_committed = counter("zombie_commits_committed");
  const double zombie_rejected = counter("zombie_commits_rejected");
  if (zombie_committed > 0.0) {
    std::ostringstream os;
    os << "no-split-brain: " << zombie_committed
       << " fenced-writer commit(s) reached the store";
    violate(os.str());
  }
  if (zombie_attempts != zombie_committed + zombie_rejected) {
    std::ostringstream os;
    os << "no-split-brain: " << zombie_attempts << " zombie attempt(s) != "
       << zombie_rejected << " rejected + " << zombie_committed
       << " committed";
    violate(os.str());
  }

  // 10. Heal convergence: after the last heal the cluster's views agree.
  if (result.injected_partitions > 0 || result.injected_zone_outages > 0) {
    if (result.injected_partition_heals != result.injected_partitions) {
      std::ostringstream os;
      os << "heal-convergence: " << result.injected_partitions
         << " partition(s) started but " << result.injected_partition_heals
         << " healed";
      violate(os.str());
    }
    if (result.partitions_active_end != 0) {
      std::ostringstream os;
      os << "heal-convergence: " << result.partitions_active_end
         << " reachability rule(s) still active at end of run";
      violate(os.str());
    }
    if (!result.metadata_views_consistent) {
      violate(
          "heal-convergence: controller worker_info liveness disagrees "
          "with cluster ground truth after the last heal");
    }
  }

  // 2 + 4 (and 8's event identities) need the causal event log; a
  // truncated log cannot prove any of them.
  if (result.events == nullptr || result.events->truncated()) {
    return violations;
  }
  const auto& events = result.events->events();

  if (result.hedge.enabled) {
    const std::size_t hedged =
        result.events->count_of(obs::EventKind::kHedged);
    const std::size_t cancelled =
        result.events->count_of(obs::EventKind::kHedgeCancelled);
    const auto& h = result.hedge;
    if (hedged != h.fired) {
      std::ostringstream os;
      os << "hedge-exactly-once: " << hedged << " kHedged event(s) vs "
         << h.fired << " fired";
      violate(os.str());
    }
    // Every resolved race emits exactly one kHedgeCancelled — on the
    // primary when the clone won, on the clone otherwise.
    if (cancelled != h.wins + h.cancelled) {
      std::ostringstream os;
      os << "hedge-exactly-once: " << cancelled
         << " kHedgeCancelled event(s) vs " << h.wins + h.cancelled
         << " resolved race(s)";
      violate(os.str());
    }
  }

  // 2. Exactly-once: every submitted function completes exactly once.
  std::unordered_map<FunctionId, int> submits;
  std::unordered_map<FunctionId, int> completes;
  for (const obs::Event& event : events) {
    if (event.kind == obs::EventKind::kSubmit && event.labels.function.valid()) {
      ++submits[event.labels.function];
    }
    if (event.kind == obs::EventKind::kComplete &&
        event.labels.function.valid()) {
      ++completes[event.labels.function];
    }
  }
  for (const auto& [fn, count] : completes) {
    if (count != 1) {
      std::ostringstream os;
      os << "exactly-once: function " << to_string(fn) << " completed "
         << count << " times";
      violate(os.str());
    }
  }
  if (result.completed) {
    for (const auto& [fn, count] : submits) {
      (void)count;
      if (completes.find(fn) == completes.end()) {
        std::ostringstream os;
        os << "exactly-once: function " << to_string(fn)
           << " submitted but never completed";
        violate(os.str());
      }
    }
  }

  // 4. Detection latency bounded. Node failures in heartbeat mode must be
  // confirmed within interval*(timeout+confirm) of the death plus sweep
  // granularity and any injected delivery delay (a delayed beat can
  // un-suspect once before re-confirmation); every other failure kind
  // uses the constant invoker/oracle delay. kRecoveryStall is
  // controller-initiated and detected instantly.
  const auto& det = scenario.config.detection;
  const Duration epsilon = Duration::msec(100);
  const Duration heartbeat_bound =
      det.heartbeat_interval *
          (1.0 + det.timeout_multiplier + det.confirm_multiplier) +
      det.sweep_interval * 2.0 + scenario.max_heartbeat_delay + epsilon;
  const Duration oracle_bound =
      scenario.config.platform.failure_detect_delay + epsilon;
  // Per-trace time of the most recent unresolved failure.
  std::unordered_map<std::uint64_t, std::pair<TimePoint, bool>> open_failures;
  for (const obs::Event& event : events) {
    if (event.kind == obs::EventKind::kFailure) {
      open_failures[event.trace.value()] = {
          event.at, event.name == "node_failure"};
    } else if (event.kind == obs::EventKind::kDetect) {
      auto it = open_failures.find(event.trace.value());
      if (it == open_failures.end()) continue;
      const Duration latency = event.at - it->second.first;
      const bool node_level = it->second.second;
      open_failures.erase(it);
      const Duration bound =
          node_level && det.enabled ? heartbeat_bound : oracle_bound;
      if (latency > bound) {
        std::ostringstream os;
        os << "detection-bound: " << latency.to_seconds() << "s > "
           << bound.to_seconds() << "s ("
           << (node_level ? "node failure" : "local failure") << ")";
        violate(os.str());
      }
    }
  }

  return violations;
}

namespace {

double max_detection_latency_s(const obs::EventLog* events) {
  if (events == nullptr) return 0.0;
  double max_latency = 0.0;
  std::unordered_map<std::uint64_t, TimePoint> open;
  for (const obs::Event& event : events->events()) {
    if (event.kind == obs::EventKind::kFailure) {
      open[event.trace.value()] = event.at;
    } else if (event.kind == obs::EventKind::kDetect) {
      auto it = open.find(event.trace.value());
      if (it == open.end()) continue;
      const double latency = (event.at - it->second).to_seconds();
      open.erase(it);
      if (latency > max_latency) max_latency = latency;
    }
  }
  return max_latency;
}

ChaosOutcome evaluate_scenario(const ChaosScenario& scenario,
                               std::uint64_t seed) {
  const RunResult result = ScenarioRunner::run(scenario.config, scenario.jobs);

  ChaosOutcome out;
  out.seed = seed;
  out.completed = result.completed;
  out.makespan_s = result.makespan_s;
  out.failures = result.failures;
  out.node_kills = result.injected_node_kills;
  out.gray_windows = result.injected_gray_windows;
  out.heartbeats_dropped = result.injected_heartbeats_dropped;
  out.heartbeats_delayed = result.injected_heartbeats_delayed;
  out.store_entries_dropped = result.injected_store_drops;
  out.store_entries_corrupted = result.injected_store_corruptions;
  out.detector_suspicions = result.detector_suspicions;
  out.detector_false_suspicions = result.detector_false_suspicions;
  if (auto it = result.counters.find("recovery_stalls");
      it != result.counters.end()) {
    out.recovery_stalls = static_cast<std::uint64_t>(it->second);
  }

  const auto& det = scenario.config.detection;
  out.detection_bound_s =
      (det.heartbeat_interval *
           (1.0 + det.timeout_multiplier + det.confirm_multiplier) +
       det.sweep_interval * 2.0 + scenario.max_heartbeat_delay)
          .to_seconds();
  out.max_detection_latency_s = max_detection_latency_s(result.events.get());
  // Sharded runs keep their event logs per partition.
  for (const auto& shard : result.shards) {
    out.max_detection_latency_s =
        std::max(out.max_detection_latency_s,
                 max_detection_latency_s(shard->events.get()));
  }

  out.traffic_offered = result.traffic.offered;
  out.traffic_admitted = result.traffic.admitted;
  out.traffic_shed = result.traffic.shed;
  out.traffic_completed = result.traffic.completed;

  out.hedges_fired = result.hedge.fired;
  out.hedge_wins = result.hedge.wins;
  out.hedges_cancelled = result.hedge.cancelled;

  out.partitions_started = result.injected_partitions;
  out.partitions_healed = result.injected_partition_heals;
  out.zone_outages = result.injected_zone_outages;
  out.heartbeats_partition_dropped = result.heartbeats_partition_dropped;
  out.stale_epoch_rejects = result.kv_stale_epoch_rejects;
  out.quorum_blocked_puts = result.kv_quorum_blocked_puts;
  if (auto it = result.counters.find("zombie_commit_attempts");
      it != result.counters.end()) {
    out.zombie_commit_attempts = static_cast<std::uint64_t>(it->second);
  }
  if (auto it = result.counters.find("zombie_commits_rejected");
      it != result.counters.end()) {
    out.zombie_commits_rejected = static_cast<std::uint64_t>(it->second);
  }

  out.violations = chaos_oracles(scenario, result);
  return out;
}

}  // namespace

ChaosOutcome run_chaos_scenario(std::uint64_t seed) {
  return evaluate_scenario(make_chaos_scenario(seed), seed);
}

ChaosOutcome run_traffic_chaos_scenario(std::uint64_t seed) {
  return evaluate_scenario(make_traffic_chaos_scenario(seed), seed);
}

ChaosOutcome run_hedge_chaos_scenario(std::uint64_t seed) {
  return evaluate_scenario(make_hedge_chaos_scenario(seed), seed);
}

ChaosOutcome run_sharded_chaos_scenario(std::uint64_t seed) {
  return evaluate_scenario(make_sharded_chaos_scenario(seed), seed);
}

ChaosOutcome run_partition_chaos_scenario(std::uint64_t seed) {
  return evaluate_scenario(make_partition_chaos_scenario(seed), seed);
}

ChaosOutcome run_sharded_partition_chaos_scenario(std::uint64_t seed) {
  return evaluate_scenario(make_sharded_partition_chaos_scenario(seed), seed);
}

}  // namespace canary::harness
