// Sharded scenario execution: one ScenarioInstance per partition over a
// conservative sim::ShardEngine, plus the explicit cross-shard channels
// (KV checkpoint mirroring, job-completion beacons) and the deterministic
// partition-order merge of the per-partition results.
#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "harness/scenario_internal.hpp"
#include "sim/sharded.hpp"

namespace canary::harness::internal {
namespace {

/// Per-partition cross-shard endpoints. Each partition owns one:
///   * as a PlatformObserver on its own platform it posts a completion
///     beacon to the hub partition (0) for every finished job — the
///     sharded stand-in for cross-node control-plane traffic;
///   * its `mirror_store` receives the buddy partition's checkpoint
///     writes ((p-1 mod G) mirrors into p), modelling cross-group KV
///     replication without ever touching the writer's state directly.
/// All effects travel as ShardEngine messages stamped >= lookahead ahead,
/// so they are worker-count invariant by construction.
class ShardChannels : public faas::PlatformObserver {
 public:
  ShardChannels(sim::ShardEngine& engine, unsigned partition,
                const ScenarioConfig::ShardingConfig& sharding,
                ScenarioInstance& self, obs::MetricRegistry& hub_metrics)
      : engine_(engine),
        partition_(partition),
        sharding_(sharding),
        hub_metrics_(hub_metrics),
        mirror_store_(self.config.kv, self.cluster.node_ids()) {}

  void on_job_completed(JobId) override {
    const TimePoint when =
        engine_.partition(partition_).now() + sharding_.lookahead;
    obs::MetricRegistry* hub = &hub_metrics_;
    engine_.post(0, when, [hub] { hub->count("shard_job_beacons"); });
  }

  kv::KvStore& mirror_store() { return mirror_store_; }

 private:
  sim::ShardEngine& engine_;
  unsigned partition_;
  const ScenarioConfig::ShardingConfig& sharding_;
  obs::MetricRegistry& hub_metrics_;
  kv::KvStore mirror_store_;
};

template <typename T>
std::vector<T> round_robin_slice(const std::vector<T>& all, unsigned partition,
                                 unsigned partitions) {
  std::vector<T> slice;
  for (std::size_t i = 0; i < all.size(); ++i) {
    if (i % partitions == partition) slice.push_back(all[i]);
  }
  return slice;
}

std::optional<NodeId> remap_node(std::optional<NodeId> node,
                                 std::size_t part_nodes) {
  if (!node.has_value() || !node->valid()) return node;
  // Testbed node ids are 1..n per partition; fold the original id into
  // the partition's smaller range so the fault still lands on a node.
  return NodeId(((node->value() - 1) % part_nodes) + 1);
}

}  // namespace

ScenarioConfig derive_partition_config(const ScenarioConfig& config,
                                       unsigned partition,
                                       unsigned partitions) {
  ScenarioConfig part = config;
  part.sharding.enabled = false;  // each partition runs the monolithic wiring

  // Split the cluster into near-equal node groups, never below one node.
  std::size_t nodes = config.cluster_nodes / partitions +
                      (partition < config.cluster_nodes % partitions ? 1 : 0);
  if (nodes == 0) nodes = 1;
  part.cluster_nodes = nodes;

  // Decorrelate partition RNG streams while keeping the whole run a pure
  // function of (config, partition count).
  std::uint64_t sm =
      config.seed + (static_cast<std::uint64_t>(partition) + 1) *
                        0x9E3779B97F4A7C15ull;
  part.seed = splitmix64(sm);

  // Faults are dealt round-robin so every family keeps coverage at any
  // partition count; node-targeted faults fold into the local id range.
  part.node_failure_offsets =
      round_robin_slice(config.node_failure_offsets, partition, partitions);
  part.correlated_node_failures = round_robin_slice(
      config.correlated_node_failures, partition, partitions);
  part.gray_failures =
      round_robin_slice(config.gray_failures, partition, partitions);
  for (auto& gray : part.gray_failures) {
    gray.node = remap_node(gray.node, nodes);
  }
  part.heartbeat_faults =
      round_robin_slice(config.heartbeat_faults, partition, partitions);
  for (auto& fault : part.heartbeat_faults) {
    fault.node = remap_node(fault.node, nodes);
  }
  part.store_faults =
      round_robin_slice(config.store_faults, partition, partitions);
  // Partition windows and zone outages are dealt like every other fault
  // family. Explicit node sets fold into the local id range; zone-scoped
  // faults resolve membership at fire time against the partition's own
  // cluster slice (a zone absent from the slice makes the window/outage a
  // counted no-op, so merged fault totals stay partition-count
  // invariant). Cross-shard KV mirroring respects reachability for free:
  // a quorum-blocked writer's put fails locally before the mirror
  // observer ever fires.
  part.partitions = round_robin_slice(config.partitions, partition, partitions);
  for (auto& window : part.partitions) {
    for (auto& from : window.from) {
      from = *remap_node(from, nodes);
    }
    for (auto& to : window.to) {
      to = *remap_node(to, nodes);
    }
  }
  part.zone_outages =
      round_robin_slice(config.zone_outages, partition, partitions);

  // Traffic streams are whole-stream partitioned: a stream's arrival
  // process, admission class, and latency accounting stay together.
  part.traffic.streams =
      round_robin_slice(config.traffic.streams, partition, partitions);

  // The flight recorder writes files; keep dump names collision-free.
  if (!part.flight_recorder_path.empty()) {
    part.flight_recorder_path += ".shard" + std::to_string(partition);
  }
  return part;
}

RunResult merge_sharded_results(
    std::vector<std::shared_ptr<RunResult>> parts) {
  RunResult merged;
  if (parts.empty()) return merged;
  merged.completed = true;
  for (const std::shared_ptr<RunResult>& sp : parts) {
    const RunResult& r = *sp;
    merged.completed = merged.completed && r.completed;
    merged.makespan_s = std::max(merged.makespan_s, r.makespan_s);
    merged.total_recovery_s += r.total_recovery_s;
    merged.lost_work_s += r.lost_work_s;
    merged.failures += r.failures;
    merged.cost.total_usd += r.cost.total_usd;
    merged.cost.function_usd += r.cost.function_usd;
    merged.cost.replica_usd += r.cost.replica_usd;
    merged.cost.rr_usd += r.cost.rr_usd;
    merged.cost.standby_usd += r.cost.standby_usd;
    merged.sla_violations += r.sla_violations;
    merged.sla_jobs += r.sla_jobs;
    merged.simulated_events += r.simulated_events;
    merged.metrics.merge(r.metrics);
    merged.breakdown.merge(r.breakdown);
    merged.tail.merge(r.tail);
    merged.timeseries.merge(r.timeseries);
    merged.spans_recorded += r.spans_recorded;
    merged.spans_dropped += r.spans_dropped;
    merged.events_recorded += r.events_recorded;
    merged.events_dropped += r.events_dropped;
    for (const auto& [kind, dropped] : r.events_dropped_by_kind) {
      merged.events_dropped_by_kind[kind] += dropped;
    }
    merged.usage_records += r.usage_records;
    merged.usage_unbalanced += r.usage_unbalanced;
    merged.usage_gb_seconds += r.usage_gb_seconds;
    merged.detector_suspicions += r.detector_suspicions;
    merged.detector_false_suspicions += r.detector_false_suspicions;
    merged.detector_confirmed_dead += r.detector_confirmed_dead;
    merged.undetected_failures += r.undetected_failures;
    merged.injected_node_kills += r.injected_node_kills;
    merged.injected_skipped_node_kills += r.injected_skipped_node_kills;
    merged.injected_gray_windows += r.injected_gray_windows;
    merged.injected_heartbeats_dropped += r.injected_heartbeats_dropped;
    merged.injected_heartbeats_delayed += r.injected_heartbeats_delayed;
    merged.injected_store_drops += r.injected_store_drops;
    merged.injected_store_corruptions += r.injected_store_corruptions;
    merged.injected_partitions += r.injected_partitions;
    merged.injected_partition_heals += r.injected_partition_heals;
    merged.injected_zone_outages += r.injected_zone_outages;
    merged.partitions_active_end += r.partitions_active_end;
    merged.heartbeats_partition_dropped += r.heartbeats_partition_dropped;
    merged.kv_stale_epoch_rejects += r.kv_stale_epoch_rejects;
    merged.kv_quorum_blocked_puts += r.kv_quorum_blocked_puts;
    merged.metadata_views_consistent =
        merged.metadata_views_consistent && r.metadata_views_consistent;
    if (r.traffic.enabled) {
      RunResult::TrafficSummary& t = merged.traffic;
      t.enabled = true;
      t.offered += r.traffic.offered;
      t.admitted += r.traffic.admitted;
      t.shed += r.traffic.shed;
      t.completed += r.traffic.completed;
      t.failed += r.traffic.failed;
      t.in_flight += r.traffic.in_flight;
      t.queued_end += r.traffic.queued_end;
      t.queue_peak = std::max(t.queue_peak, r.traffic.queue_peak);
      // Percentiles cannot be re-derived from summaries; report the
      // worst shard's tail, which is what an operator would alarm on.
      t.latency_p50_ms = std::max(t.latency_p50_ms, r.traffic.latency_p50_ms);
      t.latency_p95_ms = std::max(t.latency_p95_ms, r.traffic.latency_p95_ms);
      t.latency_p99_ms = std::max(t.latency_p99_ms, r.traffic.latency_p99_ms);
      t.latency_p999_ms =
          std::max(t.latency_p999_ms, r.traffic.latency_p999_ms);
      t.queue_wait_p99_ms =
          std::max(t.queue_wait_p99_ms, r.traffic.queue_wait_p99_ms);
      t.scale_ups += r.traffic.scale_ups;
      t.scale_ins += r.traffic.scale_ins;
      t.containers_launched += r.traffic.containers_launched;
      t.containers_retired += r.traffic.containers_retired;
      // Both conservation identities are closed under addition, so the
      // conjunction over shards certifies the merged totals too.
      t.conservation_ok = t.conservation_ok && r.traffic.conservation_ok;
    }
    if (r.hedge.enabled) {
      RunResult::HedgeSummary& h = merged.hedge;
      h.enabled = true;
      h.fired += r.hedge.fired;
      h.wins += r.hedge.wins;
      h.cancelled += r.hedge.cancelled;
      h.denied += r.hedge.denied;
      h.skipped += r.hedge.skipped;
      h.open += r.hedge.open;
    }
  }
  merged.counters = merged.metrics.counters();
  merged.cost_usd = merged.cost.total_usd;
  const double recoveries = merged.metrics.counter("recoveries");
  merged.mean_recovery_s =
      recoveries > 0.0 ? merged.total_recovery_s / recoveries : 0.0;
  // Spans/events stay per-shard (trace and function ids are
  // partition-local); consumers walk `shards` for them.
  merged.shards = std::move(parts);
  return merged;
}

RunResult run_sharded(const ScenarioConfig& config,
                      const std::vector<faas::JobSpec>& jobs) {
  const ScenarioConfig::ShardingConfig& sharding = config.sharding;
  const unsigned partitions = sharding.partitions < 1 ? 1 : sharding.partitions;
  if (sharding.kv_mirror) {
    CANARY_CHECK(sharding.mirror_delay >= sharding.lookahead,
                 "KV mirror delay below the lookahead would make mirrored "
                 "puts undeliverable");
  }

  sim::ShardEngineOptions engine_options;
  engine_options.partitions = partitions;
  engine_options.workers = sharding.workers;
  engine_options.lookahead = sharding.lookahead;
  engine_options.queue_capacity = sharding.queue_capacity;
  sim::ShardEngine engine(engine_options);

  std::vector<std::vector<faas::JobSpec>> part_jobs(partitions);
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    part_jobs[j % partitions].push_back(jobs[j]);
  }

  std::vector<std::unique_ptr<ScenarioInstance>> parts;
  parts.reserve(partitions);
  for (unsigned p = 0; p < partitions; ++p) {
    parts.push_back(std::make_unique<ScenarioInstance>(
        engine.partition(p), derive_partition_config(config, p, partitions),
        part_jobs[p], /*install_log_hooks=*/false));
  }

  std::vector<std::unique_ptr<ShardChannels>> channels;
  channels.reserve(partitions);
  for (unsigned p = 0; p < partitions; ++p) {
    channels.push_back(std::make_unique<ShardChannels>(
        engine, p, sharding, *parts[p], parts[0]->metrics));
    parts[p]->platform.add_observer(channels.back().get());
  }
  if (sharding.kv_mirror) {
    for (unsigned p = 0; p < partitions; ++p) {
      const unsigned buddy = (p + 1) % partitions;
      kv::KvStore* mirror = &channels[buddy]->mirror_store();
      obs::MetricRegistry* buddy_metrics = &parts[buddy]->metrics;
      parts[p]->store.set_put_observer(
          [&engine, p, buddy, mirror, buddy_metrics,
           delay = sharding.mirror_delay](const std::string& key,
                                          std::string payload,
                                          Bytes logical_size) {
            const TimePoint when = engine.partition(p).now() + delay;
            const double bytes = static_cast<double>(payload.size());
            engine.post(
                buddy, when,
                [mirror, buddy_metrics, bytes, key,
                 payload = std::move(payload), logical_size]() mutable {
                  (void)mirror->put(key, std::move(payload), logical_size);
                  buddy_metrics->count("kv_mirror_in");
                  buddy_metrics->count("kv_mirror_bytes", bytes);
                });
          });
    }
  }

  engine.run();

  std::vector<std::shared_ptr<RunResult>> shard_results;
  shard_results.reserve(partitions);
  for (unsigned p = 0; p < partitions; ++p) {
    if (sharding.kv_mirror) {
      parts[p]->metrics.set_gauge(
          "kv_mirror_entries",
          static_cast<double>(channels[p]->mirror_store().size()));
    }
    shard_results.push_back(
        std::make_shared<RunResult>(parts[p]->collect()));
  }

  RunResult merged = merge_sharded_results(std::move(shard_results));
  merged.shard_epochs = engine.epochs();
  merged.shard_messages = engine.messages_delivered();
  merged.metrics.set_gauge("shard_partitions", static_cast<double>(partitions));
  merged.metrics.set_gauge("shard_epochs",
                           static_cast<double>(merged.shard_epochs));
  merged.metrics.set_gauge("shard_messages",
                           static_cast<double>(merged.shard_messages));
  return merged;
}

}  // namespace canary::harness::internal
