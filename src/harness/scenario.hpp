// One simulated experiment run: a cluster, a platform, a fault-tolerance
// strategy, an error rate, and a set of jobs. Produces the metrics the
// paper's figures report (recovery time, makespan, dollar cost).
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "canary/failure_detector.hpp"
#include "cluster/storage.hpp"
#include "cost/cost_model.hpp"
#include "failure/injector.hpp"
#include "faas/function.hpp"
#include "faas/platform.hpp"
#include "kvstore/kvstore.hpp"
#include "obs/critical_path.hpp"
#include "obs/event_log.hpp"
#include "obs/metric_registry.hpp"
#include "obs/span.hpp"
#include "obs/tail_analyzer.hpp"
#include "obs/time_series.hpp"
#include "recovery/strategies.hpp"
#include "traffic/generator.hpp"

namespace canary::harness {

struct ScenarioConfig {
  recovery::StrategyConfig strategy;
  /// Fraction of functions whose container is killed (paper's error rate,
  /// 0.01 - 0.50). Ignored for the Ideal strategy.
  double error_rate = 0.0;
  /// Hazard-rate by default: the kill probability of an attempt scales
  /// with how long its container is up, so a first attempt fails with
  /// probability `error_rate` while restarted containers stay exposed —
  /// producing the paper's "multiple consecutive function failures" and
  /// the compounding retry cost at high error rates (§V-D5/D6).
  failure::InjectionMode injection_mode = failure::InjectionMode::kHazardRate;
  std::size_t cluster_nodes = 16;
  /// Node-level failures at these offsets from run start (§V-D6).
  std::vector<Duration> node_failure_offsets;
  /// Correlated node failures: container-kill degradation on the victim
  /// before it dies (the signature proactive mitigation predicts on).
  struct CorrelatedNodeFailure {
    Duration at;
    int precursor_kills = 4;
    Duration precursor_window = Duration::sec(8.0);
  };
  std::vector<CorrelatedNodeFailure> correlated_node_failures;
  /// Heartbeat failure detection (fault surface v2). Disabled by default:
  /// the platform keeps the legacy constant-delay oracle and produces
  /// byte-identical runs. When enabled the platform switches to
  /// DetectionMode::kHeartbeat and node-failure recovery starts only once
  /// the detector confirms the worker dead.
  core::FailureDetectorConfig detection;
  /// Gray failures: node slowdown windows (stragglers, not deaths).
  struct GrayFailure {
    Duration at;
    Duration duration = Duration::sec(4.0);
    double slowdown = 4.0;
    std::optional<NodeId> node;  // unset = weighted random alive victim
  };
  std::vector<GrayFailure> gray_failures;
  /// Control-plane fault windows applied to worker heartbeats.
  struct HeartbeatFaultCfg {
    Duration at;
    Duration duration = Duration::sec(2.0);
    Duration delay = Duration::zero();
    double drop_rate = 0.0;
    std::optional<NodeId> node;  // unset = every node
  };
  std::vector<HeartbeatFaultCfg> heartbeat_faults;
  /// KV checkpoint-shard faults: lose/corrupt stored checkpoint entries.
  struct StoreFault {
    Duration at;
    unsigned lose = 0;
    unsigned corrupt = 0;
  };
  std::vector<StoreFault> store_faults;
  /// Timed network partition windows (fault surface v3). A window either
  /// bipartitions a fault domain (`zone` set: the zone is symmetrically
  /// cut off from the rest of the cluster) or blocks the explicit node
  /// sets `from` -> `to` (one-way unless `symmetric`). Every window heals
  /// after `duration`; heals are first-class events in the causal log.
  struct PartitionFault {
    Duration at;
    Duration duration = Duration::sec(2.0);
    std::optional<std::uint32_t> zone;
    std::vector<NodeId> from;
    std::vector<NodeId> to;
    bool symmetric = false;
  };
  std::vector<PartitionFault> partitions;
  /// Correlated fault-domain outages: every still-alive member of `zone`
  /// dies at the offset, all kills sharing ONE causal event in the DAG.
  struct ZoneOutage {
    Duration at;
    std::uint32_t zone = 0;
  };
  std::vector<ZoneOutage> zone_outages;
  /// Fault-domain-aware placement across the stack: replica placement,
  /// checkpoint KV-shard owners, hedge clones, and recovery re-dispatch
  /// all spread across zones. Off by default — the domain-blind baseline
  /// (and byte-identical artifacts with the partition surface unused).
  bool fault_domain_spread = false;
  std::uint64_t seed = 42;
  faas::PlatformConfig platform;
  kv::KvConfig kv;
  cost::PricingModel pricing = cost::PricingModel::ibm();
  /// Storage hierarchy override; defaults to the paper's testbed tiers
  /// (§V-C1). Lets experiments model e.g. an NFS-only deployment or a
  /// custom external endpoint ("such as an S3 bucket", §IV-C4a).
  std::optional<cluster::StorageHierarchy> storage;
  /// Record a per-run span timeline (lifecycle phases, checkpoints,
  /// replication, recoveries) into RunResult::spans for chrome://tracing
  /// export. Off by default: spans cost memory proportional to events.
  bool record_spans = false;
  /// Record the per-invocation causal event DAG into RunResult::events and
  /// derive RunResult::breakdown from it. On by default: events are cheap
  /// and the critical-path breakdown feeds the v2 run report.
  bool record_events = true;
  /// When non-empty, arm the event log's flight recorder: on each node
  /// failure or SLA breach the last events are dumped to
  /// "<path>.<n>.json" (at most 4 dumps per run).
  std::string flight_recorder_path;
  /// Open-loop traffic: arrival streams driven through admission control
  /// (and optionally the warm-pool autoscaler) on top of — or instead of
  /// — the batch `jobs`. Disabled by default; enabling it forces
  /// PlatformConfig::reuse_containers so warm-pool sizing can matter.
  traffic::TrafficConfig traffic;
  /// Tail-latency attribution: exemplar-linked latency histograms whose
  /// tail buckets retain trace ids, resolved post-run into exact
  /// per-component attributions (queueing/cold-start/detection/...) via
  /// the causal event DAG. Off by default; when disabled the run — and
  /// every artifact derived from it — is byte-identical to a build
  /// without this feature.
  obs::TailConfig tail;
  /// Windowed time-series rollups (counter rates, per-window latency
  /// quantiles, node health) over fixed sim-time intervals. Off by
  /// default with the same byte-identity guarantee as `tail`.
  obs::TimeSeriesConfig timeseries;

  /// Conservative parallel execution over sim::ShardEngine. Disabled by
  /// default, in which case the monolithic single-simulator path runs,
  /// byte-identical to builds without this feature.
  ///
  /// When enabled, the scenario is split into `partitions` independent
  /// node groups — each with its own cluster slice, platform, KV store,
  /// fault schedule, and derived RNG seed — advanced in conservative
  /// lookahead windows by `workers` threads. The partition count fixes
  /// the model: results depend on `partitions` but are invariant in
  /// `workers` (the determinism suite asserts this byte-for-byte).
  /// Cross-partition coupling flows through explicit timestamped
  /// messages: each partition mirrors KV checkpoint writes to its buddy
  /// partition and reports job completions to partition 0.
  struct ShardingConfig {
    bool enabled = false;
    /// Logical partition count (node groups). Semantics-bearing.
    unsigned partitions = 8;
    /// Worker threads; any value yields identical results.
    unsigned workers = 1;
    /// Conservative lookahead == the minimum cross-partition message
    /// delay. Every cross-shard channel (KV mirror, completion beacons)
    /// is stamped at least this far ahead, CHECK-enforced.
    Duration lookahead = Duration::msec(5);
    /// Mirror KV checkpoint puts to the buddy partition ((p+1) mod G).
    bool kv_mirror = true;
    /// Delay before a mirrored put lands remotely (>= lookahead).
    Duration mirror_delay = Duration::msec(5);
    /// Bound on each (src, dst) inter-shard queue.
    std::size_t queue_capacity = 1 << 16;
  };
  ShardingConfig sharding;
};

struct RunResult {
  bool completed = false;
  double makespan_s = 0.0;        // first submission to last job completion
  double total_recovery_s = 0.0;  // sum of per-failure recovery intervals
  double mean_recovery_s = 0.0;   // per recovered failure
  double lost_work_s = 0.0;       // nominal work discarded by failures
  double failures = 0.0;
  double cost_usd = 0.0;
  cost::CostBreakdown cost;
  /// Jobs carrying an SLA that finished past their deadline.
  double sla_violations = 0.0;
  double sla_jobs = 0.0;
  std::uint64_t simulated_events = 0;
  std::map<std::string, double> counters;
  /// Full metric registry of the run (counters + gauges + latency
  /// histograms). `counters` above is kept as a convenience view.
  obs::MetricRegistry metrics;
  /// Span timeline; non-null only when ScenarioConfig::record_spans.
  std::shared_ptr<obs::SpanRecorder> spans;
  /// Causal event DAG; non-null only when ScenarioConfig::record_events.
  std::shared_ptr<obs::EventLog> events;
  /// Critical-path decomposition of end-to-end latency and every
  /// failure-to-recovery window, plus the SLO watchdog's verdicts.
  /// Derived from `events`; empty when event recording is off.
  obs::BreakdownReport breakdown;
  /// Recorder overflow accounting (events/spans recorded vs. dropped).
  std::uint64_t spans_recorded = 0;
  std::uint64_t spans_dropped = 0;
  std::uint64_t events_recorded = 0;
  std::uint64_t events_dropped = 0;
  /// Usage-ledger balance (chaos-oracle inputs): every closed interval
  /// must be non-negative and the per-purpose split must sum to the
  /// total. `usage_unbalanced` counts violations (0 in a healthy run).
  std::uint64_t usage_records = 0;
  std::uint64_t usage_unbalanced = 0;
  double usage_gb_seconds = 0.0;
  /// Failure-detector outcomes (all zero when detection is disabled).
  std::uint64_t detector_suspicions = 0;
  std::uint64_t detector_false_suspicions = 0;
  std::uint64_t detector_confirmed_dead = 0;
  /// Node failures the platform stashed but nobody ever confirmed (should
  /// be 0 at the end of any completed heartbeat-mode run).
  std::uint64_t undetected_failures = 0;
  /// Injected-fault totals copied out of the FailureInjector.
  std::uint64_t injected_node_kills = 0;
  std::uint64_t injected_skipped_node_kills = 0;
  std::uint64_t injected_gray_windows = 0;
  std::uint64_t injected_heartbeats_dropped = 0;
  std::uint64_t injected_heartbeats_delayed = 0;
  std::uint64_t injected_store_drops = 0;
  std::uint64_t injected_store_corruptions = 0;
  /// Partition surface (fault surface v3). Heal-convergence oracle inputs:
  /// every started window must heal, no block rules may outlive the run,
  /// and the controller's metadata liveness view must agree with the
  /// cluster ground truth once the last partition heals.
  std::uint64_t injected_partitions = 0;
  std::uint64_t injected_partition_heals = 0;
  std::uint64_t injected_zone_outages = 0;
  std::uint64_t partitions_active_end = 0;
  std::uint64_t heartbeats_partition_dropped = 0;
  /// Epoch-fence accounting from the KV store: commits rejected because
  /// the writer was fenced (zombie side) or could not reach the quorum.
  std::uint64_t kv_stale_epoch_rejects = 0;
  std::uint64_t kv_quorum_blocked_puts = 0;
  /// True when every metadata worker row's liveness matches the cluster
  /// at run end (trivially true for non-Canary strategies).
  bool metadata_views_consistent = true;

  /// Open-loop traffic accounting (all zero unless
  /// ScenarioConfig::traffic.enabled). The two conservation identities —
  ///   offered == admitted + shed + queued_end
  ///   admitted == completed + failed + in_flight
  /// — are pre-evaluated into `conservation_ok` for the chaos oracles.
  struct TrafficSummary {
    bool enabled = false;
    std::uint64_t offered = 0;
    std::uint64_t admitted = 0;
    std::uint64_t shed = 0;
    std::uint64_t completed = 0;
    std::uint64_t failed = 0;
    std::uint64_t in_flight = 0;   // admitted, unresolved at run end
    std::uint64_t queued_end = 0;  // still buffered at run end
    std::uint64_t queue_peak = 0;
    double latency_p50_ms = 0.0;  // arrival -> completion
    double latency_p95_ms = 0.0;
    double latency_p99_ms = 0.0;
    double latency_p999_ms = 0.0;
    double queue_wait_p99_ms = 0.0;  // arrival -> platform submission
    std::uint64_t scale_ups = 0;
    std::uint64_t scale_ins = 0;
    std::uint64_t containers_launched = 0;
    std::uint64_t containers_retired = 0;
    bool conservation_ok = true;
  };
  TrafficSummary traffic;

  /// Hedge-race accounting (populated only under StrategyKind::kHedge).
  /// The exactly-once identity — fired == wins + cancelled + open, with
  /// open == 0 on any completed run — is the chaos campaign's hedge
  /// oracle.
  struct HedgeSummary {
    bool enabled = false;
    std::uint64_t fired = 0;
    std::uint64_t wins = 0;       // the clone finished first
    std::uint64_t cancelled = 0;  // the clone lost (or failed) mid-race
    std::uint64_t denied = 0;     // budget-denied hedge attempts
    std::uint64_t skipped = 0;    // trigger fired while still pending
    std::uint64_t open = 0;       // races unresolved at run end
  };
  HedgeSummary hedge;

  /// Tail-latency attribution (empty unless ScenarioConfig::tail.enabled
  /// and event recording is on): per-histogram percentile targets with a
  /// representative exemplar and its exact component attribution.
  obs::TailReport tail;
  /// Windowed rollups (empty unless ScenarioConfig::timeseries.enabled).
  obs::TimeSeries timeseries;
  /// Per-EventKind drop counts for the causal log (recorder health);
  /// empty when nothing was dropped.
  std::map<std::string, std::uint64_t> events_dropped_by_kind;

  /// Sharded runs only: the per-partition results this merged result was
  /// reduced from, in partition order (empty for monolithic runs). The
  /// chaos oracles and the multi-process chrome-trace writer consume
  /// these directly — FunctionIds and trace ids are partition-local.
  std::vector<std::shared_ptr<RunResult>> shards;
  /// Sharded runs only: conservative-scheduler accounting.
  std::uint64_t shard_epochs = 0;
  std::uint64_t shard_messages = 0;
};

class ScenarioRunner {
 public:
  /// Execute `jobs` under `config` to completion. Deterministic in
  /// (config, jobs).
  static RunResult run(const ScenarioConfig& config,
                       const std::vector<faas::JobSpec>& jobs);
};

}  // namespace canary::harness
