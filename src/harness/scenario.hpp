// One simulated experiment run: a cluster, a platform, a fault-tolerance
// strategy, an error rate, and a set of jobs. Produces the metrics the
// paper's figures report (recovery time, makespan, dollar cost).
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cluster/storage.hpp"
#include "cost/cost_model.hpp"
#include "failure/injector.hpp"
#include "faas/function.hpp"
#include "faas/platform.hpp"
#include "kvstore/kvstore.hpp"
#include "obs/critical_path.hpp"
#include "obs/event_log.hpp"
#include "obs/metric_registry.hpp"
#include "obs/span.hpp"
#include "recovery/strategies.hpp"

namespace canary::harness {

struct ScenarioConfig {
  recovery::StrategyConfig strategy;
  /// Fraction of functions whose container is killed (paper's error rate,
  /// 0.01 - 0.50). Ignored for the Ideal strategy.
  double error_rate = 0.0;
  /// Hazard-rate by default: the kill probability of an attempt scales
  /// with how long its container is up, so a first attempt fails with
  /// probability `error_rate` while restarted containers stay exposed —
  /// producing the paper's "multiple consecutive function failures" and
  /// the compounding retry cost at high error rates (§V-D5/D6).
  failure::InjectionMode injection_mode = failure::InjectionMode::kHazardRate;
  std::size_t cluster_nodes = 16;
  /// Node-level failures at these offsets from run start (§V-D6).
  std::vector<Duration> node_failure_offsets;
  /// Correlated node failures: container-kill degradation on the victim
  /// before it dies (the signature proactive mitigation predicts on).
  struct CorrelatedNodeFailure {
    Duration at;
    int precursor_kills = 4;
    Duration precursor_window = Duration::sec(8.0);
  };
  std::vector<CorrelatedNodeFailure> correlated_node_failures;
  std::uint64_t seed = 42;
  faas::PlatformConfig platform;
  kv::KvConfig kv;
  cost::PricingModel pricing = cost::PricingModel::ibm();
  /// Storage hierarchy override; defaults to the paper's testbed tiers
  /// (§V-C1). Lets experiments model e.g. an NFS-only deployment or a
  /// custom external endpoint ("such as an S3 bucket", §IV-C4a).
  std::optional<cluster::StorageHierarchy> storage;
  /// Record a per-run span timeline (lifecycle phases, checkpoints,
  /// replication, recoveries) into RunResult::spans for chrome://tracing
  /// export. Off by default: spans cost memory proportional to events.
  bool record_spans = false;
  /// Record the per-invocation causal event DAG into RunResult::events and
  /// derive RunResult::breakdown from it. On by default: events are cheap
  /// and the critical-path breakdown feeds the v2 run report.
  bool record_events = true;
  /// When non-empty, arm the event log's flight recorder: on each node
  /// failure or SLA breach the last events are dumped to
  /// "<path>.<n>.json" (at most 4 dumps per run).
  std::string flight_recorder_path;
};

struct RunResult {
  bool completed = false;
  double makespan_s = 0.0;        // first submission to last job completion
  double total_recovery_s = 0.0;  // sum of per-failure recovery intervals
  double mean_recovery_s = 0.0;   // per recovered failure
  double lost_work_s = 0.0;       // nominal work discarded by failures
  double failures = 0.0;
  double cost_usd = 0.0;
  cost::CostBreakdown cost;
  /// Jobs carrying an SLA that finished past their deadline.
  double sla_violations = 0.0;
  double sla_jobs = 0.0;
  std::uint64_t simulated_events = 0;
  std::map<std::string, double> counters;
  /// Full metric registry of the run (counters + gauges + latency
  /// histograms). `counters` above is kept as a convenience view.
  obs::MetricRegistry metrics;
  /// Span timeline; non-null only when ScenarioConfig::record_spans.
  std::shared_ptr<obs::SpanRecorder> spans;
  /// Causal event DAG; non-null only when ScenarioConfig::record_events.
  std::shared_ptr<obs::EventLog> events;
  /// Critical-path decomposition of end-to-end latency and every
  /// failure-to-recovery window, plus the SLO watchdog's verdicts.
  /// Derived from `events`; empty when event recording is off.
  obs::BreakdownReport breakdown;
  /// Recorder overflow accounting (events/spans recorded vs. dropped).
  std::uint64_t spans_recorded = 0;
  std::uint64_t spans_dropped = 0;
  std::uint64_t events_recorded = 0;
  std::uint64_t events_dropped = 0;
};

class ScenarioRunner {
 public:
  /// Execute `jobs` under `config` to completion. Deterministic in
  /// (config, jobs).
  static RunResult run(const ScenarioConfig& config,
                       const std::vector<faas::JobSpec>& jobs);
};

}  // namespace canary::harness
