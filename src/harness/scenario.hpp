// One simulated experiment run: a cluster, a platform, a fault-tolerance
// strategy, an error rate, and a set of jobs. Produces the metrics the
// paper's figures report (recovery time, makespan, dollar cost).
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cluster/storage.hpp"
#include "cost/cost_model.hpp"
#include "failure/injector.hpp"
#include "faas/function.hpp"
#include "faas/platform.hpp"
#include "kvstore/kvstore.hpp"
#include "obs/metric_registry.hpp"
#include "obs/span.hpp"
#include "recovery/strategies.hpp"

namespace canary::harness {

struct ScenarioConfig {
  recovery::StrategyConfig strategy;
  /// Fraction of functions whose container is killed (paper's error rate,
  /// 0.01 - 0.50). Ignored for the Ideal strategy.
  double error_rate = 0.0;
  /// Hazard-rate by default: the kill probability of an attempt scales
  /// with how long its container is up, so a first attempt fails with
  /// probability `error_rate` while restarted containers stay exposed —
  /// producing the paper's "multiple consecutive function failures" and
  /// the compounding retry cost at high error rates (§V-D5/D6).
  failure::InjectionMode injection_mode = failure::InjectionMode::kHazardRate;
  std::size_t cluster_nodes = 16;
  /// Node-level failures at these offsets from run start (§V-D6).
  std::vector<Duration> node_failure_offsets;
  /// Correlated node failures: container-kill degradation on the victim
  /// before it dies (the signature proactive mitigation predicts on).
  struct CorrelatedNodeFailure {
    Duration at;
    int precursor_kills = 4;
    Duration precursor_window = Duration::sec(8.0);
  };
  std::vector<CorrelatedNodeFailure> correlated_node_failures;
  std::uint64_t seed = 42;
  faas::PlatformConfig platform;
  kv::KvConfig kv;
  cost::PricingModel pricing = cost::PricingModel::ibm();
  /// Storage hierarchy override; defaults to the paper's testbed tiers
  /// (§V-C1). Lets experiments model e.g. an NFS-only deployment or a
  /// custom external endpoint ("such as an S3 bucket", §IV-C4a).
  std::optional<cluster::StorageHierarchy> storage;
  /// Record a per-run span timeline (lifecycle phases, checkpoints,
  /// replication, recoveries) into RunResult::spans for chrome://tracing
  /// export. Off by default: spans cost memory proportional to events.
  bool record_spans = false;
};

struct RunResult {
  bool completed = false;
  double makespan_s = 0.0;        // first submission to last job completion
  double total_recovery_s = 0.0;  // sum of per-failure recovery intervals
  double mean_recovery_s = 0.0;   // per recovered failure
  double lost_work_s = 0.0;       // nominal work discarded by failures
  double failures = 0.0;
  double cost_usd = 0.0;
  cost::CostBreakdown cost;
  /// Jobs carrying an SLA that finished past their deadline.
  double sla_violations = 0.0;
  double sla_jobs = 0.0;
  std::uint64_t simulated_events = 0;
  std::map<std::string, double> counters;
  /// Full metric registry of the run (counters + gauges + latency
  /// histograms). `counters` above is kept as a convenience view.
  obs::MetricRegistry metrics;
  /// Span timeline; non-null only when ScenarioConfig::record_spans.
  std::shared_ptr<obs::SpanRecorder> spans;
};

class ScenarioRunner {
 public:
  /// Execute `jobs` under `config` to completion. Deterministic in
  /// (config, jobs).
  static RunResult run(const ScenarioConfig& config,
                       const std::vector<faas::JobSpec>& jobs);
};

}  // namespace canary::harness
