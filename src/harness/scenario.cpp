#include "harness/scenario.hpp"

#include <cmath>
#include <optional>

#include "harness/scenario_internal.hpp"
#include "obs/critical_path.hpp"
#include "obs/event_log.hpp"
#include "sim/simulator.hpp"

namespace canary::harness {
namespace internal {
namespace {

faas::PlatformConfig effective_platform_config(const ScenarioConfig& config) {
  faas::PlatformConfig platform_config = config.platform;
  if (config.detection.enabled) {
    // Heartbeat detection replaces the constant-delay oracle for
    // node-level failures; detection latency becomes emergent.
    platform_config.detection_mode = faas::DetectionMode::kHeartbeat;
  }
  if (config.traffic.enabled) {
    // Open-loop traffic needs pool adoption: without container reuse the
    // autoscaler's prewarmed containers could never serve an invocation.
    platform_config.reuse_containers = true;
  }
  if (config.fault_domain_spread) {
    platform_config.spread_fault_domains = true;  // hedge-clone placement
  }
  return platform_config;
}

kv::KvConfig effective_kv_config(const ScenarioConfig& config) {
  kv::KvConfig kv_config = config.kv;
  if (config.fault_domain_spread) kv_config.spread_fault_domains = true;
  return kv_config;
}

// Non-owning alias of a caller-owned batch spec. The scenario job list
// outlives the platform run, so submission can share each spec in place —
// no deep copy, and (via the aliasing constructor's empty owner) no
// control-block allocation either.
std::shared_ptr<const faas::JobSpec> borrow(const faas::JobSpec& job) {
  return std::shared_ptr<const faas::JobSpec>(std::shared_ptr<const void>(),
                                              &job);
}

}  // namespace

ScenarioInstance::ScenarioInstance(sim::Simulator& sim,
                                   const ScenarioConfig& cfg,
                                   const std::vector<faas::JobSpec>& jobs,
                                   bool install_log_hooks)
    : config(cfg),
      simulator(sim),
      cluster(cluster::Cluster::testbed(config.cluster_nodes)),
      network(&cluster, {}),
      storage(config.storage.value_or(cluster::StorageHierarchy::testbed())),
      store(effective_kv_config(config), cluster.node_ids()),
      metrics(),
      platform(simulator, cluster, network, effective_platform_config(config),
               metrics) {
  using recovery::StrategyKind;

  if (config.record_spans) {
    spans = std::make_shared<obs::SpanRecorder>();
    platform.set_span_recorder(spans.get());
  }

  if (config.record_events) {
    events = std::make_shared<obs::EventLog>();
    if (!config.flight_recorder_path.empty()) {
      events->set_flight_recorder(config.flight_recorder_path);
    }
    platform.set_event_log(events.get());
  }
  platform.set_slo_monitor(&slo);

  // Writer-attributed KV commits route through the reachability model: a
  // writer cut off from the quorum cannot commit. With no partition rules
  // installed reaches_majority short-circuits to true, so this gate is
  // free (and byte-identical) for every pre-partition scenario. The zone
  // map only matters when fault_domain_spread turns on zone-aware owners.
  store.set_writer_quorum(
      [&net = network](NodeId writer) { return net.reaches_majority(writer); });
  store.set_zone_map([&c = cluster](NodeId node) { return c.zone_of(node); });

  // Opt-in tail attribution + windowed rollups. Neither touches any code
  // path when disabled, so attribution-off runs stay byte-identical.
  if (config.timeseries.enabled) {
    series.configure(config.timeseries);
    platform.set_time_series(&series);
  }
  if (config.tail.enabled) {
    platform.enable_tail_attribution(config.tail.exemplar_config());
  }

  // While this run is live, this thread's log records carry the simulated
  // time and kWarn+ records mirror into the causal log as annotations.
  // Each repetition runs on its own thread, so parallel runs don't mix.
  if (install_log_hooks) {
    log_clock.emplace(
        [this] { return simulator.now().count_usec(); });
    log_mirror.emplace([this](LogLevel, const std::string& msg) {
      if (events == nullptr) return;
      events->append_raw(events->new_trace(), obs::kNoEvent,
                         obs::EventKind::kAnnotation, msg, simulator.now());
    });
  }

  const bool ideal = config.strategy.kind == StrategyKind::kIdeal;
  failure::InjectorConfig injector_config;
  injector_config.error_rate = ideal ? 0.0 : config.error_rate;
  injector_config.mode = config.injection_mode;
  injector.emplace(Rng(config.seed), injector_config);
  platform.set_failure_policy(&*injector);

  if (config.detection.enabled) {
    detector.emplace(simulator, platform, config.detection);
    detector->set_fault_provider(&*injector);
  }

  switch (config.strategy.kind) {
    case StrategyKind::kIdeal:
    case StrategyKind::kRetry: {
      retry.emplace(platform);
      platform.set_recovery_handler(&*retry);
      for (const auto& job : jobs) {
        auto submitted = platform.submit_job(borrow(job));
        CANARY_CHECK(submitted.ok(), "job submission failed");
      }
      break;
    }
    case StrategyKind::kCanary: {
      core::CanaryConfig canary_config = config.strategy.canary;
      if (config.fault_domain_spread) {
        canary_config.spread_fault_domains = true;
        canary_config.replication.spread_fault_domains = true;
      }
      canary_fw.emplace(platform, store, storage, canary_config);
      canary_fw->install();
      if (detector) {
        detector->set_listener(&*canary_fw);
        detector->set_metadata(&canary_fw->metadata());
      }
      for (const auto& job : jobs) {
        auto submitted = canary_fw->submit_job(job);
        CANARY_CHECK(submitted.ok(), "job rejected by the request validator");
      }
      break;
    }
    case StrategyKind::kRequestReplication: {
      rr.emplace(platform, config.strategy.rr_replicas);
      platform.set_recovery_handler(&*rr);
      platform.add_observer(&*rr);
      for (const auto& job : jobs) {
        auto submitted = platform.submit_job(rr->expand_job(job));
        CANARY_CHECK(submitted.ok(), "job submission failed");
        rr->track_job(submitted.value());
      }
      break;
    }
    case StrategyKind::kActiveStandby: {
      as.emplace(platform);
      platform.set_recovery_handler(&*as);
      platform.add_observer(&*as);
      for (const auto& job : jobs) {
        auto submitted = platform.submit_job(borrow(job));
        CANARY_CHECK(submitted.ok(), "job submission failed");
      }
      break;
    }
    case StrategyKind::kHedge: {
      hedge.emplace(platform, config.strategy.hedge);
      platform.set_recovery_handler(&*hedge);
      platform.add_observer(&*hedge);
      for (const auto& job : jobs) {
        auto submitted = platform.submit_job(borrow(job));
        CANARY_CHECK(submitted.ok(), "job submission failed");
      }
      break;
    }
  }

  // Open-loop traffic rides on top of (or instead of) the batch jobs.
  // Submissions route through the Canary control plane when it is
  // installed so the Request Validator sees the offered load too.
  if (config.traffic.enabled && !config.traffic.streams.empty()) {
    traffic::TrafficGenerator::SubmitFn submit_route;
    if (canary_fw.has_value()) {
      submit_route = [fw = &*canary_fw](faas::JobSpec spec) {
        return fw->submit_job(std::move(spec));
      };
    } else if (rr.has_value()) {
      // Request replication expands traffic arrivals too — the expansion
      // keeps the logical function first (name intact), so the traffic
      // generator's name-based arrival binding still matches.
      submit_route = [p = &platform, r = &*rr](faas::JobSpec spec) {
        auto submitted = p->submit_job(r->expand_job(spec));
        if (submitted.ok()) r->track_job(submitted.value());
        return submitted;
      };
    } else {
      submit_route = [p = &platform](faas::JobSpec spec) {
        return p->submit_job(std::move(spec));
      };
    }
    // An independent child stream keeps the arrival draws from perturbing
    // the failure injector, which consumes Rng(seed) directly.
    traffic_gen.emplace(simulator, platform, config.traffic,
                        std::move(submit_route), Rng(config.seed).child(4));
    platform.add_observer(&*traffic_gen);
    if (config.traffic.autoscaler.enabled) {
      autoscaler.emplace(simulator, platform, *traffic_gen);
      platform.add_observer(&*autoscaler);
      autoscaler->start();
    }
    if (hedge.has_value()) {
      // Route the hedge budget through admission control: each stream's
      // per-class budget gates its requests' clones, so speculation can
      // never push a saturated class past its concurrency limit.
      hedge->set_budget_hooks(
          [tg = &*traffic_gen](JobId job) { return tg->try_hedge(job); },
          [tg = &*traffic_gen](JobId job) { tg->hedge_resolved(job); });
    }
    traffic_gen->start();
  }

  // The ideal scenario is failure-free by definition (§V-B) — node-level
  // failures apply only to the fault-exposed strategies.
  if (!ideal) {
    for (const Duration offset : config.node_failure_offsets) {
      injector->schedule_node_failure(simulator, platform, &store,
                                      TimePoint::origin() + offset);
    }
    for (const auto& correlated : config.correlated_node_failures) {
      injector->schedule_correlated_node_failure(
          simulator, platform, &store, TimePoint::origin() + correlated.at,
          correlated.precursor_kills, correlated.precursor_window);
    }
    for (const auto& gray : config.gray_failures) {
      injector->schedule_gray_window(simulator, platform,
                                     TimePoint::origin() + gray.at,
                                     gray.duration, gray.slowdown, gray.node);
    }
    for (const auto& fault : config.heartbeat_faults) {
      injector->add_heartbeat_fault({TimePoint::origin() + fault.at,
                                     fault.duration, fault.delay,
                                     fault.drop_rate, fault.node});
    }
    for (const auto& fault : config.store_faults) {
      injector->schedule_store_fault(simulator, platform, store,
                                     TimePoint::origin() + fault.at,
                                     fault.lose, fault.corrupt);
    }
    for (const auto& part : config.partitions) {
      if (part.zone.has_value()) {
        injector->schedule_zone_partition(simulator, platform,
                                          TimePoint::origin() + part.at,
                                          part.duration, *part.zone);
      } else {
        injector->schedule_partition(simulator, platform,
                                     TimePoint::origin() + part.at,
                                     part.duration, part.from, part.to,
                                     part.symmetric);
      }
    }
    for (const auto& outage : config.zone_outages) {
      injector->schedule_zone_outage(simulator, platform, &store,
                                     TimePoint::origin() + outage.at,
                                     outage.zone);
    }
  }

  if (detector) detector->start();
}

RunResult ScenarioInstance::collect() {
  platform.finalize_usage();
  if (spans != nullptr) spans->close_all_open(simulator.now());

  RunResult result;
  result.completed = platform.all_jobs_completed();
  if (!result.completed) {
    CANARY_LOG_ERROR("scenario ended with incomplete jobs (strategy="
                     << config.strategy.label() << ")");
  }
  result.simulated_events = simulator.executed_events();

  TimePoint last_completion = TimePoint::origin();
  double recoveries = 0.0;
  for (const FunctionId id : platform.all_function_ids()) {
    const auto& inv = platform.invocation(id);
    if (inv.completion_time != TimePoint::max() &&
        inv.completion_time > last_completion) {
      last_completion = inv.completion_time;
    }
    result.total_recovery_s += inv.recovery_time.to_seconds();
    result.lost_work_s += inv.lost_work.to_seconds();
    result.failures += inv.failures;
  }
  recoveries = metrics.counter("recoveries");
  for (const JobId job : platform.all_job_ids()) {
    const auto& spec = platform.job_spec(job);
    if (spec.sla <= Duration::zero()) continue;
    result.sla_jobs += 1.0;
    if (!platform.job_completed(job) ||
        platform.job_completion_time(job) >
            platform.job_submit_time(job) + spec.sla) {
      result.sla_violations += 1.0;
    }
  }
  result.makespan_s = (last_completion - TimePoint::origin()).to_seconds();
  result.mean_recovery_s =
      recoveries > 0.0 ? result.total_recovery_s / recoveries : 0.0;

  const cost::CostModel cost_model(config.pricing);
  result.cost = cost_model.breakdown(platform.usage());
  result.cost_usd = result.cost.total_usd;
  result.counters = metrics.counters();

  // Usage-ledger balance: every interval non-negative and the per-purpose
  // split summing to the total (the chaos campaign's billing oracle).
  const auto& ledger = platform.usage();
  result.usage_records = ledger.records().size();
  for (const auto& record : ledger.records()) {
    if (record.end < record.start) ++result.usage_unbalanced;
  }
  result.usage_gb_seconds = ledger.total_gb_seconds();
  {
    double split = 0.0;
    for (int p = 0; p < 4; ++p) {
      split +=
          ledger.gb_seconds_for(static_cast<faas::ContainerPurpose>(p));
    }
    const double tolerance =
        1e-6 * (result.usage_gb_seconds > 1.0 ? result.usage_gb_seconds : 1.0);
    if (std::fabs(split - result.usage_gb_seconds) > tolerance) {
      ++result.usage_unbalanced;
    }
  }

  if (detector) {
    result.detector_suspicions = detector->suspicions();
    result.detector_false_suspicions = detector->false_suspicions();
    result.detector_confirmed_dead = detector->confirmed_dead();
  }
  result.undetected_failures = platform.undetected_failures();
  result.injected_node_kills = injector->node_kills();
  result.injected_skipped_node_kills = injector->skipped_node_kills();
  result.injected_gray_windows = injector->gray_windows();
  result.injected_heartbeats_dropped = injector->heartbeats_dropped();
  result.injected_heartbeats_delayed = injector->heartbeats_delayed();
  result.injected_store_drops = injector->store_entries_dropped();
  result.injected_store_corruptions = injector->store_entries_corrupted();
  result.injected_partitions = injector->partitions_started();
  result.injected_partition_heals = injector->partitions_healed();
  result.injected_zone_outages = injector->zone_outages();
  result.partitions_active_end = network.active_rules();
  if (detector) {
    result.heartbeats_partition_dropped =
        detector->heartbeats_partition_dropped();
  }
  {
    const kv::KvStats kv_stats = store.stats();
    result.kv_stale_epoch_rejects = kv_stats.stale_epoch_rejects;
    result.kv_quorum_blocked_puts = kv_stats.quorum_blocked_puts;
  }
  if (canary_fw.has_value()) {
    // Heal-convergence view check. A row may legitimately lag a death the
    // detector never got to confirm (the run can end first), so the
    // asserted direction is the split-brain-relevant one: no row declares
    // dead a worker that is actually alive, and every detector-confirmed
    // worker's row reads dead.
    for (const NodeId id : cluster.node_ids()) {
      const auto* row = canary_fw->metadata().worker(id);
      if (row == nullptr) {
        result.metadata_views_consistent = false;
        break;
      }
      if (!row->alive && cluster.node(id).alive()) {
        result.metadata_views_consistent = false;
        break;
      }
      if (detector && detector->is_confirmed_dead(id) && row->alive) {
        result.metadata_views_consistent = false;
        break;
      }
    }
  }

  if (spans != nullptr) {
    result.spans_recorded = spans->size();
    result.spans_dropped = spans->dropped();
  }
  if (events != nullptr) {
    result.events_recorded = events->size();
    result.events_dropped = events->dropped();
    if (events->dropped() > 0) {
      for (std::size_t k = 0; k < obs::kEventKindCount; ++k) {
        const obs::EventKind kind = static_cast<obs::EventKind>(k);
        const std::size_t dropped = events->dropped_of(kind);
        if (dropped > 0) {
          result.events_dropped_by_kind[std::string(obs::to_string_view(
              kind))] = static_cast<std::uint64_t>(dropped);
        }
      }
    }
    obs::CriticalPathAnalyzer analyzer(*events);
    result.breakdown = analyzer.report(slo.targets());
    if (config.tail.enabled) {
      obs::TailAnalyzer tail_analyzer(metrics, *events, analyzer);
      result.tail = tail_analyzer.analyze(config.tail);
    }
  }
  if (traffic_gen.has_value()) {
    RunResult::TrafficSummary& t = result.traffic;
    t.enabled = true;
    const traffic::StreamStats totals = traffic_gen->totals();
    t.offered = totals.offered;
    t.admitted = totals.admitted;
    t.shed = totals.shed;
    t.completed = totals.completed;
    t.failed = totals.failed;
    t.in_flight = traffic_gen->admission().total_in_flight();
    t.queued_end = traffic_gen->admission().total_queued();
    t.queue_peak = totals.queue_peak;
    t.latency_p50_ms = totals.latency.p50() * 1e3;
    t.latency_p95_ms = totals.latency.p95() * 1e3;
    t.latency_p99_ms = totals.latency.p99() * 1e3;
    t.latency_p999_ms = totals.latency.percentile(99.9) * 1e3;
    t.queue_wait_p99_ms = totals.queue_wait.p99() * 1e3;
    if (autoscaler.has_value()) {
      t.scale_ups = autoscaler->scale_ups();
      t.scale_ins = autoscaler->scale_ins();
      t.containers_launched = static_cast<std::uint64_t>(
          metrics.counter("autoscaler_containers_launched"));
      t.containers_retired = static_cast<std::uint64_t>(
          metrics.counter("autoscaler_containers_retired"));
    }
    t.conservation_ok =
        t.offered == t.admitted + t.shed + t.queued_end &&
        t.admitted == t.completed + t.failed + t.in_flight;
    // Gauges only exist for traffic runs, so traffic-off reports stay
    // byte-identical.
    metrics.set_gauge("traffic_queue_peak", static_cast<double>(t.queue_peak));
    metrics.set_gauge("traffic_in_flight_end",
                      static_cast<double>(t.in_flight));
    metrics.set_gauge("traffic_queued_end", static_cast<double>(t.queued_end));
    result.counters = metrics.counters();
  }
  if (hedge.has_value()) {
    RunResult::HedgeSummary& h = result.hedge;
    h.enabled = true;
    h.fired = static_cast<std::uint64_t>(metrics.counter("hedges_fired"));
    h.wins = static_cast<std::uint64_t>(metrics.counter("hedge_wins"));
    h.cancelled =
        static_cast<std::uint64_t>(metrics.counter("hedges_cancelled"));
    h.denied = static_cast<std::uint64_t>(metrics.counter("hedges_denied"));
    h.skipped = static_cast<std::uint64_t>(metrics.counter("hedges_skipped"));
    h.open = hedge->open_races();
  }
  if (series.enabled()) result.timeseries = std::move(series);
  result.metrics = std::move(metrics);
  result.spans = std::move(spans);
  result.events = std::move(events);
  return result;
}

}  // namespace internal

RunResult ScenarioRunner::run(const ScenarioConfig& config,
                              const std::vector<faas::JobSpec>& jobs) {
  if (config.sharding.enabled) return internal::run_sharded(config, jobs);

  sim::Simulator simulator;
  internal::ScenarioInstance instance(simulator, config, jobs,
                                      /*install_log_hooks=*/true);
  simulator.run();
  return instance.collect();
}

}  // namespace canary::harness
