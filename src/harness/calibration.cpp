#include "harness/calibration.hpp"

#include "harness/experiment.hpp"

namespace canary::harness {

ScenarioConfig calibration_scenario(const CalibrationWorkload& workload) {
  ScenarioConfig config;
  config.strategy = workload.strategy;
  config.error_rate = 0.0;  // the node kill is the only fault
  config.cluster_nodes = 2;
  config.seed = workload.seed;
  config.node_failure_offsets = {workload.kill_offset};
  config.detection.enabled = true;
  config.detection.heartbeat_interval = workload.heartbeat_interval;
  config.detection.timeout_multiplier = workload.timeout_multiplier;
  // The real controller confirms on the same sweep that suspects, and
  // sweeps continuously (poll deadlines), so the twin uses a fine sweep
  // and no extra confirmation lag.
  config.detection.confirm_multiplier = 0.0;
  config.detection.sweep_interval = Duration::msec(5);
  return config;
}

std::vector<faas::JobSpec> calibration_jobs(
    const CalibrationWorkload& workload) {
  faas::FunctionSpec fn;
  fn.name = workload.name;
  fn.runtime = faas::RuntimeImage::kNativeProc;
  fn.states.assign(workload.steps,
                   faas::StateSpec{workload.step_exec,
                                   workload.checkpoint_bytes});
  faas::JobSpec job;
  job.name = workload.name + "-calibration";
  job.functions = {fn};
  return {job};
}

CalibrationTwinResult run_calibration_twin(
    const CalibrationWorkload& workload) {
  const Aggregate agg =
      run_repetitions(calibration_scenario(workload),
                      calibration_jobs(workload), workload.repetitions);
  CalibrationTwinResult result;
  result.recoveries = agg.breakdown.recovery_count;
  if (result.recoveries == 0) return result;
  const double n = static_cast<double>(result.recoveries);
  const auto& c = agg.breakdown.recovery_components;
  result.window_s = agg.breakdown.recovery_window_s / n;
  result.detection_s = c[obs::PathComponent::kDetection] / n;
  result.scheduling_s = c[obs::PathComponent::kScheduling] / n;
  result.launch_s = c[obs::PathComponent::kLaunch] / n;
  result.init_s = c[obs::PathComponent::kInit] / n;
  result.restore_s = c[obs::PathComponent::kRestore] / n;
  result.re_exec_s = c[obs::PathComponent::kReExec] / n;
  return result;
}

}  // namespace canary::harness
