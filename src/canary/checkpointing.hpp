// Checkpointing Module (paper §IV-C4, Algorithm 1).
//
// After each committed state the module persists the application state and
// registered critical data: payloads within the KV store's per-entry limit
// go to the KV store (Ignite); larger payloads spill to the fastest
// storage tier with capacity, and only the {name, location} record is
// pushed to the KV store. Checkpoints are first written to the KV store /
// memory tier and flushed asynchronously to shared storage, which is what
// makes them survive node-level failures (§V-D6). The latest n
// checkpoints are retained per function; n starts at 3 and adapts to the
// checkpoint payload size and the state production frequency (§IV-C4b).
//
// Implicit vs. explicit checkpointing (§IV-C4b): explicit mode lets the
// application register a subset of its state, shrinking every payload by
// `explicit_payload_factor` at the cost of programming effort.
#pragma once

#include <optional>
#include <string>

#include "canary/metadata.hpp"
#include "cluster/cluster.hpp"
#include "cluster/network.hpp"
#include "cluster/storage.hpp"
#include "common/ids.hpp"
#include "faas/events.hpp"
#include "kvstore/kvstore.hpp"
#include "obs/event_log.hpp"
#include "obs/metric_registry.hpp"
#include "obs/span.hpp"
#include "sim/simulator.hpp"

namespace canary::core {

struct CheckpointingConfig {
  bool enabled = true;
  /// Fraction of the nominal checkpoint payload actually persisted;
  /// 1.0 = implicit (whole state), <1.0 = explicit user-registered state.
  double explicit_payload_factor = 1.0;
  unsigned initial_retention = 3;  // paper: "initial value of n is set to 3"
  unsigned min_retention = 2;
  unsigned max_retention = 5;
  /// Retention adapts when checkpoints are produced faster than these
  /// thresholds (frequent small states -> keep more).
  Duration fast_state_threshold = Duration::msec(500);
  Duration medium_state_threshold = Duration::sec(2.0);
  /// Delay before the asynchronous flush of a node-local checkpoint to
  /// shared storage begins.
  Duration async_flush_delay = Duration::msec(200);
  /// Size of the {name, location, state} record pushed to the KV store
  /// when the payload itself spills to a storage tier.
  Bytes metadata_size = Bytes::of(512);
  /// Checkpoint compression: trades CPU time (modelled at zstd-class
  /// throughput) for payload bytes — smaller checkpoints fit the KV
  /// store's entry limit more often and restore faster across the
  /// network. Ratio calibrated on the repository's own LZ kernel over
  /// model-weight-like data.
  bool compress = false;
  double compression_ratio = 2.8;
  double compress_mib_per_sec = 400.0;
  double decompress_mib_per_sec = 1200.0;
};

/// Where to resume a failed function and how long loading the checkpoint
/// will take on the target node.
struct RestorePlan {
  std::size_t from_state = 0;
  Duration restore_time = Duration::zero();
  std::optional<CheckpointId> checkpoint;
};

class CheckpointingModule {
 public:
  CheckpointingModule(sim::Simulator& simulator, cluster::Cluster& cluster,
                      const cluster::StorageHierarchy& storage,
                      const cluster::NetworkModel& network, kv::KvStore& store,
                      MetadataStore& metadata, obs::MetricRegistry& metrics,
                      CheckpointingConfig config);

  const CheckpointingConfig& config() const { return config_; }

  /// Record checkpoint-write spans into `spans` (null disables).
  void set_spans(obs::SpanRecorder* spans) { spans_ = spans; }
  /// Append kCheckpoint leaf events to each invocation's causal chain
  /// (null disables).
  void set_event_log(obs::EventLog* events) { events_ = events; }

  /// Time appended to state `idx` for writing its checkpoint. Pure in
  /// (spec, idx); used for scheduling and attempt-duration estimates.
  Duration state_epilogue(const faas::Invocation& inv, std::size_t idx) const;

  /// Record the checkpoint for committed state `idx`: KV write or spill,
  /// retention enforcement, and async flush scheduling.
  void on_state_committed(const faas::Invocation& inv, std::size_t idx);

  /// Latest restorable checkpoint for `fn` when recovering onto
  /// `target_node`. Checkpoints whose only copy sat on a dead node and
  /// was not yet flushed are skipped (older checkpoints are consulted).
  RestorePlan restore_plan(FunctionId fn, NodeId target_node) const;

  /// Dynamic latest-n retention for a function (paper §IV-C4b).
  unsigned retention_for(const faas::FunctionSpec& spec) const;

  /// Drop all checkpoints of a completed function.
  void drop_function(FunctionId fn);

  /// Split-brain probe: a logically fenced (minority-partition) worker
  /// finished executing `fn` and now tries to commit. The attempt is a
  /// REAL writer-attributed KV put routed through the store's epoch gate;
  /// a correct gate rejects it (stale epoch) and the commit is a no-op.
  /// Metrics record the outcome — the chaos no-split-brain oracle asserts
  /// zombie_commits_committed stays zero.
  void zombie_commit(NodeId node, FunctionId fn);

  static std::string kv_key(FunctionId fn, std::size_t state_idx);

 private:
  Bytes effective_payload(const faas::FunctionSpec& spec,
                          std::size_t idx) const;
  Duration compression_time(const faas::FunctionSpec& spec,
                            std::size_t idx) const;
  Duration decompression_time(Bytes compressed) const;

  sim::Simulator& sim_;
  cluster::Cluster& cluster_;
  const cluster::StorageHierarchy& storage_;
  const cluster::NetworkModel& network_;
  kv::KvStore& store_;
  MetadataStore& metadata_;
  obs::MetricRegistry& metrics_;
  obs::SpanRecorder* spans_ = nullptr;
  obs::EventLog* events_ = nullptr;
  CheckpointingConfig config_;
  IdGenerator<CheckpointId> ids_;
};

}  // namespace canary::core
