#include "canary/runtime_manager.hpp"

#include <algorithm>

namespace canary::core {

ReplicaId RuntimeManagerModule::register_replica(faas::RuntimeImage image,
                                                 NodeId node,
                                                 ContainerId container) {
  ReplicationInfoRow row;
  row.replica = ids_.next();
  row.runtime = image;
  row.worker = node;
  row.container = container;
  row.status = ReplicaStatus::kLaunching;
  row.created = platform_.simulator().now();
  const ReplicaId id = row.replica;
  metadata_.insert_replica(std::move(row));
  return id;
}

void RuntimeManagerModule::mark_active(ContainerId container) {
  auto* row = metadata_.replica_by_container(container);
  if (row != nullptr && row->status == ReplicaStatus::kLaunching) {
    row->status = ReplicaStatus::kActive;
  }
}

void RuntimeManagerModule::mark_dead(ContainerId container) {
  auto* row = metadata_.replica_by_container(container);
  if (row != nullptr && row->status != ReplicaStatus::kConsumed) {
    row->status = ReplicaStatus::kDead;
  }
}

std::optional<ReplicationInfoRow> RuntimeManagerModule::acquire(
    faas::RuntimeImage image, std::optional<NodeId> prefer,
    std::optional<NodeId> avoid, std::optional<std::uint32_t> avoid_zone) {
  ReplicationInfoRow* best = nullptr;
  int best_score = 0;
  for (const auto* row_view : metadata_.replicas_of(image)) {
    auto* row = metadata_.mutable_replica(row_view->replica);
    if (row->status != ReplicaStatus::kActive) continue;
    if (!cluster_.node(row->worker).alive()) continue;
    if (avoid && row->worker == *avoid) continue;
    // Locality score: same node beats same rack beats anywhere. A replica
    // inside the avoided fault domain is pushed below every outside
    // candidate (the whole zone may be about to go) but stays eligible.
    int score = 1;
    if (prefer && cluster_.contains(*prefer)) {
      if (row->worker == *prefer) {
        score = 3;
      } else if (cluster_.rack_distance(row->worker, *prefer) == 0) {
        score = 2;
      }
    }
    if (avoid_zone && cluster_.zone_of(row->worker) == *avoid_zone) {
      score -= 100;
    }
    if (best == nullptr || score > best_score) {
      best = row;
      best_score = score;
    }
  }
  if (best == nullptr) return std::nullopt;
  best->status = ReplicaStatus::kConsumed;
  return *best;
}

std::size_t RuntimeManagerModule::active_count(
    faas::RuntimeImage image) const {
  std::size_t count = 0;
  for (const auto* row : metadata_.replicas_of(image)) {
    if (row->status == ReplicaStatus::kActive) ++count;
  }
  return count;
}

std::size_t RuntimeManagerModule::pending_count(
    faas::RuntimeImage image) const {
  std::size_t count = 0;
  for (const auto* row : metadata_.replicas_of(image)) {
    if (row->status == ReplicaStatus::kLaunching) ++count;
  }
  return count;
}

std::vector<NodeId> RuntimeManagerModule::replica_nodes(
    faas::RuntimeImage image) const {
  std::vector<NodeId> nodes;
  for (const auto* row : metadata_.replicas_of(image)) {
    if (row->status == ReplicaStatus::kActive ||
        row->status == ReplicaStatus::kLaunching) {
      nodes.push_back(row->worker);
    }
  }
  std::sort(nodes.begin(), nodes.end());
  nodes.erase(std::unique(nodes.begin(), nodes.end()), nodes.end());
  return nodes;
}

std::optional<ReplicationInfoRow> RuntimeManagerModule::promise_launching(
    faas::RuntimeImage image, Duration min_age) {
  ReplicationInfoRow* best = nullptr;
  const TimePoint now = platform_.simulator().now();
  for (const auto* row_view : metadata_.replicas_of(image)) {
    auto* row = metadata_.mutable_replica(row_view->replica);
    if (row->status != ReplicaStatus::kLaunching) continue;
    if (!cluster_.node(row->worker).alive()) continue;
    if (now - row->created < min_age) continue;
    // Oldest launching replica = closest to warm = shortest wait.
    if (best == nullptr || row->created < best->created) best = row;
  }
  if (best == nullptr) return std::nullopt;
  best->status = ReplicaStatus::kConsumed;
  return *best;
}

std::optional<ContainerId> RuntimeManagerModule::retire_one(
    faas::RuntimeImage image) {
  ReplicationInfoRow* newest = nullptr;
  for (const auto* row_view : metadata_.replicas_of(image)) {
    auto* row = metadata_.mutable_replica(row_view->replica);
    if (row->status != ReplicaStatus::kActive) continue;
    if (newest == nullptr || row->created > newest->created) newest = row;
  }
  if (newest == nullptr) return std::nullopt;
  newest->status = ReplicaStatus::kDead;
  return newest->container;
}

}  // namespace canary::core
