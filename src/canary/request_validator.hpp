// Request Validator Module (paper §IV-C2).
//
// Prevents request failures before the platform processes a job: verifies
// the requested resources against the FaaS platform's limits and checks
// that launching the job's functions would not exceed the account's
// maximum concurrent function limit. Jobs that would trip the concurrency
// limit are queued by the Core Module until capacity frees up; jobs that
// can never run (per-function memory beyond the platform maximum) are
// rejected outright.
#pragma once

#include <string>

#include "faas/function.hpp"
#include "faas/platform.hpp"

namespace canary::core {

enum class Verdict {
  kAccept,  // safe to submit now
  kQueue,   // valid but would exceed concurrency right now
  kReject,  // can never be satisfied (request failure prevented)
};

struct ValidationResult {
  Verdict verdict = Verdict::kAccept;
  std::string reason;
};

class RequestValidator {
 public:
  explicit RequestValidator(const faas::PlatformLimits& limits)
      : limits_(limits) {}

  /// `in_flight` is the number of functions currently running or pending
  /// for this account, tracked by the Core Module.
  ValidationResult validate(const faas::JobSpec& job,
                            std::size_t in_flight) const;

 private:
  faas::PlatformLimits limits_;
};

}  // namespace canary::core
