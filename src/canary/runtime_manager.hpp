// Runtime Manager Module (paper §IV-C3).
//
// Tracks every runtime replica deployed in the cluster and their
// locations, and maps failed functions to the best replicated runtime:
// the Core Module asks `acquire()` for a warm replica of the failed
// function's runtime, preferring the failed function's node (checkpoint
// locality), then its rack, so recovery time stays minimal on
// heterogeneous resources (§IV-C5b).
#pragma once

#include <optional>

#include "canary/metadata.hpp"
#include "cluster/cluster.hpp"
#include "faas/platform.hpp"

namespace canary::core {

class RuntimeManagerModule {
 public:
  RuntimeManagerModule(faas::Platform& platform, cluster::Cluster& cluster,
                       MetadataStore& metadata)
      : platform_(platform), cluster_(cluster), metadata_(metadata) {}

  /// Record a replica whose container launch was just initiated.
  ReplicaId register_replica(faas::RuntimeImage image, NodeId node,
                             ContainerId container);

  /// The replica's container reached the Warm state.
  void mark_active(ContainerId container);

  /// The replica's container was destroyed (node failure or retirement).
  void mark_dead(ContainerId container);

  /// Best active replica for `image`: same node as `prefer`, then same
  /// rack, then lowest replica id. The replica is marked consumed — its
  /// container now belongs to the recovering function. Replicas hosted on
  /// `avoid` are skipped (without being consumed) — the recovery watchdog
  /// routes stalled functions away from gray workers this way. Replicas in
  /// `avoid_zone` (the failed worker's fault domain, suspect of a
  /// correlated outage) lose to any replica outside it, but remain a
  /// fallback when every replica sits in that zone.
  std::optional<ReplicationInfoRow> acquire(
      faas::RuntimeImage image, std::optional<NodeId> prefer,
      std::optional<NodeId> avoid = std::nullopt,
      std::optional<std::uint32_t> avoid_zone = std::nullopt);

  /// Replicas that are warm and unconsumed.
  std::size_t active_count(faas::RuntimeImage image) const;
  /// Replicas still launching/initializing.
  std::size_t pending_count(faas::RuntimeImage image) const;
  /// Nodes currently hosting live (active or pending) replicas of `image`.
  std::vector<NodeId> replica_nodes(faas::RuntimeImage image) const;

  /// Pick one active replica to retire (most recently created first, so
  /// long-warm replicas are kept). Marks it dead and returns the
  /// container for the caller to destroy.
  std::optional<ContainerId> retire_one(faas::RuntimeImage image);

  /// Reserve a replica that is still launching/initializing for an
  /// SLA-urgent recovery: marked consumed immediately so nobody else
  /// claims it; the caller dispatches once the container turns warm.
  /// Only replicas at least `min_age` into their startup qualify — a
  /// freshly-launched replica offers no head start over a cold container
  /// and is worth more staying in the pool.
  std::optional<ReplicationInfoRow> promise_launching(
      faas::RuntimeImage image, Duration min_age = Duration::zero());

 private:
  faas::Platform& platform_;
  cluster::Cluster& cluster_;
  MetadataStore& metadata_;
  IdGenerator<ReplicaId> ids_;
};

}  // namespace canary::core
