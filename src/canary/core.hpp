// Core Module (paper §IV-C1) — the orchestrator of the Canary framework.
//
// Receives job requests through a listener interface, validates them via
// the Request Validator, creates the database entries, and coordinates
// the Checkpointing, Replication and Runtime Manager modules. On function
// failure it identifies the failed function's runtime, gathers the latest
// checkpoint, selects the best replicated runtime, and redeploys the
// function there with its state restored; with no replica available it
// falls back to a cold container (still restoring the checkpoint), which
// degenerates to the retry strategy's launch cost — exactly the paper's
// lenient-replication worst case.
//
// CoreModule plugs into the Platform as its RecoveryHandler (replacing
// retry), its ExecutionHooks (checkpoint overhead + records), and a
// PlatformObserver (bookkeeping).
#pragma once

#include <deque>

#include <optional>
#include <unordered_map>
#include <unordered_set>

#include "canary/checkpointing.hpp"
#include "canary/failure_detector.hpp"
#include "canary/metadata.hpp"
#include "canary/proactive.hpp"
#include "canary/replication.hpp"
#include "canary/request_validator.hpp"
#include "canary/runtime_manager.hpp"
#include "cluster/storage.hpp"
#include "faas/events.hpp"
#include "faas/platform.hpp"
#include "kvstore/kvstore.hpp"

namespace canary::core {

struct CanaryConfig {
  CheckpointingConfig checkpointing;
  ReplicationConfig replication;
  /// Proactive failure prediction/mitigation (future-work extension).
  ProactiveConfig proactive;
  /// SLA-aware recovery (future-work extension): deadline-threatened
  /// functions may reserve a replica that is still launching instead of
  /// falling back to a cold container.
  bool sla_aware = false;
  /// Fault-domain-aware recovery: when the failed worker is dead, its
  /// whole zone is treated as suspect of a correlated outage — replica
  /// acquisition and cold-fallback placement route out of that zone when
  /// any other zone has capacity. Off by default (domain-blind recovery).
  bool spread_fault_domains = false;
  /// Reassignment/routing overhead when migrating a failed function onto
  /// a replicated runtime (in addition to checkpoint restore time).
  Duration migration_overhead = Duration::msec(50);
  /// Recovery-action watchdog: a recovery dispatch (replica claim or cold
  /// fallback) that has not begun executing within this window is treated
  /// as stalled — the attempt is killed with FailureKind::kRecoveryStall
  /// and re-routed away from the stalled worker (gray nodes launch
  /// containers arbitrarily slowly but never fail them). zero() disables
  /// the watchdog (the legacy behaviour).
  Duration recovery_action_timeout = Duration::zero();
  /// Each consecutive stall of the same function widens the watchdog
  /// window by this factor (capped), so a genuinely slow cluster is not
  /// re-routed into a kill storm.
  double recovery_backoff_factor = 2.0;
  Duration recovery_backoff_cap = Duration::sec(8.0);
};

class CoreModule final : public faas::RecoveryHandler,
                         public faas::ExecutionHooks,
                         public faas::PlatformObserver,
                         public FailureDetectorListener {
 public:
  CoreModule(faas::Platform& platform, kv::KvStore& store,
             const cluster::StorageHierarchy& storage, CanaryConfig config);

  /// Register this module as the platform's recovery handler, execution
  /// hooks, and observer. Call once before submitting jobs.
  void install();

  /// Listener interface: validate and submit (or queue) a job. Returns
  /// the platform JobId, or JobId::invalid() when the job was queued
  /// because launching it now would exceed the concurrency limit — it is
  /// submitted automatically as capacity frees (§IV-C2).
  Result<JobId> submit_job(faas::JobSpec spec);

  std::size_t queued_jobs() const { return queue_.size(); }
  std::size_t in_flight_functions() const { return in_flight_; }

  MetadataStore& metadata() { return metadata_; }
  CheckpointingModule& checkpointing() { return checkpointing_; }
  ReplicationModule& replication() { return replication_; }
  RuntimeManagerModule& runtime_manager() { return runtime_manager_; }
  const ProactiveMitigator& proactive() const { return mitigator_; }

  // ---- RecoveryHandler --------------------------------------------------
  void on_failure(const faas::Invocation& inv,
                  const faas::FailureInfo& info) override;

  // ---- ExecutionHooks ----------------------------------------------------
  Duration state_epilogue(const faas::Invocation& inv,
                          std::size_t state_idx) override;
  void on_state_committed(const faas::Invocation& inv,
                          std::size_t state_idx) override;

  // ---- PlatformObserver ---------------------------------------------------
  void on_job_submitted(JobId job) override;
  void on_attempt_started(const faas::Invocation& inv) override;
  void on_function_completed(const faas::Invocation& inv) override;
  void on_function_failed(const faas::Invocation& inv,
                          const faas::FailureInfo& info) override;
  void on_container_ready(const faas::Container& c) override;
  void on_container_destroyed(const faas::Container& c) override;
  void on_job_completed(JobId job) override;

  // ---- FailureDetectorListener ---------------------------------------------
  /// Heartbeat-suspected workers are avoided by recovery placement and
  /// replica acquisition exactly like the proactive mitigator's suspects.
  void on_worker_suspected(NodeId node, double suspicion) override;
  void on_worker_unsuspected(NodeId node) override;
  void on_worker_confirmed_dead(NodeId node) override;

  std::uint64_t recovery_stalls() const { return recovery_stalls_; }

 private:
  void refresh_worker_table();
  void drain_queue();
  /// Suspect by either signal source: the reactive proactive-mitigation
  /// predictor or the heartbeat failure detector.
  bool node_suspect(NodeId node) const;
  /// Dispatch a recovery for `inv`, routing around `avoid` (a worker the
  /// watchdog observed stalling this function's previous recovery).
  void dispatch_recovery(const faas::Invocation& inv,
                         std::optional<NodeId> avoid);
  /// Cold-path recovery: restore the checkpoint onto a fresh container,
  /// steering clear of `avoid_zone` when fault-domain spreading is on.
  void recover_cold(const faas::Invocation& inv,
                    std::optional<NodeId> avoid = std::nullopt,
                    std::optional<std::uint32_t> avoid_zone = std::nullopt);
  /// The failed worker's zone when it should be routed around: set only
  /// when fault-domain spreading is on and the worker is actually dead
  /// (a correlated outage may be eating the rest of its zone right now).
  std::optional<std::uint32_t> recovery_avoid_zone(
      const faas::Invocation& inv) const;
  void arm_recovery_watch(FunctionId id, NodeId target);
  void recovery_watch_fired(FunctionId id);
  void disarm_recovery_watch(FunctionId id);
  /// Whether the function's job deadline is threatened if recovery pays a
  /// full cold start.
  bool sla_urgent(const faas::Invocation& inv) const;
  /// Mark which recovery path handled `inv` in the span timeline.
  void recovery_instant(const faas::Invocation& inv, const char* name);

  faas::Platform& platform_;
  /// Retained for split-brain fencing: a worker the detector confirms dead
  /// is fenced at the store, so a minority-side zombie's late commit is
  /// rejected as stale-epoch.
  kv::KvStore& store_;
  CanaryConfig config_;
  MetadataStore metadata_;
  RequestValidator validator_;
  CheckpointingModule checkpointing_;
  RuntimeManagerModule runtime_manager_;
  ReplicationModule replication_;
  ProactiveMitigator mitigator_;

  std::deque<faas::JobSpec> queue_;
  std::size_t in_flight_ = 0;
  bool installed_ = false;
  /// Job deadlines for SLA-aware recovery.
  std::unordered_map<JobId, TimePoint> deadlines_;
  /// Launching replicas promised to SLA-urgent functions.
  std::unordered_map<ContainerId, FunctionId> promised_;

  /// Workers currently suspected by the heartbeat failure detector.
  std::unordered_set<NodeId> detector_suspects_;
  /// Recovery-action watchdog state per recovering function.
  struct RecoveryWatch {
    int stalls = 0;
    sim::EventHandle timer;
    NodeId target;
  };
  std::unordered_map<FunctionId, RecoveryWatch> watches_;
  /// Worker to route the next recovery of a function away from (set when
  /// the watchdog killed a stalled attempt on it).
  std::unordered_map<FunctionId, NodeId> avoid_;
  std::uint64_t recovery_stalls_ = 0;
};

}  // namespace canary::core
