// Proactive failure mitigation (the paper's stated future work: "we will
// extend the Canary framework to predict and proactively mitigate
// failures", §VII; proactive fault tolerance per §VI-B [84]-[87]).
//
// Container failures cluster before node failures (flaky NIC, thermal
// throttling, dying disk): the mitigator keeps a sliding window of
// container-failure observations per worker and marks a worker *suspect*
// once its recent failure count crosses a threshold. The Core Module then
//   * steers replica placement and recovery away from suspect workers,
//   * pre-scales the replica pool while suspects exist (so an eventual
//     node failure finds enough warm runtimes).
#pragma once

#include <deque>
#include <unordered_map>
#include <vector>

#include "common/ids.hpp"
#include "common/time.hpp"
#include "sim/simulator.hpp"

namespace canary::core {

struct ProactiveConfig {
  bool enabled = false;
  /// Container failures on one worker within `window` that make it
  /// suspect.
  int suspect_threshold = 3;
  Duration window = Duration::sec(30.0);
  /// Multiplier applied to replica targets while any worker is suspect.
  double prescale_factor = 1.5;
};

class ProactiveMitigator {
 public:
  ProactiveMitigator(sim::Simulator& simulator, ProactiveConfig config)
      : sim_(simulator), config_(config) {}

  const ProactiveConfig& config() const { return config_; }

  /// Record a container failure on `node`. Returns true if this
  /// observation newly marked the node suspect.
  bool observe_failure(NodeId node);

  /// Whether `node` is currently predicted to be failing.
  bool is_suspect(NodeId node) const;
  bool any_suspect() const;
  std::vector<NodeId> suspects() const;

  /// Replica-target multiplier for the current suspicion state.
  double replica_boost() const {
    return config_.enabled && any_suspect() ? config_.prescale_factor : 1.0;
  }

 private:
  void prune(std::deque<TimePoint>& events) const;

  sim::Simulator& sim_;
  ProactiveConfig config_;
  mutable std::unordered_map<NodeId, std::deque<TimePoint>> failures_;
};

}  // namespace canary::core
