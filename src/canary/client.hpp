// Application-facing checkpoint API (paper §IV-C4a).
//
// "With minimum modification to the function code, application states are
// registered by calling the Canary APIs" — this is that client library.
// A stateful function constructs one CheckpointClient, optionally
// registers critical-data providers ("the functionality to define
// critical data within the application code that should be replicated and
// persisted"), and calls save() after each state. The client implements
// Algorithm 1 end to end against the real KV store:
//   * payloads within the per-entry limit go to the KV store directly;
//   * oversized payloads go to the blob store (the disk / storage-tier
//     stand-in) with only the {name, location} record in the KV store;
//   * the latest n checkpoints are retained, older ones removed.
// On recovery, load_latest() returns the newest restorable state.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "common/result.hpp"
#include "kvstore/kvstore.hpp"

namespace canary::client {

/// Bulk storage for checkpoints beyond the KV per-entry limit (Algorithm
/// 1's "ckpt_data -> disk"). Production deployments back this with a
/// shared filesystem or object store; InMemoryBlobStore serves tests,
/// examples and simulation.
class BlobStore {
 public:
  virtual ~BlobStore() = default;
  virtual Status put(const std::string& name, std::string data) = 0;
  virtual Result<std::string> get(const std::string& name) const = 0;
  virtual Status remove(const std::string& name) = 0;
};

class InMemoryBlobStore final : public BlobStore {
 public:
  Status put(const std::string& name, std::string data) override;
  Result<std::string> get(const std::string& name) const override;
  Status remove(const std::string& name) override;
  std::size_t size() const { return blobs_.size(); }

 private:
  std::unordered_map<std::string, std::string> blobs_;
};

struct ClientConfig {
  /// Latest-n retention (paper: initial n = 3).
  unsigned retention = 3;
};

class CheckpointClient {
 public:
  /// `app_id` namespaces this function's checkpoints in the shared KV
  /// store (the paper keys by function id).
  CheckpointClient(kv::KvStore& store, BlobStore& blobs, std::string app_id,
                   ClientConfig config = {});

  /// Register a critical-data provider; captured and persisted with every
  /// subsequent checkpoint.
  void register_critical(const std::string& name,
                         std::function<std::string()> provider);

  /// Persist the application state for `state_index` (Algorithm 1).
  Status save(std::uint64_t state_index, std::string state_data);

  struct Restored {
    std::uint64_t state_index = 0;
    std::string state_data;
    std::vector<std::pair<std::string, std::string>> critical_data;
  };

  /// Newest restorable checkpoint, or nullopt if none survives.
  std::optional<Restored> load_latest() const;

  /// Remove every checkpoint of this app (called after successful
  /// completion; the final output is the application's own business).
  void clear();

  std::uint64_t checkpoints_saved() const { return saved_; }
  std::uint64_t spills() const { return spills_; }

 private:
  std::string kv_key(std::uint64_t state_index) const;
  std::string blob_name(std::uint64_t state_index) const;

  kv::KvStore& store_;
  BlobStore& blobs_;
  std::string app_id_;
  ClientConfig config_;
  std::vector<std::pair<std::string, std::function<std::string()>>> critical_;
  std::vector<std::uint64_t> saved_indices_;  // retention ring, oldest first
  std::uint64_t saved_ = 0;
  std::uint64_t spills_ = 0;
};

}  // namespace canary::client
