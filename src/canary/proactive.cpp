#include "canary/proactive.hpp"

namespace canary::core {

void ProactiveMitigator::prune(std::deque<TimePoint>& events) const {
  const TimePoint horizon =
      sim_.now().count_usec() > config_.window.count_usec()
          ? TimePoint::from_usec(sim_.now().count_usec() -
                                 config_.window.count_usec())
          : TimePoint::origin();
  while (!events.empty() && events.front() < horizon) events.pop_front();
}

bool ProactiveMitigator::observe_failure(NodeId node) {
  if (!config_.enabled) return false;
  auto& events = failures_[node];
  const bool was_suspect =
      static_cast<int>(events.size()) >= config_.suspect_threshold;
  events.push_back(sim_.now());
  prune(events);
  const bool now_suspect =
      static_cast<int>(events.size()) >= config_.suspect_threshold;
  return now_suspect && !was_suspect;
}

bool ProactiveMitigator::is_suspect(NodeId node) const {
  if (!config_.enabled) return false;
  auto it = failures_.find(node);
  if (it == failures_.end()) return false;
  prune(it->second);
  return static_cast<int>(it->second.size()) >= config_.suspect_threshold;
}

bool ProactiveMitigator::any_suspect() const {
  if (!config_.enabled) return false;
  for (const auto& [node, events] : failures_) {
    if (is_suspect(node)) return true;
  }
  return false;
}

std::vector<NodeId> ProactiveMitigator::suspects() const {
  std::vector<NodeId> result;
  if (!config_.enabled) return result;
  for (const auto& [node, events] : failures_) {
    if (is_suspect(node)) result.push_back(node);
  }
  return result;
}

}  // namespace canary::core
