#include "canary/checkpointing.hpp"

#include <algorithm>
#include <sstream>

#include "common/logging.hpp"

namespace canary::core {

CheckpointingModule::CheckpointingModule(
    sim::Simulator& simulator, cluster::Cluster& cluster,
    const cluster::StorageHierarchy& storage,
    const cluster::NetworkModel& network, kv::KvStore& store,
    MetadataStore& metadata, obs::MetricRegistry& metrics,
    CheckpointingConfig config)
    : sim_(simulator),
      cluster_(cluster),
      storage_(storage),
      network_(network),
      store_(store),
      metadata_(metadata),
      metrics_(metrics),
      config_(config) {}

std::string CheckpointingModule::kv_key(FunctionId fn, std::size_t state_idx) {
  return "ckpt/" + to_string(fn) + "/" + std::to_string(state_idx);
}

Bytes CheckpointingModule::effective_payload(const faas::FunctionSpec& spec,
                                             std::size_t idx) const {
  const Bytes nominal = spec.states[idx].checkpoint_payload;
  double scaled =
      static_cast<double>(nominal.count()) * config_.explicit_payload_factor;
  if (config_.compress) scaled /= config_.compression_ratio;
  return Bytes::of(static_cast<std::uint64_t>(scaled));
}

Duration CheckpointingModule::compression_time(const faas::FunctionSpec& spec,
                                               std::size_t idx) const {
  if (!config_.compress) return Duration::zero();
  // CPU cost is paid on the uncompressed (registered) bytes.
  const double mib = static_cast<double>(spec.states[idx].checkpoint_payload
                                             .count()) *
                     config_.explicit_payload_factor / (1024.0 * 1024.0);
  return Duration::sec(mib / config_.compress_mib_per_sec);
}

Duration CheckpointingModule::decompression_time(Bytes compressed) const {
  if (!config_.compress) return Duration::zero();
  const double mib =
      compressed.to_mib() * config_.compression_ratio;  // output bytes
  return Duration::sec(mib / config_.decompress_mib_per_sec);
}

Duration CheckpointingModule::state_epilogue(const faas::Invocation& inv,
                                             std::size_t idx) const {
  if (!config_.enabled) return Duration::zero();
  const Bytes payload = effective_payload(*inv.spec, idx);
  const Duration compress = compression_time(*inv.spec, idx);
  if (payload.count() == 0) {
    // State-only checkpoint: just the state record into the KV store.
    return storage_.write_time(cluster::StorageTier::kKvStore,
                               config_.metadata_size);
  }
  if (payload <= store_.config().max_entry_size) {
    return compress +
           storage_.write_time(cluster::StorageTier::kKvStore, payload);
  }
  // Spill path: bulk write to the fastest tier with capacity plus the
  // location record into the KV store (Algorithm 1 lines 5-8).
  const auto tier = storage_.spill_tier_for(payload);
  const Duration bulk = tier ? storage_.write_time(*tier, payload)
                             : storage_.write_time(
                                   cluster::StorageTier::kNfs, payload);
  return compress + bulk +
         storage_.write_time(cluster::StorageTier::kKvStore,
                             config_.metadata_size);
}

unsigned CheckpointingModule::retention_for(
    const faas::FunctionSpec& spec) const {
  if (spec.states.empty()) return config_.initial_retention;
  bool oversized = false;
  Duration total = Duration::zero();
  for (std::size_t i = 0; i < spec.states.size(); ++i) {
    total += spec.states[i].duration;
    if (effective_payload(spec, i) > store_.config().max_entry_size) {
      oversized = true;
    }
  }
  // Large payloads: keep fewer to bound memory/tier pressure.
  if (oversized) return config_.min_retention;
  const Duration mean = total / static_cast<std::int64_t>(spec.states.size());
  // Frequent small states: keep more so a lagging async flush still
  // leaves a usable recent checkpoint.
  if (mean < config_.fast_state_threshold) return config_.max_retention;
  if (mean < config_.medium_state_threshold) {
    return std::min(config_.max_retention, config_.initial_retention + 1);
  }
  return config_.initial_retention;
}

void CheckpointingModule::on_state_committed(const faas::Invocation& inv,
                                             std::size_t idx) {
  if (!config_.enabled) return;
  const Bytes payload = effective_payload(*inv.spec, idx);
  const std::string key = kv_key(inv.id, idx);

  CheckpointInfoRow row;
  row.checkpoint = ids_.next();
  row.job = inv.job;
  row.function = inv.id;
  row.state_index = idx;
  row.payload = payload;
  row.stored_on = inv.node;
  row.kv_key = key;
  row.created = sim_.now();

  std::ostringstream meta;
  meta << "job=" << to_string(inv.job) << ";fn=" << to_string(inv.id)
       << ";state=" << idx << ";bytes=" << payload.count();

  if (payload <= store_.config().max_entry_size) {
    row.location = cluster::StorageTier::kKvStore;
    // The KV store is replicated (and persistent in the testbed config),
    // so in-KV checkpoints survive node failures immediately.
    row.flushed_to_shared = true;
    const Status put = store_.put(key, meta.str(), payload, inv.node);
    if (!put.ok()) {
      // A degraded store (shard fault, capacity, fenced/partitioned
      // writer) must never crash the checkpoint path: the state commit
      // stands, this checkpoint is simply not durable — recovery falls
      // back to an older intact row or full re-execution.
      metrics_.count("checkpoint_write_failures");
      CANARY_LOG_WARN("checkpoint put failed for " << key << ": "
                                                   << put.error().message);
      return;
    }
  } else {
    const auto tier = storage_.spill_tier_for(payload);
    row.location = tier.value_or(cluster::StorageTier::kNfs);
    const auto& tier_profile = storage_.profile(row.location);
    row.flushed_to_shared = tier_profile.shared;
    meta << ";loc=" << to_string_view(row.location);
    const Status put = store_.put(key, meta.str(), config_.metadata_size,
                                  inv.node);
    if (!put.ok()) {
      metrics_.count("checkpoint_write_failures");
      CANARY_LOG_WARN("checkpoint metadata put failed for "
                      << key << ": " << put.error().message);
      return;
    }
    metrics_.count("checkpoint_spills");
  }
  metrics_.count("checkpoints_written");
  metrics_.sample("checkpoint_payload_mib", payload.to_mib());
  if (spans_ != nullptr) {
    // The commit fires at the end of the state's epilogue, so the write
    // window is the epilogue interval ending now.
    const Duration write = state_epilogue(inv, idx);
    obs::SpanLabels labels{inv.job, inv.id, inv.container, inv.node,
                           inv.attempt};
    spans_->record(obs::SpanKind::kCheckpoint, "checkpoint",
                   sim_.now() - write, sim_.now(), labels);
  }
  if (events_ != nullptr && inv.trace.valid()) {
    // Leaf event off the invocation's chain: checkpoints are side effects
    // of the state commit, not steps on the critical path.
    obs::SpanLabels labels{inv.job, inv.id, inv.container, inv.node,
                           inv.attempt};
    events_->append(inv.trace, obs::EventKind::kCheckpoint,
                    "checkpoint_" + std::to_string(idx), sim_.now(), labels);
  }

  // A recommit of the same state (after a restore) replaces the old row.
  for (const auto* existing : metadata_.checkpoints_of(inv.id)) {
    if (existing->state_index == idx) {
      metadata_.remove_checkpoint(existing->checkpoint);
      break;
    }
  }
  const CheckpointId row_id = row.checkpoint;
  const bool needs_flush = !row.flushed_to_shared;
  metadata_.insert_checkpoint(std::move(row));

  // Retention: keep the latest n checkpoints (Algorithm 1 lines 14-16).
  const unsigned retention = retention_for(*inv.spec);
  auto rows = metadata_.checkpoints_of(inv.id);
  while (rows.size() > retention) {
    const auto* oldest = rows.front();
    (void)store_.remove(oldest->kv_key);
    metadata_.remove_checkpoint(oldest->checkpoint);
    rows.erase(rows.begin());
  }

  if (needs_flush) {
    // Asynchronous flush to shared storage; until it completes the spilled
    // checkpoint dies with its node.
    const Duration flush_time =
        config_.async_flush_delay +
        storage_.write_time(cluster::StorageTier::kNfs, payload);
    sim_.schedule_after(flush_time, [this, row_id] {
      auto* pending = metadata_.mutable_checkpoint(row_id);
      if (pending == nullptr) return;  // evicted by retention meanwhile
      if (!cluster_.node(pending->stored_on).alive()) return;  // lost
      pending->flushed_to_shared = true;
    });
  }
}

RestorePlan CheckpointingModule::restore_plan(FunctionId fn,
                                              NodeId target_node) const {
  RestorePlan plan;
  if (!config_.enabled) return plan;
  auto rows = metadata_.checkpoints_of(fn);
  for (auto it = rows.rbegin(); it != rows.rend(); ++it) {
    const CheckpointInfoRow& row = **it;
    Duration read = Duration::zero();
    if (row.location == cluster::StorageTier::kKvStore) {
      if (!store_.contains(row.kv_key)) continue;  // lost with cache nodes
      if (!store_.intact(row.kv_key)) {
        // Checksum mismatch: the entry survived but its payload is
        // damaged. Restoring it would silently resurrect corrupt state —
        // skip to the next-older checkpoint (or full re-execution).
        metrics_.count("checkpoint_corrupt_skipped");
        continue;
      }
      read = storage_.read_time(cluster::StorageTier::kKvStore, row.payload);
    } else {
      const auto& tier_profile = storage_.profile(row.location);
      const bool source_alive = cluster_.node(row.stored_on).alive();
      if (tier_profile.shared) {
        read = storage_.read_time(row.location, row.payload);
      } else if (source_alive) {
        read = storage_.read_time(row.location, row.payload) +
               network_.transfer_time(row.stored_on, target_node, row.payload);
      } else if (row.flushed_to_shared) {
        read = storage_.read_time(cluster::StorageTier::kNfs, row.payload);
      } else {
        continue;  // only copy died with its node and was never flushed
      }
      // The location record still comes out of the KV store first.
      read += storage_.read_time(cluster::StorageTier::kKvStore,
                                 config_.metadata_size);
    }
    plan.from_state = row.state_index + 1;
    plan.restore_time = read + decompression_time(row.payload);
    plan.checkpoint = row.checkpoint;
    // Oracle tripwire: a selected KV checkpoint must be intact (the skip
    // above filters corrupt ones). The chaos campaign asserts this
    // counter stays zero.
    if (row.location == cluster::StorageTier::kKvStore &&
        !store_.intact(row.kv_key)) {
      metrics_.count("restored_corrupt_checkpoints");
    }
    return plan;
  }
  return plan;  // no usable checkpoint: restart from the first state
}

void CheckpointingModule::zombie_commit(NodeId node, FunctionId fn) {
  metrics_.count("zombie_commit_attempts");
  // A dedicated key prefix: even a buggy gate that lets the put through
  // must not overwrite a real checkpoint row.
  const std::string key = "zombie/" + to_string(fn);
  const Status put = store_.put(key, "zombie", Bytes::of(6), node);
  if (put.ok()) {
    // Split brain: the fenced side's side effect landed. The oracle trips
    // on this counter; remove the probe entry so store contents stay
    // comparable either way.
    metrics_.count("zombie_commits_committed");
    (void)store_.remove(key);
  } else {
    metrics_.count("zombie_commits_rejected");
  }
  if (events_ != nullptr) {
    obs::SpanLabels labels;
    labels.node = node;
    labels.function = fn;
    events_->append_raw(events_->new_trace(), obs::kNoEvent,
                        obs::EventKind::kAnnotation,
                        put.ok() ? "zombie_commit_committed"
                                 : "zombie_commit_rejected",
                        sim_.now(), labels);
  }
}

void CheckpointingModule::drop_function(FunctionId fn) {
  for (const auto* row : metadata_.checkpoints_of(fn)) {
    (void)store_.remove(row->kv_key);
  }
  metadata_.remove_checkpoints_of(fn);
}

}  // namespace canary::core
