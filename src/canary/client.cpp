#include "canary/client.hpp"

#include <algorithm>
#include <cstring>

namespace canary::client {

namespace {
constexpr char kSpillPrefix[] = "SPILL:";

void append_u64(std::string& out, std::uint64_t v) {
  out.append(reinterpret_cast<const char*>(&v), sizeof(v));
}

std::uint64_t read_u64(const std::string& in, std::size_t& offset) {
  CANARY_CHECK(offset + sizeof(std::uint64_t) <= in.size(),
               "truncated checkpoint record");
  std::uint64_t v = 0;
  std::memcpy(&v, in.data() + offset, sizeof(v));
  offset += sizeof(v);
  return v;
}

void append_blob(std::string& out, const std::string& data) {
  append_u64(out, data.size());
  out.append(data);
}

std::string read_blob(const std::string& in, std::size_t& offset) {
  const std::uint64_t len = read_u64(in, offset);
  CANARY_CHECK(offset + len <= in.size(), "truncated checkpoint blob");
  std::string data = in.substr(offset, len);
  offset += len;
  return data;
}
}  // namespace

Status InMemoryBlobStore::put(const std::string& name, std::string data) {
  blobs_[name] = std::move(data);
  return Status::ok_status();
}

Result<std::string> InMemoryBlobStore::get(const std::string& name) const {
  auto it = blobs_.find(name);
  if (it == blobs_.end()) return Error::not_found("no blob: " + name);
  return it->second;
}

Status InMemoryBlobStore::remove(const std::string& name) {
  if (blobs_.erase(name) == 0) return Error::not_found("no blob: " + name);
  return Status::ok_status();
}

CheckpointClient::CheckpointClient(kv::KvStore& store, BlobStore& blobs,
                                   std::string app_id, ClientConfig config)
    : store_(store), blobs_(blobs), app_id_(std::move(app_id)),
      config_(config) {
  CANARY_CHECK(config_.retention > 0, "retention must be positive");
}

std::string CheckpointClient::kv_key(std::uint64_t state_index) const {
  return "app-ckpt/" + app_id_ + "/" + std::to_string(state_index);
}

std::string CheckpointClient::blob_name(std::uint64_t state_index) const {
  return "app-blob/" + app_id_ + "/" + std::to_string(state_index);
}

void CheckpointClient::register_critical(
    const std::string& name, std::function<std::string()> provider) {
  critical_.emplace_back(name, std::move(provider));
}

Status CheckpointClient::save(std::uint64_t state_index,
                              std::string state_data) {
  // Assemble the record: state data plus every registered critical-data
  // capture (Algorithm 1 line 12: ckpt <- {st, data_cric}).
  std::string record;
  append_u64(record, state_index);
  append_blob(record, state_data);
  append_u64(record, critical_.size());
  for (const auto& [name, provider] : critical_) {
    append_blob(record, name);
    append_blob(record, provider());
  }

  const std::string key = kv_key(state_index);
  if (Bytes::of(record.size()) <= store_.config().max_entry_size) {
    const Status put = store_.put(key, std::move(record));
    if (!put.ok()) return put;
  } else {
    // Oversized: bulk bytes to the blob store, {name, location} into the
    // KV store (Algorithm 1 lines 5-7).
    const std::string blob = blob_name(state_index);
    const Status blob_put = blobs_.put(blob, std::move(record));
    if (!blob_put.ok()) return blob_put;
    const Status put = store_.put(key, kSpillPrefix + blob);
    if (!put.ok()) return put;
    ++spills_;
  }
  ++saved_;

  // Latest-n retention (Algorithm 1 lines 14-16).
  saved_indices_.erase(
      std::remove(saved_indices_.begin(), saved_indices_.end(), state_index),
      saved_indices_.end());
  saved_indices_.push_back(state_index);
  while (saved_indices_.size() > config_.retention) {
    const std::uint64_t oldest = saved_indices_.front();
    saved_indices_.erase(saved_indices_.begin());
    (void)store_.remove(kv_key(oldest));
    (void)blobs_.remove(blob_name(oldest));
  }
  return Status::ok_status();
}

std::optional<CheckpointClient::Restored> CheckpointClient::load_latest()
    const {
  // Recovery runs in a fresh process: enumerate surviving checkpoints
  // from the KV store rather than trusting local state.
  const auto keys = store_.keys_with_prefix("app-ckpt/" + app_id_ + "/");
  std::optional<std::uint64_t> best;
  for (const auto& key : keys) {
    const auto slash = key.rfind('/');
    const std::uint64_t index = std::stoull(key.substr(slash + 1));
    if (!best || index > *best) best = index;
  }
  // Walk newest-first: a spilled record whose blob is gone falls back to
  // the next-older checkpoint.
  std::vector<std::uint64_t> indices;
  for (const auto& key : keys) {
    indices.push_back(std::stoull(key.substr(key.rfind('/') + 1)));
  }
  std::sort(indices.rbegin(), indices.rend());
  for (const std::uint64_t index : indices) {
    const auto entry = store_.get(kv_key(index));
    if (!entry.ok()) continue;
    std::string record = entry.value().payload;
    if (record.rfind(kSpillPrefix, 0) == 0) {
      const auto blob = blobs_.get(record.substr(sizeof(kSpillPrefix) - 1));
      if (!blob.ok()) continue;  // spill lost; try an older checkpoint
      record = blob.value();
    }
    Restored restored;
    std::size_t offset = 0;
    restored.state_index = read_u64(record, offset);
    restored.state_data = read_blob(record, offset);
    const std::uint64_t critical_count = read_u64(record, offset);
    for (std::uint64_t c = 0; c < critical_count; ++c) {
      std::string name = read_blob(record, offset);
      std::string data = read_blob(record, offset);
      restored.critical_data.emplace_back(std::move(name), std::move(data));
    }
    return restored;
  }
  return std::nullopt;
}

void CheckpointClient::clear() {
  for (const auto& key : store_.keys_with_prefix("app-ckpt/" + app_id_ + "/")) {
    (void)store_.remove(key);
  }
  for (const std::uint64_t index : saved_indices_) {
    (void)blobs_.remove(blob_name(index));
  }
  saved_indices_.clear();
}

}  // namespace canary::client
