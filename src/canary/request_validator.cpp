#include "canary/request_validator.hpp"

namespace canary::core {

ValidationResult RequestValidator::validate(const faas::JobSpec& job,
                                            std::size_t in_flight) const {
  if (job.functions.empty()) {
    return {Verdict::kReject, "job has no functions"};
  }
  if (job.functions.size() > limits_.max_functions_per_job) {
    return {Verdict::kReject, "job exceeds the per-job function limit"};
  }
  for (const auto& fn : job.functions) {
    if (fn.effective_memory() > limits_.max_function_memory) {
      return {Verdict::kReject,
              "function '" + fn.name + "' exceeds the memory limit"};
    }
  }
  // Queue the job only while the account is fully saturated. Submitting
  // into remaining headroom never causes a concurrency *failure* — the
  // controller buffers the overflow — and admitting early keeps the
  // in-flight population at the limit instead of draining in job-sized
  // chunks (§IV-C2).
  if (in_flight >= limits_.max_concurrent_invocations) {
    return {Verdict::kQueue,
            "account is at its concurrent invocation limit"};
  }
  return {Verdict::kAccept, ""};
}

}  // namespace canary::core
