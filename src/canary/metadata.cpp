#include "canary/metadata.hpp"

#include <algorithm>

#include "common/result.hpp"

namespace canary::core {

void MetadataStore::upsert_worker(WorkerInfoRow row) {
  workers_[row.node] = std::move(row);
}

const WorkerInfoRow* MetadataStore::worker(NodeId node) const {
  auto it = workers_.find(node);
  return it == workers_.end() ? nullptr : &it->second;
}

void MetadataStore::insert_job(JobInfoRow row) {
  CANARY_CHECK(jobs_.find(row.job) == jobs_.end(), "duplicate job row");
  jobs_.emplace(row.job, std::move(row));
}

const JobInfoRow* MetadataStore::job(JobId id) const {
  auto it = jobs_.find(id);
  return it == jobs_.end() ? nullptr : &it->second;
}

JobInfoRow* MetadataStore::mutable_job(JobId id) {
  auto it = jobs_.find(id);
  return it == jobs_.end() ? nullptr : &it->second;
}

void MetadataStore::insert_function(FunctionInfoRow row) {
  CANARY_CHECK(functions_.find(row.function) == functions_.end(),
               "duplicate function row");
  functions_.emplace(row.function, std::move(row));
}

FunctionInfoRow* MetadataStore::mutable_function(FunctionId id) {
  auto it = functions_.find(id);
  return it == functions_.end() ? nullptr : &it->second;
}

const FunctionInfoRow* MetadataStore::function(FunctionId id) const {
  auto it = functions_.find(id);
  return it == functions_.end() ? nullptr : &it->second;
}

std::vector<const FunctionInfoRow*> MetadataStore::functions_of_job(
    JobId id) const {
  std::vector<const FunctionInfoRow*> rows;
  for (const auto& [fid, row] : functions_) {
    if (row.job == id) rows.push_back(&row);
  }
  std::sort(rows.begin(), rows.end(),
            [](const FunctionInfoRow* a, const FunctionInfoRow* b) {
              return a->function < b->function;
            });
  return rows;
}

void MetadataStore::insert_checkpoint(CheckpointInfoRow row) {
  const CheckpointId id = row.checkpoint;
  const FunctionId fn = row.function;
  CANARY_CHECK(checkpoints_.find(id) == checkpoints_.end(),
               "duplicate checkpoint row");
  checkpoints_.emplace(id, std::move(row));
  checkpoints_by_fn_[fn].push_back(id);
}

void MetadataStore::remove_checkpoint(CheckpointId id) {
  auto it = checkpoints_.find(id);
  if (it == checkpoints_.end()) return;
  auto& per_fn = checkpoints_by_fn_[it->second.function];
  per_fn.erase(std::remove(per_fn.begin(), per_fn.end(), id), per_fn.end());
  checkpoints_.erase(it);
}

CheckpointInfoRow* MetadataStore::mutable_checkpoint(CheckpointId id) {
  auto it = checkpoints_.find(id);
  return it == checkpoints_.end() ? nullptr : &it->second;
}

std::vector<const CheckpointInfoRow*> MetadataStore::checkpoints_of(
    FunctionId fn) const {
  std::vector<const CheckpointInfoRow*> rows;
  auto it = checkpoints_by_fn_.find(fn);
  if (it == checkpoints_by_fn_.end()) return rows;
  rows.reserve(it->second.size());
  for (const CheckpointId id : it->second) {
    auto row = checkpoints_.find(id);
    if (row != checkpoints_.end()) rows.push_back(&row->second);
  }
  std::sort(rows.begin(), rows.end(),
            [](const CheckpointInfoRow* a, const CheckpointInfoRow* b) {
              return a->state_index < b->state_index;
            });
  return rows;
}

std::size_t MetadataStore::checkpoint_count(FunctionId fn) const {
  auto it = checkpoints_by_fn_.find(fn);
  return it == checkpoints_by_fn_.end() ? 0 : it->second.size();
}

void MetadataStore::remove_checkpoints_of(FunctionId fn) {
  auto it = checkpoints_by_fn_.find(fn);
  if (it == checkpoints_by_fn_.end()) return;
  for (const CheckpointId id : it->second) checkpoints_.erase(id);
  checkpoints_by_fn_.erase(it);
}

void MetadataStore::insert_replica(ReplicationInfoRow row) {
  CANARY_CHECK(replicas_.find(row.replica) == replicas_.end(),
               "duplicate replica row");
  replicas_.emplace(row.replica, std::move(row));
}

ReplicationInfoRow* MetadataStore::mutable_replica(ReplicaId id) {
  auto it = replicas_.find(id);
  return it == replicas_.end() ? nullptr : &it->second;
}

ReplicationInfoRow* MetadataStore::replica_by_container(ContainerId id) {
  for (auto& [rid, row] : replicas_) {
    if (row.container == id && row.status != ReplicaStatus::kDead) {
      return &row;
    }
  }
  return nullptr;
}

std::vector<const ReplicationInfoRow*> MetadataStore::replicas_of(
    faas::RuntimeImage image) const {
  std::vector<const ReplicationInfoRow*> rows;
  for (const auto& [rid, row] : replicas_) {
    if (row.runtime == image) rows.push_back(&row);
  }
  std::sort(rows.begin(), rows.end(),
            [](const ReplicationInfoRow* a, const ReplicationInfoRow* b) {
              return a->replica < b->replica;
            });
  return rows;
}

}  // namespace canary::core
