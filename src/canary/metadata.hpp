// The Core Module's database tables (paper §IV-C1).
//
// "The five main tables created in the database are worker_info, job_info,
// function_info, checkpoint_info, and replication_info." The paper keeps
// them in CouchDB; here they are typed in-memory tables with the same
// schema and the lookups the Core Module performs during recovery
// (failed function -> runtime -> replica -> latest checkpoint).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "cluster/node.hpp"
#include "cluster/storage.hpp"
#include "common/bytes.hpp"
#include "common/ids.hpp"
#include "common/time.hpp"
#include "faas/runtime.hpp"

namespace canary::core {

struct WorkerInfoRow {
  NodeId node;
  cluster::CpuClass cpu = cluster::CpuClass::kXeonGold6242;
  Bytes memory = Bytes::zero();
  std::uint32_t container_slots = 0;
  std::uint32_t rack = 0;
  /// Fault domain (availability zone) the worker lives in; recovery and
  /// replica placement spread copies across zones when configured.
  std::uint32_t zone = 0;
  bool alive = true;
  std::string role = "invoker";
  /// Heartbeat lease state published by the failure detector (§IV-C1:
  /// the Core Module monitors worker_info heartbeats). last_heartbeat is
  /// the worker-side send time of the latest delivered heartbeat;
  /// suspicion is the phi-style level (missed intervals) at the last
  /// detector sweep.
  TimePoint last_heartbeat = TimePoint::origin();
  double suspicion = 0.0;
  bool suspected = false;
};

struct JobInfoRow {
  JobId job;
  std::string name;
  AccountId account;
  std::size_t function_count = 0;
  TimePoint submitted;
  unsigned checkpoint_retention = 3;
  unsigned replication_factor = 1;
};

struct FunctionInfoRow {
  FunctionId function;
  JobId job;
  faas::RuntimeImage runtime = faas::RuntimeImage::kPython3;
  NodeId worker;         // current/last hosting worker
  ContainerId container; // current/last container
  int attempts = 0;
  bool completed = false;
};

struct CheckpointInfoRow {
  CheckpointId checkpoint;
  JobId job;
  FunctionId function;
  std::size_t state_index = 0;  // index of the committed state
  Bytes payload = Bytes::zero();
  cluster::StorageTier location = cluster::StorageTier::kKvStore;
  NodeId stored_on;  // hosting node for node-local tiers
  bool flushed_to_shared = false;
  std::string kv_key;
  TimePoint created;
};

enum class ReplicaStatus { kLaunching, kActive, kConsumed, kDead };

struct ReplicationInfoRow {
  ReplicaId replica;
  faas::RuntimeImage runtime = faas::RuntimeImage::kPython3;
  NodeId worker;
  ContainerId container;
  ReplicaStatus status = ReplicaStatus::kLaunching;
  TimePoint created;
};

class MetadataStore {
 public:
  // -- worker_info -------------------------------------------------------
  void upsert_worker(WorkerInfoRow row);
  const WorkerInfoRow* worker(NodeId node) const;
  std::size_t worker_count() const { return workers_.size(); }

  // -- job_info ----------------------------------------------------------
  void insert_job(JobInfoRow row);
  const JobInfoRow* job(JobId id) const;
  JobInfoRow* mutable_job(JobId id);

  // -- function_info -----------------------------------------------------
  void insert_function(FunctionInfoRow row);
  FunctionInfoRow* mutable_function(FunctionId id);
  const FunctionInfoRow* function(FunctionId id) const;
  std::vector<const FunctionInfoRow*> functions_of_job(JobId id) const;

  // -- checkpoint_info ---------------------------------------------------
  void insert_checkpoint(CheckpointInfoRow row);
  void remove_checkpoint(CheckpointId id);
  CheckpointInfoRow* mutable_checkpoint(CheckpointId id);
  /// Rows for `fn`, ordered oldest-first by state index.
  std::vector<const CheckpointInfoRow*> checkpoints_of(FunctionId fn) const;
  std::size_t checkpoint_count(FunctionId fn) const;
  void remove_checkpoints_of(FunctionId fn);

  // -- replication_info --------------------------------------------------
  void insert_replica(ReplicationInfoRow row);
  ReplicationInfoRow* mutable_replica(ReplicaId id);
  ReplicationInfoRow* replica_by_container(ContainerId id);
  std::vector<const ReplicationInfoRow*> replicas_of(
      faas::RuntimeImage image) const;

 private:
  std::unordered_map<NodeId, WorkerInfoRow> workers_;
  std::unordered_map<JobId, JobInfoRow> jobs_;
  std::unordered_map<FunctionId, FunctionInfoRow> functions_;
  std::unordered_map<CheckpointId, CheckpointInfoRow> checkpoints_;
  std::unordered_map<FunctionId, std::vector<CheckpointId>> checkpoints_by_fn_;
  std::unordered_map<ReplicaId, ReplicationInfoRow> replicas_;
};

}  // namespace canary::core
