// Replication Module (paper §IV-C5, Algorithm 2).
//
// Keeps warm replicated runtimes available so failed functions restart
// without the container launch + initialization cost. Replication is per
// runtime image, not per function: "instead of creating a replica of each
// running function's runtime, ... replication [triggers] when a function
// is created with a runtime that is not already replicated in the
// cluster", and a consumed replica is replaced while functions with that
// runtime remain active.
//
// Three replication strategies from §V-D4:
//  * Dynamic (DR, Canary default): the replication factor follows the
//    observed failure rate;
//  * Aggressive (AR): a high replica-to-function fraction;
//  * Lenient (LR): exactly one active replica per in-use runtime.
//
// Placement (§IV-C5b): the first replica lands on a worker hosting a job
// function; further replicas are placed away from workers already hosting
// replicas of the same runtime to avoid a single point of failure, with
// rack locality as a tiebreaker.
#pragma once

#include <unordered_map>

#include "canary/metadata.hpp"
#include "canary/proactive.hpp"
#include "canary/runtime_manager.hpp"
#include "faas/platform.hpp"
#include "obs/metric_registry.hpp"
#include "obs/span.hpp"

namespace canary::core {

enum class ReplicationMode { kDynamic, kAggressive, kLenient };

std::string_view to_string_view(ReplicationMode mode);

struct ReplicationConfig {
  bool enabled = true;
  ReplicationMode mode = ReplicationMode::kDynamic;
  /// AR: replicas >= fraction * active functions of the runtime.
  double aggressive_fraction = 0.25;
  /// DR: headroom multiplier over the estimated failure rate.
  double dynamic_safety = 1.25;
  /// DR: never exceed this fraction of active functions.
  double dynamic_cap_fraction = 0.35;
  /// DR: Bayesian prior for the failure-rate estimate before evidence.
  double failure_rate_prior = 0.05;
  double prior_strength = 20.0;
  unsigned max_replicas_per_runtime = 128;
  /// Disablable for ablation: when false, replicas are packed least-loaded
  /// with no anti-SPOF exclusion and no rack locality (§IV-C5b off).
  bool anti_spof_placement = true;
  /// Fault-domain spreading: a further replica strongly prefers a zone
  /// hosting no replica of the same runtime yet, so one correlated zone
  /// outage cannot take out the whole pool. Off by default (domain-blind
  /// placement, the pre-partition behaviour).
  bool spread_fault_domains = false;
};

class ReplicationModule {
 public:
  ReplicationModule(faas::Platform& platform, RuntimeManagerModule& manager,
                    MetadataStore& metadata, obs::MetricRegistry& metrics,
                    ReplicationConfig config)
      : platform_(platform),
        manager_(manager),
        metadata_(metadata),
        metrics_(metrics),
        config_(config) {}

  const ReplicationConfig& config() const { return config_; }

  /// Optional proactive-mitigation advisor: suspect workers are avoided
  /// for replica placement and the replica pool is pre-scaled while
  /// suspects exist.
  void set_advisor(const ProactiveMitigator* advisor) { advisor_ = advisor; }

  /// Record replica-provisioning spans (launch -> warm) into `spans`
  /// (null disables).
  void set_spans(obs::SpanRecorder* spans) { spans_ = spans; }

  // ---- event feed from the Core Module ---------------------------------
  /// Algorithm 2: runtime replication at job submission.
  void on_job_submitted(JobId job);
  void on_attempt_started(const faas::Invocation& inv);
  void on_function_completed(const faas::Invocation& inv);
  void on_failure_observed(const faas::Invocation& inv);
  void on_replica_consumed(faas::RuntimeImage image);
  void on_replica_destroyed(faas::RuntimeImage image);

  /// Current desired replica count for `image` given the strategy and the
  /// active-function census.
  unsigned target_replicas(faas::RuntimeImage image) const;

  /// Population the replication factor is computed over: submitted
  /// functions of the image, clamped to what can concurrently run (a
  /// batch queued behind the account concurrency limit cannot fail while
  /// queued, so it needs no replicas yet).
  std::size_t effective_active(faas::RuntimeImage image) const;

  /// Posterior failure-rate estimate driving Dynamic replication.
  double estimated_failure_rate() const;

  std::size_t active_functions(faas::RuntimeImage image) const;

  /// Launch/retire replicas until the live count matches the target.
  void reconcile(faas::RuntimeImage image);

 private:
  std::optional<NodeId> place_replica(faas::RuntimeImage image) const;

  faas::Platform& platform_;
  RuntimeManagerModule& manager_;
  MetadataStore& metadata_;
  obs::MetricRegistry& metrics_;
  ReplicationConfig config_;
  const ProactiveMitigator* advisor_ = nullptr;
  obs::SpanRecorder* spans_ = nullptr;
  /// Provisioning spans still waiting for their replica to turn warm.
  std::unordered_map<ContainerId, obs::SpanHandle> launching_spans_;

  /// Functions submitted and not yet completed, per runtime image.
  std::unordered_map<faas::RuntimeImage, std::size_t> active_;
  /// Functions that have actually started (dispatched at least once) and
  /// not yet completed, per runtime image.
  std::unordered_map<faas::RuntimeImage, std::size_t> running_;
  /// Nodes hosting the last-seen attempt of each live function.
  std::unordered_map<FunctionId, NodeId> fn_node_;
  double failures_seen_ = 0.0;
  double functions_seen_ = 0.0;
};

}  // namespace canary::core
