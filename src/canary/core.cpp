#include "canary/core.hpp"

#include "common/logging.hpp"

namespace canary::core {

CoreModule::CoreModule(faas::Platform& platform, kv::KvStore& store,
                       const cluster::StorageHierarchy& storage,
                       CanaryConfig config)
    : platform_(platform),
      store_(store),
      config_(config),
      validator_(platform.config().limits),
      checkpointing_(platform.simulator(), platform.cluster(), storage,
                     platform.network(), store, metadata_, platform.metrics(),
                     config.checkpointing),
      runtime_manager_(platform, platform.cluster(), metadata_),
      replication_(platform, runtime_manager_, metadata_, platform.metrics(),
                   config.replication),
      mitigator_(platform.simulator(), config.proactive) {
  replication_.set_advisor(&mitigator_);
  refresh_worker_table();
}

void CoreModule::install() {
  CANARY_CHECK(!installed_, "CoreModule installed twice");
  installed_ = true;
  platform_.set_recovery_handler(this);
  platform_.set_hooks(this);
  platform_.add_observer(this);
  checkpointing_.set_spans(platform_.spans());
  checkpointing_.set_event_log(platform_.events());
  replication_.set_spans(platform_.spans());
  // Split-brain probe: when the platform logically fences a worker that is
  // alive but cut off from the quorum, the worker's in-flight functions
  // finish executing over there and try to commit. Route those attempts
  // through the checkpointing module so they hit the store's epoch gate.
  platform_.set_zombie_commit_hook([this](NodeId node, FunctionId fn) {
    checkpointing_.zombie_commit(node, fn);
  });
}

void CoreModule::refresh_worker_table() {
  for (const NodeId id : platform_.cluster().node_ids()) {
    const auto& node = platform_.cluster().node(id);
    WorkerInfoRow row;
    if (const WorkerInfoRow* existing = metadata_.worker(id)) {
      // Preserve the failure detector's heartbeat lease fields — the
      // refresh only re-reads the hardware facts and liveness.
      row = *existing;
    }
    row.node = id;
    row.cpu = node.spec().cpu;
    row.memory = node.spec().memory;
    row.container_slots = node.spec().container_slots;
    row.rack = node.spec().rack;
    row.zone = node.spec().zone;
    row.alive = node.alive();
    metadata_.upsert_worker(row);
  }
}

bool CoreModule::node_suspect(NodeId node) const {
  return mitigator_.is_suspect(node) || detector_suspects_.count(node) > 0;
}

Result<JobId> CoreModule::submit_job(faas::JobSpec spec) {
  CANARY_CHECK(installed_, "call install() before submitting jobs");
  const ValidationResult verdict = validator_.validate(spec, in_flight_);
  switch (verdict.verdict) {
    case Verdict::kReject:
      platform_.metrics().count("requests_rejected");
      return Error::invalid_argument(verdict.reason);
    case Verdict::kQueue:
      platform_.metrics().count("requests_queued");
      queue_.push_back(std::move(spec));
      return JobId::invalid();
    case Verdict::kAccept:
      break;
  }
  in_flight_ += spec.functions.size();
  return platform_.submit_job(std::move(spec));
}

void CoreModule::drain_queue() {
  while (!queue_.empty()) {
    const ValidationResult verdict =
        validator_.validate(queue_.front(), in_flight_);
    if (verdict.verdict != Verdict::kAccept) return;
    faas::JobSpec spec = std::move(queue_.front());
    queue_.pop_front();
    in_flight_ += spec.functions.size();
    auto submitted = platform_.submit_job(std::move(spec));
    if (!submitted.ok()) {
      CANARY_LOG_WARN("queued job rejected at submission: "
                      << submitted.error().message);
    }
  }
}

// ---- RecoveryHandler ------------------------------------------------------

void CoreModule::recovery_instant(const faas::Invocation& inv,
                                  const char* name) {
  platform_.log_recovery_action(inv.id, name);
  obs::SpanRecorder* spans = platform_.spans();
  if (spans == nullptr) return;
  obs::SpanLabels labels{inv.job, inv.id, inv.container, inv.node,
                         inv.attempt};
  spans->instant(obs::SpanKind::kRecovery, name, platform_.simulator().now(),
                 labels);
}

bool CoreModule::sla_urgent(const faas::Invocation& inv) const {
  if (!config_.sla_aware) return false;
  auto it = deadlines_.find(inv.job);
  if (it == deadlines_.end()) return false;
  // Remaining nominal work plus a cold restart's overhead against the
  // remaining slack: if a cold recovery would blow the deadline, the
  // function is urgent.
  const auto& rt = faas::profile(inv.spec->runtime);
  const Duration remaining =
      inv.spec->total_state_work() - inv.work_done + inv.spec->finalize;
  const TimePoint done_if_cold = platform_.simulator().now() +
                                 rt.cold_launch + rt.init + remaining;
  return done_if_cold > it->second;
}

std::optional<std::uint32_t> CoreModule::recovery_avoid_zone(
    const faas::Invocation& inv) const {
  if (!config_.spread_fault_domains) return std::nullopt;
  if (platform_.cluster().node(inv.node).alive()) return std::nullopt;
  return platform_.cluster().zone_of(inv.node);
}

void CoreModule::recover_cold(const faas::Invocation& inv,
                              std::optional<NodeId> avoid,
                              std::optional<std::uint32_t> avoid_zone) {
  // No replica ready (mass failure burst or replication disabled): fall
  // back to a cold container but still restore from the checkpoint.
  // Avoid the failed worker if it is predicted to be failing or stalled.
  std::optional<NodeId> prefer;
  if (platform_.cluster().node(inv.node).alive() && !node_suspect(inv.node) &&
      (!avoid || *avoid != inv.node)) {
    prefer = inv.node;
  }
  NodeId target;
  if (prefer) {
    target = *prefer;
  } else if (avoid_zone) {
    // The failed worker's whole fault domain is suspect: place outside it
    // when any other zone has capacity (falls back to in-zone placement
    // otherwise — least_loaded_avoiding_zone degrades gracefully).
    std::vector<NodeId> excluded;
    if (avoid) excluded.push_back(*avoid);
    target = platform_.cluster()
                 .least_loaded_avoiding_zone(inv.spec->effective_memory(),
                                             *avoid_zone, excluded)
                 .value_or(inv.node);
  } else if (avoid) {
    target = platform_.cluster()
                 .least_loaded_excluding(inv.spec->effective_memory(), {*avoid})
                 .value_or(inv.node);
  } else {
    target = platform_.cluster()
                 .least_loaded(inv.spec->effective_memory())
                 .value_or(inv.node);
  }
  const RestorePlan plan = checkpointing_.restore_plan(inv.id, target);
  faas::StartSpec start;
  start.from_state = plan.from_state;
  start.node_pref = target;
  start.extra_setup = plan.restore_time;
  platform_.metrics().count("cold_fallback_recoveries");
  recovery_instant(inv, "cold_fallback_recovery");
  arm_recovery_watch(inv.id, target);
  platform_.start_attempt(inv.id, start);
}

void CoreModule::on_failure(const faas::Invocation& inv,
                            const faas::FailureInfo& info) {
  (void)info;
  replication_.on_failure_observed(inv);
  refresh_worker_table();

  // A watchdog-initiated kill recorded the stalled worker; route this
  // dispatch away from it.
  std::optional<NodeId> avoid;
  if (auto it = avoid_.find(inv.id); it != avoid_.end()) {
    avoid = it->second;
    avoid_.erase(it);
  }
  dispatch_recovery(inv, avoid);
}

void CoreModule::dispatch_recovery(const faas::Invocation& inv,
                                   std::optional<NodeId> avoid) {
  const faas::RuntimeImage image = inv.spec->runtime;
  const std::optional<NodeId> prefer =
      platform_.cluster().node(inv.node).alive() && !node_suspect(inv.node) &&
              (!avoid || *avoid != inv.node)
          ? std::optional(inv.node)
          : std::nullopt;

  const std::optional<std::uint32_t> avoid_zone = recovery_avoid_zone(inv);
  auto replica = runtime_manager_.acquire(image, prefer, avoid, avoid_zone);
  if (replica) {
    // Fast path: migrate onto the warm replicated runtime and restore the
    // latest checkpoint there.
    const RestorePlan plan =
        checkpointing_.restore_plan(inv.id, replica->worker);
    faas::StartSpec start;
    start.from_state = plan.from_state;
    start.container = replica->container;
    start.extra_setup = config_.migration_overhead + plan.restore_time;
    platform_.metrics().count("replica_recoveries");
    recovery_instant(inv, "replica_recovery");
    replication_.on_replica_consumed(image);
    arm_recovery_watch(inv.id, replica->worker);
    platform_.start_attempt(inv.id, start);
    return;
  }

  // SLA-aware path: a deadline-threatened function may claim a replica
  // that is still launching — waiting out the remaining init is cheaper
  // than a full cold start plus init, provided the replica has a real
  // head start (at least a third of the startup already behind it).
  if (sla_urgent(inv)) {
    const auto& rt = faas::profile(image);
    const Duration min_age = (rt.cold_launch + rt.init) * (1.0 / 3.0);
    if (auto pending = runtime_manager_.promise_launching(image, min_age)) {
      promised_[pending->container] = inv.id;
      platform_.metrics().count("sla_promised_recoveries");
      recovery_instant(inv, "sla_promised_recovery");
      replication_.on_replica_consumed(image);
      arm_recovery_watch(inv.id, pending->worker);
      return;  // dispatch happens in on_container_ready
    }
  }

  replication_.reconcile(image);  // provision replicas for the next failure
  recover_cold(inv, avoid, avoid_zone);
}

// ---- recovery watchdog ------------------------------------------------------

void CoreModule::arm_recovery_watch(FunctionId id, NodeId target) {
  if (config_.recovery_action_timeout <= Duration::zero()) return;
  RecoveryWatch& watch = watches_[id];
  watch.timer.cancel();
  watch.target = target;
  // Capped exponential backoff: every stall of this function widens the
  // window, so a loaded-but-healthy cluster converges instead of looping.
  Duration window = config_.recovery_action_timeout;
  for (int i = 0; i < watch.stalls; ++i) {
    window = window * config_.recovery_backoff_factor;
    if (window >= config_.recovery_backoff_cap) {
      window = config_.recovery_backoff_cap;
      break;
    }
  }
  watch.timer = platform_.simulator().schedule_after(
      window, [this, id] { recovery_watch_fired(id); });
}

void CoreModule::disarm_recovery_watch(FunctionId id) {
  auto it = watches_.find(id);
  if (it == watches_.end()) return;
  it->second.timer.cancel();
  watches_.erase(it);
}

void CoreModule::recovery_watch_fired(FunctionId id) {
  auto it = watches_.find(id);
  if (it == watches_.end()) return;
  const auto& inv = platform_.invocation(id);
  if (inv.phase == faas::Phase::kExecuting ||
      inv.phase == faas::Phase::kFinalizing ||
      inv.phase == faas::Phase::kCompleted) {
    watches_.erase(it);  // the recovery made it; nothing to do
    return;
  }
  RecoveryWatch& watch = it->second;
  ++watch.stalls;
  ++recovery_stalls_;
  platform_.metrics().count("recovery_stalls");
  const NodeId stalled = watch.target;
  if (inv.phase == faas::Phase::kLaunching ||
      inv.phase == faas::Phase::kInitializing ||
      inv.phase == faas::Phase::kStarting) {
    // The claimed container is stuck launching/restoring — a gray worker
    // signature. Kill the attempt and re-route the next dispatch away
    // from the stalled node. kRecoveryStall skips the invoker detection
    // delay (the controller initiated the kill, it already knows).
    recovery_instant(inv, "recovery_stall_reroute");
    avoid_[id] = stalled;
    platform_.kill_function(id, faas::FailureKind::kRecoveryStall);
    return;  // on_failure re-dispatches and re-arms the watch
  }
  // Queued or promised attempts must not be killed — they would re-enter
  // the capacity queue and double-start. Keep waiting, window widened.
  // Give up re-arming after enough stalls that the cluster is clearly
  // wedged — an unbounded timer chain would keep the simulator spinning.
  if (watch.stalls >= 64) {
    watches_.erase(it);
    return;
  }
  arm_recovery_watch(id, stalled);
}

// ---- ExecutionHooks ---------------------------------------------------------

Duration CoreModule::state_epilogue(const faas::Invocation& inv,
                                    std::size_t state_idx) {
  return checkpointing_.state_epilogue(inv, state_idx);
}

void CoreModule::on_state_committed(const faas::Invocation& inv,
                                    std::size_t state_idx) {
  checkpointing_.on_state_committed(inv, state_idx);
}

// ---- PlatformObserver -------------------------------------------------------

void CoreModule::on_job_submitted(JobId job) {
  const auto& spec = platform_.job_spec(job);
  JobInfoRow row;
  row.job = job;
  row.name = spec.name;
  row.account = spec.account;
  row.function_count = spec.functions.size();
  row.submitted = platform_.simulator().now();
  if (!spec.functions.empty()) {
    row.checkpoint_retention =
        checkpointing_.retention_for(spec.functions.front());
  }
  metadata_.insert_job(row);

  const auto& functions = platform_.job_functions(job);
  for (std::size_t i = 0; i < functions.size(); ++i) {
    FunctionInfoRow fn_row;
    fn_row.function = functions[i];
    fn_row.job = job;
    fn_row.runtime = spec.functions[i].runtime;
    metadata_.insert_function(fn_row);
  }
  if (spec.sla > Duration::zero()) {
    deadlines_[job] = platform_.simulator().now() + spec.sla;
  }
  replication_.on_job_submitted(job);
}

void CoreModule::on_attempt_started(const faas::Invocation& inv) {
  disarm_recovery_watch(inv.id);  // the recovery reached execution
  if (auto* row = metadata_.mutable_function(inv.id)) {
    row->worker = inv.node;
    row->container = inv.container;
    row->attempts = inv.attempt;
  }
  replication_.on_attempt_started(inv);
}

void CoreModule::on_function_completed(const faas::Invocation& inv) {
  disarm_recovery_watch(inv.id);
  avoid_.erase(inv.id);
  if (auto* row = metadata_.mutable_function(inv.id)) {
    row->completed = true;
  }
  // The final critical data is persisted by the application itself; the
  // recovery checkpoints are no longer needed.
  checkpointing_.drop_function(inv.id);
  replication_.on_function_completed(inv);
  CANARY_CHECK(in_flight_ > 0, "in-flight function count underflow");
  --in_flight_;
  drain_queue();
}

void CoreModule::on_function_failed(const faas::Invocation& inv,
                                    const faas::FailureInfo& info) {
  if (info.kind == faas::FailureKind::kNodeFailure) {
    refresh_worker_table();
    return;  // the node is already gone; nothing left to predict
  }
  // Feed the failure predictor; a newly-suspect worker triggers an
  // immediate pre-scale of the failed function's runtime pool.
  if (mitigator_.observe_failure(info.node)) {
    platform_.metrics().count("nodes_marked_suspect");
    if (auto* events = platform_.events()) {
      obs::SpanLabels labels;
      labels.node = info.node;
      events->append_raw(events->new_trace(), obs::kNoEvent,
                         obs::EventKind::kAnnotation, "node_marked_suspect",
                         platform_.simulator().now(), labels);
    }
    replication_.reconcile(inv.spec->runtime);
  }
}

void CoreModule::on_container_ready(const faas::Container& c) {
  if (c.purpose != faas::ContainerPurpose::kRuntimeReplica) return;
  // A replica promised to an SLA-urgent function dispatches the moment it
  // turns warm; everything else becomes an active pool replica.
  auto promised = promised_.find(c.id);
  if (promised != promised_.end()) {
    const FunctionId fn = promised->second;
    promised_.erase(promised);
    const auto& inv = platform_.invocation(fn);
    if (!inv.completed()) {
      const RestorePlan plan = checkpointing_.restore_plan(fn, c.node);
      faas::StartSpec start;
      start.from_state = plan.from_state;
      start.container = c.id;
      start.extra_setup = config_.migration_overhead + plan.restore_time;
      platform_.metrics().count("sla_promised_dispatches");
      platform_.start_attempt(fn, start);
    }
    return;
  }
  runtime_manager_.mark_active(c.id);
}

void CoreModule::on_container_destroyed(const faas::Container& c) {
  if (c.purpose != faas::ContainerPurpose::kRuntimeReplica) return;
  // A promised replica that died before turning warm must not strand its
  // waiting function: recover it cold.
  auto promised = promised_.find(c.id);
  if (promised != promised_.end()) {
    const FunctionId fn = promised->second;
    promised_.erase(promised);
    runtime_manager_.mark_dead(c.id);
    const auto& inv = platform_.invocation(fn);
    if (!inv.completed() && inv.phase == faas::Phase::kFailed) {
      recover_cold(inv);
    }
    replication_.on_replica_destroyed(c.image);
    return;
  }
  auto* row = metadata_.replica_by_container(c.id);
  const bool was_live =
      row != nullptr && (row->status == ReplicaStatus::kLaunching ||
                         row->status == ReplicaStatus::kActive);
  runtime_manager_.mark_dead(c.id);
  if (was_live) replication_.on_replica_destroyed(c.image);
}

void CoreModule::on_job_completed(JobId job) { (void)job; }

// ---- FailureDetectorListener ------------------------------------------------

void CoreModule::on_worker_suspected(NodeId node, double suspicion) {
  (void)suspicion;
  detector_suspects_.insert(node);
}

void CoreModule::on_worker_unsuspected(NodeId node) {
  detector_suspects_.erase(node);
}

void CoreModule::on_worker_confirmed_dead(NodeId node) {
  detector_suspects_.erase(node);  // dead, not merely suspect
  // Epoch fence before the platform acts on the confirmation: if the
  // worker is actually a minority-side zombie (alive but partitioned),
  // any commit it attempts from here on is stale-epoch and rejected. For
  // a genuinely dead worker the fence is a harmless no-op.
  store_.fence_node(node);
  refresh_worker_table();
}

}  // namespace canary::core
