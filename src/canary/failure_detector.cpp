#include "canary/failure_detector.hpp"

#include <algorithm>

#include "obs/event_log.hpp"

namespace canary::core {

FailureDetector::FailureDetector(sim::Simulator& simulator,
                                 faas::Platform& platform,
                                 FailureDetectorConfig config)
    : sim_(simulator), platform_(platform), config_(config) {
  workers_.resize(platform_.cluster().size());
}

FailureDetector::WorkerState& FailureDetector::state(NodeId node) {
  return workers_[node.value() - 1];
}

const FailureDetector::WorkerState& FailureDetector::state(
    NodeId node) const {
  return workers_[node.value() - 1];
}

double FailureDetector::suspicion_level(NodeId node) const {
  const WorkerState& w = state(node);
  if (config_.heartbeat_interval <= Duration::zero()) return 0.0;
  return (sim_.now() - w.last_heartbeat) / config_.heartbeat_interval;
}

bool FailureDetector::is_suspected(NodeId node) const {
  return state(node).suspected;
}

bool FailureDetector::is_confirmed_dead(NodeId node) const {
  return state(node).confirmed;
}

bool FailureDetector::done() const {
  return platform_.all_jobs_completed() ||
         sim_.now() >= TimePoint::origin() + config_.horizon;
}

void FailureDetector::start() {
  if (!config_.enabled || started_) return;
  started_ = true;
  // Id-ordered start keeps event scheduling (and thus the whole run)
  // deterministic regardless of container iteration order elsewhere.
  for (std::size_t i = 0; i < workers_.size(); ++i) {
    const NodeId node{static_cast<std::uint64_t>(i + 1)};
    workers_[i].last_heartbeat = sim_.now();
    publish_row(node, 0.0);
    schedule_heartbeat(node);
  }
  schedule_sweep();
}

void FailureDetector::schedule_heartbeat(NodeId node) {
  WorkerState& w = state(node);
  if (w.publishing) return;
  w.publishing = true;
  sim_.schedule_after(config_.heartbeat_interval, [this, node] {
    WorkerState& w = state(node);
    w.publishing = false;
    if (done()) return;  // let Simulator::run() drain and terminate
    auto& cluster = platform_.cluster();
    if (!cluster.contains(node) || !cluster.node(node).alive()) {
      return;  // dead workers stop heartbeating — that is the signal
    }
    const TimePoint sent = sim_.now();
    ++heartbeats_sent_;
    platform_.metrics().count("heartbeats_sent");
    // Partition gate: the controller hears the majority side. A beat from
    // a worker that cannot reach a quorum of its peers never arrives —
    // that is what makes the minority side look dead over there. Checked
    // at send time; reaches_majority short-circuits to true when no
    // partition is active.
    if (!platform_.network().reaches_majority(node)) {
      ++heartbeats_partition_dropped_;
      platform_.metrics().count("heartbeats_partition_dropped");
      schedule_heartbeat(node);
      return;
    }
    std::optional<Duration> delay =
        faults_ != nullptr ? faults_->heartbeat_delay(node, sent)
                           : std::optional<Duration>(Duration::zero());
    if (!delay.has_value()) {
      ++heartbeats_lost_;
      platform_.metrics().count("heartbeats_dropped");
    } else if (*delay <= Duration::zero()) {
      deliver_heartbeat(node, sent);
    } else {
      sim_.schedule_after(*delay,
                          [this, node, sent] { deliver_heartbeat(node, sent); });
    }
    schedule_heartbeat(node);
  });
}

void FailureDetector::deliver_heartbeat(NodeId node, TimePoint sent) {
  WorkerState& w = state(node);
  if (w.confirmed) return;  // fenced; late beats are ignored
  // Delayed beats can overtake each other; the table keeps the freshest.
  w.last_heartbeat = std::max(w.last_heartbeat, sent);
  if (w.suspected) {
    // The worker was alive all along — a delayed heartbeat, not a death.
    // Un-suspect before any recovery was confirmed, so nothing
    // double-executes.
    w.suspected = false;
    ++false_suspicions_;
    platform_.metrics().count("false_suspicions");
    annotate(node, "worker_unsuspected");
    if (listener_ != nullptr) listener_->on_worker_unsuspected(node);
  }
  publish_row(node, suspicion_level(node));
}

void FailureDetector::schedule_sweep() {
  sim_.schedule_after(config_.sweep_interval, [this] {
    if (done()) return;
    sweep();
    schedule_sweep();
  });
}

void FailureDetector::sweep() {
  for (std::size_t i = 0; i < workers_.size(); ++i) {
    const NodeId node{static_cast<std::uint64_t>(i + 1)};
    WorkerState& w = workers_[i];
    if (w.confirmed) continue;
    const double suspicion = suspicion_level(node);
    if (!w.suspected && suspicion >= config_.timeout_multiplier) {
      w.suspected = true;
      ++suspicions_;
      platform_.metrics().count("worker_suspicions");
      annotate(node, "worker_suspected");
      if (listener_ != nullptr) listener_->on_worker_suspected(node, suspicion);
    }
    if (w.suspected &&
        suspicion >= config_.timeout_multiplier + config_.confirm_multiplier) {
      w.confirmed = true;
      ++confirmed_dead_;
      platform_.metrics().count("workers_confirmed_dead");
      annotate(node, "worker_confirmed_dead");
      if (listener_ != nullptr) listener_->on_worker_confirmed_dead(node);
      publish_row(node, suspicion);
      // Fence + drain stashed node failures into the recovery handler.
      platform_.confirm_node_dead(node);
      continue;
    }
    publish_row(node, suspicion);
  }
}

void FailureDetector::publish_row(NodeId node, double suspicion) {
  if (metadata_ == nullptr) return;
  const WorkerInfoRow* existing = metadata_->worker(node);
  if (existing == nullptr) return;  // CoreModule has not registered it yet
  WorkerInfoRow row = *existing;
  const WorkerState& w = state(node);
  row.last_heartbeat = w.last_heartbeat;
  row.suspicion = suspicion;
  row.suspected = w.suspected;
  row.alive = row.alive && !w.confirmed;
  metadata_->upsert_worker(row);
}

void FailureDetector::annotate(NodeId node, const char* what) {
  auto* events = platform_.events();
  if (events == nullptr) return;
  obs::SpanLabels labels;
  labels.node = node;
  events->append_raw(events->new_trace(), obs::kNoEvent,
                     obs::EventKind::kAnnotation, what, sim_.now(), labels);
}

}  // namespace canary::core
