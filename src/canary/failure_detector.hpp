// Heartbeat/lease failure detection (paper §IV-C1: the Core Module
// "monitors the heartbeats of the workers" through the worker_info table).
//
// Every worker publishes a heartbeat into worker_info on a configurable
// interval; the controller sweeps the table and computes a phi-style
// suspicion level per worker — the number of heartbeat intervals elapsed
// since the last delivered beat. A worker whose suspicion crosses
// `timeout_multiplier` becomes *suspected*; if a late heartbeat arrives
// the suspicion was false and the worker is un-suspected (no recovery was
// started, so nothing double-executes). A worker that stays silent for a
// further `confirm_multiplier` intervals is *confirmed dead*: the
// detector fences it through Platform::confirm_node_dead (killing it
// outright if it was actually alive — the exactly-once guarantee) and the
// stashed node-failure reports drain to the recovery handler. Detection
// latency is therefore an emergent per-scenario quantity — heartbeat
// interval x multipliers + sweep granularity + injected network delay —
// feeding the critical-path `detection` component, instead of the legacy
// constant-oracle PlatformConfig::failure_detect_delay.
#pragma once

#include <cstdint>
#include <vector>

#include "canary/metadata.hpp"
#include "common/ids.hpp"
#include "common/time.hpp"
#include "faas/platform.hpp"
#include "failure/heartbeat_faults.hpp"
#include "sim/simulator.hpp"

namespace canary::core {

struct FailureDetectorConfig {
  bool enabled = false;
  /// Worker heartbeat publication interval.
  Duration heartbeat_interval = Duration::msec(500);
  /// Suspicion level (missed intervals) at which a worker is suspected.
  double timeout_multiplier = 3.0;
  /// Additional missed intervals after suspicion before the worker is
  /// confirmed dead and recovery begins.
  double confirm_multiplier = 2.0;
  /// Controller sweep cadence; bounds the detection-latency granularity.
  Duration sweep_interval = Duration::msec(100);
  /// Hard stop for the detector's recurring events: past this simulated
  /// time the heartbeat/sweep chains stop rescheduling, so a run whose
  /// recovery wedged drains the event queue and reports completed=false
  /// instead of spinning Simulator::run() forever.
  Duration horizon = Duration::sec(3600.0);
};

/// Optional bookkeeping hooks for suspicion-lifecycle transitions. The
/// detector itself drives Platform::confirm_node_dead, so installing a
/// listener is never required for recovery to proceed.
class FailureDetectorListener {
 public:
  virtual ~FailureDetectorListener() = default;
  virtual void on_worker_suspected(NodeId node, double suspicion) {
    (void)node;
    (void)suspicion;
  }
  virtual void on_worker_unsuspected(NodeId node) { (void)node; }
  virtual void on_worker_confirmed_dead(NodeId node) { (void)node; }
};

class FailureDetector {
 public:
  FailureDetector(sim::Simulator& simulator, faas::Platform& platform,
                  FailureDetectorConfig config);

  const FailureDetectorConfig& config() const { return config_; }

  void set_listener(FailureDetectorListener* listener) {
    listener_ = listener;
  }
  /// Inject heartbeat network faults (delay/drop); null = perfect links.
  void set_fault_provider(failure::HeartbeatFaultProvider* faults) {
    faults_ = faults;
  }
  /// Mirror heartbeat/suspicion state into worker_info rows (the paper's
  /// table); null skips the mirror (non-Canary strategies).
  void set_metadata(MetadataStore* metadata) { metadata_ = metadata; }

  /// Start the per-worker heartbeat publishers and the controller sweep.
  /// Call after jobs are submitted; the recurring events stop once the
  /// platform reports all jobs completed, so Simulator::run() terminates.
  void start();

  /// Phi-style suspicion: heartbeat intervals elapsed since the last
  /// delivered heartbeat (0 while beats arrive on time).
  double suspicion_level(NodeId node) const;
  bool is_suspected(NodeId node) const;
  bool is_confirmed_dead(NodeId node) const;

  /// Worst-case detection latency from a node death to its confirmation,
  /// excluding injected heartbeat faults: one full interval since the
  /// last beat, the suspect + confirm thresholds, and one sweep.
  Duration detection_bound() const {
    return config_.heartbeat_interval *
               (1.0 + config_.timeout_multiplier + config_.confirm_multiplier) +
           config_.sweep_interval;
  }

  std::uint64_t heartbeats_sent() const { return heartbeats_sent_; }
  std::uint64_t heartbeats_lost() const { return heartbeats_lost_; }
  /// Beats that never reached the controller because the sender was on
  /// the minority side of an active partition.
  std::uint64_t heartbeats_partition_dropped() const {
    return heartbeats_partition_dropped_;
  }
  std::uint64_t suspicions() const { return suspicions_; }
  std::uint64_t false_suspicions() const { return false_suspicions_; }
  std::uint64_t confirmed_dead() const { return confirmed_dead_; }

 private:
  struct WorkerState {
    TimePoint last_heartbeat;
    bool suspected = false;
    bool confirmed = false;
    bool publishing = false;  // a heartbeat chain is scheduled
  };

  WorkerState& state(NodeId node);
  const WorkerState& state(NodeId node) const;
  bool done() const;
  void schedule_heartbeat(NodeId node);
  void deliver_heartbeat(NodeId node, TimePoint sent);
  void schedule_sweep();
  void sweep();
  void publish_row(NodeId node, double suspicion);
  void annotate(NodeId node, const char* what);

  sim::Simulator& sim_;
  faas::Platform& platform_;
  FailureDetectorConfig config_;
  FailureDetectorListener* listener_ = nullptr;
  failure::HeartbeatFaultProvider* faults_ = nullptr;
  MetadataStore* metadata_ = nullptr;
  std::vector<WorkerState> workers_;  // indexed by node id - 1
  bool started_ = false;
  std::uint64_t heartbeats_sent_ = 0;
  std::uint64_t heartbeats_lost_ = 0;
  std::uint64_t heartbeats_partition_dropped_ = 0;
  std::uint64_t suspicions_ = 0;
  std::uint64_t false_suspicions_ = 0;
  std::uint64_t confirmed_dead_ = 0;
};

}  // namespace canary::core
