#include "canary/replication.hpp"

#include <algorithm>
#include <cmath>

namespace canary::core {

std::string_view to_string_view(ReplicationMode mode) {
  switch (mode) {
    case ReplicationMode::kDynamic: return "dynamic";
    case ReplicationMode::kAggressive: return "aggressive";
    case ReplicationMode::kLenient: return "lenient";
  }
  return "unknown";
}

double ReplicationModule::estimated_failure_rate() const {
  // Beta-binomial posterior mean: starts at the prior and converges to
  // the observed failure fraction as evidence accumulates.
  return (failures_seen_ + config_.failure_rate_prior * config_.prior_strength) /
         (functions_seen_ + config_.prior_strength);
}

std::size_t ReplicationModule::active_functions(
    faas::RuntimeImage image) const {
  auto it = active_.find(image);
  return it == active_.end() ? 0 : it->second;
}

std::size_t ReplicationModule::effective_active(
    faas::RuntimeImage image) const {
  const std::size_t submitted = active_functions(image);
  if (submitted == 0) return 0;
  auto run_it = running_.find(image);
  const std::size_t running = run_it == running_.end() ? 0 : run_it->second;
  // Concurrency share: the account limit divided over the images in use
  // bounds how many functions of this image can run at once.
  std::size_t images_in_use = 0;
  for (const auto& [img, count] : active_) {
    if (count > 0) ++images_in_use;
  }
  const std::size_t share =
      platform_.config().limits.max_concurrent_invocations /
      std::max<std::size_t>(1, images_in_use);
  return std::min(submitted, std::max(running, share));
}

unsigned ReplicationModule::target_replicas(faas::RuntimeImage image) const {
  if (!config_.enabled) return 0;
  const std::size_t active = effective_active(image);
  if (active == 0) return 0;
  unsigned target = 1;
  switch (config_.mode) {
    case ReplicationMode::kLenient:
      target = 1;
      break;
    case ReplicationMode::kAggressive:
      target = static_cast<unsigned>(std::ceil(
          config_.aggressive_fraction * static_cast<double>(active)));
      break;
    case ReplicationMode::kDynamic: {
      const double want = estimated_failure_rate() * config_.dynamic_safety *
                          static_cast<double>(active);
      const double cap =
          config_.dynamic_cap_fraction * static_cast<double>(active);
      target = static_cast<unsigned>(std::ceil(std::min(want, cap)));
      break;
    }
  }
  if (advisor_ != nullptr) {
    // Pre-scale while a worker is predicted to fail: its warm replicas
    // and running functions may all need new homes at once.
    target = static_cast<unsigned>(
        std::ceil(static_cast<double>(target) * advisor_->replica_boost()));
  }
  target = std::max(target, 1u);
  return std::min(target, config_.max_replicas_per_runtime);
}

void ReplicationModule::on_job_submitted(JobId job) {
  // Algorithm 2: compute func_total over active + scheduled functions,
  // then per scheduled runtime launch replicas until the replication
  // factor covers the new population.
  const auto& spec = platform_.job_spec(job);
  std::vector<faas::RuntimeImage> runtimes;
  for (const auto& fn : spec.functions) {
    ++active_[fn.runtime];
    functions_seen_ += 1.0;
    if (std::find(runtimes.begin(), runtimes.end(), fn.runtime) ==
        runtimes.end()) {
      runtimes.push_back(fn.runtime);
    }
  }
  for (const auto image : runtimes) reconcile(image);
}

void ReplicationModule::on_attempt_started(const faas::Invocation& inv) {
  auto [it, inserted] = fn_node_.try_emplace(inv.id, inv.node);
  it->second = inv.node;
  if (inserted) ++running_[inv.spec->runtime];
}

void ReplicationModule::on_function_completed(const faas::Invocation& inv) {
  auto it = active_.find(inv.spec->runtime);
  if (it != active_.end() && it->second > 0) --it->second;
  if (fn_node_.erase(inv.id) > 0) {
    auto run_it = running_.find(inv.spec->runtime);
    if (run_it != running_.end() && run_it->second > 0) --run_it->second;
  }
  reconcile(inv.spec->runtime);
}

void ReplicationModule::on_failure_observed(const faas::Invocation& inv) {
  failures_seen_ += 1.0;
  // Dynamic replication reacts to the updated failure-rate estimate.
  reconcile(inv.spec->runtime);
}

void ReplicationModule::on_replica_consumed(faas::RuntimeImage image) {
  metrics_.count("replicas_consumed");
  reconcile(image);
}

void ReplicationModule::on_replica_destroyed(faas::RuntimeImage image) {
  reconcile(image);
}

std::optional<NodeId> ReplicationModule::place_replica(
    faas::RuntimeImage image) const {
  auto& cluster = platform_.cluster();
  const Bytes memory = faas::profile(image).memory;
  if (!config_.anti_spof_placement) {
    // Ablation: first-fit packing — replicas stack on the lowest-id node
    // with capacity, so one node failure can take out every replica.
    for (const NodeId node : cluster.alive_node_ids()) {
      if (cluster.node(node).can_host(memory)) return node;
    }
    return std::nullopt;
  }
  const auto replica_nodes = manager_.replica_nodes(image);

  // First replica: co-locate with a worker hosting a function of this
  // runtime (checkpoint/data locality).
  if (replica_nodes.empty()) {
    std::optional<NodeId> best;
    std::uint32_t best_free = 0;
    for (const auto& [fn, node] : fn_node_) {
      if (!cluster.contains(node)) continue;
      const auto& host = cluster.node(node);
      if (!host.can_host(memory)) continue;
      if (!best || host.free_slots() > best_free) {
        best = node;
        best_free = host.free_slots();
      }
    }
    if (best) return best;
  }

  // Further replicas: avoid nodes already hosting a replica of this
  // runtime (anti-SPOF), prefer racks hosting the functions.
  std::vector<std::uint32_t> function_racks;
  for (const auto& [fn, node] : fn_node_) {
    if (cluster.contains(node)) {
      function_racks.push_back(cluster.node(node).spec().rack);
    }
  }
  std::vector<std::uint32_t> replica_zones;
  if (config_.spread_fault_domains) {
    for (const NodeId node : replica_nodes) {
      if (cluster.contains(node)) {
        replica_zones.push_back(cluster.node(node).spec().zone);
      }
    }
  }
  std::optional<NodeId> best;
  double best_score = 0.0;
  for (const NodeId node : cluster.alive_node_ids()) {
    const auto& host = cluster.node(node);
    if (!host.can_host(memory)) continue;
    if (std::find(replica_nodes.begin(), replica_nodes.end(), node) !=
        replica_nodes.end()) {
      continue;
    }
    const bool near_functions =
        std::find(function_racks.begin(), function_racks.end(),
                  host.spec().rack) != function_racks.end();
    const bool suspect = advisor_ != nullptr && advisor_->is_suspect(node);
    // Fault-domain spreading: a zone already holding a replica of this
    // runtime is a single correlated failure away from losing both
    // copies. The penalty dominates load and locality but yields to the
    // suspect term — a zone-diverse placement on a predicted-failing
    // worker is no diversity at all.
    const bool zone_taken =
        config_.spread_fault_domains &&
        std::find(replica_zones.begin(), replica_zones.end(),
                  host.spec().zone) != replica_zones.end();
    // Lower is better: predicted-failing workers are a last resort, then
    // zone duplication, then load, then rack locality.
    const double score = (suspect ? 1e6 : 0.0) + (zone_taken ? 1e3 : 0.0) +
                         static_cast<double>(host.used_slots()) * 10.0 +
                         (near_functions ? 0.0 : 1.0);
    if (!best || score < best_score) {
      best = node;
      best_score = score;
    }
  }
  if (best) return best;
  // Cluster full of this runtime's replicas already: allow doubling up.
  return cluster.least_loaded(memory);
}

void ReplicationModule::reconcile(faas::RuntimeImage image) {
  if (!config_.enabled) return;
  const unsigned desired = target_replicas(image);
  std::size_t live = manager_.active_count(image) + manager_.pending_count(image);

  // Hysteresis on the downscale side: retiring on every census wiggle
  // thrashes containers (launch + retire churn eats node slots and
  // cold-start bandwidth). Only shed clearly-excess replicas; idle ones
  // below the band are cheap relative to the churn.
  const std::size_t retire_band =
      desired == 0 ? 0 : desired + std::max<std::size_t>(1, desired / 4);
  while (live > retire_band) {
    const auto container = manager_.retire_one(image);
    if (!container) break;  // the excess is still launching; leave it
    platform_.destroy_warm_container(*container);
    metrics_.count("replicas_retired");
    if (spans_ != nullptr) {
      obs::SpanLabels labels;
      labels.container = *container;
      spans_->instant(obs::SpanKind::kReplication, "replica_retire",
                      platform_.simulator().now(), labels);
    }
    --live;
  }

  while (live < desired) {
    const auto node = place_replica(image);
    if (!node) break;  // no capacity anywhere
    auto launched = platform_.launch_warm_container(
        *node, image, faas::ContainerPurpose::kRuntimeReplica,
        [this](ContainerId cid) {
          manager_.mark_active(cid);
          auto it = launching_spans_.find(cid);
          if (it != launching_spans_.end()) {
            if (spans_ != nullptr) {
              spans_->close(it->second, platform_.simulator().now());
            }
            launching_spans_.erase(it);
          }
        });
    if (!launched.ok()) break;
    manager_.register_replica(image, *node, launched.value());
    metrics_.count("replicas_launched");
    if (spans_ != nullptr) {
      obs::SpanLabels labels;
      labels.container = launched.value();
      labels.node = *node;
      launching_spans_[launched.value()] = spans_->open(
          obs::SpanKind::kReplication, "replica_provision",
          platform_.simulator().now(), labels);
    }
    ++live;
  }
}

}  // namespace canary::core
