#include "cost/cost_model.hpp"

namespace canary::cost {

double CostModel::cost_usd(const faas::UsageLedger& ledger) const {
  return ledger.total_gb_seconds() * pricing_.usd_per_gb_second;
}

CostBreakdown CostModel::breakdown(const faas::UsageLedger& ledger) const {
  CostBreakdown result;
  result.function_usd =
      ledger.gb_seconds_for(faas::ContainerPurpose::kFunction) *
      pricing_.usd_per_gb_second;
  result.replica_usd =
      ledger.gb_seconds_for(faas::ContainerPurpose::kRuntimeReplica) *
      pricing_.usd_per_gb_second;
  result.rr_usd =
      ledger.gb_seconds_for(faas::ContainerPurpose::kRequestReplica) *
      pricing_.usd_per_gb_second;
  result.standby_usd =
      ledger.gb_seconds_for(faas::ContainerPurpose::kStandby) *
      pricing_.usd_per_gb_second;
  result.total_usd = result.function_usd + result.replica_usd +
                     result.rr_usd + result.standby_usd;
  return result;
}

}  // namespace canary::cost
