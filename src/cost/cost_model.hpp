// Dollar-cost model (paper §V-D4).
//
// "We consider the pricing model of $0.000017 per second of execution,
// per GB of memory allocated from IBM Cloud Functions ... the pricing
// model of AWS Lambda is comparable, i.e., ~$0.0000167." Cost is the sum
// over container occupancy intervals of duration x allocated GB x rate;
// replicated runtimes, request replicas and standby instances bill like
// any other container, which is exactly what separates the strategies in
// Figs. 8-10.
#pragma once

#include "faas/usage.hpp"

namespace canary::cost {

struct PricingModel {
  double usd_per_gb_second = 0.000017;  // IBM Cloud Functions
  static PricingModel ibm() { return {0.000017}; }
  static PricingModel aws_lambda() { return {0.0000167}; }
};

struct CostBreakdown {
  double total_usd = 0.0;
  double function_usd = 0.0;   // primary function containers
  double replica_usd = 0.0;    // Canary runtime replicas
  double rr_usd = 0.0;         // request-replication instances
  double standby_usd = 0.0;    // active-standby passive instances
};

class CostModel {
 public:
  explicit CostModel(PricingModel pricing = PricingModel::ibm())
      : pricing_(pricing) {}

  double cost_usd(const faas::UsageLedger& ledger) const;
  CostBreakdown breakdown(const faas::UsageLedger& ledger) const;

  const PricingModel& pricing() const { return pricing_; }

 private:
  PricingModel pricing_;
};

}  // namespace canary::cost
