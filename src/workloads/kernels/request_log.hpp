// Exactly-once request processing for the web-service workload.
//
// The paper's central reliability goal is that functions "execute exactly
// once" (§IV-A1): a failure between executing a request and acknowledging
// it must not re-apply its effects when the function is retried. This
// kernel implements the standard mechanism — an idempotency log keyed by
// request id: execution first consults the log and returns the recorded
// response for a duplicate instead of re-executing; the log itself
// serializes, so it rides Canary's checkpoints ("checkpoints include
// queries and responses after each request", §V-C2).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

namespace canary::workloads::kernels {

class RequestLog {
 public:
  /// Execute `handler` for `request_id` exactly once: a duplicate id
  /// returns the logged response without invoking the handler.
  /// `was_replay` (optional) reports which path was taken.
  std::string execute(std::uint64_t request_id,
                      const std::function<std::string()>& handler,
                      bool* was_replay = nullptr);

  bool seen(std::uint64_t request_id) const {
    return responses_.find(request_id) != responses_.end();
  }
  std::optional<std::string> response_of(std::uint64_t request_id) const;
  std::size_t size() const { return responses_.size(); }
  std::uint64_t executions() const { return executions_; }
  std::uint64_t replays() const { return replays_; }

  /// Serialize/restore the full log (the per-request checkpoint payload).
  std::string serialize() const;
  static RequestLog deserialize(const std::string& bytes);

 private:
  std::unordered_map<std::uint64_t, std::string> responses_;
  std::uint64_t executions_ = 0;
  std::uint64_t replays_ = 0;
};

/// A miniature key-value "database" with a mutation count, standing in
/// for the paper's PostgreSQL backend: lets tests observe whether a retry
/// re-applied side effects.
class MiniDb {
 public:
  void put(const std::string& key, const std::string& value);
  std::optional<std::string> get(const std::string& key) const;
  /// Append `suffix` to the value at `key` (a non-idempotent mutation).
  void append(const std::string& key, const std::string& suffix);
  std::uint64_t mutations() const { return mutations_; }
  std::size_t size() const { return rows_.size(); }

 private:
  std::unordered_map<std::string, std::string> rows_;
  std::uint64_t mutations_ = 0;
};

}  // namespace canary::workloads::kernels
