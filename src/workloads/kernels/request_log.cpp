#include "workloads/kernels/request_log.hpp"

#include <cstring>

#include "common/result.hpp"

namespace canary::workloads::kernels {

std::string RequestLog::execute(std::uint64_t request_id,
                                const std::function<std::string()>& handler,
                                bool* was_replay) {
  auto it = responses_.find(request_id);
  if (it != responses_.end()) {
    ++replays_;
    if (was_replay != nullptr) *was_replay = true;
    return it->second;
  }
  ++executions_;
  if (was_replay != nullptr) *was_replay = false;
  std::string response = handler();
  responses_.emplace(request_id, response);
  return response;
}

std::optional<std::string> RequestLog::response_of(
    std::uint64_t request_id) const {
  auto it = responses_.find(request_id);
  if (it == responses_.end()) return std::nullopt;
  return it->second;
}

std::string RequestLog::serialize() const {
  std::string out;
  auto append_u64 = [&out](std::uint64_t v) {
    out.append(reinterpret_cast<const char*>(&v), sizeof(v));
  };
  append_u64(responses_.size());
  for (const auto& [id, response] : responses_) {
    append_u64(id);
    append_u64(response.size());
    out.append(response);
  }
  append_u64(executions_);
  append_u64(replays_);
  return out;
}

RequestLog RequestLog::deserialize(const std::string& bytes) {
  RequestLog log;
  std::size_t offset = 0;
  auto read_u64 = [&bytes, &offset]() {
    CANARY_CHECK(offset + sizeof(std::uint64_t) <= bytes.size(),
                 "truncated request log");
    std::uint64_t v = 0;
    std::memcpy(&v, bytes.data() + offset, sizeof(v));
    offset += sizeof(v);
    return v;
  };
  const std::uint64_t count = read_u64();
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::uint64_t id = read_u64();
    const std::uint64_t len = read_u64();
    CANARY_CHECK(offset + len <= bytes.size(), "truncated response");
    log.responses_.emplace(id, bytes.substr(offset, len));
    offset += len;
  }
  log.executions_ = read_u64();
  log.replays_ = read_u64();
  CANARY_CHECK(offset == bytes.size(), "trailing bytes in request log");
  return log;
}

void MiniDb::put(const std::string& key, const std::string& value) {
  rows_[key] = value;
  ++mutations_;
}

std::optional<std::string> MiniDb::get(const std::string& key) const {
  auto it = rows_.find(key);
  if (it == rows_.end()) return std::nullopt;
  return it->second;
}

void MiniDb::append(const std::string& key, const std::string& suffix) {
  rows_[key] += suffix;
  ++mutations_;
}

}  // namespace canary::workloads::kernels
