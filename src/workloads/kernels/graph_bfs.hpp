// Real, checkpointable breadth-first search (the SeBS 501.graph-bfs
// kernel behind the paper's graph-search workload).
//
// CsrGraph is a compressed-sparse-row graph; binary_tree(n) builds the
// paper's 50M-vertex binary tree shape. BfsRunner traverses with an
// explicit frontier queue in budgeted steps — "each function is
// checkpointed after 1 million vertices have been traversed" — and its
// checkpoint (frontier + visited set + counters) round-trips through a
// byte string, so a killed traversal resumes exactly where it stopped.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace canary::workloads::kernels {

class CsrGraph {
 public:
  /// Complete binary tree: vertex v has children 2v+1 and 2v+2.
  static CsrGraph binary_tree(std::uint64_t vertex_count);
  /// Uniform random graph with `avg_degree` out-edges per vertex.
  static CsrGraph random(std::uint64_t vertex_count, unsigned avg_degree,
                         std::uint64_t seed);

  std::uint64_t vertex_count() const { return offsets_.size() - 1; }
  std::uint64_t edge_count() const { return edges_.size(); }

  /// Out-neighbours of `v` as [begin, end) into the edge array.
  const std::uint32_t* neighbours_begin(std::uint32_t v) const {
    return edges_.data() + offsets_[v];
  }
  const std::uint32_t* neighbours_end(std::uint32_t v) const {
    return edges_.data() + offsets_[v + 1];
  }

 private:
  std::vector<std::uint64_t> offsets_;
  std::vector<std::uint32_t> edges_;
};

struct BfsCheckpoint {
  std::uint64_t traversed = 0;
  std::uint64_t frontier_sum = 0;  // integrity checksum
  std::vector<std::uint32_t> frontier;
  std::vector<std::uint64_t> visited_words;

  std::string serialize() const;
  static BfsCheckpoint deserialize(const std::string& bytes);
};

class BfsRunner {
 public:
  BfsRunner(const CsrGraph& graph, std::uint32_t source);

  /// Traverse up to `budget` vertices; returns how many were processed.
  std::uint64_t step(std::uint64_t budget);

  bool done() const { return cursor_ >= frontier_.size() && next_.empty(); }
  std::uint64_t traversed() const { return traversed_; }
  /// Order-independent checksum of the visited set (sum of vertex ids).
  std::uint64_t checksum() const { return checksum_; }

  BfsCheckpoint checkpoint() const;
  static BfsRunner restore(const CsrGraph& graph, const BfsCheckpoint& ckpt);

 private:
  explicit BfsRunner(const CsrGraph& graph);
  bool visited(std::uint32_t v) const {
    return (visited_words_[v >> 6] >> (v & 63)) & 1ULL;
  }
  void mark(std::uint32_t v) { visited_words_[v >> 6] |= 1ULL << (v & 63); }
  void advance_level();

  const CsrGraph& graph_;
  std::vector<std::uint64_t> visited_words_;
  std::vector<std::uint32_t> frontier_;
  std::vector<std::uint32_t> next_;
  std::size_t cursor_ = 0;
  std::uint64_t traversed_ = 0;
  std::uint64_t checksum_ = 0;
};

}  // namespace canary::workloads::kernels
