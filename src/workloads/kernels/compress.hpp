// Real LZSS-style compressor (the paper's data-compression workload,
// SeBS 311.compression, performs zip compression over ~1 GB inputs).
//
// Greedy LZ77 with a 4 KiB sliding window and 4..19-byte matches, framed
// as flag-grouped tokens. ChunkedCompressor processes a stream in
// independent chunks so that a killed function resumes at the last
// completed chunk — the same per-file checkpoint granularity the paper
// uses ("a checkpoint is performed after compressing an input file").
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace canary::workloads::kernels {

/// Compress `input`; output is self-contained (prefixed with the original
/// size) and decompressable with decompress().
std::vector<std::uint8_t> lz_compress(std::span<const std::uint8_t> input);

/// Inverse of lz_compress. Aborts on corrupt input framing.
std::vector<std::uint8_t> lz_decompress(std::span<const std::uint8_t> input);

/// Deterministic compressible test data (repetitive structure + noise).
std::vector<std::uint8_t> make_compressible_data(std::size_t size,
                                                 std::uint64_t seed);

class ChunkedCompressor {
 public:
  explicit ChunkedCompressor(std::size_t chunk_size = 64 * 1024)
      : chunk_size_(chunk_size) {}

  /// Compress the next chunk of `input` starting at the internal cursor.
  /// Returns false when the input is exhausted.
  bool compress_next_chunk(std::span<const std::uint8_t> input);

  std::size_t chunks_done() const { return chunks_done_; }
  std::uint64_t bytes_in() const { return bytes_in_; }
  std::uint64_t bytes_out() const { return bytes_out_; }
  const std::vector<std::uint8_t>& output() const { return output_; }
  bool finished(std::span<const std::uint8_t> input) const {
    return bytes_in_ >= input.size();
  }

  /// Progress checkpoint: cursor + counters + output so far.
  std::string checkpoint() const;
  static ChunkedCompressor restore(const std::string& bytes,
                                   std::size_t chunk_size = 64 * 1024);

 private:
  std::size_t chunk_size_;
  std::size_t chunks_done_ = 0;
  std::uint64_t bytes_in_ = 0;
  std::uint64_t bytes_out_ = 0;
  std::vector<std::uint8_t> output_;
};

}  // namespace canary::workloads::kernels
