#include "workloads/kernels/mini_dl.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <thread>

#include "common/result.hpp"
#include "common/rng.hpp"

namespace canary::workloads::kernels {

Dataset Dataset::synthesize(std::size_t samples, std::size_t feature_dim,
                            std::size_t classes, std::uint64_t seed) {
  Rng rng(seed);
  Dataset data;
  data.feature_dim = feature_dim;
  data.class_count = classes;
  data.features.reserve(samples * feature_dim);
  data.labels.reserve(samples);
  // Class prototypes with Gaussian noise around them.
  std::vector<float> prototypes(classes * feature_dim);
  for (auto& p : prototypes) p = static_cast<float>(rng.uniform(-1.0, 1.0));
  for (std::size_t i = 0; i < samples; ++i) {
    const auto label = static_cast<std::uint16_t>(rng.uniform_int(0, classes - 1));
    data.labels.push_back(label);
    for (std::size_t d = 0; d < feature_dim; ++d) {
      const float proto = prototypes[label * feature_dim + d];
      data.features.push_back(proto +
                              static_cast<float>(rng.normal(0.0, 0.35)));
    }
  }
  return data;
}

struct MiniMlp::Gradients {
  std::vector<double> w1, b1, w2, b2;
  explicit Gradients(const MiniMlp& model)
      : w1(model.w1_.size(), 0.0),
        b1(model.b1_.size(), 0.0),
        w2(model.w2_.size(), 0.0),
        b2(model.b2_.size(), 0.0) {}
  void merge(const Gradients& other) {
    for (std::size_t i = 0; i < w1.size(); ++i) w1[i] += other.w1[i];
    for (std::size_t i = 0; i < b1.size(); ++i) b1[i] += other.b1[i];
    for (std::size_t i = 0; i < w2.size(); ++i) w2[i] += other.w2[i];
    for (std::size_t i = 0; i < b2.size(); ++i) b2[i] += other.b2[i];
  }
};

MiniMlp::MiniMlp(std::size_t input_dim, std::size_t hidden_dim,
                 std::size_t output_dim, std::uint64_t seed)
    : in_(input_dim), hidden_(hidden_dim), out_(output_dim) {
  Rng rng(seed);
  const double scale1 = 1.0 / std::sqrt(static_cast<double>(input_dim));
  const double scale2 = 1.0 / std::sqrt(static_cast<double>(hidden_dim));
  w1_.resize(in_ * hidden_);
  b1_.assign(hidden_, 0.0f);
  w2_.resize(hidden_ * out_);
  b2_.assign(out_, 0.0f);
  for (auto& w : w1_) w = static_cast<float>(rng.normal(0.0, scale1));
  for (auto& w : w2_) w = static_cast<float>(rng.normal(0.0, scale2));
}

void MiniMlp::forward(const float* sample, std::vector<float>& hidden,
                      std::vector<float>& probs) const {
  hidden.assign(hidden_, 0.0f);
  for (std::size_t h = 0; h < hidden_; ++h) {
    float acc = b1_[h];
    const float* row = w1_.data() + h * in_;
    for (std::size_t d = 0; d < in_; ++d) acc += row[d] * sample[d];
    hidden[h] = acc > 0.0f ? acc : 0.0f;  // ReLU
  }
  probs.assign(out_, 0.0f);
  float max_logit = -1e30f;
  for (std::size_t o = 0; o < out_; ++o) {
    float acc = b2_[o];
    const float* row = w2_.data() + o * hidden_;
    for (std::size_t h = 0; h < hidden_; ++h) acc += row[h] * hidden[h];
    probs[o] = acc;
    max_logit = std::max(max_logit, acc);
  }
  float denom = 0.0f;
  for (auto& p : probs) {
    p = std::exp(p - max_logit);
    denom += p;
  }
  for (auto& p : probs) p /= denom;
}

void MiniMlp::accumulate(const Dataset& data, std::size_t begin,
                         std::size_t end, Gradients& grads,
                         double& loss) const {
  std::vector<float> hidden, probs;
  std::vector<float> dlogits(out_);
  for (std::size_t i = begin; i < end; ++i) {
    const float* sample = data.features.data() + i * in_;
    forward(sample, hidden, probs);
    const std::size_t label = data.labels[i];
    loss += -std::log(std::max(probs[label], 1e-12f));
    for (std::size_t o = 0; o < out_; ++o) {
      dlogits[o] = probs[o] - (o == label ? 1.0f : 0.0f);
    }
    for (std::size_t o = 0; o < out_; ++o) {
      grads.b2[o] += dlogits[o];
      for (std::size_t h = 0; h < hidden_; ++h) {
        grads.w2[o * hidden_ + h] += dlogits[o] * hidden[h];
      }
    }
    for (std::size_t h = 0; h < hidden_; ++h) {
      if (hidden[h] <= 0.0f) continue;  // ReLU gate
      float dh = 0.0f;
      for (std::size_t o = 0; o < out_; ++o) {
        dh += dlogits[o] * w2_[o * hidden_ + h];
      }
      grads.b1[h] += dh;
      for (std::size_t d = 0; d < in_; ++d) {
        grads.w1[h * in_ + d] += dh * sample[d];
      }
    }
  }
}

double MiniMlp::train_epoch(const Dataset& data, double learning_rate,
                            unsigned threads) {
  CANARY_CHECK(data.feature_dim == in_, "dataset/model dimension mismatch");
  threads = std::max(1u, threads);
  const std::size_t n = data.size();
  if (n == 0) return 0.0;

  std::vector<Gradients> partials;
  partials.reserve(threads);
  for (unsigned t = 0; t < threads; ++t) partials.emplace_back(*this);
  std::vector<double> losses(threads, 0.0);

  if (threads == 1 || n < 2 * threads) {
    accumulate(data, 0, n, partials[0], losses[0]);
  } else {
    // Data-parallel shards (the paper's weight-aggregation stage):
    // deterministic in thread count because gradient sums are merged in
    // shard order after the join.
    std::vector<std::thread> workers;
    const std::size_t chunk = (n + threads - 1) / threads;
    for (unsigned t = 0; t < threads; ++t) {
      workers.emplace_back([&, t] {
        const std::size_t begin = t * chunk;
        const std::size_t end = std::min(n, begin + chunk);
        accumulate(data, begin, end, partials[t], losses[t]);
      });
    }
    for (auto& w : workers) w.join();
  }

  Gradients total = std::move(partials[0]);
  double loss = losses[0];
  for (unsigned t = 1; t < threads; ++t) {
    total.merge(partials[t]);
    loss += losses[t];
  }

  const double scale = learning_rate / static_cast<double>(n);
  for (std::size_t i = 0; i < w1_.size(); ++i) {
    w1_[i] -= static_cast<float>(scale * total.w1[i]);
  }
  for (std::size_t i = 0; i < b1_.size(); ++i) {
    b1_[i] -= static_cast<float>(scale * total.b1[i]);
  }
  for (std::size_t i = 0; i < w2_.size(); ++i) {
    w2_[i] -= static_cast<float>(scale * total.w2[i]);
  }
  for (std::size_t i = 0; i < b2_.size(); ++i) {
    b2_[i] -= static_cast<float>(scale * total.b2[i]);
  }
  return loss / static_cast<double>(n);
}

std::size_t MiniMlp::predict(const float* sample) const {
  std::vector<float> hidden, probs;
  forward(sample, hidden, probs);
  return static_cast<std::size_t>(
      std::max_element(probs.begin(), probs.end()) - probs.begin());
}

double MiniMlp::accuracy(const Dataset& data) const {
  if (data.size() == 0) return 0.0;
  std::size_t correct = 0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    if (predict(data.features.data() + i * in_) == data.labels[i]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(data.size());
}

std::size_t MiniMlp::parameter_count() const {
  return w1_.size() + b1_.size() + w2_.size() + b2_.size();
}

std::string MiniMlp::serialize() const {
  std::string out;
  const std::uint64_t dims[3] = {in_, hidden_, out_};
  out.append(reinterpret_cast<const char*>(dims), sizeof(dims));
  auto append_floats = [&out](const std::vector<float>& v) {
    out.append(reinterpret_cast<const char*>(v.data()),
               v.size() * sizeof(float));
  };
  append_floats(w1_);
  append_floats(b1_);
  append_floats(w2_);
  append_floats(b2_);
  return out;
}

MiniMlp MiniMlp::deserialize(const std::string& bytes) {
  std::uint64_t dims[3];
  CANARY_CHECK(bytes.size() >= sizeof(dims), "truncated model checkpoint");
  std::memcpy(dims, bytes.data(), sizeof(dims));
  MiniMlp model(dims[0], dims[1], dims[2], /*seed=*/0);
  std::size_t offset = sizeof(dims);
  auto read_floats = [&](std::vector<float>& v) {
    const std::size_t len = v.size() * sizeof(float);
    CANARY_CHECK(offset + len <= bytes.size(), "truncated model checkpoint");
    std::memcpy(v.data(), bytes.data() + offset, len);
    offset += len;
  };
  read_floats(model.w1_);
  read_floats(model.b1_);
  read_floats(model.w2_);
  read_floats(model.b2_);
  CANARY_CHECK(offset == bytes.size(), "trailing bytes in model checkpoint");
  return model;
}

}  // namespace canary::workloads::kernels
