#include "workloads/kernels/compress.hpp"

#include <algorithm>
#include <cstring>

#include "common/result.hpp"
#include "common/rng.hpp"

namespace canary::workloads::kernels {

namespace {
constexpr std::size_t kWindow = 4096;
constexpr std::size_t kMinMatch = 4;
constexpr std::size_t kMaxMatch = 19;

struct Match {
  std::size_t offset = 0;  // distance back from the cursor
  std::size_t length = 0;
};

Match find_match(std::span<const std::uint8_t> input, std::size_t pos) {
  Match best;
  const std::size_t window_begin = pos > kWindow ? pos - kWindow : 0;
  const std::size_t remaining = input.size() - pos;
  const std::size_t max_len = std::min(kMaxMatch, remaining);
  if (max_len < kMinMatch) return best;
  for (std::size_t cand = window_begin; cand < pos; ++cand) {
    std::size_t len = 0;
    while (len < max_len && input[cand + len] == input[pos + len]) ++len;
    if (len > best.length) {
      best.length = len;
      best.offset = pos - cand;
      if (len == max_len) break;  // cannot improve
    }
  }
  if (best.length < kMinMatch) return {};
  return best;
}
}  // namespace

std::vector<std::uint8_t> lz_compress(std::span<const std::uint8_t> input) {
  std::vector<std::uint8_t> out;
  out.reserve(input.size() / 2 + 16);
  const auto original = static_cast<std::uint64_t>(input.size());
  out.resize(sizeof(original));
  std::memcpy(out.data(), &original, sizeof(original));

  std::size_t pos = 0;
  while (pos < input.size()) {
    // One flag byte covers the next 8 tokens: bit set = literal,
    // bit clear = (offset, length) back-reference.
    const std::size_t flag_at = out.size();
    out.push_back(0);
    std::uint8_t flags = 0;
    for (int bit = 0; bit < 8 && pos < input.size(); ++bit) {
      const Match m = find_match(input, pos);
      if (m.length >= kMinMatch) {
        // 12-bit offset-1, 4-bit length-kMinMatch.
        const auto packed = static_cast<std::uint16_t>(
            ((m.offset - 1) << 4) | (m.length - kMinMatch));
        out.push_back(static_cast<std::uint8_t>(packed >> 8));
        out.push_back(static_cast<std::uint8_t>(packed & 0xff));
        pos += m.length;
      } else {
        flags = static_cast<std::uint8_t>(flags | (1u << bit));
        out.push_back(input[pos++]);
      }
    }
    out[flag_at] = flags;
  }
  return out;
}

std::vector<std::uint8_t> lz_decompress(std::span<const std::uint8_t> input) {
  CANARY_CHECK(input.size() >= sizeof(std::uint64_t), "truncated stream");
  std::uint64_t original = 0;
  std::memcpy(&original, input.data(), sizeof(original));
  std::vector<std::uint8_t> out;
  out.reserve(original);

  std::size_t pos = sizeof(original);
  while (out.size() < original) {
    CANARY_CHECK(pos < input.size(), "truncated stream body");
    const std::uint8_t flags = input[pos++];
    for (int bit = 0; bit < 8 && out.size() < original; ++bit) {
      if (flags & (1u << bit)) {
        CANARY_CHECK(pos < input.size(), "truncated literal");
        out.push_back(input[pos++]);
      } else {
        CANARY_CHECK(pos + 1 < input.size(), "truncated back-reference");
        const auto packed = static_cast<std::uint16_t>(
            (static_cast<std::uint16_t>(input[pos]) << 8) | input[pos + 1]);
        pos += 2;
        const std::size_t offset = (packed >> 4) + 1;
        const std::size_t length = (packed & 0xf) + kMinMatch;
        CANARY_CHECK(offset <= out.size(), "back-reference before start");
        const std::size_t start = out.size() - offset;
        // Byte-by-byte copy: overlapping references replicate runs.
        for (std::size_t i = 0; i < length; ++i) {
          out.push_back(out[start + i]);
        }
      }
    }
  }
  return out;
}

std::vector<std::uint8_t> make_compressible_data(std::size_t size,
                                                 std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::uint8_t> data;
  data.reserve(size);
  static constexpr const char* kPhrases[] = {
      "function-as-a-service ", "checkpoint restore ",
      "replicated runtime ", "recovery time ", "stateful workload ",
  };
  while (data.size() < size) {
    if (rng.bernoulli(0.8)) {
      const char* phrase = kPhrases[rng.uniform_int(0, 4)];
      for (const char* p = phrase; *p != '\0' && data.size() < size; ++p) {
        data.push_back(static_cast<std::uint8_t>(*p));
      }
    } else {
      data.push_back(static_cast<std::uint8_t>(rng.uniform_int(0, 255)));
    }
  }
  return data;
}

bool ChunkedCompressor::compress_next_chunk(
    std::span<const std::uint8_t> input) {
  if (bytes_in_ >= input.size()) return false;
  const std::size_t begin = static_cast<std::size_t>(bytes_in_);
  const std::size_t len = std::min(chunk_size_, input.size() - begin);
  const auto compressed = lz_compress(input.subspan(begin, len));
  // Frame each chunk with its compressed length so the stream splits back
  // into independently decompressable chunks.
  const auto frame = static_cast<std::uint64_t>(compressed.size());
  const auto* frame_bytes = reinterpret_cast<const std::uint8_t*>(&frame);
  output_.insert(output_.end(), frame_bytes, frame_bytes + sizeof(frame));
  output_.insert(output_.end(), compressed.begin(), compressed.end());
  bytes_in_ += len;
  bytes_out_ += compressed.size() + sizeof(frame);
  ++chunks_done_;
  return true;
}

std::string ChunkedCompressor::checkpoint() const {
  std::string out;
  const std::uint64_t fields[3] = {chunks_done_, bytes_in_, bytes_out_};
  out.append(reinterpret_cast<const char*>(fields), sizeof(fields));
  out.append(reinterpret_cast<const char*>(output_.data()), output_.size());
  return out;
}

ChunkedCompressor ChunkedCompressor::restore(const std::string& bytes,
                                             std::size_t chunk_size) {
  ChunkedCompressor c(chunk_size);
  std::uint64_t fields[3];
  CANARY_CHECK(bytes.size() >= sizeof(fields), "truncated checkpoint");
  std::memcpy(fields, bytes.data(), sizeof(fields));
  c.chunks_done_ = static_cast<std::size_t>(fields[0]);
  c.bytes_in_ = fields[1];
  c.bytes_out_ = fields[2];
  const auto* body =
      reinterpret_cast<const std::uint8_t*>(bytes.data() + sizeof(fields));
  c.output_.assign(body, body + (bytes.size() - sizeof(fields)));
  CANARY_CHECK(c.output_.size() == c.bytes_out_,
               "checkpoint output length mismatch");
  return c;
}

}  // namespace canary::workloads::kernels
