#include "workloads/kernels/graph_bfs.hpp"

#include <cstring>

#include "common/result.hpp"
#include "common/rng.hpp"

namespace canary::workloads::kernels {

CsrGraph CsrGraph::binary_tree(std::uint64_t vertex_count) {
  CsrGraph g;
  g.offsets_.resize(vertex_count + 1);
  std::uint64_t edges = 0;
  for (std::uint64_t v = 0; v < vertex_count; ++v) {
    g.offsets_[v] = edges;
    if (2 * v + 1 < vertex_count) ++edges;
    if (2 * v + 2 < vertex_count) ++edges;
  }
  g.offsets_[vertex_count] = edges;
  g.edges_.resize(edges);
  std::uint64_t cursor = 0;
  for (std::uint64_t v = 0; v < vertex_count; ++v) {
    if (2 * v + 1 < vertex_count) {
      g.edges_[cursor++] = static_cast<std::uint32_t>(2 * v + 1);
    }
    if (2 * v + 2 < vertex_count) {
      g.edges_[cursor++] = static_cast<std::uint32_t>(2 * v + 2);
    }
  }
  return g;
}

CsrGraph CsrGraph::random(std::uint64_t vertex_count, unsigned avg_degree,
                          std::uint64_t seed) {
  CANARY_CHECK(vertex_count > 0, "graph needs vertices");
  CsrGraph g;
  Rng rng(seed);
  g.offsets_.resize(vertex_count + 1);
  g.edges_.reserve(vertex_count * avg_degree);
  for (std::uint64_t v = 0; v < vertex_count; ++v) {
    g.offsets_[v] = g.edges_.size();
    const auto degree =
        static_cast<unsigned>(rng.uniform_int(0, 2ULL * avg_degree));
    for (unsigned e = 0; e < degree; ++e) {
      g.edges_.push_back(
          static_cast<std::uint32_t>(rng.uniform_int(0, vertex_count - 1)));
    }
  }
  g.offsets_[vertex_count] = g.edges_.size();
  return g;
}

namespace {
template <typename T>
void append_pod(std::string& out, const T& value) {
  out.append(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
T read_pod(const std::string& in, std::size_t& offset) {
  CANARY_CHECK(offset + sizeof(T) <= in.size(), "truncated checkpoint");
  T value;
  std::memcpy(&value, in.data() + offset, sizeof(T));
  offset += sizeof(T);
  return value;
}
}  // namespace

std::string BfsCheckpoint::serialize() const {
  std::string out;
  append_pod(out, traversed);
  append_pod(out, frontier_sum);
  append_pod(out, static_cast<std::uint64_t>(frontier.size()));
  for (const auto v : frontier) append_pod(out, v);
  append_pod(out, static_cast<std::uint64_t>(visited_words.size()));
  for (const auto w : visited_words) append_pod(out, w);
  return out;
}

BfsCheckpoint BfsCheckpoint::deserialize(const std::string& bytes) {
  BfsCheckpoint ckpt;
  std::size_t offset = 0;
  ckpt.traversed = read_pod<std::uint64_t>(bytes, offset);
  ckpt.frontier_sum = read_pod<std::uint64_t>(bytes, offset);
  const auto frontier_size = read_pod<std::uint64_t>(bytes, offset);
  ckpt.frontier.reserve(frontier_size);
  for (std::uint64_t i = 0; i < frontier_size; ++i) {
    ckpt.frontier.push_back(read_pod<std::uint32_t>(bytes, offset));
  }
  const auto word_count = read_pod<std::uint64_t>(bytes, offset);
  ckpt.visited_words.reserve(word_count);
  for (std::uint64_t i = 0; i < word_count; ++i) {
    ckpt.visited_words.push_back(read_pod<std::uint64_t>(bytes, offset));
  }
  std::uint64_t sum = 0;
  for (const auto v : ckpt.frontier) sum += v;
  CANARY_CHECK(sum == ckpt.frontier_sum, "corrupted BFS checkpoint");
  return ckpt;
}

BfsRunner::BfsRunner(const CsrGraph& graph)
    : graph_(graph), visited_words_((graph.vertex_count() + 63) / 64, 0) {}

BfsRunner::BfsRunner(const CsrGraph& graph, std::uint32_t source)
    : BfsRunner(graph) {
  CANARY_CHECK(source < graph.vertex_count(), "source out of range");
  mark(source);
  frontier_.push_back(source);
}

void BfsRunner::advance_level() {
  if (cursor_ >= frontier_.size()) {
    frontier_.swap(next_);
    next_.clear();
    cursor_ = 0;
  }
}

std::uint64_t BfsRunner::step(std::uint64_t budget) {
  std::uint64_t processed = 0;
  while (processed < budget && !done()) {
    advance_level();
    if (cursor_ >= frontier_.size()) break;
    const std::uint32_t v = frontier_[cursor_++];
    ++traversed_;
    checksum_ += v;
    ++processed;
    for (const std::uint32_t* n = graph_.neighbours_begin(v);
         n != graph_.neighbours_end(v); ++n) {
      if (!visited(*n)) {
        mark(*n);
        next_.push_back(*n);
      }
    }
  }
  return processed;
}

BfsCheckpoint BfsRunner::checkpoint() const {
  BfsCheckpoint ckpt;
  ckpt.traversed = traversed_;
  // The unprocessed tail of the current level plus the next level form
  // the resumable frontier.
  ckpt.frontier.assign(frontier_.begin() + static_cast<std::ptrdiff_t>(cursor_),
                       frontier_.end());
  ckpt.frontier.insert(ckpt.frontier.end(), next_.begin(), next_.end());
  for (const auto v : ckpt.frontier) ckpt.frontier_sum += v;
  ckpt.visited_words = visited_words_;
  return ckpt;
}

BfsRunner BfsRunner::restore(const CsrGraph& graph,
                             const BfsCheckpoint& ckpt) {
  BfsRunner runner(graph);
  CANARY_CHECK(ckpt.visited_words.size() == runner.visited_words_.size(),
               "checkpoint is for a different graph");
  runner.visited_words_ = ckpt.visited_words;
  runner.frontier_ = ckpt.frontier;
  runner.traversed_ = ckpt.traversed;
  // The vertex-id checksum over traversed vertices cannot be recovered
  // from the compact checkpoint exactly, but the visited set minus the
  // frontier is exactly the traversed set — rebuild it from there.
  runner.checksum_ = 0;
  std::vector<bool> in_frontier(graph.vertex_count(), false);
  for (const auto v : ckpt.frontier) in_frontier[v] = true;
  for (std::uint64_t v = 0; v < graph.vertex_count(); ++v) {
    if (runner.visited(static_cast<std::uint32_t>(v)) && !in_frontier[v]) {
      runner.checksum_ += v;
    }
  }
  return runner;
}

}  // namespace canary::workloads::kernels
