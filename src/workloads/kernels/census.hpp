// Real census diversity-index kernel (the paper's Spark data-mining
// workload: "computes the diversity index at the local and national
// levels over the US census data").
//
// Synthetic county records stand in for the census extract; the diversity
// measure is Simpson's index 1 - sum(p_i^2) over ethnicity-group
// population shares. The aggregator is incremental and mergeable —
// exactly the shape of the paper's serverless map/aggregate pipeline —
// and its state serializes for checkpointing. diversity_index() fans the
// map phase out across threads and merges, mirroring the Spark stage.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace canary::workloads::kernels {

inline constexpr std::size_t kEthnicityGroups = 6;

struct CountyRecord {
  std::uint32_t county = 0;
  std::array<std::uint64_t, kEthnicityGroups> group_population{};
};

/// Deterministic synthetic census extract: `counties` county records with
/// skewed group populations.
std::vector<CountyRecord> synthesize_census(std::size_t counties,
                                            std::uint64_t seed);

/// Simpson's diversity index over group populations, in [0, 1).
double simpson_index(const std::array<std::uint64_t, kEthnicityGroups>& counts);

struct DiversityResult {
  /// Per-county index, aligned with the input record order.
  std::vector<double> county_index;
  double national_index = 0.0;
  std::uint64_t total_population = 0;
};

/// Incremental, mergeable, checkpointable aggregation state.
class DiversityAggregator {
 public:
  void absorb(const CountyRecord& record);
  void merge(const DiversityAggregator& other);

  std::size_t counties_processed() const { return county_index_.size(); }
  double national_index() const;
  std::uint64_t total_population() const;
  const std::vector<double>& county_indices() const { return county_index_; }

  std::string serialize() const;
  static DiversityAggregator deserialize(const std::string& bytes);

 private:
  std::vector<double> county_index_;
  std::array<std::uint64_t, kEthnicityGroups> national_counts_{};
};

/// Full computation; `threads` > 1 maps county chunks in parallel and
/// merges, preserving the sequential result exactly.
DiversityResult diversity_index(const std::vector<CountyRecord>& records,
                                unsigned threads = 1);

}  // namespace canary::workloads::kernels
