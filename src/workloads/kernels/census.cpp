#include "workloads/kernels/census.hpp"

#include <cstring>
#include <thread>

#include "common/result.hpp"
#include "common/rng.hpp"

namespace canary::workloads::kernels {

std::vector<CountyRecord> synthesize_census(std::size_t counties,
                                            std::uint64_t seed) {
  Rng rng(seed);
  std::vector<CountyRecord> records;
  records.reserve(counties);
  for (std::size_t c = 0; c < counties; ++c) {
    CountyRecord rec;
    rec.county = static_cast<std::uint32_t>(c);
    // Skewed populations: one dominant group per county plus a tail, so
    // county indices spread over a wide range.
    const std::size_t dominant = rng.uniform_int(0, kEthnicityGroups - 1);
    for (std::size_t g = 0; g < kEthnicityGroups; ++g) {
      const std::uint64_t base = rng.uniform_int(100, 20000);
      rec.group_population[g] = g == dominant ? base * 8 : base;
    }
    records.push_back(rec);
  }
  return records;
}

double simpson_index(
    const std::array<std::uint64_t, kEthnicityGroups>& counts) {
  std::uint64_t total = 0;
  for (const auto c : counts) total += c;
  if (total == 0) return 0.0;
  double sum_sq = 0.0;
  for (const auto c : counts) {
    const double p = static_cast<double>(c) / static_cast<double>(total);
    sum_sq += p * p;
  }
  return 1.0 - sum_sq;
}

void DiversityAggregator::absorb(const CountyRecord& record) {
  county_index_.push_back(simpson_index(record.group_population));
  for (std::size_t g = 0; g < kEthnicityGroups; ++g) {
    national_counts_[g] += record.group_population[g];
  }
}

void DiversityAggregator::merge(const DiversityAggregator& other) {
  county_index_.insert(county_index_.end(), other.county_index_.begin(),
                       other.county_index_.end());
  for (std::size_t g = 0; g < kEthnicityGroups; ++g) {
    national_counts_[g] += other.national_counts_[g];
  }
}

double DiversityAggregator::national_index() const {
  return simpson_index(national_counts_);
}

std::uint64_t DiversityAggregator::total_population() const {
  std::uint64_t total = 0;
  for (const auto c : national_counts_) total += c;
  return total;
}

std::string DiversityAggregator::serialize() const {
  std::string out;
  const auto count = static_cast<std::uint64_t>(county_index_.size());
  out.append(reinterpret_cast<const char*>(&count), sizeof(count));
  out.append(reinterpret_cast<const char*>(county_index_.data()),
             county_index_.size() * sizeof(double));
  out.append(reinterpret_cast<const char*>(national_counts_.data()),
             national_counts_.size() * sizeof(std::uint64_t));
  return out;
}

DiversityAggregator DiversityAggregator::deserialize(const std::string& bytes) {
  DiversityAggregator agg;
  std::uint64_t count = 0;
  CANARY_CHECK(bytes.size() >= sizeof(count), "truncated aggregator state");
  std::memcpy(&count, bytes.data(), sizeof(count));
  const std::size_t expected = sizeof(count) + count * sizeof(double) +
                               kEthnicityGroups * sizeof(std::uint64_t);
  CANARY_CHECK(bytes.size() == expected, "corrupted aggregator state");
  agg.county_index_.resize(count);
  std::memcpy(agg.county_index_.data(), bytes.data() + sizeof(count),
              count * sizeof(double));
  std::memcpy(agg.national_counts_.data(),
              bytes.data() + sizeof(count) + count * sizeof(double),
              kEthnicityGroups * sizeof(std::uint64_t));
  return agg;
}

DiversityResult diversity_index(const std::vector<CountyRecord>& records,
                                unsigned threads) {
  threads = std::max(1u, threads);
  std::vector<DiversityAggregator> partials(threads);

  if (threads == 1 || records.size() < 2 * threads) {
    for (const auto& rec : records) partials[0].absorb(rec);
  } else {
    // Contiguous chunks keep per-county order stable after the in-order
    // merge below.
    std::vector<std::thread> workers;
    const std::size_t chunk = (records.size() + threads - 1) / threads;
    for (unsigned t = 0; t < threads; ++t) {
      workers.emplace_back([&, t] {
        const std::size_t begin = t * chunk;
        const std::size_t end = std::min(records.size(), begin + chunk);
        for (std::size_t i = begin; i < end; ++i) {
          partials[t].absorb(records[i]);
        }
      });
    }
    for (auto& w : workers) w.join();
  }

  DiversityAggregator total;
  for (const auto& part : partials) total.merge(part);

  DiversityResult result;
  result.county_index = total.county_indices();
  result.national_index = total.national_index();
  result.total_population = total.total_population();
  return result;
}

}  // namespace canary::workloads::kernels
