// Real miniature deep-learning training kernel (the paper's DL workload:
// TensorFlow ResNet50 training with per-epoch weight checkpoints).
//
// A two-layer MLP trained with data-parallel SGD: each epoch shards the
// dataset across worker threads, every worker accumulates gradients on
// its shard, and the gradients are averaged and applied — the same
// map/aggregate structure the paper's serverless DL pipeline uses
// (pre-processing, training, weight aggregation). Weights serialize to a
// byte string, so an epoch-granular checkpoint/restore round-trip is
// exact: a killed training run resumed from its checkpoint produces
// bit-identical weights to an uninterrupted one.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace canary::workloads::kernels {

struct Dataset {
  std::size_t feature_dim = 0;
  std::size_t class_count = 0;
  std::vector<float> features;       // row-major, n x feature_dim
  std::vector<std::uint16_t> labels;

  std::size_t size() const { return labels.size(); }

  /// Deterministic, linearly-separable-ish synthetic classification set.
  static Dataset synthesize(std::size_t samples, std::size_t feature_dim,
                            std::size_t classes, std::uint64_t seed);
};

class MiniMlp {
 public:
  MiniMlp(std::size_t input_dim, std::size_t hidden_dim,
          std::size_t output_dim, std::uint64_t seed);

  /// One full-batch data-parallel epoch; returns the mean cross-entropy
  /// loss before the update. The result is independent of `threads`.
  double train_epoch(const Dataset& data, double learning_rate,
                     unsigned threads = 1);

  /// Predicted class for one sample.
  std::size_t predict(const float* sample) const;
  /// Fraction of correctly classified samples.
  double accuracy(const Dataset& data) const;

  std::size_t parameter_count() const;
  std::string serialize() const;
  static MiniMlp deserialize(const std::string& bytes);

 private:
  struct Gradients;
  void forward(const float* sample, std::vector<float>& hidden,
               std::vector<float>& probs) const;
  void accumulate(const Dataset& data, std::size_t begin, std::size_t end,
                  Gradients& grads, double& loss) const;

  std::size_t in_, hidden_, out_;
  std::vector<float> w1_, b1_, w2_, b2_;
};

}  // namespace canary::workloads::kernels
