// The five stateful workload classes of the evaluation (paper §V-C2),
// expressed as FunctionSpec state sequences, plus the plain
// python/nodejs/java runtime probes of Fig. 4 and the mixed batches of
// Fig. 11-12.
//
// Timing calibration: per-function execution is kept within a small
// multiple of its runtime's cold-start cost (as in the paper's
// function-sized work units), so the relative benefit of replication
// (removes launch+init) and checkpointing (removes redone work) lands in
// the regime the paper reports. Checkpoint payloads follow the paper:
// ResNet50 weights ~98 MiB per epoch, per-request query/response records
// for the web service, aggregated per-location indices for Spark, file
// metadata for compression, and the BFS frontier every 1M vertices.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "faas/function.hpp"

namespace canary::workloads {

enum class WorkloadKind {
  kDlTraining,
  kWebService,
  kSparkMining,
  kCompression,
  kGraphBfs,
};

inline constexpr WorkloadKind kAllWorkloads[] = {
    WorkloadKind::kDlTraining, WorkloadKind::kWebService,
    WorkloadKind::kSparkMining, WorkloadKind::kCompression,
    WorkloadKind::kGraphBfs,
};

std::string_view to_string_view(WorkloadKind kind);

/// DL training: ResNet50-class model, checkpoint (weights + biases) after
/// every epoch group. `epoch_groups` states of `epoch_group` seconds.
faas::FunctionSpec dl_training_function(std::size_t epoch_groups = 10);

/// Web service: `requests` requests of five queries each against the
/// database; checkpoint (queries + responses) after each request.
faas::FunctionSpec web_service_function(std::size_t requests = 50);

/// Spark data mining: diversity index per location over US census data,
/// aggregated incrementally; checkpoint per location batch.
faas::FunctionSpec spark_mining_function(std::size_t location_batches = 16);

/// Data compression (SeBS 311.compression): zip `files` ~1 GB inputs;
/// checkpoint after each compressed file.
faas::FunctionSpec compression_function(std::size_t files = 5);

/// Graph search (SeBS 501.graph-bfs): BFS over a 50M-vertex binary tree;
/// checkpoint every 1M traversed vertices.
faas::FunctionSpec graph_bfs_function(std::size_t million_vertices = 50);

/// Plain runtime probe used by Fig. 4's 100 invocations of the python /
/// nodejs / java container runtimes.
faas::FunctionSpec runtime_probe_function(faas::RuntimeImage image,
                                          std::size_t states = 6);

/// SeBS-style input-size scaling: multiply every state duration and
/// checkpoint payload (and the finalize phase) by `factor`, e.g. 0.1 for
/// the "test" size, 1.0 for "small" (the defaults above), 10.0 for
/// "large" inputs.
faas::FunctionSpec scaled(faas::FunctionSpec fn, double factor);

/// One workload function of the given kind with default parameters.
faas::FunctionSpec function_of(WorkloadKind kind);

/// A job of `count` identical functions of `kind`.
faas::JobSpec make_job(WorkloadKind kind, std::size_t count,
                       const std::string& name = "");

/// A batch mixing all five workload classes round-robin (Fig. 11/12's
/// "several FaaS jobs" batches).
faas::JobSpec make_mixed_batch(std::size_t count,
                               const std::string& name = "mixed-batch");

/// MapReduce workflow (paper §I: "a MapReduce workload launches mappers
/// that process the input data and produce intermediate data. The
/// reducers are launched after successful mapper execution"): `mappers`
/// independent map functions and `reducers` reduce functions triggered by
/// the completion of every mapper.
faas::JobSpec make_mapreduce_job(std::size_t mappers, std::size_t reducers,
                                 const std::string& name = "mapreduce");

/// Linear multi-stage workflow: `stages` stages of `width` functions
/// each; every function of stage s+1 is triggered by the completion of
/// all functions of stage s (the paper's "complex workflows where ...
/// components depend on the timely completion of each sub-component").
faas::JobSpec make_pipeline_job(std::size_t stages, std::size_t width,
                                const std::string& name = "pipeline");

}  // namespace canary::workloads
