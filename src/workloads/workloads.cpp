#include "workloads/workloads.hpp"

#include "common/result.hpp"

namespace canary::workloads {

std::string_view to_string_view(WorkloadKind kind) {
  switch (kind) {
    case WorkloadKind::kDlTraining: return "dl-training";
    case WorkloadKind::kWebService: return "web-service";
    case WorkloadKind::kSparkMining: return "spark-mining";
    case WorkloadKind::kCompression: return "compression";
    case WorkloadKind::kGraphBfs: return "graph-bfs";
  }
  return "unknown";
}

faas::FunctionSpec dl_training_function(std::size_t epoch_groups) {
  faas::FunctionSpec fn;
  fn.name = "dl-train";
  fn.runtime = faas::RuntimeImage::kDlTrain;
  fn.states.reserve(epoch_groups);
  for (std::size_t i = 0; i < epoch_groups; ++i) {
    // ResNet50 weights + biases are ~98 MiB — far beyond the KV per-entry
    // limit, so every DL checkpoint exercises the spill path.
    fn.states.push_back({Duration::sec(2.2), Bytes::mib(98)});
  }
  fn.finalize = Duration::sec(1.5);  // final model save
  return fn;
}

faas::FunctionSpec web_service_function(std::size_t requests) {
  faas::FunctionSpec fn;
  fn.name = "web-service";
  fn.runtime = faas::RuntimeImage::kDbQuery;
  fn.states.reserve(requests);
  for (std::size_t i = 0; i < requests; ++i) {
    // Five queries per request; the checkpoint is the request's queries
    // and responses.
    fn.states.push_back({Duration::msec(250), Bytes::kib(16)});
  }
  fn.finalize = Duration::msec(200);
  return fn;
}

faas::FunctionSpec spark_mining_function(std::size_t location_batches) {
  faas::FunctionSpec fn;
  fn.name = "spark-diversity";
  fn.runtime = faas::RuntimeImage::kSparkDiversity;
  fn.states.reserve(location_batches);
  for (std::size_t i = 0; i < location_batches; ++i) {
    // Extract/transform/aggregate one batch of locations; checkpoint the
    // aggregated diversity indices so far.
    fn.states.push_back({Duration::sec(1.4), Bytes::mib(2)});
  }
  fn.finalize = Duration::sec(1.0);
  return fn;
}

faas::FunctionSpec compression_function(std::size_t files) {
  faas::FunctionSpec fn;
  fn.name = "compression";
  fn.runtime = faas::RuntimeImage::kCompressionPy;
  fn.states.reserve(files);
  for (std::size_t i = 0; i < files; ++i) {
    // ~1 GB input compressed per state; input/output live in local
    // storage (not S3), the checkpoint records per-file progress.
    fn.states.push_back({Duration::sec(5.5), Bytes::kib(256)});
  }
  fn.finalize = Duration::msec(400);
  return fn;
}

faas::FunctionSpec graph_bfs_function(std::size_t million_vertices) {
  faas::FunctionSpec fn;
  fn.name = "graph-bfs";
  fn.runtime = faas::RuntimeImage::kGraphBfsPy;
  fn.states.reserve(million_vertices);
  for (std::size_t i = 0; i < million_vertices; ++i) {
    // One state per 1M traversed vertices; the checkpoint is the frontier
    // plus traversal counters (slightly over the KV entry limit).
    fn.states.push_back({Duration::msec(450), Bytes::mib(6)});
  }
  fn.finalize = Duration::msec(300);
  return fn;
}

faas::FunctionSpec runtime_probe_function(faas::RuntimeImage image,
                                          std::size_t states) {
  faas::FunctionSpec fn;
  fn.name = std::string("probe-") + std::string(faas::to_string_view(image));
  fn.runtime = image;
  fn.states.reserve(states);
  for (std::size_t i = 0; i < states; ++i) {
    fn.states.push_back({Duration::msec(500), Bytes::kib(32)});
  }
  fn.finalize = Duration::msec(100);
  return fn;
}

faas::FunctionSpec scaled(faas::FunctionSpec fn, double factor) {
  CANARY_CHECK(factor > 0.0, "scale factor must be positive");
  for (auto& state : fn.states) {
    state.duration = state.duration * factor;
    state.checkpoint_payload = Bytes::of(static_cast<std::uint64_t>(
        static_cast<double>(state.checkpoint_payload.count()) * factor));
  }
  fn.finalize = fn.finalize * factor;
  return fn;
}

faas::FunctionSpec function_of(WorkloadKind kind) {
  switch (kind) {
    case WorkloadKind::kDlTraining: return dl_training_function();
    case WorkloadKind::kWebService: return web_service_function();
    case WorkloadKind::kSparkMining: return spark_mining_function();
    case WorkloadKind::kCompression: return compression_function();
    case WorkloadKind::kGraphBfs: return graph_bfs_function();
  }
  CANARY_CHECK(false, "unknown workload kind");
  return {};
}

faas::JobSpec make_job(WorkloadKind kind, std::size_t count,
                       const std::string& name) {
  faas::JobSpec job;
  job.name = name.empty() ? std::string(to_string_view(kind)) : name;
  job.functions.reserve(count);
  const faas::FunctionSpec base = function_of(kind);
  for (std::size_t i = 0; i < count; ++i) {
    faas::FunctionSpec fn = base;
    fn.name += "-" + std::to_string(i);
    job.functions.push_back(std::move(fn));
  }
  return job;
}

faas::JobSpec make_mixed_batch(std::size_t count, const std::string& name) {
  faas::JobSpec job;
  job.name = name;
  job.functions.reserve(count);
  constexpr std::size_t kKinds =
      sizeof(kAllWorkloads) / sizeof(kAllWorkloads[0]);
  for (std::size_t i = 0; i < count; ++i) {
    faas::FunctionSpec fn = function_of(kAllWorkloads[i % kKinds]);
    fn.name += "-" + std::to_string(i);
    job.functions.push_back(std::move(fn));
  }
  return job;
}

faas::JobSpec make_mapreduce_job(std::size_t mappers, std::size_t reducers,
                                 const std::string& name) {
  faas::JobSpec job;
  job.name = name;
  job.functions.reserve(mappers + reducers);
  for (std::size_t m = 0; m < mappers; ++m) {
    faas::FunctionSpec fn;
    fn.name = "map-" + std::to_string(m);
    fn.runtime = faas::RuntimeImage::kPython3;
    // Map phase: scan + emit intermediate data, checkpoint per partition.
    for (int s = 0; s < 4; ++s) {
      fn.states.push_back({Duration::sec(1.8), Bytes::mib(1)});
    }
    fn.finalize = Duration::msec(300);  // intermediate data flush
    job.functions.push_back(std::move(fn));
  }
  for (std::size_t r = 0; r < reducers; ++r) {
    faas::FunctionSpec fn;
    fn.name = "reduce-" + std::to_string(r);
    fn.runtime = faas::RuntimeImage::kJava8;
    // Reduce phase: shuffle-read + aggregate, checkpoint per merge round.
    for (int s = 0; s < 6; ++s) {
      fn.states.push_back({Duration::sec(1.2), Bytes::mib(2)});
    }
    fn.finalize = Duration::msec(500);
    // Reducers are triggered only after every mapper has completed.
    fn.depends_on.reserve(mappers);
    for (std::size_t m = 0; m < mappers; ++m) fn.depends_on.push_back(m);
    job.functions.push_back(std::move(fn));
  }
  return job;
}

faas::JobSpec make_pipeline_job(std::size_t stages, std::size_t width,
                                const std::string& name) {
  faas::JobSpec job;
  job.name = name;
  job.functions.reserve(stages * width);
  for (std::size_t stage = 0; stage < stages; ++stage) {
    for (std::size_t w = 0; w < width; ++w) {
      faas::FunctionSpec fn;
      fn.name = "s" + std::to_string(stage) + "-f" + std::to_string(w);
      fn.runtime = faas::RuntimeImage::kPython3;
      for (int s = 0; s < 3; ++s) {
        fn.states.push_back({Duration::sec(1.0), Bytes::kib(256)});
      }
      fn.finalize = Duration::msec(200);
      if (stage > 0) {
        for (std::size_t p = 0; p < width; ++p) {
          fn.depends_on.push_back((stage - 1) * width + p);
        }
      }
      job.functions.push_back(std::move(fn));
    }
  }
  return job;
}

}  // namespace canary::workloads
