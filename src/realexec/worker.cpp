#include "realexec/worker.hpp"

#include <signal.h>
#include <unistd.h>

#include <cstring>
#include <string>

#include "obs/wallclock.hpp"
#include "realexec/ipc.hpp"
#include "realexec/kernel_run.hpp"
#include "realexec/protocol.hpp"

namespace canary::realexec {

namespace {

/// Sends heartbeats on the control socket whenever the interval has
/// elapsed; invoked between kernel micro-batches.
class HeartbeatTicker {
 public:
  HeartbeatTicker(int ctrl_fd, std::int64_t interval_usec)
      : ctrl_fd_(ctrl_fd), interval_usec_(interval_usec),
        last_usec_(obs::monotonic_usec()) {}

  void tick() {
    const std::int64_t now = obs::monotonic_usec();
    if (now - last_usec_ >= interval_usec_) {
      (void)write_frame(ctrl_fd_, FrameType::kHeartbeat, {});
      last_usec_ = now;
    }
  }

 private:
  int ctrl_fd_;
  std::int64_t interval_usec_;
  std::int64_t last_usec_;
};

void busy_sleep_usec(std::int64_t usec) {
  const std::int64_t until = obs::monotonic_usec() + usec;
  timespec req{0, 1'000'000};  // 1 ms naps
  while (obs::monotonic_usec() < until) nanosleep(&req, nullptr);
}

/// Write half of a commit frame, then hang until SIGKILLed: the
/// torn-frame fault the controller must detect and discard.
[[noreturn]] void write_torn_commit(int data_up_fd, const CommitPayload& commit,
                                    const std::string& ckpt) {
  FrameHeader header;
  header.type = static_cast<std::uint16_t>(FrameType::kCommit);
  header.length =
      static_cast<std::uint32_t>(sizeof(CommitPayload) + ckpt.size());
  (void)write_full(data_up_fd, &header, sizeof(header));
  (void)write_full(data_up_fd, &commit, sizeof(commit) / 2);
  for (;;) pause();
}

void run_task(int ctrl_fd, int data_up_fd, int data_down_fd,
              const std::string& dispatch_bytes) {
  DispatchPayload spec;
  if (!pod_parse(dispatch_bytes, &spec)) _exit(3);

  auto ack = [&](FrameType type) {
    CompletePayload payload;
    payload.invocation = spec.invocation;
    payload.epoch = spec.epoch;
    if (!write_frame(ctrl_fd, type, pod_bytes(payload))) _exit(0);
  };

  KernelRun run(spec.kernel, spec.seed, spec.size_param, spec.steps_total);
  run.init();
  ack(FrameType::kTaskReady);

  if (spec.restore_bytes > 0) {
    std::string ckpt(spec.restore_bytes, '\0');
    if (!read_full(data_down_fd, ckpt.data(), ckpt.size())) _exit(3);
    run.restore(ckpt);
    ack(FrameType::kRestoreDone);
  }

  HeartbeatTicker ticker(ctrl_fd, spec.heartbeat_interval_usec);
  std::uint64_t steps_run = 0;
  for (std::uint32_t step = spec.start_step;
       step < spec.steps_total && !run.done(); ++step) {
    run.run_step([&] { ticker.tick(); });
    ++steps_run;

    CommitPayload commit;
    commit.invocation = spec.invocation;
    commit.epoch = spec.epoch;
    commit.step = step;
    commit.checksum = run.checksum();
    const std::string ckpt = run.checkpoint();
    commit.nbytes = ckpt.size();

    if (step == spec.hold_before_commit_step) {
      // Zombie emulation: go silent long enough to be declared dead,
      // then push the commit anyway. The epoch fence must reject it.
      busy_sleep_usec(spec.hold_usec);
    }
    if (step == spec.torn_commit_step) {
      write_torn_commit(data_up_fd, commit, ckpt);
    }
    if (!write_frame(data_up_fd, FrameType::kCommit,
                     pod_bytes(commit) + ckpt)) {
      _exit(0);  // controller went away
    }
    ticker.tick();
  }

  CompletePayload done;
  done.invocation = spec.invocation;
  done.epoch = spec.epoch;
  done.checksum = run.checksum();
  done.steps_run = steps_run;
  if (!write_frame(ctrl_fd, FrameType::kComplete, pod_bytes(done))) _exit(0);
}

}  // namespace

void worker_main(int ctrl_fd, int data_up_fd, int data_down_fd) {
  // A controller that died mid-conversation must not take the worker
  // down with an unhandled SIGPIPE; write failures exit cleanly instead.
  signal(SIGPIPE, SIG_IGN);

  if (!write_frame(ctrl_fd, FrameType::kHello, {})) _exit(0);

  for (;;) {
    FrameType type;
    std::string payload;
    if (!read_frame(ctrl_fd, &type, &payload)) _exit(0);
    switch (type) {
      case FrameType::kDispatch:
        run_task(ctrl_fd, data_up_fd, data_down_fd, payload);
        break;
      case FrameType::kShutdown:
        _exit(0);
      default:
        _exit(3);  // protocol violation
    }
  }
}

}  // namespace canary::realexec
