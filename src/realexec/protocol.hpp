// Wire protocol between the real-execution controller and its forked
// worker processes.
//
// Two byte streams per worker, both carrying the same length-prefixed
// frame format:
//   * control plane — a Unix-domain socketpair: Hello, Dispatch,
//     Heartbeat, TaskReady, RestoreDone, Complete, Shutdown;
//   * data plane — a pipe pair: checkpoint/state Commit frames flow up
//     (worker -> controller), restore bytes flow down inside Dispatch.
//
// Frames are fixed POD headers followed by `length` payload bytes, so a
// SIGKILL mid-write leaves a cleanly detectable torn frame (short read
// at EOF) rather than silent corruption: the controller counts and
// discards it — the real-world analogue of the simulator's in-flight
// state update dying with its node.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>

namespace canary::realexec {

inline constexpr std::uint32_t kFrameMagic = 0x43414e52;  // "CANR"

enum class FrameType : std::uint16_t {
  kHello = 1,        // worker -> controller: process is up (launch done)
  kDispatch = 2,     // controller -> worker: run a task (payload follows)
  kTaskReady = 3,    // worker -> controller: input synthesized (init done)
  kRestoreDone = 4,  // worker -> controller: checkpoint deserialized
  kHeartbeat = 5,    // worker -> controller: liveness beat
  kCommit = 6,       // worker -> controller (data plane): state commit
  kComplete = 7,     // worker -> controller: task finished, checksum
  kShutdown = 8,     // controller -> worker: exit cleanly
};

struct FrameHeader {
  std::uint32_t magic = kFrameMagic;
  std::uint16_t type = 0;
  std::uint16_t reserved = 0;
  std::uint32_t length = 0;  // payload bytes following the header
};
static_assert(sizeof(FrameHeader) == 12);

/// Which miniature kernel a task runs (src/workloads/kernels).
enum class KernelKind : std::uint32_t {
  kGraphBfs = 0,
  kCompression = 1,
  kCensus = 2,
};

inline const char* to_string(KernelKind kind) {
  switch (kind) {
    case KernelKind::kGraphBfs: return "graph-bfs";
    case KernelKind::kCompression: return "compression";
    case KernelKind::kCensus: return "census";
  }
  return "unknown";
}

inline constexpr std::uint32_t kNoStep = 0xffffffffu;

/// Dispatch payload (fixed part). If `restore_bytes` > 0, that many
/// checkpoint bytes follow the fixed part inside the same frame.
struct DispatchPayload {
  std::uint32_t invocation = 0;   // controller-side invocation index
  std::uint32_t epoch = 0;        // lineage number; echoed in commits
  KernelKind kernel = KernelKind::kGraphBfs;
  std::uint32_t steps_total = 0;
  std::uint32_t start_step = 0;   // first step this lineage executes
  std::uint32_t reserved = 0;
  std::uint64_t seed = 0;
  std::uint64_t size_param = 0;   // vertices / bytes / counties
  std::int64_t heartbeat_interval_usec = 40'000;
  std::uint64_t restore_bytes = 0;
  // ---- fault-injection hooks (tests only; kNoStep = disabled) ----
  /// Go silent (no heartbeats) just before committing this step, for
  /// `hold_usec`, then commit anyway: a zombie whose late write must hit
  /// the epoch fence.
  std::uint32_t hold_before_commit_step = kNoStep;
  std::uint32_t reserved2 = 0;
  std::int64_t hold_usec = 0;
  /// Write only half of this step's commit frame, then spin forever
  /// (the controller SIGKILLs it): produces a torn frame on the pipe.
  std::uint32_t torn_commit_step = kNoStep;
  std::uint32_t reserved3 = 0;
};
static_assert(sizeof(DispatchPayload) == 80);

/// Commit payload (fixed part); `nbytes` checkpoint bytes follow.
struct CommitPayload {
  std::uint32_t invocation = 0;
  std::uint32_t epoch = 0;
  std::uint32_t step = 0;         // 0-based step index just completed
  std::uint32_t reserved = 0;
  std::uint64_t checksum = 0;     // kernel checksum after this step
  std::uint64_t nbytes = 0;       // checkpoint bytes following
};
static_assert(sizeof(CommitPayload) == 32);

/// Complete payload: final kernel checksum for the completion oracle.
struct CompletePayload {
  std::uint32_t invocation = 0;
  std::uint32_t epoch = 0;
  std::uint64_t checksum = 0;
  std::uint64_t steps_run = 0;
};
static_assert(sizeof(CompletePayload) == 24);

/// FNV-1a64 — same hash the KV store uses for entry checksums; workers
/// use it to checksum byte outputs without linking the store.
inline std::uint64_t fnv1a64(const void* data, std::size_t size) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = 1469598103934665603ull;
  for (std::size_t i = 0; i < size; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

inline std::uint64_t fnv1a64(const std::string& bytes) {
  return fnv1a64(bytes.data(), bytes.size());
}

/// Serialize a POD payload into a string (wire form).
template <typename T>
std::string pod_bytes(const T& value) {
  std::string out(sizeof(T), '\0');
  std::memcpy(out.data(), &value, sizeof(T));
  return out;
}

/// Parse a POD payload from the front of a buffer; false if too short.
template <typename T>
bool pod_parse(const std::string& bytes, T* out) {
  if (bytes.size() < sizeof(T)) return false;
  std::memcpy(out, bytes.data(), sizeof(T));
  return true;
}

}  // namespace canary::realexec
