#include "realexec/controller.hpp"

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "common/result.hpp"
#include "realexec/worker.hpp"

namespace canary::realexec {

namespace {
/// Best-effort pipe widening so multi-hundred-KB checkpoints don't
/// serialize the event loop behind a 64 KiB kernel buffer. Failure
/// (unprivileged caller, small pipe-max-size) is fine — the pending
/// write queue handles any capacity.
void widen_pipe(int fd) {
#ifdef F_SETPIPE_SZ
  (void)::fcntl(fd, F_SETPIPE_SZ, 1 << 20);
#endif
}
}  // namespace

std::string_view to_string_view(WorkerState state) {
  switch (state) {
    case WorkerState::kSpawned: return "spawned";
    case WorkerState::kReady: return "ready";
    case WorkerState::kInitializing: return "initializing";
    case WorkerState::kRestoring: return "restoring";
    case WorkerState::kExecuting: return "executing";
    case WorkerState::kDead: return "dead";
  }
  return "unknown";
}

Controller::Controller(ControllerConfig config) : config_(std::move(config)) {
  signal(SIGPIPE, SIG_IGN);
  std::vector<NodeId> cache_nodes;
  cache_nodes.reserve(config_.max_workers);
  for (std::size_t i = 0; i < config_.max_workers; ++i) {
    cache_nodes.push_back(NodeId{i + 1});
  }
  kv_ = std::make_unique<kv::KvStore>(config_.kv, std::move(cache_nodes));
}

Controller::~Controller() {
  for (auto& worker : workers_) {
    if (worker.pid > 0 && !worker.reaped) {
      ::kill(worker.pid, SIGCONT);  // a stopped worker cannot die of SIGKILL
      ::kill(worker.pid, SIGKILL);
      reap(worker, true);
    }
    close_quiet(worker.ctrl_fd);
    close_quiet(worker.data_up_fd);
    close_quiet(worker.data_down_fd);
  }
}

std::string Controller::checkpoint_key(std::uint32_t invocation,
                                       std::uint32_t step) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "ckpt/%u/%06u", invocation, step);
  return buf;
}

WorkerId Controller::spawn() {
  CANARY_CHECK(workers_.size() < config_.max_workers,
               "worker capacity exhausted");
  int ctrl[2];
  CANARY_CHECK(::socketpair(AF_UNIX, SOCK_STREAM, 0, ctrl) == 0,
               "socketpair failed");
  int up[2];
  int down[2];
  CANARY_CHECK(::pipe(up) == 0 && ::pipe(down) == 0, "pipe failed");
  widen_pipe(up[1]);
  widen_pipe(down[1]);

  const pid_t pid = ::fork();
  CANARY_CHECK(pid >= 0, "fork failed");
  if (pid == 0) {
    // Child: drop every controller-side descriptor (other workers'
    // pipes included — a dead sibling's pipe must hit EOF), then serve.
    for (const auto& other : workers_) {
      close_quiet(other.ctrl_fd);
      close_quiet(other.data_up_fd);
      close_quiet(other.data_down_fd);
    }
    close_quiet(ctrl[0]);
    close_quiet(up[0]);
    close_quiet(down[1]);
    worker_main(ctrl[1], up[1], down[0]);  // never returns
  }

  close_quiet(ctrl[1]);
  close_quiet(up[1]);
  close_quiet(down[0]);
  set_nonblocking(ctrl[0], true);
  set_nonblocking(up[0], true);
  set_nonblocking(down[1], true);

  Worker worker;
  worker.pid = pid;
  worker.ctrl_fd = ctrl[0];
  worker.data_up_fd = up[0];
  worker.data_down_fd = down[1];
  worker.ctrl_reader = std::make_unique<FrameReader>(ctrl[0]);
  worker.data_reader = std::make_unique<FrameReader>(up[0]);
  worker.node = NodeId{workers_.size() + 1};
  worker.last_beat = now();
  workers_.push_back(std::move(worker));
  ++stats_.workers_spawned;
  return static_cast<WorkerId>(workers_.size() - 1);
}

std::uint32_t Controller::dispatch(WorkerId id, const TaskSpec& spec) {
  Worker& worker = workers_.at(id);
  CANARY_CHECK(worker.state == WorkerState::kReady,
               "dispatch needs a ready worker");
  auto& inv = invocations_[spec.invocation];
  ++inv.epoch;  // fresh lineage: prior lineages' commits become stale
  worker.invocation = spec.invocation;
  worker.epoch = inv.epoch;

  DispatchPayload payload;
  payload.invocation = spec.invocation;
  payload.epoch = inv.epoch;
  payload.kernel = spec.kernel;
  payload.steps_total = spec.steps_total;
  payload.start_step = spec.start_step;
  payload.seed = spec.seed;
  payload.size_param = spec.size_param;
  payload.heartbeat_interval_usec = config_.heartbeat_interval.count_usec();
  payload.restore_bytes = spec.restore_bytes.size();
  payload.hold_before_commit_step = spec.hold_before_commit_step;
  payload.hold_usec = spec.hold.count_usec();
  payload.torn_commit_step = spec.torn_commit_step;

  worker.restore_pending = !spec.restore_bytes.empty();
  worker.state = WorkerState::kInitializing;
  worker.last_beat = now();
  (void)write_frame_poll(worker.ctrl_fd, FrameType::kDispatch,
                         pod_bytes(payload));
  worker.pending_down = spec.restore_bytes;
  flush_pending_down(worker);
  return inv.epoch;
}

void Controller::sigkill(WorkerId id) {
  Worker& worker = workers_.at(id);
  if (worker.pid > 0 && !worker.reaped) {
    ::kill(worker.pid, SIGKILL);
    ++stats_.sigkills_sent;
  }
}

void Controller::sigstop(WorkerId id) {
  Worker& worker = workers_.at(id);
  if (worker.pid > 0 && !worker.reaped) ::kill(worker.pid, SIGSTOP);
}

void Controller::sigcont(WorkerId id) {
  Worker& worker = workers_.at(id);
  if (worker.pid > 0 && !worker.reaped) ::kill(worker.pid, SIGCONT);
}

void Controller::fence(WorkerId id) {
  Worker& worker = workers_.at(id);
  worker.fenced = true;
  kv_->fence_node(worker.node);
}

void Controller::shutdown(WorkerId id) {
  Worker& worker = workers_.at(id);
  if (worker.state == WorkerState::kDead) return;
  (void)write_frame_poll(worker.ctrl_fd, FrameType::kShutdown, {});
}

void Controller::set_drain_paused(WorkerId id, bool paused) {
  workers_.at(id).drain_paused = paused;
}

WorkerState Controller::state_of(WorkerId id) const {
  return workers_.at(id).state;
}

pid_t Controller::pid_of(WorkerId id) const { return workers_.at(id).pid; }

NodeId Controller::node_of(WorkerId id) const { return workers_.at(id).node; }

std::size_t Controller::live_workers() const {
  std::size_t live = 0;
  for (const auto& worker : workers_) {
    if (worker.state != WorkerState::kDead) ++live;
  }
  return live;
}

std::uint32_t Controller::current_epoch(std::uint32_t invocation) const {
  auto it = invocations_.find(invocation);
  return it == invocations_.end() ? 0 : it->second.epoch;
}

std::int64_t Controller::last_committed_step(std::uint32_t invocation) const {
  auto it = invocations_.find(invocation);
  return it == invocations_.end() ? -1 : it->second.last_step;
}

std::optional<Controller::CheckpointRef> Controller::latest_checkpoint(
    std::uint32_t invocation) const {
  auto it = invocations_.find(invocation);
  if (it == invocations_.end() || it->second.last_step < 0) return std::nullopt;
  const auto step = static_cast<std::uint32_t>(it->second.last_step);
  const std::string key = checkpoint_key(invocation, step);
  // No-corrupt-restore oracle: never hand out bytes whose stored
  // checksum no longer matches.
  if (!kv_->intact(key)) return std::nullopt;
  auto entry = kv_->get(key);
  if (!entry.ok()) return std::nullopt;
  return CheckpointRef{step, entry.value().payload};
}

Duration Controller::death_deadline(const Worker& worker) const {
  switch (worker.state) {
    case WorkerState::kSpawned:
    case WorkerState::kInitializing:
    case WorkerState::kRestoring:
      return config_.launch_grace;
    case WorkerState::kExecuting:
      return config_.heartbeat_interval * config_.timeout_multiplier;
    case WorkerState::kReady:
    case WorkerState::kDead:
      return Duration::max();
  }
  return Duration::max();
}

void Controller::reap(Worker& worker, bool blocking) {
  if (worker.pid <= 0 || worker.reaped) return;
  int status = 0;
  const pid_t r = ::waitpid(worker.pid, &status, blocking ? 0 : WNOHANG);
  if (r == worker.pid || (r < 0 && errno == ECHILD)) worker.reaped = true;
}

void Controller::flush_pending_down(Worker& worker) {
  while (!worker.pending_down.empty()) {
    const ssize_t n = ::write(worker.data_down_fd, worker.pending_down.data(),
                              worker.pending_down.size());
    if (n > 0) {
      worker.pending_down.erase(0, static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
    worker.pending_down.clear();  // EPIPE: worker died; heartbeat loss
    return;                       // will surface the failure
  }
}

void Controller::declare_dead(WorkerId id, std::vector<ControllerEvent>* out) {
  Worker& worker = workers_[id];
  if (worker.state == WorkerState::kDead) return;
  worker.state = WorkerState::kDead;
  worker.fenced = true;
  ++stats_.heartbeat_deaths;

  // Fence FIRST: from this instant the lineage's writes are stale, so
  // commit frames still buffered in the pipe — or written later by a
  // live zombie — cannot win a race against the replacement.
  kv_->fence_node(worker.node);

  out->push_back({ControllerEvent::Kind::kWorkerDead, id, worker.invocation,
                  worker.epoch, 0, 0, now()});

  if (config_.kill_on_fence && worker.pid > 0 && !worker.reaped) {
    ::kill(worker.pid, SIGCONT);
    ::kill(worker.pid, SIGKILL);
    reap(worker, true);
  }

  // Drain AFTER the fence; anything buffered bounces off it.
  worker.data_reader->pump();
  process_data_frames(id, out);
  worker.ctrl_reader->pump();
  process_ctrl_frames(id, out);
}

void Controller::process_ctrl_frames(WorkerId id,
                                     std::vector<ControllerEvent>* out) {
  Worker& worker = workers_[id];
  while (auto frame = worker.ctrl_reader->next()) {
    if (worker.state == WorkerState::kDead) continue;  // no resurrection
    worker.last_beat = now();
    switch (frame->type) {
      case FrameType::kHello:
        worker.state = WorkerState::kReady;
        out->push_back({ControllerEvent::Kind::kHello, id, 0, 0, 0, 0, now()});
        break;
      case FrameType::kHeartbeat:
        break;  // last_beat update above is the whole point
      case FrameType::kTaskReady:
        worker.state = worker.restore_pending ? WorkerState::kRestoring
                                              : WorkerState::kExecuting;
        out->push_back({ControllerEvent::Kind::kTaskReady, id,
                        worker.invocation, worker.epoch, 0, 0, now()});
        break;
      case FrameType::kRestoreDone:
        worker.restore_pending = false;
        worker.state = WorkerState::kExecuting;
        out->push_back({ControllerEvent::Kind::kRestoreDone, id,
                        worker.invocation, worker.epoch, 0, 0, now()});
        break;
      case FrameType::kComplete: {
        CompletePayload done;
        if (!pod_parse(frame->payload, &done)) break;
        worker.state = WorkerState::kReady;
        out->push_back({ControllerEvent::Kind::kComplete, id, done.invocation,
                        done.epoch, 0, done.checksum, now()});
        break;
      }
      default:
        break;
    }
  }
}

void Controller::process_data_frames(WorkerId id,
                                     std::vector<ControllerEvent>* out) {
  Worker& worker = workers_[id];
  while (auto frame = worker.data_reader->next()) {
    if (frame->type == FrameType::kCommit) {
      handle_commit(id, frame->payload, out);
    }
  }
  if (worker.data_reader->eof() && worker.data_reader->torn() &&
      !worker.torn_flagged) {
    // The stream ended mid-frame: a SIGKILL landed inside a commit
    // write. The fragment is discarded — never half-applied.
    worker.torn_flagged = true;
    ++stats_.commits_torn;
    out->push_back({ControllerEvent::Kind::kCommitTorn, id, worker.invocation,
                    worker.epoch, 0, 0, now()});
  }
}

void Controller::handle_commit(WorkerId id, const std::string& payload,
                               std::vector<ControllerEvent>* out) {
  CommitPayload commit;
  if (!pod_parse(payload, &commit)) return;
  std::string bytes = payload.substr(sizeof(CommitPayload));
  CANARY_CHECK(bytes.size() == commit.nbytes, "commit length mismatch");

  Worker& worker = workers_[id];
  if (worker.state != WorkerState::kDead) worker.last_beat = now();
  auto& inv = invocations_[commit.invocation];

  // The write is attributed to the worker's cache node; a fenced node's
  // put comes back kUnavailable and counts as a stale_epoch_reject in
  // the store — the same mechanism the simulator's partition runs use.
  const Status status =
      kv_->put(checkpoint_key(commit.invocation, commit.step), bytes,
               std::nullopt, worker.node);
  if (!status.ok()) {
    ++stats_.commits_stale;
    out->push_back({ControllerEvent::Kind::kCommitStale, id, commit.invocation,
                    commit.epoch, commit.step, commit.checksum, now()});
    return;
  }
  if (commit.epoch != inv.epoch) {
    // A stale lineage's write got past the fence: exactly-once is
    // broken. Counted loudly; the validation bench fails on it.
    ++stats_.commits_stale;
    ++stats_.unfenced_stale_commits;
    out->push_back({ControllerEvent::Kind::kCommitStale, id, commit.invocation,
                    commit.epoch, commit.step, commit.checksum, now()});
    return;
  }
  if (inv.last_step_epoch == commit.epoch &&
      static_cast<std::int64_t>(commit.step) <= inv.last_step) {
    ++stats_.duplicate_commits;
    out->push_back({ControllerEvent::Kind::kCommitStale, id, commit.invocation,
                    commit.epoch, commit.step, commit.checksum, now()});
    return;
  }
  inv.last_step = commit.step;
  inv.last_step_epoch = commit.epoch;
  ++stats_.commits_accepted;
  out->push_back({ControllerEvent::Kind::kCommitAccepted, id,
                  commit.invocation, commit.epoch, commit.step, commit.checksum,
                  now()});
}

std::size_t Controller::poll_events(Duration max_wait,
                                    std::vector<ControllerEvent>* out) {
  const std::size_t base = out->size();
  const TimePoint start = now();
  for (;;) {
    // Heartbeat sweep: declare (and fence) every overdue worker.
    for (WorkerId id = 0; id < workers_.size(); ++id) {
      Worker& worker = workers_[id];
      if (worker.state == WorkerState::kDead) continue;
      const Duration deadline = death_deadline(worker);
      if (deadline == Duration::max()) continue;
      if (now() - worker.last_beat > deadline) declare_dead(id, out);
    }
    if (out->size() > base) return out->size() - base;

    const Duration elapsed = now() - start;
    if (elapsed >= max_wait) return 0;
    Duration wait = max_wait - elapsed;

    // Bound the poll by the nearest heartbeat deadline.
    for (const auto& worker : workers_) {
      if (worker.state == WorkerState::kDead) continue;
      const Duration deadline = death_deadline(worker);
      if (deadline == Duration::max()) continue;
      const TimePoint expires = worker.last_beat + deadline;
      const Duration until =
          expires > now() ? expires - now() : Duration::usec(1);
      wait = std::min(wait, until);
    }

    std::vector<pollfd> fds;
    std::vector<std::pair<WorkerId, int>> what;  // worker, 0=ctrl 1=data 2=down
    for (WorkerId id = 0; id < workers_.size(); ++id) {
      Worker& worker = workers_[id];
      if (!worker.ctrl_reader->eof()) {
        fds.push_back({worker.ctrl_fd, POLLIN, 0});
        what.emplace_back(id, 0);
      }
      if (!worker.data_reader->eof() && !worker.drain_paused) {
        fds.push_back({worker.data_up_fd, POLLIN, 0});
        what.emplace_back(id, 1);
      }
      if (!worker.pending_down.empty()) {
        fds.push_back({worker.data_down_fd, POLLOUT, 0});
        what.emplace_back(id, 2);
      }
    }

    const int timeout_ms = static_cast<int>(
        std::min<std::int64_t>((wait.count_usec() + 999) / 1000, 100));
    if (fds.empty()) {
      timespec req{0, std::max<long>(timeout_ms, 1) * 1'000'000L};
      nanosleep(&req, nullptr);
    } else {
      const int rc = ::poll(fds.data(), fds.size(), std::max(timeout_ms, 1));
      if (rc > 0) {
        for (std::size_t i = 0; i < fds.size(); ++i) {
          if (fds[i].revents == 0) continue;
          const auto [id, kind] = what[i];
          Worker& worker = workers_[id];
          if (kind == 0 && (fds[i].revents & (POLLIN | POLLHUP | POLLERR))) {
            worker.ctrl_reader->pump();
            process_ctrl_frames(id, out);
          } else if (kind == 1 &&
                     (fds[i].revents & (POLLIN | POLLHUP | POLLERR))) {
            worker.data_reader->pump();
            process_data_frames(id, out);
          } else if (kind == 2) {
            flush_pending_down(worker);
          }
        }
      }
    }
    if (out->size() > base) return out->size() - base;
  }
}

}  // namespace canary::realexec
