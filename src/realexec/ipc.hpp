// Framed-message I/O over file descriptors (control socketpair + data
// pipes) for the real-execution substrate.
//
// Workers write blocking, full frames. The controller reads
// non-blocking through a FrameReader that accumulates bytes and yields
// only complete frames — a worker SIGKILLed mid-write leaves a torn
// trailing fragment that the reader surfaces exactly once at EOF.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "realexec/protocol.hpp"

namespace canary::realexec {

/// write(2) until all of `size` is written. False on error (EPIPE when
/// the peer died). Retries EINTR.
bool write_full(int fd, const void* data, std::size_t size);

/// Blocking read of exactly `size` bytes. False on EOF/error.
bool read_full(int fd, void* data, std::size_t size);

/// Write header + payload as one frame (blocking).
bool write_frame(int fd, FrameType type, const std::string& payload);

/// write_full over a non-blocking fd: parks in poll(POLLOUT) on EAGAIN
/// instead of failing. For small control-plane writes from the
/// controller, whose read side of the same fd must stay non-blocking.
bool write_full_poll(int fd, const void* data, std::size_t size);

/// Frame variant of write_full_poll.
bool write_frame_poll(int fd, FrameType type, const std::string& payload);

/// Blocking read of one frame; false on EOF/error/bad magic.
bool read_frame(int fd, FrameType* type, std::string* payload);

struct Frame {
  FrameType type;
  std::string payload;
};

/// Incremental parser over a non-blocking fd. pump() appends whatever
/// the fd has; next() yields complete frames. After EOF, a non-empty
/// remainder that never completed is the torn-frame signal.
class FrameReader {
 public:
  explicit FrameReader(int fd) : fd_(fd) {}

  /// Drain the fd (non-blocking). Returns false once EOF or a fatal
  /// error is hit (reader stays usable for buffered frames).
  bool pump();
  /// Next complete frame, if any is buffered.
  std::optional<Frame> next();

  bool eof() const { return eof_; }
  /// True when the stream ended mid-frame: bytes of an incomplete
  /// header/payload remain. Valid only after eof().
  bool torn() const { return eof_ && !buffer_.empty(); }
  std::size_t torn_bytes() const { return eof_ ? buffer_.size() : 0; }
  int fd() const { return fd_; }

 private:
  int fd_;
  bool eof_ = false;
  std::string buffer_;
};

/// Make a descriptor (non-)blocking; aborts on fcntl failure.
void set_nonblocking(int fd, bool nonblocking);

/// Close if >= 0 (idempotent helper for teardown paths).
void close_quiet(int fd);

}  // namespace canary::realexec
