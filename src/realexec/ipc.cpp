#include "realexec/ipc.hpp"

#include <errno.h>
#include <fcntl.h>
#include <poll.h>
#include <unistd.h>

#include <cstring>

#include "common/result.hpp"

namespace canary::realexec {

bool write_full(int fd, const void* data, std::size_t size) {
  const char* p = static_cast<const char*>(data);
  std::size_t done = 0;
  while (done < size) {
    ssize_t n = ::write(fd, p + done, size - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    done += static_cast<std::size_t>(n);
  }
  return true;
}

bool read_full(int fd, void* data, std::size_t size) {
  char* p = static_cast<char*>(data);
  std::size_t done = 0;
  while (done < size) {
    ssize_t n = ::read(fd, p + done, size - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) return false;  // EOF
    done += static_cast<std::size_t>(n);
  }
  return true;
}

bool write_frame(int fd, FrameType type, const std::string& payload) {
  FrameHeader header;
  header.type = static_cast<std::uint16_t>(type);
  header.length = static_cast<std::uint32_t>(payload.size());
  if (!write_full(fd, &header, sizeof(header))) return false;
  if (!payload.empty() &&
      !write_full(fd, payload.data(), payload.size()))
    return false;
  return true;
}

bool write_full_poll(int fd, const void* data, std::size_t size) {
  const char* p = static_cast<const char*>(data);
  std::size_t done = 0;
  while (done < size) {
    ssize_t n = ::write(fd, p + done, size - done);
    if (n >= 0) {
      done += static_cast<std::size_t>(n);
      continue;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      struct pollfd pfd = {fd, POLLOUT, 0};
      (void)::poll(&pfd, 1, 1000);
      continue;
    }
    return false;
  }
  return true;
}

bool write_frame_poll(int fd, FrameType type, const std::string& payload) {
  FrameHeader header;
  header.type = static_cast<std::uint16_t>(type);
  header.length = static_cast<std::uint32_t>(payload.size());
  if (!write_full_poll(fd, &header, sizeof(header))) return false;
  if (!payload.empty() &&
      !write_full_poll(fd, payload.data(), payload.size()))
    return false;
  return true;
}

bool read_frame(int fd, FrameType* type, std::string* payload) {
  FrameHeader header;
  if (!read_full(fd, &header, sizeof(header))) return false;
  if (header.magic != kFrameMagic) return false;
  payload->resize(header.length);
  if (header.length > 0 &&
      !read_full(fd, payload->data(), header.length))
    return false;
  *type = static_cast<FrameType>(header.type);
  return true;
}

bool FrameReader::pump() {
  if (eof_) return false;
  char chunk[16 * 1024];
  for (;;) {
    ssize_t n = ::read(fd_, chunk, sizeof(chunk));
    if (n > 0) {
      buffer_.append(chunk, static_cast<std::size_t>(n));
      continue;
    }
    if (n == 0) {
      eof_ = true;
      return false;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
    eof_ = true;  // fatal error: treat like EOF
    return false;
  }
}

std::optional<Frame> FrameReader::next() {
  if (buffer_.size() < sizeof(FrameHeader)) return std::nullopt;
  FrameHeader header;
  std::memcpy(&header, buffer_.data(), sizeof(header));
  CANARY_CHECK(header.magic == kFrameMagic, "corrupt frame stream");
  const std::size_t total = sizeof(header) + header.length;
  if (buffer_.size() < total) return std::nullopt;
  Frame frame;
  frame.type = static_cast<FrameType>(header.type);
  frame.payload = buffer_.substr(sizeof(header), header.length);
  buffer_.erase(0, total);
  return frame;
}

void set_nonblocking(int fd, bool nonblocking) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  CANARY_CHECK(flags >= 0, "fcntl(F_GETFL) failed");
  if (nonblocking) {
    flags |= O_NONBLOCK;
  } else {
    flags &= ~O_NONBLOCK;
  }
  CANARY_CHECK(::fcntl(fd, F_SETFL, flags) == 0, "fcntl(F_SETFL) failed");
}

void close_quiet(int fd) {
  if (fd >= 0) ::close(fd);
}

}  // namespace canary::realexec
