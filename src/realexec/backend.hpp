// Real-execution backend: drives the controller through the same
// fail -> detect -> fence -> recover cycle the simulator models, with
// genuinely asynchronous process deaths, and measures the paper's
// per-component recovery decomposition on the wall clock.
//
// One scenario = one invocation of a miniature kernel, SIGKILLed
// mid-execution `kills` times, recovered under a policy (retry from
// scratch, checkpoint restore from the epoch-fenced KV store, or a
// pre-forked warm spare). PlatformObservers installed on the backend
// receive the same attempt/failure/completion callbacks the simulated
// Platform emits, so harness-side bookkeeping is substrate-blind.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/time.hpp"
#include "faas/events.hpp"
#include "faas/function.hpp"
#include "faas/substrate.hpp"
#include "realexec/controller.hpp"

namespace canary::realexec {

enum class RecoveryPolicy {
  kRetry,              // restart from scratch (the FaaS default)
  kCheckpointRestore,  // resume from the latest intact KV checkpoint
  kWarmSpare,          // pre-forked idle process, scratch restart (AS)
};

const char* to_string(RecoveryPolicy policy);

struct RealScenarioConfig {
  KernelKind kernel = KernelKind::kGraphBfs;
  std::uint64_t seed = 1;
  std::uint64_t size_param = 1 << 20;
  std::uint32_t steps_total = 8;
  RecoveryPolicy policy = RecoveryPolicy::kCheckpointRestore;
  /// SIGKILL the active worker this long after the commit of step
  /// `kill_after_commit_step` is accepted (mid-execution of the next
  /// step). Subsequent kills re-arm two steps later each.
  std::uint32_t kill_after_commit_step = 2;
  Duration kill_delay = Duration::msec(5);
  std::uint32_t kills = 1;
  Duration heartbeat_interval = Duration::msec(40);
  double timeout_multiplier = 4.0;
  /// Abort (completed=false) if the scenario exceeds this wall time.
  Duration run_timeout = Duration::sec(120.0);
};

/// Per-component recovery time, the paper's decomposition. Scheduling
/// is the residual, so the components sum exactly to the window.
struct RecoveryTiming {
  double detection_s = 0.0;   // SIGKILL -> heartbeat-declared dead
  double scheduling_s = 0.0;  // residual (drain, spawn gap, dispatch gap)
  double launch_s = 0.0;      // fork -> Hello
  double init_s = 0.0;        // dispatch -> TaskReady (input synthesis)
  double restore_s = 0.0;     // TaskReady -> RestoreDone
  double re_exec_s = 0.0;     // RestoreDone -> in-flight step recommitted
  double window_s() const {
    return detection_s + scheduling_s + launch_s + init_s + restore_s +
           re_exec_s;
  }
  void add(const RecoveryTiming& other);
};

struct RealScenarioResult {
  bool completed = false;
  std::uint64_t reference_checksum = 0;
  std::uint64_t final_checksum = 0;
  std::uint64_t recoveries = 0;
  RecoveryTiming recovery;  // summed over recoveries
  double makespan_s = 0.0;
  double first_step_exec_s = 0.0;  // mean accepted-commit inter-arrival
  std::uint64_t checkpoint_bytes = 0;  // last accepted checkpoint's size
  double kill_offset_s = 0.0;          // first SIGKILL, from run start
  ControllerStats stats;
  std::uint64_t kv_stale_epoch_rejects = 0;
  /// Oracle violations (empty = exactly-once, no-corrupt-restore and
  /// completion all held).
  std::vector<std::string> violations;

  faas::SubstrateRunSummary summary() const;
};

class RealBackend {
 public:
  explicit RealBackend(ControllerConfig base = {});

  /// Observers receive faas::PlatformObserver callbacks mirroring the
  /// simulated platform's (attempt started / failed / completed).
  void add_observer(faas::PlatformObserver* observer);

  RealScenarioResult run(const RealScenarioConfig& scenario);

 private:
  ControllerConfig base_;
  std::vector<faas::PlatformObserver*> observers_;
};

}  // namespace canary::realexec
