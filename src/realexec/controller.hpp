// Real-execution control plane: forked worker processes behind a
// poll()-driven event loop.
//
// The controller owns, per worker, a Unix-domain control socketpair
// (hello / dispatch / heartbeat / lifecycle acks) and two data pipes
// (commits up, restore bytes down). Failure detection is genuinely
// asynchronous: a worker is dead only when its heartbeats stop for
// `heartbeat_interval x timeout_multiplier` — SIGKILL, SIGSTOP, or a
// wedged process all surface the same way, exactly like the simulator's
// heartbeat detector. On death the controller *fences before draining*:
// the worker's NodeId is epoch-fenced in the shared KV store first, so
// commit frames still buffered in its pipe — or written later by a
// live zombie — are rejected as stale-epoch writes, which is the
// split-brain exactly-once guarantee the sim asserts, now enforced
// against a real asynchronous process.
#pragma once

#include <sys/types.h>

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/ids.hpp"
#include "common/time.hpp"
#include "kvstore/kvstore.hpp"
#include "obs/wallclock.hpp"
#include "realexec/ipc.hpp"
#include "realexec/protocol.hpp"

namespace canary::realexec {

using WorkerId = std::uint32_t;

enum class WorkerState {
  kSpawned,       // forked, Hello not yet seen
  kReady,         // idle, dispatchable
  kInitializing,  // dispatched, synthesizing input
  kRestoring,     // input ready, deserializing a checkpoint
  kExecuting,     // running kernel steps
  kDead,          // heartbeat-declared dead (and fenced)
};

std::string_view to_string_view(WorkerState state);

/// One task dispatch. The controller assigns the lineage epoch.
struct TaskSpec {
  KernelKind kernel = KernelKind::kGraphBfs;
  std::uint64_t seed = 1;
  std::uint64_t size_param = 1 << 20;
  std::uint32_t steps_total = 8;
  std::uint32_t invocation = 0;
  std::uint32_t start_step = 0;
  /// Checkpoint to resume from (streamed over the data-down pipe).
  std::string restore_bytes;
  // ---- fault hooks (tests; kNoStep = off) ----
  std::uint32_t hold_before_commit_step = kNoStep;
  Duration hold = Duration::zero();
  std::uint32_t torn_commit_step = kNoStep;
};

struct ControllerEvent {
  enum class Kind {
    kHello,           // worker process is up
    kTaskReady,       // input synthesized
    kRestoreDone,     // checkpoint loaded
    kCommitAccepted,  // state commit persisted in the KV store
    kCommitStale,     // commit rejected (fenced writer / stale lineage)
    kCommitTorn,      // half-written commit frame discarded at EOF
    kComplete,        // task finished; checksum carried
    kWorkerDead,      // heartbeat timeout fired; worker fenced
  };
  Kind kind;
  WorkerId worker = 0;
  std::uint32_t invocation = 0;
  std::uint32_t epoch = 0;
  std::uint32_t step = 0;
  std::uint64_t checksum = 0;
  TimePoint at;  // wall clock, microseconds since controller start
};

struct ControllerConfig {
  Duration heartbeat_interval = Duration::msec(50);
  /// Missed intervals before a worker is declared dead.
  double timeout_multiplier = 4.0;
  /// Allowance for the non-beating phases (spawn->Hello, input
  /// synthesis, restore): these run real compute whose duration is the
  /// thing being measured, so they get a generous fixed deadline.
  Duration launch_grace = Duration::sec(10.0);
  /// Physically SIGKILL a worker when it is declared dead. Off lets a
  /// live zombie keep running so tests can watch its late commit bounce
  /// off the epoch fence.
  bool kill_on_fence = true;
  std::size_t max_workers = 64;
  kv::KvConfig kv;
};

struct ControllerStats {
  std::uint64_t workers_spawned = 0;
  std::uint64_t sigkills_sent = 0;
  std::uint64_t heartbeat_deaths = 0;
  std::uint64_t commits_accepted = 0;
  std::uint64_t commits_stale = 0;     // rejected by fence/lineage check
  std::uint64_t commits_torn = 0;      // half-frames discarded
  std::uint64_t duplicate_commits = 0; // same lineage re-committing a step
  /// Stale-lineage commits that the KV fence FAILED to reject — any
  /// non-zero value is an exactly-once violation.
  std::uint64_t unfenced_stale_commits = 0;
};

class Controller {
 public:
  explicit Controller(ControllerConfig config);
  ~Controller();
  Controller(const Controller&) = delete;
  Controller& operator=(const Controller&) = delete;

  /// Fork a worker. Hello arrives asynchronously as an event.
  WorkerId spawn();

  /// Send a task; returns the fresh lineage epoch assigned to it.
  std::uint32_t dispatch(WorkerId worker, const TaskSpec& spec);

  /// Fault injection: the injector's node-kill, for real.
  void sigkill(WorkerId worker);
  void sigstop(WorkerId worker);
  void sigcont(WorkerId worker);
  /// Logical fence only (split-brain emulation): epoch-fence the
  /// worker's node in the KV store without touching the process.
  void fence(WorkerId worker);
  /// Graceful shutdown request.
  void shutdown(WorkerId worker);
  /// Test hook: stop draining this worker's data pipe (delays its
  /// commits inside the kernel buffer, like a slow network path).
  void set_drain_paused(WorkerId worker, bool paused);

  /// Pump the event loop: poll fds, flush pending downstream bytes,
  /// fire heartbeat deadlines. Returns once >= 1 event was produced or
  /// `max_wait` elapsed; events are appended to `out`.
  std::size_t poll_events(Duration max_wait, std::vector<ControllerEvent>* out);

  TimePoint now() const { return clock_.now(); }
  kv::KvStore& store() { return *kv_; }
  const kv::KvStore& store() const { return *kv_; }
  ControllerStats stats() const { return stats_; }

  WorkerState state_of(WorkerId worker) const;
  pid_t pid_of(WorkerId worker) const;
  NodeId node_of(WorkerId worker) const;
  std::size_t live_workers() const;

  std::uint32_t current_epoch(std::uint32_t invocation) const;
  std::int64_t last_committed_step(std::uint32_t invocation) const;
  /// Latest accepted checkpoint for `invocation`, integrity-checked
  /// against the KV store (no-corrupt-restore oracle). nullopt when no
  /// commit was accepted or the stored entry fails its checksum.
  struct CheckpointRef {
    std::uint32_t step;
    std::string bytes;
  };
  std::optional<CheckpointRef> latest_checkpoint(
      std::uint32_t invocation) const;

  static std::string checkpoint_key(std::uint32_t invocation,
                                    std::uint32_t step);

 private:
  struct Worker {
    pid_t pid = -1;
    int ctrl_fd = -1;      // parent end of the control socketpair
    int data_up_fd = -1;   // read end of the commit pipe
    int data_down_fd = -1; // write end of the restore pipe
    std::unique_ptr<FrameReader> ctrl_reader;
    std::unique_ptr<FrameReader> data_reader;
    std::string pending_down;  // restore bytes not yet flushed
    WorkerState state = WorkerState::kSpawned;
    NodeId node;
    std::uint32_t invocation = 0;
    std::uint32_t epoch = 0;
    TimePoint last_beat;
    bool restore_pending = false;
    bool fenced = false;
    bool drain_paused = false;
    bool torn_flagged = false;
    bool reaped = false;
  };

  struct InvocationRec {
    std::uint32_t epoch = 0;        // current lineage
    std::int64_t last_step = -1;    // latest accepted commit step
    std::uint32_t last_step_epoch = 0;
  };

  Duration death_deadline(const Worker& worker) const;
  void declare_dead(WorkerId id, std::vector<ControllerEvent>* out);
  void flush_pending_down(Worker& worker);
  void process_ctrl_frames(WorkerId id, std::vector<ControllerEvent>* out);
  void process_data_frames(WorkerId id, std::vector<ControllerEvent>* out);
  void handle_commit(WorkerId id, const std::string& payload,
                     std::vector<ControllerEvent>* out);
  void reap(Worker& worker, bool blocking);

  ControllerConfig config_;
  obs::WallClock clock_;
  std::unique_ptr<kv::KvStore> kv_;
  std::vector<Worker> workers_;
  std::map<std::uint32_t, InvocationRec> invocations_;
  ControllerStats stats_;
};

}  // namespace canary::realexec
