// One executable task for the real backend: a miniature kernel from
// src/workloads/kernels sliced into equal checkpointable steps.
//
// The same class runs in two places: inside forked worker processes
// (the real execution), and in-process in the controller to compute the
// reference checksum the completion oracle compares against. Work is
// advanced in micro-batches with a tick callback in between so the
// worker can interleave heartbeats with genuinely busy compute.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "realexec/protocol.hpp"
#include "workloads/kernels/census.hpp"
#include "workloads/kernels/compress.hpp"
#include "workloads/kernels/graph_bfs.hpp"

namespace canary::realexec {

class KernelRun {
 public:
  KernelRun(KernelKind kind, std::uint64_t seed, std::uint64_t size_param,
            std::uint32_t steps_total);

  /// Synthesize the kernel's input (the init phase: graph construction /
  /// compressible data / census records). Must run before restore/step.
  void init();

  /// Load a checkpoint produced by checkpoint(); resumes mid-stream.
  void restore(const std::string& checkpoint_bytes);

  /// Advance one step's worth of work; `tick` fires between
  /// micro-batches (~8 per step) for heartbeat interleaving.
  void run_step(const std::function<void()>& tick);

  /// Serialized progress checkpoint (kernel-native format).
  std::string checkpoint() const;

  /// Deterministic checksum of all work completed so far.
  std::uint64_t checksum() const;

  /// All input consumed.
  bool done() const;

  std::uint32_t steps_total() const { return steps_total_; }
  KernelKind kind() const { return kind_; }

 private:
  KernelKind kind_;
  std::uint64_t seed_;
  std::uint64_t size_param_;
  std::uint32_t steps_total_;

  // graph-bfs
  std::unique_ptr<workloads::kernels::CsrGraph> graph_;
  std::optional<workloads::kernels::BfsRunner> bfs_;
  std::uint64_t bfs_budget_ = 0;  // vertices per step

  // compression
  std::vector<std::uint8_t> comp_input_;
  std::optional<workloads::kernels::ChunkedCompressor> compressor_;
  std::size_t chunks_per_step_ = 0;

  // census
  std::vector<workloads::kernels::CountyRecord> census_records_;
  std::optional<workloads::kernels::DiversityAggregator> aggregator_;
  std::size_t counties_per_step_ = 0;
};

/// Reference checksum for (kind, seed, size, steps): runs the kernel
/// in-process, no checkpoints. Deterministic.
std::uint64_t reference_checksum(KernelKind kind, std::uint64_t seed,
                                 std::uint64_t size_param,
                                 std::uint32_t steps_total);

}  // namespace canary::realexec
