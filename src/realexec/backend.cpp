#include "realexec/backend.hpp"

#include <algorithm>

#include "common/result.hpp"
#include "realexec/kernel_run.hpp"

namespace canary::realexec {

namespace {
constexpr WorkerId kNoWorker = 0xffffffffu;
}

const char* to_string(RecoveryPolicy policy) {
  switch (policy) {
    case RecoveryPolicy::kRetry: return "retry";
    case RecoveryPolicy::kCheckpointRestore: return "checkpoint_restore";
    case RecoveryPolicy::kWarmSpare: return "warm_spare";
  }
  return "unknown";
}

void RecoveryTiming::add(const RecoveryTiming& other) {
  detection_s += other.detection_s;
  scheduling_s += other.scheduling_s;
  launch_s += other.launch_s;
  init_s += other.init_s;
  restore_s += other.restore_s;
  re_exec_s += other.re_exec_s;
}

faas::SubstrateRunSummary RealScenarioResult::summary() const {
  faas::SubstrateRunSummary s;
  s.backend = "real";
  s.completed = completed;
  s.invocations = 1;
  s.failures = recoveries;
  s.recoveries = recoveries;
  s.makespan_s = makespan_s;
  s.recovery_window_s = recovery.window_s();
  s.detection_s = recovery.detection_s;
  s.scheduling_s = recovery.scheduling_s;
  s.launch_s = recovery.launch_s;
  s.init_s = recovery.init_s;
  s.restore_s = recovery.restore_s;
  s.re_exec_s = recovery.re_exec_s;
  s.stale_epoch_rejects = kv_stale_epoch_rejects;
  return s;
}

RealBackend::RealBackend(ControllerConfig base) : base_(std::move(base)) {}

void RealBackend::add_observer(faas::PlatformObserver* observer) {
  observers_.push_back(observer);
}

RealScenarioResult RealBackend::run(const RealScenarioConfig& scenario) {
  ControllerConfig config = base_;
  config.heartbeat_interval = scenario.heartbeat_interval;
  config.timeout_multiplier = scenario.timeout_multiplier;
  Controller ctl(config);

  RealScenarioResult result;
  result.reference_checksum =
      reference_checksum(scenario.kernel, scenario.seed, scenario.size_param,
                         scenario.steps_total);

  // Observer-facing invocation view, mirroring the simulated platform's.
  faas::FunctionSpec spec;
  spec.name = to_string(scenario.kernel);
  spec.runtime = faas::RuntimeImage::kNativeProc;
  spec.states.resize(scenario.steps_total);
  faas::Invocation view;
  view.id = FunctionId{1};
  view.job = JobId{1};
  view.spec = &spec;
  auto notify_started = [&](WorkerId worker, std::uint32_t epoch) {
    view.phase = faas::Phase::kExecuting;
    view.attempt = static_cast<int>(epoch);
    view.node = ctl.node_of(worker);
    view.container = ContainerId{worker + 1};
    for (auto* obs : observers_) obs->on_attempt_started(view);
  };

  constexpr std::uint32_t kInv = 0;
  const TimePoint t_start = ctl.now();

  // One lineage = one worker attempt at the invocation.
  struct Lineage {
    WorkerId worker = kNoWorker;
    std::uint32_t epoch = 0;
    bool is_recovery = false;
    bool dispatched = false;
    bool with_restore = false;
    bool caught_up = true;  // recovery lineages flip to false
    std::uint32_t catchup_step = 0;
    TimePoint kill_sent_at;  // recovery only: the SIGKILL that caused it
    TimePoint dead_at;       // recovery only: heartbeat-declared death
    TimePoint spawn_at, hello_at, dispatch_at, ready_at, restore_done_at;
  };

  // Warm spare: forked ahead of time, idle until a death claims it.
  WorkerId spare = kNoWorker;
  bool spare_ready = false;
  if (scenario.policy == RecoveryPolicy::kWarmSpare) {
    spare = ctl.spawn();
  }

  Lineage cur;
  cur.worker = ctl.spawn();
  cur.spawn_at = ctl.now();

  auto dispatch_lineage = [&](Lineage& lineage) {
    TaskSpec task;
    task.kernel = scenario.kernel;
    task.seed = scenario.seed;
    task.size_param = scenario.size_param;
    task.steps_total = scenario.steps_total;
    task.invocation = kInv;
    if (lineage.is_recovery &&
        scenario.policy == RecoveryPolicy::kCheckpointRestore) {
      auto ckpt = ctl.latest_checkpoint(kInv);
      if (ckpt.has_value()) {
        task.start_step = ckpt->step + 1;
        task.restore_bytes = std::move(ckpt->bytes);
      } else if (ctl.last_committed_step(kInv) >= 0) {
        // A commit was accepted but its bytes no longer verify: restoring
        // would resurrect corrupt state. Falling back to scratch is the
        // no-corrupt-restore oracle's required behaviour; flag it so the
        // bench surfaces the (unexpected here) integrity failure.
        result.violations.push_back("checkpoint failed integrity check");
      }
    }
    lineage.with_restore = !task.restore_bytes.empty();
    lineage.epoch = ctl.dispatch(lineage.worker, task);
    lineage.dispatch_at = ctl.now();
    lineage.dispatched = true;
    notify_started(lineage.worker, lineage.epoch);
  };

  // Kill plan: arm on the trigger commit, fire after the delay.
  std::uint32_t kills_done = 0;
  std::uint32_t next_kill_commit = scenario.kill_after_commit_step;
  bool kill_armed = false;
  bool kill_outstanding = false;
  TimePoint kill_at;
  TimePoint kill_sent_at;

  // Step-duration measurement (feeds the sim twin): inter-commit gaps
  // of the first, unkilled lineage.
  TimePoint last_commit_at = TimePoint::max();
  double commit_gap_sum = 0.0;
  std::uint64_t commit_gaps = 0;

  bool done = false;
  TimePoint t_end = t_start;
  std::vector<ControllerEvent> events;
  while (!done && ctl.now() - t_start < scenario.run_timeout) {
    if (kill_armed && ctl.now() >= kill_at) {
      ctl.sigkill(cur.worker);
      kill_sent_at = ctl.now();
      if (kills_done == 0) {
        result.kill_offset_s = (kill_sent_at - t_start).to_seconds();
      }
      ++kills_done;
      kill_armed = false;
      kill_outstanding = true;
    }
    Duration slice = Duration::msec(5);
    if (kill_armed) {
      const Duration until =
          kill_at > ctl.now() ? kill_at - ctl.now() : Duration::usec(100);
      slice = std::min(slice, std::max(until, Duration::usec(100)));
    }
    events.clear();
    ctl.poll_events(slice, &events);

    for (const auto& ev : events) {
      switch (ev.kind) {
        case ControllerEvent::Kind::kHello: {
          if (ev.worker == spare) {
            spare_ready = true;
            break;
          }
          if (ev.worker == cur.worker && !cur.dispatched) {
            cur.hello_at = ev.at;
            dispatch_lineage(cur);
          }
          break;
        }
        case ControllerEvent::Kind::kTaskReady: {
          if (ev.worker != cur.worker || ev.epoch != cur.epoch) break;
          cur.ready_at = ev.at;
          if (!cur.with_restore) cur.restore_done_at = ev.at;
          break;
        }
        case ControllerEvent::Kind::kRestoreDone: {
          if (ev.worker != cur.worker || ev.epoch != cur.epoch) break;
          cur.restore_done_at = ev.at;
          break;
        }
        case ControllerEvent::Kind::kCommitAccepted: {
          if (ev.epoch != cur.epoch) break;
          if (!cur.is_recovery) {
            if (last_commit_at != TimePoint::max()) {
              commit_gap_sum += (ev.at - last_commit_at).to_seconds();
              ++commit_gaps;
            }
            last_commit_at = ev.at;
          }
          if (cur.is_recovery && !cur.caught_up &&
              ev.step >= cur.catchup_step) {
            // The step that was in flight when the SIGKILL landed has
            // been recommitted: the failure's work deficit is repaid
            // and the recovery window closes.
            RecoveryTiming t;
            t.detection_s = (cur.dead_at - cur.kill_sent_at).to_seconds();
            t.launch_s = (cur.hello_at - cur.spawn_at).to_seconds();
            t.init_s = (cur.ready_at - cur.dispatch_at).to_seconds();
            t.restore_s = (cur.restore_done_at - cur.ready_at).to_seconds();
            t.re_exec_s = (ev.at - cur.restore_done_at).to_seconds();
            const double window = (ev.at - cur.kill_sent_at).to_seconds();
            t.scheduling_s =
                std::max(0.0, window - t.detection_s - t.launch_s - t.init_s -
                                  t.restore_s - t.re_exec_s);
            result.recovery.add(t);
            ++result.recoveries;
            cur.caught_up = true;
          }
          if (kills_done < scenario.kills && !kill_armed &&
              !kill_outstanding && ev.step >= next_kill_commit) {
            kill_armed = true;
            kill_at = ev.at + scenario.kill_delay;
            next_kill_commit = ev.step + 2;
          }
          break;
        }
        case ControllerEvent::Kind::kWorkerDead: {
          if (ev.worker != cur.worker) break;
          view.phase = faas::Phase::kFailed;
          view.node = ctl.node_of(ev.worker);
          for (auto* obs : observers_) {
            obs->on_function_failed(
                view, {faas::FailureKind::kNodeFailure, ctl.node_of(ev.worker),
                       ContainerId{ev.worker + 1}});
          }
          if (!kill_outstanding) {
            result.violations.push_back(
                "worker declared dead without an injected kill");
            kill_sent_at = ev.at;  // degrade gracefully: zero detection
          }
          kill_outstanding = false;

          Lineage next;
          next.is_recovery = true;
          next.caught_up = false;
          next.kill_sent_at = kill_sent_at;
          next.dead_at = ev.at;
          next.catchup_step =
              static_cast<std::uint32_t>(ctl.last_committed_step(kInv) + 1);
          if (scenario.policy == RecoveryPolicy::kWarmSpare && spare_ready) {
            next.worker = spare;
            next.spawn_at = ev.at;
            next.hello_at = ev.at;  // already forked: zero launch cost
            spare = ctl.spawn();    // re-provision for the next failure
            spare_ready = false;
            cur = next;
            dispatch_lineage(cur);
          } else {
            next.worker = ctl.spawn();
            next.spawn_at = ctl.now();
            cur = next;  // dispatch on its Hello
          }
          break;
        }
        case ControllerEvent::Kind::kComplete: {
          if (ev.epoch != ctl.current_epoch(kInv)) break;  // zombie echo
          result.final_checksum = ev.checksum;
          t_end = ev.at;
          done = true;
          if (cur.is_recovery && !cur.caught_up) {
            // Kill landed after the last step's commit: nothing to
            // recommit, the window closes at completion.
            RecoveryTiming t;
            t.detection_s = (cur.dead_at - cur.kill_sent_at).to_seconds();
            t.launch_s = (cur.hello_at - cur.spawn_at).to_seconds();
            t.init_s = (cur.ready_at - cur.dispatch_at).to_seconds();
            t.restore_s = (cur.restore_done_at - cur.ready_at).to_seconds();
            t.re_exec_s = (ev.at - cur.restore_done_at).to_seconds();
            const double window = (ev.at - cur.kill_sent_at).to_seconds();
            t.scheduling_s =
                std::max(0.0, window - t.detection_s - t.launch_s - t.init_s -
                                  t.restore_s - t.re_exec_s);
            result.recovery.add(t);
            ++result.recoveries;
            cur.caught_up = true;
          }
          view.phase = faas::Phase::kCompleted;
          for (auto* obs : observers_) obs->on_function_completed(view);
          break;
        }
        case ControllerEvent::Kind::kCommitStale:
        case ControllerEvent::Kind::kCommitTorn:
          break;  // accounted in ControllerStats
      }
      if (done) break;
    }
  }

  result.completed = done;
  result.makespan_s = (t_end - t_start).to_seconds();
  if (commit_gaps > 0) {
    result.first_step_exec_s =
        commit_gap_sum / static_cast<double>(commit_gaps);
  }
  if (auto ckpt = ctl.latest_checkpoint(kInv)) {
    result.checkpoint_bytes = ckpt->bytes.size();
  }
  result.stats = ctl.stats();
  result.kv_stale_epoch_rejects = ctl.store().stats().stale_epoch_rejects;

  // ---- oracles ----------------------------------------------------------
  if (!done) {
    result.violations.push_back("run timed out before completion");
  } else if (result.final_checksum != result.reference_checksum) {
    result.violations.push_back(
        "completion checksum diverged from the reference run");
  }
  if (result.stats.unfenced_stale_commits > 0) {
    result.violations.push_back(
        "exactly-once: stale-lineage commit was accepted past the fence");
  }
  if (result.stats.duplicate_commits > 0) {
    result.violations.push_back(
        "exactly-once: duplicate commit accepted within one lineage");
  }
  if (done && result.recoveries < kills_done) {
    result.violations.push_back("a killed lineage never finished recovering");
  }
  return result;
}

}  // namespace canary::realexec
