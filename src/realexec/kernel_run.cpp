#include "realexec/kernel_run.hpp"

#include <span>

#include "common/result.hpp"

namespace canary::realexec {

namespace kernels = workloads::kernels;

namespace {
constexpr std::size_t kChunkSize = 64 * 1024;
constexpr unsigned kMicroBatches = 8;

std::size_t div_ceil(std::size_t a, std::size_t b) {
  return (a + b - 1) / b;
}
}  // namespace

KernelRun::KernelRun(KernelKind kind, std::uint64_t seed,
                     std::uint64_t size_param, std::uint32_t steps_total)
    : kind_(kind), seed_(seed), size_param_(size_param),
      steps_total_(steps_total) {
  CANARY_CHECK(steps_total_ > 0, "task needs at least one step");
}

void KernelRun::init() {
  switch (kind_) {
    case KernelKind::kGraphBfs: {
      graph_ = std::make_unique<kernels::CsrGraph>(
          kernels::CsrGraph::binary_tree(size_param_));
      bfs_.emplace(kernels::BfsRunner(*graph_, 0));
      bfs_budget_ = div_ceil(size_param_, steps_total_);
      break;
    }
    case KernelKind::kCompression: {
      comp_input_ = kernels::make_compressible_data(size_param_, seed_);
      compressor_.emplace(kChunkSize);
      chunks_per_step_ =
          div_ceil(div_ceil(comp_input_.size(), kChunkSize), steps_total_);
      break;
    }
    case KernelKind::kCensus: {
      census_records_ = kernels::synthesize_census(size_param_, seed_);
      aggregator_.emplace();
      counties_per_step_ = div_ceil(census_records_.size(), steps_total_);
      break;
    }
  }
}

void KernelRun::restore(const std::string& checkpoint_bytes) {
  switch (kind_) {
    case KernelKind::kGraphBfs: {
      CANARY_CHECK(graph_ != nullptr, "restore before init");
      bfs_.emplace(kernels::BfsRunner::restore(
          *graph_, kernels::BfsCheckpoint::deserialize(checkpoint_bytes)));
      break;
    }
    case KernelKind::kCompression:
      compressor_.emplace(
          kernels::ChunkedCompressor::restore(checkpoint_bytes, kChunkSize));
      break;
    case KernelKind::kCensus:
      aggregator_.emplace(
          kernels::DiversityAggregator::deserialize(checkpoint_bytes));
      break;
  }
}

void KernelRun::run_step(const std::function<void()>& tick) {
  auto beat = [&] {
    if (tick) tick();
  };
  switch (kind_) {
    case KernelKind::kGraphBfs: {
      const std::uint64_t micro = bfs_budget_ / kMicroBatches + 1;
      std::uint64_t remaining = bfs_budget_;
      while (remaining > 0 && !bfs_->done()) {
        const std::uint64_t batch = remaining < micro ? remaining : micro;
        bfs_->step(batch);
        remaining -= batch;
        beat();
      }
      break;
    }
    case KernelKind::kCompression: {
      std::span<const std::uint8_t> input(comp_input_);
      for (std::size_t i = 0; i < chunks_per_step_; ++i) {
        if (!compressor_->compress_next_chunk(input)) break;
        beat();
      }
      break;
    }
    case KernelKind::kCensus: {
      const std::size_t micro = counties_per_step_ / kMicroBatches + 1;
      std::size_t cursor = aggregator_->counties_processed();
      const std::size_t stop =
          std::min(cursor + counties_per_step_, census_records_.size());
      while (cursor < stop) {
        const std::size_t batch_end = std::min(cursor + micro, stop);
        for (; cursor < batch_end; ++cursor) {
          aggregator_->absorb(census_records_[cursor]);
        }
        beat();
      }
      break;
    }
  }
}

std::string KernelRun::checkpoint() const {
  switch (kind_) {
    case KernelKind::kGraphBfs: return bfs_->checkpoint().serialize();
    case KernelKind::kCompression: return compressor_->checkpoint();
    case KernelKind::kCensus: return aggregator_->serialize();
  }
  return {};
}

std::uint64_t KernelRun::checksum() const {
  switch (kind_) {
    case KernelKind::kGraphBfs: return bfs_->checksum();
    case KernelKind::kCompression: {
      const auto& out = compressor_->output();
      return fnv1a64(out.data(), out.size()) ^ compressor_->bytes_in();
    }
    case KernelKind::kCensus: return fnv1a64(aggregator_->serialize());
  }
  return 0;
}

bool KernelRun::done() const {
  switch (kind_) {
    case KernelKind::kGraphBfs: return bfs_->done();
    case KernelKind::kCompression:
      return compressor_->finished(std::span<const std::uint8_t>(comp_input_));
    case KernelKind::kCensus:
      return aggregator_->counties_processed() >= census_records_.size();
  }
  return false;
}

std::uint64_t reference_checksum(KernelKind kind, std::uint64_t seed,
                                 std::uint64_t size_param,
                                 std::uint32_t steps_total) {
  KernelRun run(kind, seed, size_param, steps_total);
  run.init();
  for (std::uint32_t s = 0; s < steps_total && !run.done(); ++s) {
    run.run_step({});
  }
  CANARY_CHECK(run.done(), "reference run did not consume its input");
  return run.checksum();
}

}  // namespace canary::realexec
