// Worker-process entry point for the real-execution substrate.
//
// Runs in the forked child, single-threaded, and never returns: it
// announces itself (Hello), then serves Dispatch requests — synthesize
// input (TaskReady), optionally restore a checkpoint streamed over the
// data-down pipe (RestoreDone), execute the kernel in steps with
// heartbeats interleaved between micro-batches, and push a Commit frame
// (checkpoint bytes) up the data pipe after every step. Exits via
// _exit() so no parent-process state (stdio buffers, atexit hooks) runs
// twice. Fault hooks in the dispatch payload emulate a zombie (silent
// hold before a late commit) and a torn commit (half a frame, then
// hang) — the failure modes the controller's fencing must absorb.
#pragma once

namespace canary::realexec {

/// Serve the control socket until shutdown/EOF, then _exit(0).
/// `ctrl_fd` is the worker end of the control socketpair, `data_up_fd`
/// the write end of the commit pipe, `data_down_fd` the read end of the
/// restore-bytes pipe.
[[noreturn]] void worker_main(int ctrl_fd, int data_up_fd, int data_down_fd);

}  // namespace canary::realexec
