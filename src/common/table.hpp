// Plain-text aligned table writer used by the benchmark harness to print
// the rows/series of each reproduced figure, plus CSV emission for
// re-plotting.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace canary {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);

  /// Convenience: format doubles with fixed precision.
  static std::string num(double v, int precision = 2);

  /// Render with column alignment and a header separator.
  void print(std::ostream& os) const;

  /// Render as CSV (no alignment padding).
  void print_csv(std::ostream& os) const;

  const std::vector<std::string>& headers() const { return headers_; }
  const std::vector<std::vector<std::string>>& rows() const { return rows_; }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace canary
