// Deterministic random number generation.
//
// Every simulation run is seeded explicitly; repetitions derive child
// seeds with SplitMix64 so that rep k of experiment E is bit-identical
// across machines and thread schedules. The generator is xoshiro256**,
// which is fast, has 256-bit state, and passes BigCrush — <random>'s
// mt19937 is avoided because its seeding is easy to get wrong and its
// distributions are not reproducible across standard libraries.
#pragma once

#include <array>
#include <cstdint>

namespace canary {

/// SplitMix64 step; used for seed expansion and child-seed derivation.
std::uint64_t splitmix64(std::uint64_t& state);

/// xoshiro256** PRNG with reproducible distribution helpers.
class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  /// Derive an independent child stream (e.g. one per function invocation)
  /// keyed by `stream`. Deterministic in (parent seed, stream).
  Rng child(std::uint64_t stream) const;

  std::uint64_t next_u64();

  /// Uniform in [0, 1).
  double uniform01();

  /// Uniform in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::uint64_t uniform_int(std::uint64_t lo, std::uint64_t hi);

  /// Bernoulli trial with success probability p.
  bool bernoulli(double p);

  /// Exponential with the given mean (> 0).
  double exponential(double mean);

  /// Zero-mean unit-variance normal via Box-Muller (no cached spare, so
  /// the stream stays position-independent).
  double normal(double mean, double stddev);

 private:
  std::uint64_t seed_;
  std::array<std::uint64_t, 4> s_{};
};

}  // namespace canary
