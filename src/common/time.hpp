// Simulated-time primitives.
//
// All simulation timestamps and durations are integer microseconds wrapped
// in strong types so they cannot be mixed with byte counts, ids, or each
// other accidentally. Arithmetic is defined only where it is meaningful
// (TimePoint - TimePoint = Duration, TimePoint + Duration = TimePoint, ...).
#pragma once

#include <cstdint>
#include <compare>
#include <limits>
#include <string>

namespace canary {

/// A span of simulated time, in microseconds. May be negative in
/// intermediate arithmetic but never when scheduling.
class Duration {
 public:
  constexpr Duration() = default;
  static constexpr Duration usec(std::int64_t v) { return Duration{v}; }
  static constexpr Duration msec(std::int64_t v) { return Duration{v * 1000}; }
  static constexpr Duration sec(double v) {
    return Duration{static_cast<std::int64_t>(v * 1e6)};
  }
  static constexpr Duration zero() { return Duration{0}; }
  static constexpr Duration max() {
    return Duration{std::numeric_limits<std::int64_t>::max()};
  }

  constexpr std::int64_t count_usec() const { return usec_; }
  constexpr double to_seconds() const { return static_cast<double>(usec_) / 1e6; }
  constexpr double to_msec() const { return static_cast<double>(usec_) / 1e3; }

  constexpr auto operator<=>(const Duration&) const = default;

  constexpr Duration operator+(Duration o) const { return Duration{usec_ + o.usec_}; }
  constexpr Duration operator-(Duration o) const { return Duration{usec_ - o.usec_}; }
  constexpr Duration& operator+=(Duration o) { usec_ += o.usec_; return *this; }
  constexpr Duration& operator-=(Duration o) { usec_ -= o.usec_; return *this; }
  constexpr Duration operator*(double f) const {
    return Duration{static_cast<std::int64_t>(static_cast<double>(usec_) * f)};
  }
  constexpr Duration operator/(std::int64_t d) const { return Duration{usec_ / d}; }
  constexpr double operator/(Duration o) const {
    return static_cast<double>(usec_) / static_cast<double>(o.usec_);
  }

 private:
  constexpr explicit Duration(std::int64_t v) : usec_(v) {}
  std::int64_t usec_ = 0;
};

/// An absolute instant on the simulation clock (microseconds since the
/// start of the run).
class TimePoint {
 public:
  constexpr TimePoint() = default;
  static constexpr TimePoint origin() { return TimePoint{0}; }
  static constexpr TimePoint from_usec(std::int64_t v) { return TimePoint{v}; }
  static constexpr TimePoint max() {
    return TimePoint{std::numeric_limits<std::int64_t>::max()};
  }

  constexpr std::int64_t count_usec() const { return usec_; }
  constexpr double to_seconds() const { return static_cast<double>(usec_) / 1e6; }

  constexpr auto operator<=>(const TimePoint&) const = default;

  constexpr TimePoint operator+(Duration d) const {
    return TimePoint{usec_ + d.count_usec()};
  }
  constexpr TimePoint operator-(Duration d) const {
    return TimePoint{usec_ - d.count_usec()};
  }
  constexpr Duration operator-(TimePoint o) const {
    return Duration::usec(usec_ - o.usec_);
  }

 private:
  constexpr explicit TimePoint(std::int64_t v) : usec_(v) {}
  std::int64_t usec_ = 0;
};

inline std::string to_string(Duration d) {
  return std::to_string(d.to_seconds()) + "s";
}
inline std::string to_string(TimePoint t) {
  return std::to_string(t.to_seconds()) + "s";
}

}  // namespace canary
