// Streaming and sample statistics used by the metrics recorder and the
// experiment harness (paper §V-B reports 10-run averages with <5%
// variance; we report mean, stddev, and percentiles).
#pragma once

#include <cstddef>
#include <vector>

namespace canary {

/// Welford's online mean/variance. O(1) memory, numerically stable.
class RunningStats {
 public:
  void add(double x);
  void merge(const RunningStats& other);

  std::size_t count() const { return n_; }
  double mean() const { return n_ > 0 ? mean_ : 0.0; }
  double variance() const;  // sample variance (n-1 denominator)
  double stddev() const;
  double min() const { return n_ > 0 ? min_ : 0.0; }
  double max() const { return n_ > 0 ? max_ : 0.0; }
  double sum() const { return mean_ * static_cast<double>(n_); }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Retains all samples; supports exact percentiles. Used where sample
/// counts are bounded (per-experiment repetition results).
class SampleSet {
 public:
  void add(double x) { samples_.push_back(x); }
  std::size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }

  double mean() const;
  double stddev() const;
  double min() const;
  double max() const;
  double sum() const;
  /// Exact percentile by linear interpolation, p in [0, 100].
  double percentile(double p) const;
  double median() const { return percentile(50.0); }

  const std::vector<double>& samples() const { return samples_; }

 private:
  std::vector<double> samples_;
};

}  // namespace canary
