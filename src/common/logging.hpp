// Leveled logging to stderr. Disabled below the compile/runtime threshold;
// experiments run with kWarn so hot paths stay quiet.
//
// Two thread-local hooks tie the log into a running simulation (each
// repetition runs on its own thread, so hooks never leak across runs):
//   * ScopedLogClock prefixes every record with the simulated time
//     ("[t=12.345678s]") while a run is active;
//   * ScopedLogMirror copies kWarn+ records to a sink — the scenario
//     runner mirrors them into the run's causal EventLog as annotation
//     events, so warnings appear on the trace timeline.
#pragma once

#include <cstdint>
#include <functional>
#include <sstream>
#include <string>

namespace canary {

enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

/// Process-wide log threshold. Tests flip this to kTrace to assert on
/// messages; the harness leaves it at kWarn.
LogLevel log_threshold();
void set_log_threshold(LogLevel level);

/// RAII: while alive, log records emitted from this thread carry a
/// "[t=<seconds>s]" prefix computed from `now_usec`.
class ScopedLogClock {
 public:
  using Provider = std::function<std::int64_t()>;
  explicit ScopedLogClock(Provider now_usec);
  ~ScopedLogClock();
  ScopedLogClock(const ScopedLogClock&) = delete;
  ScopedLogClock& operator=(const ScopedLogClock&) = delete;

 private:
  Provider previous_;
};

/// RAII: while alive, kWarn+ records emitted from this thread are also
/// passed to `sink` (after stderr emission; same thread, same order).
class ScopedLogMirror {
 public:
  using Sink = std::function<void(LogLevel, const std::string&)>;
  explicit ScopedLogMirror(Sink sink);
  ~ScopedLogMirror();
  ScopedLogMirror(const ScopedLogMirror&) = delete;
  ScopedLogMirror& operator=(const ScopedLogMirror&) = delete;

 private:
  Sink previous_;
};

namespace detail {
void log_emit(LogLevel level, const char* file, int line, const std::string& msg);
/// "[t=1.500000s] " when a ScopedLogClock is active on this thread,
/// "" otherwise. Exposed for tests.
std::string log_time_prefix();
}  // namespace detail

#define CANARY_LOG(level, expr)                                         \
  do {                                                                  \
    if (level >= ::canary::log_threshold()) {                           \
      std::ostringstream canary_log_oss;                                \
      canary_log_oss << expr;                                           \
      ::canary::detail::log_emit(level, __FILE__, __LINE__,             \
                                 canary_log_oss.str());                 \
    }                                                                   \
  } while (0)

#define CANARY_LOG_DEBUG(expr) CANARY_LOG(::canary::LogLevel::kDebug, expr)
#define CANARY_LOG_INFO(expr) CANARY_LOG(::canary::LogLevel::kInfo, expr)
#define CANARY_LOG_WARN(expr) CANARY_LOG(::canary::LogLevel::kWarn, expr)
#define CANARY_LOG_ERROR(expr) CANARY_LOG(::canary::LogLevel::kError, expr)

}  // namespace canary
