// Leveled logging to stderr. Disabled below the compile/runtime threshold;
// experiments run with kWarn so hot paths stay quiet.
#pragma once

#include <sstream>
#include <string>

namespace canary {

enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

/// Process-wide log threshold. Tests flip this to kTrace to assert on
/// messages; the harness leaves it at kWarn.
LogLevel log_threshold();
void set_log_threshold(LogLevel level);

namespace detail {
void log_emit(LogLevel level, const char* file, int line, const std::string& msg);
}  // namespace detail

#define CANARY_LOG(level, expr)                                         \
  do {                                                                  \
    if (level >= ::canary::log_threshold()) {                           \
      std::ostringstream canary_log_oss;                                \
      canary_log_oss << expr;                                           \
      ::canary::detail::log_emit(level, __FILE__, __LINE__,             \
                                 canary_log_oss.str());                 \
    }                                                                   \
  } while (0)

#define CANARY_LOG_DEBUG(expr) CANARY_LOG(::canary::LogLevel::kDebug, expr)
#define CANARY_LOG_INFO(expr) CANARY_LOG(::canary::LogLevel::kInfo, expr)
#define CANARY_LOG_WARN(expr) CANARY_LOG(::canary::LogLevel::kWarn, expr)
#define CANARY_LOG_ERROR(expr) CANARY_LOG(::canary::LogLevel::kError, expr)

}  // namespace canary
