#include "common/rng.hpp"

#include <cmath>
#include <numbers>

namespace canary {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {
std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) : seed_(seed) {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
}

Rng Rng::child(std::uint64_t stream) const {
  // Mix the parent seed with the stream id through SplitMix64 twice so
  // adjacent streams are decorrelated.
  std::uint64_t sm = seed_ ^ (0xa0761d6478bd642fULL * (stream + 1));
  std::uint64_t derived = splitmix64(sm);
  derived ^= splitmix64(sm);
  return Rng(derived);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform01() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  return lo + (hi - lo) * uniform01();
}

std::uint64_t Rng::uniform_int(std::uint64_t lo, std::uint64_t hi) {
  const std::uint64_t range = hi - lo + 1;
  if (range == 0) return next_u64();  // full 64-bit range
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = range * (UINT64_MAX / range);
  std::uint64_t v = next_u64();
  while (v >= limit) v = next_u64();
  return lo + (v % range);
}

bool Rng::bernoulli(double p) { return uniform01() < p; }

double Rng::exponential(double mean) {
  // Inverse CDF; uniform01() < 1 so the log argument is > 0.
  return -mean * std::log(1.0 - uniform01());
}

double Rng::normal(double mean, double stddev) {
  const double u1 = 1.0 - uniform01();
  const double u2 = uniform01();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * mag * std::cos(2.0 * std::numbers::pi * u2);
}

}  // namespace canary
