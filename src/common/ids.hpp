// Strong identifier types.
//
// Every entity in the platform (jobs, function invocations, containers,
// nodes, checkpoints, replicas) is addressed by a tagged 64-bit id. The
// tag makes JobId/FunctionId/... distinct types, so passing a ContainerId
// where a NodeId is expected fails to compile. Id value 0 is reserved as
// the invalid sentinel; the Core Module's IdGenerator starts at 1.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

namespace canary {

template <typename Tag>
class Id {
 public:
  constexpr Id() = default;
  constexpr explicit Id(std::uint64_t v) : value_(v) {}

  static constexpr Id invalid() { return Id{0}; }
  constexpr bool valid() const { return value_ != 0; }
  constexpr std::uint64_t value() const { return value_; }

  constexpr auto operator<=>(const Id&) const = default;

 private:
  std::uint64_t value_ = 0;
};

struct JobTag {};
struct FunctionTag {};
struct ContainerTag {};
struct NodeTag {};
struct CheckpointTag {};
struct ReplicaTag {};
struct AccountTag {};

using JobId = Id<JobTag>;
using FunctionId = Id<FunctionTag>;
using ContainerId = Id<ContainerTag>;
using NodeId = Id<NodeTag>;
using CheckpointId = Id<CheckpointTag>;
using ReplicaId = Id<ReplicaTag>;
using AccountId = Id<AccountTag>;

template <typename Tag>
std::string to_string(Id<Tag> id) {
  return std::to_string(id.value());
}

/// Monotonic generator for one id family. The Core Module owns one
/// generator per table (paper §IV-C1: "generates a set of unique IDs for
/// the submitted jobs, functions, checkpoints, and replicas").
template <typename IdT>
class IdGenerator {
 public:
  IdT next() { return IdT{next_++}; }
  std::uint64_t issued() const { return next_ - 1; }

 private:
  std::uint64_t next_ = 1;
};

}  // namespace canary

namespace std {
template <typename Tag>
struct hash<canary::Id<Tag>> {
  size_t operator()(canary::Id<Tag> id) const noexcept {
    return std::hash<std::uint64_t>{}(id.value());
  }
};
}  // namespace std
