#include "common/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace canary {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TextTable::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TextTable::num(double v, int precision) {
  std::ostringstream oss;
  oss << std::fixed << std::setprecision(precision) << v;
  return oss.str();
}

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(widths[c]) + 2) << row[c];
    }
    os << '\n';
  };
  emit_row(headers_);
  std::size_t total = 0;
  for (auto w : widths) total += w + 2;
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
}

void TextTable::print_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c != 0) os << ',';
      os << row[c];
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
}

}  // namespace canary
