// Minimal expected-style result type.
//
// Library code reports recoverable failures through Result<T> rather than
// exceptions; exceptions are reserved for programming errors (contract
// violations asserted via CANARY_CHECK).
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <variant>

namespace canary {

enum class ErrorCode {
  kInvalidArgument,
  kNotFound,
  kResourceExhausted,
  kFailedPrecondition,
  kUnavailable,
  kAlreadyExists,
  kInternal,
};

std::string_view to_string_view(ErrorCode code);

struct Error {
  ErrorCode code = ErrorCode::kInternal;
  std::string message;

  static Error invalid_argument(std::string msg) {
    return {ErrorCode::kInvalidArgument, std::move(msg)};
  }
  static Error not_found(std::string msg) {
    return {ErrorCode::kNotFound, std::move(msg)};
  }
  static Error resource_exhausted(std::string msg) {
    return {ErrorCode::kResourceExhausted, std::move(msg)};
  }
  static Error failed_precondition(std::string msg) {
    return {ErrorCode::kFailedPrecondition, std::move(msg)};
  }
  static Error unavailable(std::string msg) {
    return {ErrorCode::kUnavailable, std::move(msg)};
  }
  static Error already_exists(std::string msg) {
    return {ErrorCode::kAlreadyExists, std::move(msg)};
  }
  static Error internal(std::string msg) {
    return {ErrorCode::kInternal, std::move(msg)};
  }
};

inline std::string_view to_string_view(ErrorCode code) {
  switch (code) {
    case ErrorCode::kInvalidArgument: return "invalid_argument";
    case ErrorCode::kNotFound: return "not_found";
    case ErrorCode::kResourceExhausted: return "resource_exhausted";
    case ErrorCode::kFailedPrecondition: return "failed_precondition";
    case ErrorCode::kUnavailable: return "unavailable";
    case ErrorCode::kAlreadyExists: return "already_exists";
    case ErrorCode::kInternal: return "internal";
  }
  return "unknown";
}

template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : v_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Error err) : v_(std::move(err)) {}  // NOLINT(google-explicit-constructor)

  bool ok() const { return std::holds_alternative<T>(v_); }
  explicit operator bool() const { return ok(); }

  const T& value() const& { return std::get<T>(v_); }
  T& value() & { return std::get<T>(v_); }
  T&& value() && { return std::get<T>(std::move(v_)); }

  const Error& error() const { return std::get<Error>(v_); }

  T value_or(T fallback) const {
    return ok() ? std::get<T>(v_) : std::move(fallback);
  }

 private:
  std::variant<T, Error> v_;
};

/// Result specialisation for operations with no payload.
class [[nodiscard]] Status {
 public:
  Status() = default;
  Status(Error err) : err_(std::move(err)), ok_(false) {}  // NOLINT

  static Status ok_status() { return Status{}; }

  bool ok() const { return ok_; }
  explicit operator bool() const { return ok_; }
  const Error& error() const { return err_; }

 private:
  Error err_{};
  bool ok_ = true;
};

/// Contract check: aborts with a message on violation. Used for invariants
/// that indicate bugs, never for input validation.
#define CANARY_CHECK(cond, msg)                                          \
  do {                                                                   \
    if (!(cond)) {                                                       \
      std::fprintf(stderr, "CANARY_CHECK failed at %s:%d: %s (%s)\n",    \
                   __FILE__, __LINE__, #cond, msg);                      \
      std::abort();                                                      \
    }                                                                    \
  } while (0)

}  // namespace canary
