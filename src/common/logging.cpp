#include "common/logging.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace canary {

namespace {
std::atomic<LogLevel> g_threshold{LogLevel::kWarn};
std::mutex g_emit_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}
}  // namespace

LogLevel log_threshold() { return g_threshold.load(std::memory_order_relaxed); }

void set_log_threshold(LogLevel level) {
  g_threshold.store(level, std::memory_order_relaxed);
}

namespace detail {
void log_emit(LogLevel level, const char* file, int line, const std::string& msg) {
  // Serialise whole lines so parallel repetitions do not interleave.
  std::lock_guard<std::mutex> lock(g_emit_mutex);
  std::fprintf(stderr, "[%s] %s:%d %s\n", level_name(level), file, line,
               msg.c_str());
}
}  // namespace detail

}  // namespace canary
