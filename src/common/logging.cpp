#include "common/logging.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>
#include <utility>

namespace canary {

namespace {
std::atomic<LogLevel> g_threshold{LogLevel::kWarn};
std::mutex g_emit_mutex;

thread_local ScopedLogClock::Provider t_clock;
thread_local ScopedLogMirror::Sink t_mirror;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}
}  // namespace

LogLevel log_threshold() { return g_threshold.load(std::memory_order_relaxed); }

void set_log_threshold(LogLevel level) {
  g_threshold.store(level, std::memory_order_relaxed);
}

ScopedLogClock::ScopedLogClock(Provider now_usec)
    : previous_(std::exchange(t_clock, std::move(now_usec))) {}

ScopedLogClock::~ScopedLogClock() { t_clock = std::move(previous_); }

ScopedLogMirror::ScopedLogMirror(Sink sink)
    : previous_(std::exchange(t_mirror, std::move(sink))) {}

ScopedLogMirror::~ScopedLogMirror() { t_mirror = std::move(previous_); }

namespace detail {

std::string log_time_prefix() {
  if (!t_clock) return {};
  const std::int64_t usec = t_clock();
  char buffer[48];
  std::snprintf(buffer, sizeof(buffer), "[t=%lld.%06llds] ",
                static_cast<long long>(usec / 1000000),
                static_cast<long long>(usec % 1000000));
  return buffer;
}

void log_emit(LogLevel level, const char* file, int line, const std::string& msg) {
  const std::string prefix = log_time_prefix();
  {
    // Serialise whole lines so parallel repetitions do not interleave.
    std::lock_guard<std::mutex> lock(g_emit_mutex);
    std::fprintf(stderr, "%s[%s] %s:%d %s\n", prefix.c_str(),
                 level_name(level), file, line, msg.c_str());
  }
  if (level >= LogLevel::kWarn && t_mirror) t_mirror(level, msg);
}

}  // namespace detail

}  // namespace canary
