// Byte-count strong type used for checkpoint payloads, memory allocations
// and storage-tier transfer sizes.
#pragma once

#include <cstdint>
#include <compare>
#include <string>

namespace canary {

class Bytes {
 public:
  constexpr Bytes() = default;
  static constexpr Bytes of(std::uint64_t b) { return Bytes{b}; }
  static constexpr Bytes kib(std::uint64_t k) { return Bytes{k * 1024}; }
  static constexpr Bytes mib(std::uint64_t m) { return Bytes{m * 1024 * 1024}; }
  static constexpr Bytes gib(std::uint64_t g) {
    return Bytes{g * 1024ULL * 1024ULL * 1024ULL};
  }
  static constexpr Bytes zero() { return Bytes{0}; }

  constexpr std::uint64_t count() const { return bytes_; }
  constexpr double to_mib() const {
    return static_cast<double>(bytes_) / (1024.0 * 1024.0);
  }
  constexpr double to_gib() const {
    return static_cast<double>(bytes_) / (1024.0 * 1024.0 * 1024.0);
  }

  constexpr auto operator<=>(const Bytes&) const = default;
  constexpr Bytes operator+(Bytes o) const { return Bytes{bytes_ + o.bytes_}; }
  constexpr Bytes& operator+=(Bytes o) { bytes_ += o.bytes_; return *this; }
  constexpr Bytes operator*(std::uint64_t f) const { return Bytes{bytes_ * f}; }

 private:
  constexpr explicit Bytes(std::uint64_t b) : bytes_(b) {}
  std::uint64_t bytes_ = 0;
};

inline std::string to_string(Bytes b) { return std::to_string(b.count()) + "B"; }

}  // namespace canary
