#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

namespace canary {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double SampleSet::mean() const {
  if (samples_.empty()) return 0.0;
  double s = 0.0;
  for (double x : samples_) s += x;
  return s / static_cast<double>(samples_.size());
}

double SampleSet::stddev() const {
  if (samples_.size() < 2) return 0.0;
  const double m = mean();
  double acc = 0.0;
  for (double x : samples_) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<double>(samples_.size() - 1));
}

double SampleSet::min() const {
  return samples_.empty() ? 0.0 : *std::min_element(samples_.begin(), samples_.end());
}

double SampleSet::max() const {
  return samples_.empty() ? 0.0 : *std::max_element(samples_.begin(), samples_.end());
}

double SampleSet::sum() const {
  double s = 0.0;
  for (double x : samples_) s += x;
  return s;
}

double SampleSet::percentile(double p) const {
  if (samples_.empty()) return 0.0;
  std::vector<double> sorted = samples_;
  std::sort(sorted.begin(), sorted.end());
  if (p <= 0.0) return sorted.front();
  if (p >= 100.0) return sorted.back();
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= sorted.size()) return sorted.back();
  return sorted[lo] * (1.0 - frac) + sorted[lo + 1] * frac;
}

}  // namespace canary
