// Append-only slab with stable references and O(log n) allocations.
//
// The platform's entity tables (jobs, invocations, containers) are
// id-indexed, append-only, and hand out long-lived references, which
// rules out std::vector (reallocation moves elements). std::deque keeps
// references stable but grows by fixed 512-byte chunks — for records in
// the 100-500 byte range that is one heap allocation every couple of
// appends, a measurable slice of a million-invocation run's allocation
// budget. StableSlab keeps the stability guarantee while growing in
// geometrically doubling blocks (64, 128, 256, ... elements), so a slab
// of n elements costs O(log n) allocations total and indexing stays
// O(1) via bit arithmetic.
#pragma once

#include <bit>
#include <cstddef>
#include <iterator>
#include <memory>
#include <utility>
#include <vector>

namespace canary {

template <typename T>
class StableSlab {
  /// First block holds 64 elements; block b holds 64 << b.
  static constexpr std::size_t kFirstBlock = 64;

 public:
  StableSlab() = default;
  StableSlab(StableSlab&&) noexcept = default;
  StableSlab& operator=(StableSlab&&) noexcept = default;
  StableSlab(const StableSlab&) = delete;
  StableSlab& operator=(const StableSlab&) = delete;

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  T& operator[](std::size_t i) { return slot(i); }
  const T& operator[](std::size_t i) const {
    return const_cast<StableSlab*>(this)->slot(i);
  }

  T& back() { return slot(size_ - 1); }
  const T& back() const { return (*this)[size_ - 1]; }

  /// Append a default-constructed element; the returned reference (and
  /// every earlier one) stays valid for the slab's lifetime.
  T& emplace_back() {
    const std::size_t i = size_;
    const std::size_t b = block_of(i);
    if (b == blocks_.size()) {
      blocks_.push_back(std::make_unique<Storage[]>(kFirstBlock << b));
    }
    T* p = ::new (&blocks_[b][i - block_base(b)]) T();
    ++size_;
    return *p;
  }

  ~StableSlab() {
    for (std::size_t i = 0; i < size_; ++i) slot(i).~T();
  }

  template <bool Const>
  class Iterator {
    using Slab = std::conditional_t<Const, const StableSlab, StableSlab>;

   public:
    using iterator_category = std::forward_iterator_tag;
    using value_type = T;
    using difference_type = std::ptrdiff_t;
    using pointer = std::conditional_t<Const, const T*, T*>;
    using reference = std::conditional_t<Const, const T&, T&>;

    Iterator() = default;
    Iterator(Slab* slab, std::size_t index) : slab_(slab), index_(index) {}

    reference operator*() const { return (*slab_)[index_]; }
    pointer operator->() const { return &(*slab_)[index_]; }
    Iterator& operator++() {
      ++index_;
      return *this;
    }
    Iterator operator++(int) {
      Iterator tmp = *this;
      ++index_;
      return tmp;
    }
    bool operator==(const Iterator& other) const {
      return index_ == other.index_;
    }
    bool operator!=(const Iterator& other) const {
      return index_ != other.index_;
    }

   private:
    Slab* slab_ = nullptr;
    std::size_t index_ = 0;
  };

  using iterator = Iterator<false>;
  using const_iterator = Iterator<true>;

  iterator begin() { return {this, 0}; }
  iterator end() { return {this, size_}; }
  const_iterator begin() const { return {this, 0}; }
  const_iterator end() const { return {this, size_}; }

 private:
  struct alignas(T) Storage {
    unsigned char bytes[sizeof(T)];
  };

  /// Block that holds global index i: blocks 0..b-1 hold
  /// kFirstBlock * (2^b - 1) elements, so b = bit_width(i/64 + 1) - 1.
  static std::size_t block_of(std::size_t i) {
    return std::bit_width(i / kFirstBlock + 1) - 1;
  }
  static std::size_t block_base(std::size_t b) {
    return kFirstBlock * ((std::size_t{1} << b) - 1);
  }

  T& slot(std::size_t i) {
    const std::size_t b = block_of(i);
    return *std::launder(
        reinterpret_cast<T*>(&blocks_[b][i - block_base(b)]));
  }

  std::vector<std::unique_ptr<Storage[]>> blocks_;
  std::size_t size_ = 0;
};

}  // namespace canary
