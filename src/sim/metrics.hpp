// Per-run metrics recorder.
//
// One recorder lives per simulation run; modules record counters (events
// observed) and latency histograms (recovery intervals, checkpoint
// overheads). Since the observability layer landed this is the central
// obs::MetricRegistry — the previous private counter/sample maps are
// gone, so everything the platform and the Canary modules record is
// exportable through obs::RunReport and mergeable across repetitions.
#pragma once

#include "obs/metric_registry.hpp"

namespace canary::sim {

using MetricsRecorder = obs::MetricRegistry;

}  // namespace canary::sim
