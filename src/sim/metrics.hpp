// Per-run metrics recorder.
//
// One MetricsRecorder lives per simulation run; modules record counters
// (events observed) and duration samples (recovery intervals, checkpoint
// overheads). The harness aggregates recorders across repetitions.
#pragma once

#include <map>
#include <string>

#include "common/stats.hpp"
#include "common/time.hpp"

namespace canary::sim {

class MetricsRecorder {
 public:
  void count(const std::string& name, double delta = 1.0);
  void sample(const std::string& name, double value);
  void sample_duration(const std::string& name, Duration d) {
    sample(name, d.to_seconds());
  }

  double counter(const std::string& name) const;
  /// Sample set for `name`; an empty set if never sampled.
  const SampleSet& samples(const std::string& name) const;

  const std::map<std::string, double>& counters() const { return counters_; }
  const std::map<std::string, SampleSet>& all_samples() const { return samples_; }

 private:
  std::map<std::string, double> counters_;
  std::map<std::string, SampleSet> samples_;
};

}  // namespace canary::sim
