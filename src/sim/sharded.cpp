#include "sim/sharded.hpp"

#include <algorithm>
#include <barrier>
#include <thread>

#include "common/result.hpp"

namespace canary::sim {
namespace {

// Identifies the partition whose callback is currently executing on this
// thread, so post() can validate the lookahead against the sender's clock
// and stamp the message with a deterministic (src, seq) key. Outside a
// callback (setup, between runs) there is no sender.
thread_local ShardEngine* t_engine = nullptr;
thread_local int t_partition = -1;

}  // namespace

// The plan barrier's completion step runs on exactly one thread while all
// workers are parked, which makes it the one safe place to touch the
// shared epoch scalars without atomics: the barrier itself orders every
// write before it and every read after it.
struct ShardEngine::Barriers {
  struct PlanCompletion {
    ShardEngine* engine;
    void operator()() noexcept {
      ShardEngine& e = *engine;
      std::int64_t min_usec = -1;
      for (std::int64_t t : e.worker_min_usec_) {
        if (t >= 0 && (min_usec < 0 || t < min_usec)) min_usec = t;
      }
      if (min_usec < 0) {
        e.done_ = true;
        return;
      }
      e.window_end_usec_ = min_usec + e.lookahead_.count_usec();
      ++e.epochs_;
    }
  };

  std::barrier<PlanCompletion> plan;
  std::barrier<> sync;

  Barriers(std::ptrdiff_t n, ShardEngine* engine)
      : plan(n, PlanCompletion{engine}), sync(n) {}
};

ShardEngine::ShardEngine(ShardEngineOptions options)
    : partition_count_(options.partitions < 1 ? 1 : options.partitions),
      worker_count_(std::clamp(options.workers, 1u, partition_count_)),
      lookahead_(options.lookahead),
      queue_capacity_(options.queue_capacity) {
  CANARY_CHECK(lookahead_ >= Duration::usec(1),
               "shard lookahead must be at least 1 us");
  partitions_.reserve(partition_count_);
  for (unsigned p = 0; p < partition_count_; ++p) {
    partitions_.push_back(std::make_unique<Partition>(options.simulator));
    partitions_.back()->outbox.resize(partition_count_);
  }
  worker_min_usec_.assign(worker_count_, -1);
  barriers_ = std::make_unique<Barriers>(
      static_cast<std::ptrdiff_t>(worker_count_), this);
}

ShardEngine::~ShardEngine() = default;

Simulator& ShardEngine::partition(unsigned p) {
  CANARY_CHECK(p < partition_count_, "partition index out of range");
  return partitions_[p]->sim;
}

void ShardEngine::post(unsigned dst, TimePoint when, UniqueFunction fn) {
  CANARY_CHECK(dst < partition_count_, "post: partition index out of range");
  if (!running_) {
    // Setup is single-threaded; schedule straight into the destination.
    partitions_[dst]->sim.schedule_at(when, std::move(fn));
    return;
  }
  CANARY_CHECK(t_engine == this && t_partition >= 0,
               "post() during run() must come from a partition callback");
  Partition& src = *partitions_[static_cast<unsigned>(t_partition)];
  CANARY_CHECK(when >= src.sim.now() + lookahead_,
               "post: timestamp violates the conservative lookahead");
  std::vector<Message>& box = src.outbox[dst];
  CANARY_CHECK(box.size() < queue_capacity_,
               "inter-shard queue overflow: the model must apply "
               "backpressure, not buffer unbounded cross-shard traffic");
  box.push_back(Message{when.count_usec(),
                        static_cast<std::uint32_t>(t_partition),
                        src.next_msg_seq++, std::move(fn)});
}

void ShardEngine::deliver_inbox(unsigned p) {
  Partition& dst = *partitions_[p];
  std::vector<Message>& inbox = dst.inbox;
  for (std::unique_ptr<Partition>& src : partitions_) {
    std::vector<Message>& box = src->outbox[p];
    for (Message& m : box) inbox.push_back(std::move(m));
    box.clear();
  }
  if (inbox.empty()) return;
  // (when, src, seq) is a total order and none of its components depend
  // on thread interleaving, so the destination heap receives the same
  // FIFO sequence numbers at any worker count.
  std::sort(inbox.begin(), inbox.end(),
            [](const Message& a, const Message& b) {
              if (a.when_usec != b.when_usec) return a.when_usec < b.when_usec;
              if (a.src != b.src) return a.src < b.src;
              return a.seq < b.seq;
            });
  for (Message& m : inbox) {
    dst.sim.schedule_at(TimePoint::from_usec(m.when_usec), std::move(m.fn));
  }
  dst.delivered += inbox.size();
  inbox.clear();
}

void ShardEngine::worker_loop(unsigned worker) {
  t_engine = this;
  while (true) {
    // Delivery phase: drain every source's outbox into the partitions this
    // worker owns. Each (src, dst) slot has exactly one reader (dst's
    // owner) and its writes were sealed by the previous sync barrier.
    std::int64_t local_min = -1;
    for (unsigned p = worker; p < partition_count_; p += worker_count_) {
      deliver_inbox(p);
      const std::int64_t t = partitions_[p]->sim.next_event_usec();
      if (t >= 0 && (local_min < 0 || t < local_min)) local_min = t;
    }
    worker_min_usec_[worker] = local_min;
    barriers_->plan.arrive_and_wait();
    if (done_) break;
    // Execution phase: every partition may run events strictly below the
    // window end. Messages posted now are stamped >= now + lookahead >=
    // window_end, so next epoch's delivery is never late.
    const TimePoint until = TimePoint::from_usec(window_end_usec_ - 1);
    for (unsigned p = worker; p < partition_count_; p += worker_count_) {
      t_partition = static_cast<int>(p);
      partitions_[p]->sim.run_until(until);
    }
    t_partition = -1;
    barriers_->sync.arrive_and_wait();
  }
  t_engine = nullptr;
}

std::uint64_t ShardEngine::run() {
  CANARY_CHECK(!running_, "ShardEngine::run is not reentrant");
  done_ = false;
  epochs_ = 0;
  running_ = true;
  for (std::unique_ptr<Partition>& p : partitions_) p->delivered = 0;
  const std::uint64_t before = executed_events();
  if (worker_count_ == 1) {
    worker_loop(0);
  } else {
    std::vector<std::thread> threads;
    threads.reserve(worker_count_);
    for (unsigned w = 0; w < worker_count_; ++w) {
      threads.emplace_back([this, w] { worker_loop(w); });
    }
    for (std::thread& t : threads) t.join();
  }
  running_ = false;
  messages_delivered_ = 0;
  for (const std::unique_ptr<Partition>& p : partitions_) {
    messages_delivered_ += p->delivered;
  }
  return executed_events() - before;
}

std::uint64_t ShardEngine::executed_events() const {
  std::uint64_t total = 0;
  for (const std::unique_ptr<Partition>& p : partitions_) {
    total += p->sim.executed_events();
  }
  return total;
}

}  // namespace canary::sim
