// Move-only callable with small-buffer optimization.
//
// The simulator schedules millions of short-lived callbacks per run;
// wrapping each in std::function costs one heap allocation (plus another
// for captures beyond the libstdc++ 16-byte inline window) on the hottest
// path of the whole system. UniqueFunction stores any callable whose
// state fits kInlineSize bytes (and is nothrow-movable) directly inside
// the object, so the common platform lambdas — a `this` pointer plus a
// few ids and durations — never touch the allocator. Larger or
// throwing-move callables transparently fall back to the heap, and
// move-only captures (e.g. a moved-in std::function or unique_ptr) are
// supported, which std::function cannot do at all.
#pragma once

#include <cstddef>
#include <memory>
#include <type_traits>
#include <utility>

namespace canary::sim {

class UniqueFunction {
 public:
  /// Inline capture budget. 64 bytes covers every steady-state platform
  /// callback (state advance, kill timer, pump tick) with room to spare;
  /// the rare provisioning callbacks that carry a std::function payload
  /// spill to the heap.
  static constexpr std::size_t kInlineSize = 64;

  UniqueFunction() = default;

  template <typename F,
            typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, UniqueFunction> &&
                                        std::is_invocable_r_v<void, D&>>>
  UniqueFunction(F&& f) {  // NOLINT(google-explicit-constructor)
    constexpr bool kFitsInline =
        sizeof(D) <= kInlineSize &&
        alignof(D) <= alignof(std::max_align_t) &&
        std::is_nothrow_move_constructible_v<D>;
    if constexpr (kFitsInline) {
      ::new (static_cast<void*>(inline_)) D(std::forward<F>(f));
      ops_ = &kOps<D, true>;
    } else {
      heap_ = new D(std::forward<F>(f));
      ops_ = &kOps<D, false>;
    }
  }

  UniqueFunction(UniqueFunction&& other) noexcept { steal(other); }

  UniqueFunction& operator=(UniqueFunction&& other) noexcept {
    if (this != &other) {
      reset();
      steal(other);
    }
    return *this;
  }

  UniqueFunction(const UniqueFunction&) = delete;
  UniqueFunction& operator=(const UniqueFunction&) = delete;

  ~UniqueFunction() { reset(); }

  explicit operator bool() const { return ops_ != nullptr; }

  void operator()() { ops_->invoke(target()); }

  /// Destroy the stored callable (and release any heap storage) now.
  /// Cancellation uses this so a dead event's captures do not linger in
  /// the slab until the slot is reused.
  void reset() {
    if (ops_ != nullptr) {
      ops_->destroy(target());
      ops_ = nullptr;
    }
  }

 private:
  struct Ops {
    void (*invoke)(void* obj);
    /// Move-construct the callable into `dst` and destroy the source.
    /// Only reached for inline storage; heap storage moves by pointer.
    void (*relocate)(void* src, void* dst) noexcept;
    void (*destroy)(void* obj) noexcept;
    bool inline_stored;
  };

  template <typename D, bool Inline>
  static constexpr Ops kOps = {
      [](void* obj) { (*static_cast<D*>(obj))(); },
      [](void* src, void* dst) noexcept {
        if constexpr (std::is_nothrow_move_constructible_v<D>) {
          ::new (dst) D(std::move(*static_cast<D*>(src)));
          static_cast<D*>(src)->~D();
        }
      },
      [](void* obj) noexcept {
        if constexpr (Inline) {
          static_cast<D*>(obj)->~D();
        } else {
          delete static_cast<D*>(obj);
        }
      },
      Inline,
  };

  void* target() {
    return ops_->inline_stored ? static_cast<void*>(inline_) : heap_;
  }

  void steal(UniqueFunction& other) noexcept {
    if (other.ops_ == nullptr) return;
    if (other.ops_->inline_stored) {
      other.ops_->relocate(other.inline_, inline_);
    } else {
      heap_ = other.heap_;
    }
    ops_ = other.ops_;
    other.ops_ = nullptr;
  }

  union {
    alignas(std::max_align_t) unsigned char inline_[kInlineSize];
    void* heap_;
  };
  const Ops* ops_ = nullptr;
};

}  // namespace canary::sim
