#include "sim/simulator.hpp"

#include "common/result.hpp"

namespace canary::sim {

EventHandle Simulator::schedule_at(TimePoint when, Callback fn) {
  CANARY_CHECK(when >= now_, "cannot schedule an event in the past");
  Event ev;
  ev.when = when;
  ev.seq = next_seq_++;
  ev.fn = std::move(fn);
  ev.cancelled = std::make_shared<bool>(false);
  ev.fired = std::make_shared<bool>(false);
  EventHandle handle;
  handle.cancelled_ = ev.cancelled;
  handle.fired_ = ev.fired;
  queue_.push(std::move(ev));
  return handle;
}

EventHandle Simulator::schedule_after(Duration delay, Callback fn) {
  CANARY_CHECK(delay >= Duration::zero(), "negative delay");
  return schedule_at(now_ + delay, std::move(fn));
}

bool Simulator::dispatch_one() {
  while (!queue_.empty()) {
    // priority_queue::top is const; the event is copied out and popped
    // before running so the callback can schedule freely.
    Event ev = queue_.top();
    queue_.pop();
    if (*ev.cancelled) continue;
    now_ = ev.when;
    *ev.fired = true;
    ++executed_;
    ev.fn();
    return true;
  }
  return false;
}

std::uint64_t Simulator::run() {
  stopped_ = false;
  std::uint64_t n = 0;
  while (!stopped_ && dispatch_one()) ++n;
  return n;
}

std::uint64_t Simulator::run_until(TimePoint until) {
  stopped_ = false;
  std::uint64_t n = 0;
  while (!stopped_ && !queue_.empty() && queue_.top().when <= until) {
    if (dispatch_one()) ++n;
  }
  if (now_ < until) now_ = until;
  return n;
}

bool Simulator::step() { return dispatch_one(); }

}  // namespace canary::sim
