#include "sim/simulator.hpp"

#include <algorithm>

#include "common/result.hpp"

namespace canary::sim {

void EventHandle::cancel() {
  if (sim_ != nullptr) sim_->cancel_slot(slot_, generation_);
}

bool EventHandle::pending() const {
  return sim_ != nullptr && sim_->slot_pending(slot_, generation_);
}

Simulator::Simulator(SimulatorOptions options)
    : arity_(options.heap_arity < 2 ? 2 : options.heap_arity),
      compact_min_(options.compact_min < 1 ? 1 : options.compact_min) {}

std::uint32_t Simulator::alloc_slot() {
  if (free_head_ != kNilSlot) {
    const std::uint32_t slot = free_head_;
    free_head_ = records_[slot].next_free;
    return slot;
  }
  CANARY_CHECK(records_.size() < kNilSlot, "event slab exhausted");
  records_.emplace_back();
  return static_cast<std::uint32_t>(records_.size() - 1);
}

void Simulator::free_slot(std::uint32_t slot) {
  EventRecord& rec = records_[slot];
  rec.fn.reset();
  rec.state = SlotState::kFree;
  ++rec.generation;  // retires every outstanding handle to this slot
  rec.next_free = free_head_;
  free_head_ = slot;
}

void Simulator::cancel_slot(std::uint32_t slot, std::uint32_t generation) {
  if (slot >= records_.size()) return;
  EventRecord& rec = records_[slot];
  if (rec.generation != generation || rec.state != SlotState::kPending) {
    return;  // already fired, cancelled, or the slot was reused
  }
  rec.state = SlotState::kCancelled;
  rec.fn.reset();  // release captures now, not when the slot is reused
  --live_count_;
  ++cancelled_in_heap_;
  maybe_compact();
}

bool Simulator::slot_pending(std::uint32_t slot,
                             std::uint32_t generation) const {
  if (slot >= records_.size()) return false;
  const EventRecord& rec = records_[slot];
  return rec.generation == generation && rec.state == SlotState::kPending;
}

EventHandle Simulator::schedule_at(TimePoint when, Callback fn) {
  CANARY_CHECK(when >= now_, "cannot schedule an event in the past");
  const std::uint32_t slot = alloc_slot();
  EventRecord& rec = records_[slot];
  rec.fn = std::move(fn);
  rec.state = SlotState::kPending;
  heap_push({when.count_usec(), next_seq_++, slot, rec.generation});
  ++live_count_;
  return EventHandle(this, slot, rec.generation);
}

EventHandle Simulator::schedule_after(Duration delay, Callback fn) {
  CANARY_CHECK(delay >= Duration::zero(), "negative delay");
  return schedule_at(now_ + delay, std::move(fn));
}

void Simulator::heap_push(HeapEntry entry) {
  heap_.push_back(entry);
  std::size_t i = heap_.size() - 1;
  while (i > 0) {
    const std::size_t parent = (i - 1) / arity_;
    if (!heap_[i].before(heap_[parent])) break;
    std::swap(heap_[i], heap_[parent]);
    i = parent;
  }
}

void Simulator::heap_pop_root() {
  heap_[0] = heap_.back();
  heap_.pop_back();
  const std::size_t n = heap_.size();
  std::size_t i = 0;
  for (;;) {
    const std::size_t first_child = i * arity_ + 1;
    if (first_child >= n) break;
    const std::size_t last_child = std::min(first_child + arity_, n);
    std::size_t best = first_child;
    for (std::size_t c = first_child + 1; c < last_child; ++c) {
      if (heap_[c].before(heap_[best])) best = c;
    }
    if (!heap_[best].before(heap_[i])) break;
    std::swap(heap_[i], heap_[best]);
    i = best;
  }
}

bool Simulator::entry_live(const HeapEntry& entry) const {
  const EventRecord& rec = records_[entry.slot];
  return rec.generation == entry.generation &&
         rec.state == SlotState::kPending;
}

const Simulator::HeapEntry* Simulator::peek_live() {
  while (!heap_.empty()) {
    const HeapEntry& top = heap_[0];
    if (entry_live(top)) return &heap_[0];
    // Stale head: a cancelled event (reclaim its slot) or an entry whose
    // slot was already reclaimed by compaction.
    EventRecord& rec = records_[top.slot];
    if (rec.generation == top.generation &&
        rec.state == SlotState::kCancelled) {
      --cancelled_in_heap_;
      free_slot(top.slot);
    }
    heap_pop_root();
  }
  return nullptr;
}

void Simulator::maybe_compact() {
  if (cancelled_in_heap_ < compact_min_ ||
      cancelled_in_heap_ * 2 < heap_.size()) {
    return;
  }
  // Sweep out every dead entry, reclaim cancelled slots, and rebuild the
  // heap in place. (time, seq) is a total order, so any valid heap over
  // the surviving entries dispatches in exactly the same sequence.
  std::size_t kept = 0;
  for (const HeapEntry& entry : heap_) {
    if (entry_live(entry)) {
      heap_[kept++] = entry;
      continue;
    }
    EventRecord& rec = records_[entry.slot];
    if (rec.generation == entry.generation &&
        rec.state == SlotState::kCancelled) {
      free_slot(entry.slot);
    }
  }
  heap_.resize(kept);
  cancelled_in_heap_ = 0;
  if (kept > 1) {
    for (std::size_t i = (kept - 2) / arity_ + 1; i-- > 0;) {
      // Sift down from the last parent to the root.
      std::size_t j = i;
      for (;;) {
        const std::size_t first_child = j * arity_ + 1;
        if (first_child >= kept) break;
        const std::size_t last_child = std::min(first_child + arity_, kept);
        std::size_t best = first_child;
        for (std::size_t c = first_child + 1; c < last_child; ++c) {
          if (heap_[c].before(heap_[best])) best = c;
        }
        if (!heap_[best].before(heap_[j])) break;
        std::swap(heap_[j], heap_[best]);
        j = best;
      }
    }
  }
}

bool Simulator::dispatch_one() {
  while (!heap_.empty()) {
    const HeapEntry top = heap_[0];
    heap_pop_root();
    EventRecord& rec = records_[top.slot];
    if (rec.generation != top.generation) continue;  // slot was compacted
    if (rec.state == SlotState::kCancelled) {
      --cancelled_in_heap_;
      free_slot(top.slot);
      continue;
    }
    now_ = TimePoint::from_usec(top.when_usec);
    // Move the callback out and reclaim the slot *before* invoking: the
    // generation bump makes cancel-after-fire a no-op on every handle,
    // and the callback is free to schedule (growing the slab) without
    // invalidating anything we still hold.
    UniqueFunction fn = std::move(rec.fn);
    --live_count_;
    free_slot(top.slot);
    ++executed_;
    fn();
    return true;
  }
  return false;
}

std::uint64_t Simulator::run() {
  stopped_ = false;
  std::uint64_t n = 0;
  while (!stopped_ && dispatch_one()) ++n;
  return n;
}

std::uint64_t Simulator::run_until(TimePoint until) {
  stopped_ = false;
  std::uint64_t n = 0;
  while (!stopped_) {
    const HeapEntry* head = peek_live();
    if (head == nullptr || head->when_usec > until.count_usec()) break;
    if (dispatch_one()) ++n;
  }
  if (now_ < until) now_ = until;
  return n;
}

bool Simulator::step() { return dispatch_one(); }

std::int64_t Simulator::next_event_usec() {
  const HeapEntry* head = peek_live();
  return head != nullptr ? head->when_usec : -1;
}

}  // namespace canary::sim
