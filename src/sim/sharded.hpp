// Conservative parallel discrete-event engine: N logical partitions,
// each owning a private sim::Simulator (slab, heap, clock), advanced in
// lockstep windows by a pool of worker threads.
//
// Synchronization is conservative with lookahead L: every epoch the
// engine computes the global lower bound on the next event time (LBTS)
// across all partitions and lets every partition execute events in
// [LBTS, LBTS + L) in parallel. Cross-partition interactions are
// explicit timestamped messages carried in bounded per-(src, dst)
// outboxes; a message posted at local time t must be stamped no earlier
// than t + L, which guarantees it is delivered (at the next barrier)
// before its partition's clock can reach it. Within a window no
// partition can observe another's state, so each partition's execution
// is exactly the sequential execution of its own event stream.
//
// Determinism is by construction independent of the worker count:
//   * the partition count fixes the model — partitions are the unit of
//     semantics, workers only map partitions onto OS threads
//     (partition p runs on worker p % workers);
//   * message delivery order into a partition is sorted by
//     (timestamp, source partition, per-source sequence number), none
//     of which depend on thread interleaving;
//   * all published results (executed counts, epoch count, per-partition
//     state) are reductions in partition order.
// Consequently every run with the same partition count produces the
// same per-partition event sequences whether it uses 1 worker or 8 —
// the property the determinism suite asserts byte-for-byte and TSan
// certifies free of data races.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/time.hpp"
#include "sim/simulator.hpp"
#include "sim/unique_function.hpp"

namespace canary::sim {

struct ShardEngineOptions {
  /// Logical partition count. Fixed by the model, not the machine:
  /// changing it changes which entities share a sequential event stream.
  unsigned partitions = 1;
  /// Worker threads executing the partitions (clamped to `partitions`).
  /// Any value produces identical results; it only buys wall-clock.
  unsigned workers = 1;
  /// Conservative lookahead: the minimum cross-partition message delay.
  /// Defaults to the network model's same-rack latency floor (80 us) —
  /// no modelled cross-node interaction is faster. Posts stamped closer
  /// than `lookahead` to the sender's clock are a CHECK failure.
  Duration lookahead = Duration::usec(80);
  /// Bound on each (source, destination) inter-shard queue. Overflow is
  /// a CHECK failure: the simulated system must apply backpressure at
  /// the model level, not silently buffer unbounded traffic.
  std::size_t queue_capacity = 1 << 16;
  /// Options forwarded to every partition's Simulator.
  SimulatorOptions simulator;
};

class ShardEngine {
 public:
  explicit ShardEngine(ShardEngineOptions options);
  ~ShardEngine();
  ShardEngine(const ShardEngine&) = delete;
  ShardEngine& operator=(const ShardEngine&) = delete;

  unsigned partitions() const { return partition_count_; }
  unsigned workers() const { return worker_count_; }
  Duration lookahead() const { return lookahead_; }

  /// The partition's private simulator. Direct scheduling is allowed
  /// during setup (before run()) and from the partition's own callbacks;
  /// cross-partition scheduling during run() must go through post().
  Simulator& partition(unsigned p);

  /// Deliver `fn` on partition `dst` at absolute time `when`.
  ///
  /// Called from a running partition's callback, `when` must be at least
  /// the sender's clock plus the lookahead (CHECK-enforced); the message
  /// rides the sender's outbox and is scheduled into `dst` at the next
  /// epoch barrier, in deterministic (when, src, seq) order. Called
  /// before run() (setup is single-threaded), it schedules directly.
  void post(unsigned dst, TimePoint when, UniqueFunction fn);

  /// Run every partition to global quiescence (no pending events, no
  /// undelivered messages). Returns the total executed event count.
  std::uint64_t run();

  std::uint64_t executed_events() const;
  /// Barrier rounds taken by the last run().
  std::uint64_t epochs() const { return epochs_; }
  /// Cross-partition messages delivered by the last run().
  std::uint64_t messages_delivered() const { return messages_delivered_; }

 private:
  struct Message {
    std::int64_t when_usec = 0;
    std::uint32_t src = 0;
    std::uint64_t seq = 0;  // per-source counter: worker-count invariant
    UniqueFunction fn;
  };

  struct Partition {
    Simulator sim;
    /// outbox[d]: messages posted by this partition for partition d
    /// during the current window. Written only by this partition's
    /// worker; drained by d's worker at the barrier.
    std::vector<std::vector<Message>> outbox;
    /// Gather/sort scratch for this partition's deliveries; a member so
    /// the capacity is reused across epochs instead of reallocated.
    std::vector<Message> inbox;
    std::uint64_t next_msg_seq = 0;
    std::uint64_t delivered = 0;

    explicit Partition(const SimulatorOptions& options) : sim(options) {}
  };

  void worker_loop(unsigned worker);
  void deliver_inbox(unsigned p);

  unsigned partition_count_ = 1;
  unsigned worker_count_ = 1;
  Duration lookahead_;
  std::size_t queue_capacity_;
  std::vector<std::unique_ptr<Partition>> partitions_;

  bool running_ = false;
  bool done_ = false;
  std::int64_t window_end_usec_ = 0;
  std::uint64_t epochs_ = 0;
  std::uint64_t messages_delivered_ = 0;
  /// Per-worker minimum next-event time, reduced by the plan barrier's
  /// completion step (leader-only, so no atomics needed on the scalars
  /// above: the barrier orders every access).
  std::vector<std::int64_t> worker_min_usec_;

  struct Barriers;  // hides <barrier> from this header
  std::unique_ptr<Barriers> barriers_;
};

}  // namespace canary::sim
