// Discrete-event simulation engine.
//
// The Simulator owns a time-ordered event queue and a virtual clock. All
// platform activity (container launches, state completions, failures,
// checkpoint flushes) is expressed as scheduled callbacks. Events at equal
// timestamps fire in scheduling order (FIFO tiebreak on a sequence
// number), which keeps runs deterministic. Events can be cancelled through
// the handle returned at scheduling time — used e.g. to retract a pending
// kill when a function completes first.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "common/time.hpp"

namespace canary::sim {

/// Cancellation handle for a scheduled event. Copyable; cancelling twice
/// is a no-op. A default-constructed handle refers to no event.
class EventHandle {
 public:
  EventHandle() = default;

  void cancel() {
    if (cancelled_) *cancelled_ = true;
  }
  /// True if this handle refers to an event that has neither fired nor
  /// been cancelled.
  bool pending() const { return cancelled_ && !*cancelled_ && !*fired_; }

 private:
  friend class Simulator;
  std::shared_ptr<bool> cancelled_;
  std::shared_ptr<bool> fired_;
};

class Simulator {
 public:
  using Callback = std::function<void()>;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  TimePoint now() const { return now_; }

  /// Schedule `fn` to run at absolute time `when`. `when` must not be in
  /// the past.
  EventHandle schedule_at(TimePoint when, Callback fn);

  /// Schedule `fn` after `delay` (>= 0) from now.
  EventHandle schedule_after(Duration delay, Callback fn);

  /// Run events until the queue is exhausted or `stop()` is called.
  /// Returns the number of events executed.
  std::uint64_t run();

  /// Run events with timestamp <= `until`, leaving later events queued.
  std::uint64_t run_until(TimePoint until);

  /// Execute a single event if one is queued. Returns false if empty.
  bool step();

  /// Stop the current run() after the in-flight event returns.
  void stop() { stopped_ = true; }

  bool empty() const { return queue_.empty(); }
  std::size_t pending_events() const { return queue_.size(); }
  std::uint64_t executed_events() const { return executed_; }

 private:
  struct Event {
    TimePoint when;
    std::uint64_t seq;
    Callback fn;
    std::shared_ptr<bool> cancelled;
    std::shared_ptr<bool> fired;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  bool dispatch_one();

  TimePoint now_ = TimePoint::origin();
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  bool stopped_ = false;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

}  // namespace canary::sim
