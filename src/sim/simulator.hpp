// Discrete-event simulation engine.
//
// The Simulator owns a time-ordered event queue and a virtual clock. All
// platform activity (container launches, state completions, failures,
// checkpoint flushes) is expressed as scheduled callbacks. Events at equal
// timestamps fire in scheduling order (FIFO tiebreak on a sequence
// number), which keeps runs deterministic. Events can be cancelled through
// the handle returned at scheduling time — used e.g. to retract a pending
// kill when a function completes first.
//
// Hot-path design (million-invocation runs):
//   * Event records live in a slab with an intrusive free list and are
//     addressed by {slot, generation} handles. Cancellation flips one
//     enum and bumps nothing into the queue; firing or reclaiming a slot
//     bumps its generation, which retires every outstanding handle to it
//     (no shared_ptr control blocks, no ABA across slot reuse).
//   * The ready queue is a d-ary heap (4-ary by default — shallower than
//     a binary heap, and its sift-down touches one cache line per level)
//     of 24-byte plain entries. Cancelled events are deleted lazily: they
//     are skipped when popped, and when they pile up past half the queue
//     the heap compacts in one O(n) rebuild instead of churning tombstones
//     through every subsequent pop.
//   * Callbacks are UniqueFunction (small-buffer optimized): the common
//     platform lambdas are stored inline in the slab record and never
//     touch the allocator.
#pragma once

#include <cstdint>
#include <vector>

#include "common/time.hpp"
#include "sim/unique_function.hpp"

namespace canary::sim {

class Simulator;

/// Cancellation handle for a scheduled event: a {slot, generation}
/// reference into the simulator's event slab. Copyable; cancelling twice,
/// cancelling after the event fired, or cancelling a default-constructed
/// or moved-from handle are all no-ops. Handles may outlive run() — the
/// generation check keeps them inert once the slot is reused — but must
/// not outlive the Simulator itself.
class EventHandle {
 public:
  EventHandle() = default;
  EventHandle(const EventHandle&) = default;
  EventHandle& operator=(const EventHandle&) = default;
  EventHandle(EventHandle&& other) noexcept
      : sim_(other.sim_), slot_(other.slot_), generation_(other.generation_) {
    other.sim_ = nullptr;
  }
  EventHandle& operator=(EventHandle&& other) noexcept {
    sim_ = other.sim_;
    slot_ = other.slot_;
    generation_ = other.generation_;
    if (this != &other) other.sim_ = nullptr;
    return *this;
  }

  void cancel();
  /// True if this handle refers to an event that has neither fired nor
  /// been cancelled.
  bool pending() const;

 private:
  friend class Simulator;
  EventHandle(Simulator* sim, std::uint32_t slot, std::uint32_t generation)
      : sim_(sim), slot_(slot), generation_(generation) {}

  Simulator* sim_ = nullptr;
  std::uint32_t slot_ = 0;
  std::uint32_t generation_ = 0;
};

struct SimulatorOptions {
  /// Ready-queue heap arity. 4 (the default) is measurably faster than 2
  /// on deep queues; both orders are total on (time, seq), so the
  /// executed event sequence is identical whichever is picked.
  unsigned heap_arity = 4;
  /// Lazy-deletion compaction: rebuild the heap once at least
  /// `compact_min` cancelled entries make up more than half of it.
  std::size_t compact_min = 64;
};

class Simulator {
 public:
  using Callback = UniqueFunction;

  explicit Simulator(SimulatorOptions options = {});
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  TimePoint now() const { return now_; }

  /// Schedule `fn` to run at absolute time `when`. `when` must not be in
  /// the past.
  EventHandle schedule_at(TimePoint when, Callback fn);

  /// Schedule `fn` after `delay` (>= 0) from now.
  EventHandle schedule_after(Duration delay, Callback fn);

  /// Run events until the queue is exhausted or `stop()` is called.
  /// Returns the number of events executed.
  std::uint64_t run();

  /// Run events with timestamp <= `until`, leaving later events queued.
  std::uint64_t run_until(TimePoint until);

  /// Execute a single event if one is queued. Returns false if empty.
  bool step();

  /// Stop the current run() after the in-flight event returns.
  void stop() { stopped_ = true; }

  bool empty() const { return live_count_ == 0; }
  /// Number of scheduled, not-yet-fired, not-cancelled events.
  std::size_t pending_events() const { return live_count_; }
  std::uint64_t executed_events() const { return executed_; }

  /// Timestamp (usec) of the earliest live event, or -1 when the queue
  /// holds none. Non-const: lazily deleted tombstones at the heap head
  /// are dropped on the way, exactly as run() would. The conservative
  /// shard scheduler uses this to compute the global safe window.
  std::int64_t next_event_usec();

 private:
  friend class EventHandle;

  /// Lifecycle of one slab slot. "Fired" needs no state of its own: the
  /// slot's generation is bumped when the event fires (or is reclaimed),
  /// which retires every handle that pointed at it.
  enum class SlotState : std::uint8_t { kFree, kPending, kCancelled };

  struct EventRecord {
    UniqueFunction fn;
    std::uint32_t generation = 0;
    std::uint32_t next_free = kNilSlot;
    SlotState state = SlotState::kFree;
  };

  /// Heap entry: 24 bytes, ordered by (when, seq). The slot's generation
  /// at scheduling time distinguishes a live entry from a stale one whose
  /// slot was compacted away and reused.
  struct HeapEntry {
    std::int64_t when_usec;
    std::uint64_t seq;
    std::uint32_t slot;
    std::uint32_t generation;

    bool before(const HeapEntry& o) const {
      if (when_usec != o.when_usec) return when_usec < o.when_usec;
      return seq < o.seq;
    }
  };

  static constexpr std::uint32_t kNilSlot = 0xffffffffu;

  std::uint32_t alloc_slot();
  void free_slot(std::uint32_t slot);
  void cancel_slot(std::uint32_t slot, std::uint32_t generation);
  bool slot_pending(std::uint32_t slot, std::uint32_t generation) const;

  void heap_push(HeapEntry entry);
  void heap_pop_root();
  /// Drop stale/cancelled heads; returns the live head or nullptr.
  const HeapEntry* peek_live();
  /// True when the popped entry still references a live pending event.
  bool entry_live(const HeapEntry& entry) const;
  void maybe_compact();

  bool dispatch_one();

  TimePoint now_ = TimePoint::origin();
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  bool stopped_ = false;

  std::vector<EventRecord> records_;
  std::uint32_t free_head_ = kNilSlot;
  std::vector<HeapEntry> heap_;
  std::size_t live_count_ = 0;          // pending and not cancelled
  std::size_t cancelled_in_heap_ = 0;   // lazy-deletion tombstones
  unsigned arity_ = 4;
  std::size_t compact_min_ = 64;
};

}  // namespace canary::sim
