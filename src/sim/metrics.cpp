#include "sim/metrics.hpp"

namespace canary::sim {

namespace {
const SampleSet& empty_sample_set() {
  static const SampleSet empty;
  return empty;
}
}  // namespace

void MetricsRecorder::count(const std::string& name, double delta) {
  counters_[name] += delta;
}

void MetricsRecorder::sample(const std::string& name, double value) {
  samples_[name].add(value);
}

double MetricsRecorder::counter(const std::string& name) const {
  auto it = counters_.find(name);
  return it == counters_.end() ? 0.0 : it->second;
}

const SampleSet& MetricsRecorder::samples(const std::string& name) const {
  auto it = samples_.find(name);
  return it == samples_.end() ? empty_sample_set() : it->second;
}

}  // namespace canary::sim
