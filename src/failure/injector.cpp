#include "failure/injector.hpp"

#include <cmath>

namespace canary::failure {

namespace {
/// Mark an injector-driven node failure in the causal log, so traces can
/// distinguish injected chaos from organic deaths. Returns the event id
/// (kNoEvent without a log) so correlated kills can share it as a cause.
obs::EventId annotate_injection(sim::Simulator& simulator,
                                faas::Platform& platform, NodeId node,
                                const char* what) {
  auto* events = platform.events();
  if (events == nullptr) return obs::kNoEvent;
  obs::SpanLabels labels;
  labels.node = node;
  return events->append_raw(events->new_trace(), obs::kNoEvent,
                            obs::EventKind::kAnnotation, what, simulator.now(),
                            labels);
}
}  // namespace

std::optional<Duration> FailureInjector::plan_kill(const faas::Invocation& inv,
                                                   int attempt,
                                                   Duration busy_estimate) {
  if (config_.error_rate <= 0.0) return std::nullopt;

  if (config_.mode == InjectionMode::kHazardRate) {
    const std::size_t slot = inv.id.value() - 1;
    if (slot >= first_busy_.size()) {
      // Geometric growth by hand: resize(n) alone allocates exactly n, so
      // sequential ids would trigger a reallocation per invocation.
      std::size_t grown = first_busy_.empty() ? 64 : first_busy_.size() * 2;
      first_busy_.resize(std::max(grown, slot + 1), Duration::max());
    }
    if (first_busy_[slot] == Duration::max()) first_busy_[slot] = busy_estimate;
    const Duration reference = first_busy_[slot];
    double exposure = 1.0;
    if (reference > Duration::zero()) exposure = busy_estimate / reference;
    const double p_fail =
        1.0 - std::pow(1.0 - config_.error_rate, exposure);
    Rng draw = rng_.child(inv.id.value() * 1315423911ULL +
                          static_cast<std::uint64_t>(attempt));
    if (!draw.bernoulli(p_fail)) return std::nullopt;
    ++planned_kills_;
    return busy_estimate * draw.uniform01();
  }

  if (config_.mode == InjectionMode::kPerAttempt) {
    // Derive the draw from a per-(function, attempt) child stream so a
    // function's fate does not depend on the order in which other
    // functions start.
    Rng draw = rng_.child(inv.id.value() * 1315423911ULL +
                          static_cast<std::uint64_t>(attempt));
    if (!draw.bernoulli(config_.error_rate)) return std::nullopt;
    ++planned_kills_;
    return busy_estimate * draw.uniform01();
  }

  auto [it, inserted] = plans_.try_emplace(inv.id);
  Plan& plan = it->second;
  if (inserted) {
    Rng draw = rng_.child(inv.id.value());
    plan.fail = draw.bernoulli(config_.error_rate);
    plan.fraction = draw.uniform01();
  }
  if (!plan.fail || plan.consumed) return std::nullopt;
  if (attempt != config_.kill_on_attempt) return std::nullopt;
  plan.consumed = true;
  ++planned_kills_;
  return busy_estimate * plan.fraction;
}

void FailureInjector::fire_node_failure(sim::Simulator& simulator,
                                        faas::Platform& platform,
                                        kv::KvStore* store, NodeId victim,
                                        const char* what, obs::EventId cause) {
  ++node_kills_;
  annotate_injection(simulator, platform, victim, what);
  platform.fail_node(victim, cause);
  if (store != nullptr) store->fail_node(victim);
}

void FailureInjector::schedule_node_failure(sim::Simulator& simulator,
                                            faas::Platform& platform,
                                            kv::KvStore* store, TimePoint when,
                                            std::optional<NodeId> victim) {
  simulator.schedule_at(when, [this, &simulator, &platform, store, victim] {
    // Keep at least one node alive so the workload can finish.
    if (platform.cluster().alive_count() <= 1) return;
    NodeId target;
    if (victim) {
      // Regression guard: a victim already taken down by an earlier
      // failure event must not be killed again — a second fail_node would
      // re-count the death and a second store->fail_node would re-drop
      // (and in partitioned mode re-prune) its KV entries.
      if (!platform.cluster().contains(*victim) ||
          !platform.cluster().node(*victim).alive()) {
        ++skipped_node_kills_;
        return;
      }
      target = *victim;
    } else {
      auto drawn = platform.cluster().weighted_random_alive(rng_);
      if (!drawn) return;
      target = *drawn;
    }
    fire_node_failure(simulator, platform, store, target,
                      "injected_node_failure");
  });
}

void FailureInjector::schedule_correlated_node_failure(
    sim::Simulator& simulator, faas::Platform& platform, kv::KvStore* store,
    TimePoint when, int precursor_kills, Duration precursor_window) {
  const TimePoint pick_at =
      when.count_usec() > precursor_window.count_usec()
          ? TimePoint::from_usec(when.count_usec() -
                                 precursor_window.count_usec())
          : TimePoint::origin();
  simulator.schedule_at(pick_at, [this, &simulator, &platform, store, when,
                                  precursor_kills, precursor_window] {
    auto victim = platform.cluster().weighted_random_alive(rng_);
    if (!victim || platform.cluster().alive_count() <= 1) return;
    const NodeId node = *victim;
    // Degradation phase: container kills on the victim, evenly spread.
    for (int k = 0; k < precursor_kills; ++k) {
      const Duration offset =
          precursor_window * (static_cast<double>(k + 1) /
                              static_cast<double>(precursor_kills + 1));
      simulator.schedule_after(offset, [&platform, node] {
        if (!platform.cluster().node(node).alive()) return;
        // Kill the busiest container's function on the degrading node.
        for (const auto* c : platform.containers_on(node)) {
          if (c->state == faas::ContainerState::kBusy && c->assigned.valid()) {
            platform.kill_function(c->assigned,
                                   faas::FailureKind::kContainerKill);
            return;
          }
        }
      });
    }
    // Terminal failure. A victim already killed by an overlapping failure
    // event counts as a skipped kill, same as the explicit-victim path of
    // schedule_node_failure — one node, one death in the accounting.
    simulator.schedule_at(when, [this, &simulator, &platform, store, node] {
      if (!platform.cluster().node(node).alive()) {
        ++skipped_node_kills_;
        return;
      }
      if (platform.cluster().alive_count() <= 1) return;
      fire_node_failure(simulator, platform, store, node,
                        "injected_correlated_node_failure");
    });
  });
}

void FailureInjector::schedule_gray_window(sim::Simulator& simulator,
                                           faas::Platform& platform,
                                           TimePoint start, Duration duration,
                                           double slowdown,
                                           std::optional<NodeId> victim) {
  simulator.schedule_at(start, [this, &simulator, &platform, duration,
                                slowdown, victim] {
    NodeId target;
    if (victim && platform.cluster().contains(*victim) &&
        platform.cluster().node(*victim).alive()) {
      target = *victim;
    } else if (!victim) {
      auto drawn = platform.cluster().weighted_random_alive(rng_);
      if (!drawn) return;
      target = *drawn;
    } else {
      return;  // requested victim already dead
    }
    ++gray_windows_;
    auto& node = platform.cluster().node(target);
    // Stack with any narrower gray window already in force.
    node.set_slowdown(node.slowdown() * slowdown);
    annotate_injection(simulator, platform, target, "injected_gray_start");
    simulator.schedule_after(duration, [this, &simulator, &platform, target,
                                        slowdown] {
      if (!platform.cluster().contains(target) ||
          !platform.cluster().node(target).alive()) {
        return;  // died mid-window; slowdown dies with it
      }
      auto& healed = platform.cluster().node(target);
      healed.set_slowdown(healed.slowdown() / slowdown);
      annotate_injection(simulator, platform, target, "injected_gray_end");
    });
  });
}

void FailureInjector::add_heartbeat_fault(HeartbeatFault fault) {
  heartbeat_faults_.push_back(fault);
}

std::optional<Duration> FailureInjector::heartbeat_delay(NodeId node,
                                                         TimePoint send_time) {
  Duration delay = Duration::zero();
  for (const HeartbeatFault& fault : heartbeat_faults_) {
    if (fault.node && *fault.node != node) continue;
    if (send_time < fault.start || send_time >= fault.start + fault.duration) {
      continue;
    }
    if (fault.drop_rate > 0.0) {
      // Drop decisions key on (node, send time) so they do not depend on
      // how many heartbeats other nodes sent first.
      Rng draw = rng_.child(
          node.value() * 2654435761ULL +
          static_cast<std::uint64_t>((send_time - TimePoint::origin())
                                         .count_usec()));
      if (draw.bernoulli(fault.drop_rate)) {
        ++heartbeats_dropped_;
        return std::nullopt;
      }
    }
    if (fault.delay > delay) delay = fault.delay;
  }
  if (delay > Duration::zero()) ++heartbeats_delayed_;
  return delay;
}

void FailureInjector::schedule_store_fault(sim::Simulator& simulator,
                                           faas::Platform& platform,
                                           kv::KvStore& store, TimePoint when,
                                           unsigned lose, unsigned corrupt) {
  simulator.schedule_at(when, [this, &simulator, &platform, &store, when,
                               lose, corrupt] {
    std::vector<std::string> keys = store.keys_with_prefix("ckpt/");
    if (keys.empty()) return;
    Rng draw = rng_.child(
        0x57A7EFA17ULL ^
        static_cast<std::uint64_t>((when - TimePoint::origin()).count_usec()));
    auto pick = [&]() -> std::optional<std::string> {
      if (keys.empty()) return std::nullopt;
      const std::size_t idx = static_cast<std::size_t>(
          draw.uniform_int(0, keys.size() - 1));
      std::string key = keys[idx];
      keys.erase(keys.begin() + static_cast<std::ptrdiff_t>(idx));
      return key;
    };
    bool fired = false;
    for (unsigned i = 0; i < lose; ++i) {
      if (auto key = pick()) {
        if (store.drop_entry(*key)) {
          ++store_entries_dropped_;
          fired = true;
        }
      }
    }
    for (unsigned i = 0; i < corrupt; ++i) {
      if (auto key = pick()) {
        if (store.corrupt_entry(*key)) {
          ++store_entries_corrupted_;
          fired = true;
        }
      }
    }
    if (fired) {
      annotate_injection(simulator, platform, NodeId::invalid(),
                         "injected_store_fault");
    }
  });
}

void FailureInjector::schedule_partition(sim::Simulator& simulator,
                                         faas::Platform& platform,
                                         TimePoint start, Duration duration,
                                         std::vector<NodeId> from,
                                         std::vector<NodeId> to,
                                         bool symmetric) {
  simulator.schedule_at(start, [this, &simulator, &platform, duration,
                                from = std::move(from), to = std::move(to),
                                symmetric] {
    if (from.empty() || to.empty()) {
      // Degenerate window (a zone slice with no members in this shard):
      // still counted, so per-shard counter merges stay invariant.
      ++partitions_started_;
      ++partitions_healed_;
      return;
    }
    auto& net = platform.network();
    const auto forward = net.block(from, to);
    const auto reverse =
        symmetric ? net.block(to, from) : cluster::NetworkModel::RuleId{0};
    ++partitions_started_;
    annotate_injection(simulator, platform, NodeId::invalid(),
                       "partition_start");
    simulator.schedule_after(duration, [this, &simulator, &platform, forward,
                                        reverse, symmetric] {
      auto& healed = platform.network();
      healed.unblock(forward);
      if (symmetric) healed.unblock(reverse);
      ++partitions_healed_;
      annotate_injection(simulator, platform, NodeId::invalid(),
                         "partition_heal");
    });
  });
}

void FailureInjector::schedule_zone_partition(sim::Simulator& simulator,
                                              faas::Platform& platform,
                                              TimePoint start,
                                              Duration duration,
                                              std::uint32_t zone) {
  // Resolve membership at fire time: nodes that died before the window
  // opens are no longer endpoints worth blocking.
  simulator.schedule_at(start, [this, &simulator, &platform, duration, zone] {
    std::vector<NodeId> inside;
    std::vector<NodeId> outside;
    for (const NodeId id : platform.cluster().alive_node_ids()) {
      (platform.cluster().zone_of(id) == zone ? inside : outside)
          .push_back(id);
    }
    schedule_partition(simulator, platform, simulator.now(), duration,
                       std::move(inside), std::move(outside),
                       /*symmetric=*/true);
  });
}

void FailureInjector::schedule_zone_outage(sim::Simulator& simulator,
                                           faas::Platform& platform,
                                           kv::KvStore* store, TimePoint when,
                                           std::uint32_t zone) {
  simulator.schedule_at(when, [this, &simulator, &platform, store, zone] {
    ++zone_outages_;
    // One causal root for the whole outage: every member's kNodeFailure
    // event carries a cause edge back to it, so the trace shows a single
    // domain-level event fanning out to correlated kills.
    const obs::EventId cause = annotate_injection(
        simulator, platform, NodeId::invalid(), "injected_zone_outage");
    for (const NodeId member : platform.cluster().nodes_in_zone(zone)) {
      if (!platform.cluster().node(member).alive()) {
        // Overlap with an earlier scheduled kill on this member: one
        // death, one count — the correlated extension of the PR4
        // double-kill guard.
        ++skipped_node_kills_;
        continue;
      }
      // Keep at least one node alive so the workload can finish.
      if (platform.cluster().alive_count() <= 1) break;
      fire_node_failure(simulator, platform, store, member,
                        "injected_zone_outage_kill", cause);
    }
  });
}

}  // namespace canary::failure
