#include "failure/injector.hpp"

#include <cmath>

namespace canary::failure {

namespace {
/// Mark an injector-driven node failure in the causal log, so traces can
/// distinguish injected chaos from organic deaths.
void annotate_injection(sim::Simulator& simulator, faas::Platform& platform,
                        NodeId node, const char* what) {
  auto* events = platform.events();
  if (events == nullptr) return;
  obs::SpanLabels labels;
  labels.node = node;
  events->append_raw(events->new_trace(), obs::kNoEvent,
                     obs::EventKind::kAnnotation, what, simulator.now(),
                     labels);
}
}  // namespace

std::optional<Duration> FailureInjector::plan_kill(const faas::Invocation& inv,
                                                   int attempt,
                                                   Duration busy_estimate) {
  if (config_.error_rate <= 0.0) return std::nullopt;

  if (config_.mode == InjectionMode::kHazardRate) {
    auto [it, inserted] = first_busy_.try_emplace(inv.id, busy_estimate);
    const Duration reference = it->second;
    double exposure = 1.0;
    if (reference > Duration::zero()) exposure = busy_estimate / reference;
    const double p_fail =
        1.0 - std::pow(1.0 - config_.error_rate, exposure);
    Rng draw = rng_.child(inv.id.value() * 1315423911ULL +
                          static_cast<std::uint64_t>(attempt));
    if (!draw.bernoulli(p_fail)) return std::nullopt;
    ++planned_kills_;
    return busy_estimate * draw.uniform01();
  }

  if (config_.mode == InjectionMode::kPerAttempt) {
    // Derive the draw from a per-(function, attempt) child stream so a
    // function's fate does not depend on the order in which other
    // functions start.
    Rng draw = rng_.child(inv.id.value() * 1315423911ULL +
                          static_cast<std::uint64_t>(attempt));
    if (!draw.bernoulli(config_.error_rate)) return std::nullopt;
    ++planned_kills_;
    return busy_estimate * draw.uniform01();
  }

  auto [it, inserted] = plans_.try_emplace(inv.id);
  Plan& plan = it->second;
  if (inserted) {
    Rng draw = rng_.child(inv.id.value());
    plan.fail = draw.bernoulli(config_.error_rate);
    plan.fraction = draw.uniform01();
  }
  if (!plan.fail || plan.consumed) return std::nullopt;
  if (attempt != config_.kill_on_attempt) return std::nullopt;
  plan.consumed = true;
  ++planned_kills_;
  return busy_estimate * plan.fraction;
}

void FailureInjector::schedule_node_failure(sim::Simulator& simulator,
                                            faas::Platform& platform,
                                            kv::KvStore* store,
                                            TimePoint when) {
  simulator.schedule_at(when, [this, &simulator, &platform, store] {
    auto victim = platform.cluster().weighted_random_alive(rng_);
    if (!victim) return;
    // Keep at least one node alive so the workload can finish.
    if (platform.cluster().alive_count() <= 1) return;
    ++node_kills_;
    annotate_injection(simulator, platform, *victim, "injected_node_failure");
    platform.fail_node(*victim);
    if (store != nullptr) store->fail_node(*victim);
  });
}

void FailureInjector::schedule_correlated_node_failure(
    sim::Simulator& simulator, faas::Platform& platform, kv::KvStore* store,
    TimePoint when, int precursor_kills, Duration precursor_window) {
  const TimePoint pick_at =
      when.count_usec() > precursor_window.count_usec()
          ? TimePoint::from_usec(when.count_usec() -
                                 precursor_window.count_usec())
          : TimePoint::origin();
  simulator.schedule_at(pick_at, [this, &simulator, &platform, store, when,
                                  precursor_kills, precursor_window] {
    auto victim = platform.cluster().weighted_random_alive(rng_);
    if (!victim || platform.cluster().alive_count() <= 1) return;
    const NodeId node = *victim;
    // Degradation phase: container kills on the victim, evenly spread.
    for (int k = 0; k < precursor_kills; ++k) {
      const Duration offset =
          precursor_window * (static_cast<double>(k + 1) /
                              static_cast<double>(precursor_kills + 1));
      simulator.schedule_after(offset, [&platform, node] {
        if (!platform.cluster().node(node).alive()) return;
        // Kill the busiest container's function on the degrading node.
        for (const auto* c : platform.containers_on(node)) {
          if (c->state == faas::ContainerState::kBusy && c->assigned.valid()) {
            platform.kill_function(c->assigned,
                                   faas::FailureKind::kContainerKill);
            return;
          }
        }
      });
    }
    // Terminal failure.
    simulator.schedule_at(when, [this, &simulator, &platform, store, node] {
      if (!platform.cluster().node(node).alive()) return;
      if (platform.cluster().alive_count() <= 1) return;
      ++node_kills_;
      annotate_injection(simulator, platform, node,
                         "injected_correlated_node_failure");
      platform.fail_node(node);
      if (store != nullptr) store->fail_node(node);
    });
  });
}

}  // namespace canary::failure
