// Interface between the controller's failure detector and the fault
// injector's network model.
//
// Heartbeats travel from workers to the Core Module's worker_info table;
// a congested or partitioned control-plane link delays or drops them,
// which is how false suspicions (delayed heartbeat, live worker) and
// slow detections happen in real clusters. The detector consults this
// provider once per heartbeat; FailureInjector implements it with seeded
// deterministic fault windows.
#pragma once

#include <optional>

#include "common/ids.hpp"
#include "common/time.hpp"

namespace canary::failure {

class HeartbeatFaultProvider {
 public:
  virtual ~HeartbeatFaultProvider() = default;
  /// Delivery delay for the heartbeat `node` sends at `send_time`:
  /// Duration::zero() for normal delivery, a positive delay for a slow
  /// link, or std::nullopt when the heartbeat is dropped outright.
  virtual std::optional<Duration> heartbeat_delay(NodeId node,
                                                  TimePoint send_time) = 0;
};

}  // namespace canary::failure
