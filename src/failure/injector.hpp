// Failure injection (paper §V-B): "We simulate failures by randomly
// killing containers that host functions based on the defined error rate,
// and vary the error rate from 1% to 50%."
//
// The error rate is the percentage of functions that fail during a
// workload. In the default OncePerFunction mode each function is selected
// with probability `error_rate` and its container killed exactly once, at
// a uniformly random point of the attempt's busy window (launch through
// finalize) — failures "at random times during the job execution"
// (§V-D2). PerAttempt mode re-samples on every attempt and is used for
// the RR/AS baselines where each replica instance fails independently.
//
// Node-level failures (§V-D6) take down a whole worker: every hosted
// container dies and, unless the KV store replicates or persists them,
// the checkpoints cached on that node are lost.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/rng.hpp"
#include "faas/events.hpp"
#include "faas/platform.hpp"
#include "failure/heartbeat_faults.hpp"
#include "kvstore/kvstore.hpp"

namespace canary::failure {

enum class InjectionMode {
  kOncePerFunction,  // error rate = fraction of functions that fail once
  kPerAttempt,       // every attempt fails independently with error rate
  /// Kill probability scales with how long the container is actually up:
  /// a full-length first attempt fails with probability `error_rate`, and
  /// an attempt of duration d fails with 1 - (1-e)^(d / first_attempt).
  /// This is the fixed-hazard model of a real cluster — retry attempts
  /// that redo the whole function stay exposed for the full duration,
  /// while checkpoint-resumed attempts are short and rarely re-killed.
  kHazardRate,
};

struct InjectorConfig {
  double error_rate = 0.0;
  InjectionMode mode = InjectionMode::kOncePerFunction;
  /// In OncePerFunction mode, the attempt on which the planned kill fires
  /// (1 = first attempt). Other attempts run clean.
  int kill_on_attempt = 1;
};

class FailureInjector : public faas::FailurePolicy,
                        public HeartbeatFaultProvider {
 public:
  FailureInjector(Rng rng, InjectorConfig config)
      : rng_(rng), config_(config) {}

  std::optional<Duration> plan_kill(const faas::Invocation& inv, int attempt,
                                    Duration busy_estimate) override;

  /// Schedule a node-level failure at `when`: a victim is drawn weighted
  /// by hardware failure proneness, the platform kills its containers,
  /// and the KV store drops the victim's cached entries. A victim that is
  /// already dead at fire time is skipped (counted in skipped_node_kills)
  /// so two failure events landing near the same time cannot double-kill
  /// a node and double-drop its KV entries.
  void schedule_node_failure(sim::Simulator& simulator,
                             faas::Platform& platform, kv::KvStore* store,
                             TimePoint when,
                             std::optional<NodeId> victim = std::nullopt);

  /// Correlated node failure: the victim is chosen `precursor_window`
  /// before `when` and exhibits `precursor_kills` container failures
  /// spread over the window before dying outright — the degradation
  /// signature Canary's proactive mitigation predicts on.
  void schedule_correlated_node_failure(sim::Simulator& simulator,
                                        faas::Platform& platform,
                                        kv::KvStore* store, TimePoint when,
                                        int precursor_kills,
                                        Duration precursor_window);

  // ---- fault surface v2 -------------------------------------------------

  /// Gray failure: `victim` (or a weighted random alive node when unset)
  /// runs `slowdown`x slower from `start` for `duration`, then recovers.
  /// Stragglers, not deaths — the node keeps heartbeating throughout.
  void schedule_gray_window(sim::Simulator& simulator,
                            faas::Platform& platform, TimePoint start,
                            Duration duration, double slowdown,
                            std::optional<NodeId> victim = std::nullopt);

  /// Control-plane fault window: heartbeats sent by `node` (or any node
  /// when unset) within [start, start+duration) are delayed by `delay`
  /// and independently dropped with probability `drop_rate`.
  struct HeartbeatFault {
    TimePoint start;
    Duration duration;
    Duration delay = Duration::zero();
    double drop_rate = 0.0;
    std::optional<NodeId> node;
  };
  void add_heartbeat_fault(HeartbeatFault fault);

  // ---- HeartbeatFaultProvider -------------------------------------------
  std::optional<Duration> heartbeat_delay(NodeId node,
                                          TimePoint send_time) override;

  /// KV-shard fault at `when`: `lose` checkpoint entries (prefix "ckpt/")
  /// are destroyed and `corrupt` more are bit-flipped so their checksum
  /// no longer matches. Picks are seeded-deterministic.
  void schedule_store_fault(sim::Simulator& simulator,
                            faas::Platform& platform, kv::KvStore& store,
                            TimePoint when, unsigned lose, unsigned corrupt);

  // ---- fault surface v3: partitions and fault domains -------------------

  /// Timed partition window: traffic from every node in `from` to every
  /// node in `to` is blocked during [start, start+duration). Asymmetric by
  /// default (the reverse direction keeps flowing); `symmetric` installs
  /// both directions. The heal is a first-class event: rules are removed
  /// and a partition_heal annotation lands in the causal log.
  void schedule_partition(sim::Simulator& simulator, faas::Platform& platform,
                          TimePoint start, Duration duration,
                          std::vector<NodeId> from, std::vector<NodeId> to,
                          bool symmetric = false);

  /// Domain bipartition: fault domain `zone` is symmetrically cut off from
  /// the rest of the cluster for `duration`. Membership is resolved at
  /// fire time; an empty side makes the window a no-op (still counted, so
  /// sharded slices merge consistently).
  void schedule_zone_partition(sim::Simulator& simulator,
                               faas::Platform& platform, TimePoint start,
                               Duration duration, std::uint32_t zone);

  /// Correlated zone outage: every still-alive member of `zone` dies at
  /// `when`, all kills sharing ONE causal zone_outage event in the obs
  /// DAG. Members already taken down by an earlier scheduled failure are
  /// skipped and counted in skipped_node_kills — the same double-kill
  /// guard as schedule_node_failure, extended to correlated kills.
  void schedule_zone_outage(sim::Simulator& simulator,
                            faas::Platform& platform, kv::KvStore* store,
                            TimePoint when, std::uint32_t zone);

  std::uint64_t partitions_started() const { return partitions_started_; }
  std::uint64_t partitions_healed() const { return partitions_healed_; }
  std::uint64_t zone_outages() const { return zone_outages_; }

  std::uint64_t planned_kills() const { return planned_kills_; }
  std::uint64_t node_kills() const { return node_kills_; }
  std::uint64_t skipped_node_kills() const { return skipped_node_kills_; }
  std::uint64_t gray_windows() const { return gray_windows_; }
  std::uint64_t heartbeats_dropped() const { return heartbeats_dropped_; }
  std::uint64_t heartbeats_delayed() const { return heartbeats_delayed_; }
  std::uint64_t store_entries_dropped() const { return store_entries_dropped_; }
  std::uint64_t store_entries_corrupted() const {
    return store_entries_corrupted_;
  }

 private:
  struct Plan {
    bool fail = false;
    double fraction = 0.0;
    bool consumed = false;
  };

  void fire_node_failure(sim::Simulator& simulator, faas::Platform& platform,
                         kv::KvStore* store, NodeId victim, const char* what,
                         obs::EventId cause = obs::kNoEvent);

  Rng rng_;
  InjectorConfig config_;
  std::unordered_map<FunctionId, Plan> plans_;
  /// First-attempt busy duration per function, the hazard-rate reference.
  /// Function ids are sequential slab indices, so a flat vector indexed by
  /// id-1 (Duration::max() = unset) replaces the hash map — plan_kill runs
  /// once per attempt, and the old try_emplace allocated a hash node per
  /// invocation on that hot path.
  std::vector<Duration> first_busy_;
  std::vector<HeartbeatFault> heartbeat_faults_;
  std::uint64_t planned_kills_ = 0;
  std::uint64_t node_kills_ = 0;
  std::uint64_t skipped_node_kills_ = 0;
  std::uint64_t gray_windows_ = 0;
  std::uint64_t heartbeats_dropped_ = 0;
  std::uint64_t heartbeats_delayed_ = 0;
  std::uint64_t store_entries_dropped_ = 0;
  std::uint64_t store_entries_corrupted_ = 0;
  std::uint64_t partitions_started_ = 0;
  std::uint64_t partitions_healed_ = 0;
  std::uint64_t zone_outages_ = 0;
};

}  // namespace canary::failure
