// Failure injection (paper §V-B): "We simulate failures by randomly
// killing containers that host functions based on the defined error rate,
// and vary the error rate from 1% to 50%."
//
// The error rate is the percentage of functions that fail during a
// workload. In the default OncePerFunction mode each function is selected
// with probability `error_rate` and its container killed exactly once, at
// a uniformly random point of the attempt's busy window (launch through
// finalize) — failures "at random times during the job execution"
// (§V-D2). PerAttempt mode re-samples on every attempt and is used for
// the RR/AS baselines where each replica instance fails independently.
//
// Node-level failures (§V-D6) take down a whole worker: every hosted
// container dies and, unless the KV store replicates or persists them,
// the checkpoints cached on that node are lost.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>

#include "common/rng.hpp"
#include "faas/events.hpp"
#include "faas/platform.hpp"
#include "kvstore/kvstore.hpp"

namespace canary::failure {

enum class InjectionMode {
  kOncePerFunction,  // error rate = fraction of functions that fail once
  kPerAttempt,       // every attempt fails independently with error rate
  /// Kill probability scales with how long the container is actually up:
  /// a full-length first attempt fails with probability `error_rate`, and
  /// an attempt of duration d fails with 1 - (1-e)^(d / first_attempt).
  /// This is the fixed-hazard model of a real cluster — retry attempts
  /// that redo the whole function stay exposed for the full duration,
  /// while checkpoint-resumed attempts are short and rarely re-killed.
  kHazardRate,
};

struct InjectorConfig {
  double error_rate = 0.0;
  InjectionMode mode = InjectionMode::kOncePerFunction;
  /// In OncePerFunction mode, the attempt on which the planned kill fires
  /// (1 = first attempt). Other attempts run clean.
  int kill_on_attempt = 1;
};

class FailureInjector : public faas::FailurePolicy {
 public:
  FailureInjector(Rng rng, InjectorConfig config)
      : rng_(rng), config_(config) {}

  std::optional<Duration> plan_kill(const faas::Invocation& inv, int attempt,
                                    Duration busy_estimate) override;

  /// Schedule a node-level failure at `when`: a victim is drawn weighted
  /// by hardware failure proneness, the platform kills its containers,
  /// and the KV store drops the victim's cached entries.
  void schedule_node_failure(sim::Simulator& simulator,
                             faas::Platform& platform, kv::KvStore* store,
                             TimePoint when);

  /// Correlated node failure: the victim is chosen `precursor_window`
  /// before `when` and exhibits `precursor_kills` container failures
  /// spread over the window before dying outright — the degradation
  /// signature Canary's proactive mitigation predicts on.
  void schedule_correlated_node_failure(sim::Simulator& simulator,
                                        faas::Platform& platform,
                                        kv::KvStore* store, TimePoint when,
                                        int precursor_kills,
                                        Duration precursor_window);

  std::uint64_t planned_kills() const { return planned_kills_; }
  std::uint64_t node_kills() const { return node_kills_; }

 private:
  struct Plan {
    bool fail = false;
    double fraction = 0.0;
    bool consumed = false;
  };

  Rng rng_;
  InjectorConfig config_;
  std::unordered_map<FunctionId, Plan> plans_;
  /// First-attempt busy duration per function; the hazard-rate reference.
  std::unordered_map<FunctionId, Duration> first_busy_;
  std::uint64_t planned_kills_ = 0;
  std::uint64_t node_kills_ = 0;
};

}  // namespace canary::failure
