// In-memory distributed key-value store — the Apache Ignite substitute.
//
// The paper stores function states and checkpoints in Ignite deployed in
// replicated caching mode with native persistence enabled (§V-C1), keyed
// by function id (§IV-C4b). This component reproduces the semantics that
// matter to Canary:
//   * a per-entry size limit ("in-memory databases limit the size of data
//     stored per key") — oversized puts are rejected so the Checkpointing
//     Module spills to a storage tier;
//   * replicated vs. partitioned caching: entry copies live on cache
//     nodes; a node failure destroys its copies, and an entry survives if
//     any copy remains or native persistence is on;
//   * version counters per key and prefix scans (used to enumerate the
//     latest-n checkpoints of a function).
//
// The store is genuinely concurrent — sharded with per-shard shared
// mutexes — because examples and tests exercise it from multiple threads,
// even though each simulation run drives it single-threaded.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/bytes.hpp"
#include "common/ids.hpp"
#include "common/result.hpp"

namespace canary::kv {

enum class CacheMode {
  kReplicated,   // every cache node holds every entry (paper's setup)
  kPartitioned,  // primary + `backups` copies
};

struct KvConfig {
  std::size_t shard_count = 16;
  /// Per-entry limit; Algorithm 1's `db_limit`.
  Bytes max_entry_size = Bytes::mib(4);
  CacheMode mode = CacheMode::kReplicated;
  /// Backup copies per entry in partitioned mode.
  unsigned backups = 1;
  /// Ignite native persistence: entries survive even if every cache node
  /// holding them dies.
  bool native_persistence = true;
  /// Fault-domain-aware owner selection (partitioned mode): backup copies
  /// prefer cache nodes in a *different zone* than the primary, so a zone
  /// outage cannot destroy every copy of an entry. Requires a zone map
  /// (set_zone_map); off by default and byte-identical when off.
  bool spread_fault_domains = false;
};

struct KvEntry {
  std::string payload;       // serialized metadata (small, real bytes)
  Bytes logical_size;        // size of the represented object
  std::uint64_t version = 0;
  /// FNV-1a over the payload, written at put time. A shard fault that
  /// flips entry bits leaves the stored checksum stale, so readers that
  /// care (the Checkpointing Module) can detect the damage via intact().
  std::uint64_t checksum = 0;
  std::vector<NodeId> owners;  // cache nodes currently holding a copy
};

/// FNV-1a64 of a payload; the checksum stored alongside every entry.
std::uint64_t kv_checksum(const std::string& payload);

struct KvStats {
  std::uint64_t puts = 0;
  std::uint64_t gets = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t removes = 0;
  std::uint64_t rejected_oversize = 0;
  std::uint64_t entries_lost = 0;       // destroyed by node/shard failures
  std::uint64_t entries_corrupted = 0;  // bit rot injected by shard faults
  /// Writes rejected because the writer node was epoch-fenced: a zombie
  /// on the minority side of a partition tried to commit after the
  /// majority confirmed it dead and redeployed its work.
  std::uint64_t stale_epoch_rejects = 0;
  /// Writes rejected because the writer could not reach the KV quorum at
  /// put time (mid-partition, before the detector fenced it).
  std::uint64_t quorum_blocked_puts = 0;
};

class KvStore {
 public:
  KvStore(KvConfig config, std::vector<NodeId> cache_nodes);

  const KvConfig& config() const { return config_; }

  /// Insert or overwrite `key`. The entry's logical size defaults to the
  /// payload length; pass `logical_size` when the payload is a descriptor
  /// for a larger object (a spilled checkpoint's location record carries
  /// the checkpoint's real size out-of-band). Returns
  /// kResourceExhausted when `logical_size` exceeds the per-entry limit.
  Status put(const std::string& key, std::string payload,
             std::optional<Bytes> logical_size = std::nullopt);

  /// Writer-attributed put: the commit path for checkpoint/state writes.
  /// Rejected (kUnavailable) when `writer` has been epoch-fenced
  /// (stale_epoch_rejects) or currently fails the installed quorum
  /// predicate (quorum_blocked_puts). An invalid writer id or an
  /// unfenced writer with no predicate installed behaves exactly like the
  /// plain put above.
  Status put(const std::string& key, std::string payload,
             std::optional<Bytes> logical_size, NodeId writer);

  Result<KvEntry> get(const std::string& key) const;
  bool contains(const std::string& key) const;
  /// Whether `key` exists and its payload still matches the checksum
  /// written at put time. Stats-neutral (no get/hit/miss accounting):
  /// this is the Checkpointing Module's pre-restore integrity probe.
  bool intact(const std::string& key) const;
  Status remove(const std::string& key);

  // ---- fault injection --------------------------------------------------
  /// Flip the stored payload of `key` without updating its checksum (the
  /// shard-fault bit-rot model). Returns false when the key is absent.
  bool corrupt_entry(const std::string& key);
  /// Destroy `key` outright (shard fault; counted as entries_lost, not as
  /// a client remove). Returns false when the key is absent.
  bool drop_entry(const std::string& key);

  /// Observer invoked after every successful put, outside the shard
  /// lock, with the key, a copy of the stored payload, and the entry's
  /// logical size. The sharded harness uses it to mirror checkpoint
  /// writes to a buddy partition's replica store. Unset by default —
  /// the non-observed put path is unchanged.
  using PutObserver =
      std::function<void(const std::string& key, std::string payload,
                         Bytes logical_size)>;
  void set_put_observer(PutObserver observer) {
    put_observer_ = std::move(observer);
  }

  /// All live keys beginning with `prefix`, sorted. O(total keys).
  std::vector<std::string> keys_with_prefix(const std::string& prefix) const;

  std::size_t size() const;
  Bytes logical_bytes() const;
  KvStats stats() const;

  /// Drop the copies held by `node`. Entries with no remaining copy are
  /// destroyed unless native persistence is enabled.
  void fail_node(NodeId node);
  /// Bring `node` back as a cache node for future puts (existing entries
  /// are not rebalanced onto it, matching Ignite's lazy rebalancing).
  /// Restoring also clears any fence: a re-admitted node rejoins at a
  /// fresh epoch.
  void restore_node(NodeId node);

  // ---- epoch fencing (split-brain safety) -------------------------------
  /// Advance `node`'s write epoch: every subsequent writer-attributed put
  /// from it is a stale-epoch write and is rejected. Called when the
  /// majority side confirms a partitioned-away worker dead — the
  /// minority-side zombie keeps executing, but its commit is a no-op.
  void fence_node(NodeId node);
  bool node_fenced(NodeId node) const;
  /// Quorum predicate consulted by writer-attributed puts; wired to
  /// NetworkModel::reaches_majority by the harness. Unset = always true.
  void set_writer_quorum(std::function<bool(NodeId)> predicate) {
    writer_quorum_ = std::move(predicate);
  }
  /// Zone lookup for fault-domain-aware owner selection; wired to
  /// Cluster::zone_of by the harness.
  void set_zone_map(std::function<std::uint32_t(NodeId)> zone_of) {
    zone_of_ = std::move(zone_of);
  }

 private:
  struct Shard {
    mutable std::shared_mutex mutex;
    std::unordered_map<std::string, KvEntry> map;
  };

  Shard& shard_for(const std::string& key);
  const Shard& shard_for(const std::string& key) const;
  std::vector<NodeId> choose_owners(const std::string& key) const;
  bool entry_alive(const KvEntry& entry) const;

  KvConfig config_;
  PutObserver put_observer_;
  std::function<bool(NodeId)> writer_quorum_;
  std::function<std::uint32_t(NodeId)> zone_of_;
  std::vector<NodeId> cache_nodes_;
  std::vector<NodeId> dead_nodes_;
  /// Nodes whose write epoch was advanced by fence_node; guarded by
  /// membership_mutex_.
  std::vector<NodeId> fenced_nodes_;
  std::vector<std::unique_ptr<Shard>> shards_;
  mutable std::mutex stats_mutex_;
  mutable KvStats stats_;  // gets/hits/misses are counted in const reads
  mutable std::shared_mutex membership_mutex_;
};

}  // namespace canary::kv
