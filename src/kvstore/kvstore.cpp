#include "kvstore/kvstore.hpp"

#include <algorithm>

namespace canary::kv {

std::uint64_t kv_checksum(const std::string& payload) {
  std::uint64_t hash = 14695981039346656037ULL;
  for (const char c : payload) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ULL;
  }
  return hash;
}

KvStore::KvStore(KvConfig config, std::vector<NodeId> cache_nodes)
    : config_(config), cache_nodes_(std::move(cache_nodes)) {
  CANARY_CHECK(config_.shard_count > 0, "shard_count must be positive");
  CANARY_CHECK(!cache_nodes_.empty(), "KV store needs at least one cache node");
  shards_.reserve(config_.shard_count);
  for (std::size_t i = 0; i < config_.shard_count; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

KvStore::Shard& KvStore::shard_for(const std::string& key) {
  return *shards_[std::hash<std::string>{}(key) % shards_.size()];
}

const KvStore::Shard& KvStore::shard_for(const std::string& key) const {
  return *shards_[std::hash<std::string>{}(key) % shards_.size()];
}

std::vector<NodeId> KvStore::choose_owners(const std::string& key) const {
  // Caller holds membership_mutex_ (shared or exclusive).
  if (config_.mode == CacheMode::kReplicated) return cache_nodes_;
  if (cache_nodes_.empty()) return {};
  std::vector<NodeId> owners;
  const std::size_t copies =
      std::min<std::size_t>(1 + config_.backups, cache_nodes_.size());
  const std::size_t start = std::hash<std::string>{}(key) % cache_nodes_.size();
  if (config_.spread_fault_domains && zone_of_ && copies > 1) {
    // Primary at the hash slot as before; each backup walks forward and
    // takes the first node in a zone no copy occupies yet, falling back
    // to the plain consecutive choice when every remaining node shares a
    // zone with an existing copy. Deterministic in (key, membership).
    owners.push_back(cache_nodes_[start]);
    std::vector<std::uint32_t> used_zones{zone_of_(owners.front())};
    std::size_t cursor = 1;
    while (owners.size() < copies) {
      NodeId pick = NodeId::invalid();
      for (std::size_t i = cursor; i < cache_nodes_.size(); ++i) {
        const NodeId cand = cache_nodes_[(start + i) % cache_nodes_.size()];
        if (std::find(owners.begin(), owners.end(), cand) != owners.end()) {
          continue;
        }
        if (std::find(used_zones.begin(), used_zones.end(),
                      zone_of_(cand)) == used_zones.end()) {
          pick = cand;
          break;
        }
      }
      if (!pick.valid()) {
        for (std::size_t i = cursor; i < cache_nodes_.size(); ++i) {
          const NodeId cand = cache_nodes_[(start + i) % cache_nodes_.size()];
          if (std::find(owners.begin(), owners.end(), cand) == owners.end()) {
            pick = cand;
            break;
          }
        }
      }
      if (!pick.valid()) break;
      used_zones.push_back(zone_of_(pick));
      owners.push_back(pick);
      ++cursor;
    }
    return owners;
  }
  for (std::size_t i = 0; i < copies; ++i) {
    owners.push_back(cache_nodes_[(start + i) % cache_nodes_.size()]);
  }
  return owners;
}

Status KvStore::put(const std::string& key, std::string payload,
                    std::optional<Bytes> logical_size) {
  const Bytes size = logical_size.value_or(Bytes::of(payload.size()));
  if (size > config_.max_entry_size) {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.rejected_oversize;
    return Error::resource_exhausted(
        "entry exceeds per-key limit; spill to a storage tier");
  }
  std::vector<NodeId> owners;
  {
    std::shared_lock<std::shared_mutex> mlock(membership_mutex_);
    owners = choose_owners(key);
  }
  if (owners.empty() && !config_.native_persistence) {
    return Error::unavailable("no cache node alive");
  }
  auto& shard = shard_for(key);
  std::string mirrored;  // copied under the lock only when observed
  {
    std::unique_lock<std::shared_mutex> lock(shard.mutex);
    auto& entry = shard.map[key];
    entry.payload = std::move(payload);
    entry.logical_size = size;
    ++entry.version;
    entry.checksum = kv_checksum(entry.payload);
    entry.owners = std::move(owners);
    if (put_observer_) mirrored = entry.payload;
  }
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.puts;
  }
  if (put_observer_) put_observer_(key, std::move(mirrored), size);
  return Status::ok_status();
}

Status KvStore::put(const std::string& key, std::string payload,
                    std::optional<Bytes> logical_size, NodeId writer) {
  if (writer.valid()) {
    // The epoch gate first: a fenced writer stays rejected even after the
    // partition heals and it regains quorum — its epoch is stale forever.
    if (node_fenced(writer)) {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.stale_epoch_rejects;
      return Error::unavailable("stale epoch: writer was fenced");
    }
    if (writer_quorum_ && !writer_quorum_(writer)) {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.quorum_blocked_puts;
      return Error::unavailable("writer cannot reach the KV quorum");
    }
  }
  return put(key, std::move(payload), logical_size);
}

Result<KvEntry> KvStore::get(const std::string& key) const {
  const auto& shard = shard_for(key);
  std::optional<KvEntry> found;
  {
    std::shared_lock<std::shared_mutex> lock(shard.mutex);
    auto it = shard.map.find(key);
    if (it != shard.map.end()) found = it->second;
  }
  std::lock_guard<std::mutex> lock(stats_mutex_);
  ++stats_.gets;
  if (!found) {
    ++stats_.misses;
    return Error::not_found("key not present: " + key);
  }
  ++stats_.hits;
  return *found;
}

bool KvStore::contains(const std::string& key) const {
  const auto& shard = shard_for(key);
  std::shared_lock<std::shared_mutex> lock(shard.mutex);
  return shard.map.find(key) != shard.map.end();
}

bool KvStore::intact(const std::string& key) const {
  const auto& shard = shard_for(key);
  std::shared_lock<std::shared_mutex> lock(shard.mutex);
  auto it = shard.map.find(key);
  if (it == shard.map.end()) return false;
  return it->second.checksum == kv_checksum(it->second.payload);
}

bool KvStore::corrupt_entry(const std::string& key) {
  auto& shard = shard_for(key);
  {
    std::unique_lock<std::shared_mutex> lock(shard.mutex);
    auto it = shard.map.find(key);
    if (it == shard.map.end()) return false;
    // Flip a payload byte (or plant a poison byte into an empty payload)
    // so the stored checksum no longer matches.
    if (it->second.payload.empty()) {
      it->second.payload.push_back('\x5a');
    } else {
      it->second.payload[0] =
          static_cast<char>(it->second.payload[0] ^ '\x5a');
    }
  }
  std::lock_guard<std::mutex> lock(stats_mutex_);
  ++stats_.entries_corrupted;
  return true;
}

bool KvStore::drop_entry(const std::string& key) {
  auto& shard = shard_for(key);
  std::size_t erased = 0;
  {
    std::unique_lock<std::shared_mutex> lock(shard.mutex);
    erased = shard.map.erase(key);
  }
  if (erased == 0) return false;
  std::lock_guard<std::mutex> lock(stats_mutex_);
  ++stats_.entries_lost;
  return true;
}

Status KvStore::remove(const std::string& key) {
  auto& shard = shard_for(key);
  std::size_t erased = 0;
  {
    std::unique_lock<std::shared_mutex> lock(shard.mutex);
    erased = shard.map.erase(key);
  }
  std::lock_guard<std::mutex> lock(stats_mutex_);
  ++stats_.removes;
  if (erased == 0) return Error::not_found("key not present: " + key);
  return Status::ok_status();
}

std::vector<std::string> KvStore::keys_with_prefix(
    const std::string& prefix) const {
  std::vector<std::string> keys;
  for (const auto& shard : shards_) {
    std::shared_lock<std::shared_mutex> lock(shard->mutex);
    for (const auto& [key, entry] : shard->map) {
      if (key.rfind(prefix, 0) == 0) keys.push_back(key);
    }
  }
  std::sort(keys.begin(), keys.end());
  return keys;
}

std::size_t KvStore::size() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    std::shared_lock<std::shared_mutex> lock(shard->mutex);
    total += shard->map.size();
  }
  return total;
}

Bytes KvStore::logical_bytes() const {
  Bytes total = Bytes::zero();
  for (const auto& shard : shards_) {
    std::shared_lock<std::shared_mutex> lock(shard->mutex);
    for (const auto& [key, entry] : shard->map) total += entry.logical_size;
  }
  return total;
}

KvStats KvStore::stats() const {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  return stats_;
}

void KvStore::fail_node(NodeId node) {
  {
    std::unique_lock<std::shared_mutex> mlock(membership_mutex_);
    auto it = std::find(cache_nodes_.begin(), cache_nodes_.end(), node);
    if (it == cache_nodes_.end()) return;
    cache_nodes_.erase(it);
    dead_nodes_.push_back(node);
  }
  std::uint64_t lost = 0;
  for (const auto& shard : shards_) {
    std::unique_lock<std::shared_mutex> lock(shard->mutex);
    for (auto it = shard->map.begin(); it != shard->map.end();) {
      auto& owners = it->second.owners;
      owners.erase(std::remove(owners.begin(), owners.end(), node),
                   owners.end());
      if (owners.empty() && !config_.native_persistence) {
        it = shard->map.erase(it);
        ++lost;
      } else {
        ++it;
      }
    }
  }
  std::lock_guard<std::mutex> lock(stats_mutex_);
  stats_.entries_lost += lost;
}

void KvStore::restore_node(NodeId node) {
  std::unique_lock<std::shared_mutex> mlock(membership_mutex_);
  fenced_nodes_.erase(
      std::remove(fenced_nodes_.begin(), fenced_nodes_.end(), node),
      fenced_nodes_.end());
  auto it = std::find(dead_nodes_.begin(), dead_nodes_.end(), node);
  if (it == dead_nodes_.end()) return;
  dead_nodes_.erase(it);
  cache_nodes_.push_back(node);
}

void KvStore::fence_node(NodeId node) {
  std::unique_lock<std::shared_mutex> mlock(membership_mutex_);
  if (std::find(fenced_nodes_.begin(), fenced_nodes_.end(), node) ==
      fenced_nodes_.end()) {
    fenced_nodes_.push_back(node);
  }
}

bool KvStore::node_fenced(NodeId node) const {
  std::shared_lock<std::shared_mutex> mlock(membership_mutex_);
  return std::find(fenced_nodes_.begin(), fenced_nodes_.end(), node) !=
         fenced_nodes_.end();
}

}  // namespace canary::kv
