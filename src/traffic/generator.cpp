#include "traffic/generator.hpp"

#include <algorithm>
#include <utility>

#include "common/result.hpp"

namespace canary::traffic {

void StreamStats::merge(const StreamStats& other) {
  offered += other.offered;
  admitted += other.admitted;
  shed += other.shed;
  completed += other.completed;
  failed += other.failed;
  queue_peak = std::max(queue_peak, other.queue_peak);
  latency.merge(other.latency);
  queue_wait.merge(other.queue_wait);
}

TrafficGenerator::TrafficGenerator(sim::Simulator& sim,
                                   faas::Platform& platform,
                                   TrafficConfig config, SubmitFn submit,
                                   Rng rng)
    : sim_(sim),
      platform_(platform),
      config_(std::move(config)),
      submit_(std::move(submit)),
      rng_(rng),
      admission_(
          [this](faas::JobSpec spec) {
            Stream& stream = streams_[current_stream_];
            ++stream.stats.admitted;
            m_admitted_.add();
            // Keep a handle for the defensive shed path: the spec is
            // statically valid by construction, so a rejection here is a
            // misconfiguration, not load — but it must still conserve.
            faas::JobSpec fallback = spec;
            const Result<JobId> result = submit_(std::move(spec));
            if (!result.ok()) {
              const std::size_t cls = current_stream_;
              --stream.stats.admitted;
              ++stream.stats.shed;
              m_admitted_.add(-1.0);
              m_shed_.add();
              pending_.erase(fallback.functions.front().name);
              (void)platform_.shed_job(std::move(fallback));
              admission_.reject_admitted(cls);
            }
          },
          [this](faas::JobSpec spec) {
            Stream& stream = streams_[current_stream_];
            ++stream.stats.shed;
            m_shed_.add();
            pending_.erase(spec.functions.front().name);
            (void)platform_.shed_job(std::move(spec));
          }) {
  CANARY_CHECK(submit_ != nullptr, "traffic generator needs a submit route");
  streams_.reserve(config_.streams.size());
  for (std::size_t i = 0; i < config_.streams.size(); ++i) {
    Stream stream;
    stream.config = config_.streams[i];
    stream.process =
        make_arrival_process(stream.config.arrival,
                             rng_.child(static_cast<std::uint64_t>(i) + 1));
    stream.admission_class = admission_.add_class(stream.config.admission);
    streams_.push_back(std::move(stream));
  }
}

void TrafficGenerator::start() {
  for (std::size_t i = 0; i < streams_.size(); ++i) {
    streams_[i].active = true;
    ++active_streams_;
    schedule_next(i, sim_.now());
  }
}

void TrafficGenerator::schedule_next(std::size_t stream_idx, TimePoint after) {
  Stream& stream = streams_[stream_idx];
  const std::optional<TimePoint> at = stream.process->next(after);
  const TimePoint deadline = TimePoint::origin() + config_.horizon;
  if (!at.has_value() || *at > deadline) {
    stream.active = false;
    CANARY_CHECK(active_streams_ > 0, "traffic stream accounting underflow");
    --active_streams_;
    return;
  }
  sim_.schedule_at(*at, [this, stream_idx] { handle_arrival(stream_idx); });
}

faas::JobSpec TrafficGenerator::make_job(Stream& stream, TimePoint now) {
  const std::uint64_t seq = stream.seq++;
  faas::FunctionSpec fn = stream.config.fn;
  fn.name = stream.config.name + "-" + std::to_string(seq);
  fn.sla = stream.config.sla;
  fn.depends_on.clear();
  faas::JobSpec job;
  job.name = stream.config.name + "-job-" + std::to_string(seq);
  job.enqueued_at = now;
  job.functions.push_back(std::move(fn));
  return job;
}

void TrafficGenerator::handle_arrival(std::size_t stream_idx) {
  Stream& stream = streams_[stream_idx];
  const TimePoint now = sim_.now();
  faas::JobSpec job = make_job(stream, now);
  pending_[job.functions.front().name] = PendingArrival{stream_idx, now};
  ++stream.stats.offered;
  m_offered_.add();
  if (auto* series = platform_.time_series()) {
    series->count("traffic_offered", now);
  }
  current_stream_ = stream_idx;
  const AdmissionOutcome outcome =
      admission_.offer(stream.admission_class, std::move(job));
  if (outcome == AdmissionOutcome::kQueued) m_queued_.add();
  stream.stats.queue_peak =
      std::max(stream.stats.queue_peak,
               admission_.stats(stream.admission_class).queue_peak);
  schedule_next(stream_idx, now);
}

void TrafficGenerator::on_job_submitted(JobId job) {
  const std::vector<FunctionId>& fns = platform_.job_functions(job);
  if (fns.empty()) return;
  const faas::Invocation& inv = platform_.invocation(fns.front());
  const auto it = pending_.find(inv.spec->name);
  if (it == pending_.end()) return;  // not a traffic job
  const PendingArrival arrival = it->second;
  pending_.erase(it);
  bound_[job.value()] = BoundArrival{arrival.stream, arrival.arrived};
  Stream& stream = streams_[arrival.stream];
  const Duration wait = sim_.now() - arrival.arrived;
  stream.stats.queue_wait.record(wait.to_seconds());
  m_queue_wait_.record_duration(wait);
}

void TrafficGenerator::on_job_completed(JobId job) {
  const auto it = bound_.find(job.value());
  if (it == bound_.end()) return;  // not a traffic job
  const BoundArrival bound = it->second;
  bound_.erase(it);
  Stream& stream = streams_[bound.stream];
  ++stream.stats.completed;
  m_completed_.add();
  const Duration latency = sim_.now() - bound.arrived;
  stream.stats.latency.record(latency.to_seconds());
  m_latency_.record_duration(latency);
  if (auto* series = platform_.time_series()) {
    series->count("traffic_completed", sim_.now());
    series->sample("traffic_latency", sim_.now(), latency.to_seconds());
  }
  // Per-traffic-class tail histogram: the stream name is the traffic
  // class, and the recorded value (arrival to completion) is exactly the
  // causal chain's end-to-end window (kQueued roots at arrival).
  if (platform_.tail_attribution_enabled()) {
    const std::vector<FunctionId>& fns = platform_.job_functions(job);
    if (!fns.empty()) {
      const faas::Invocation& inv = platform_.invocation(fns.front());
      obs::Histogram& hist = platform_.metrics().histogram_ref(
          "tail_latency.class." + stream.config.name);
      if (!hist.exemplars_enabled()) {
        hist.enable_exemplars(platform_.tail_exemplar_config());
      }
      hist.record_traced(latency.to_seconds(), inv.trace.trace.value(),
                         fns.front().value());
    }
  }
  current_stream_ = bound.stream;
  admission_.on_complete(stream.admission_class);
}

bool TrafficGenerator::try_hedge(JobId job) {
  const auto it = bound_.find(job.value());
  if (it == bound_.end()) return true;  // not a traffic job: not budgeted
  return admission_.try_hedge(streams_[it->second.stream].admission_class);
}

void TrafficGenerator::hedge_resolved(JobId job) {
  const auto it = bound_.find(job.value());
  if (it == bound_.end()) return;
  admission_.hedge_done(streams_[it->second.stream].admission_class);
}

const StreamStats& TrafficGenerator::stream_stats(std::size_t stream) const {
  CANARY_CHECK(stream < streams_.size(), "unknown traffic stream");
  return streams_[stream].stats;
}

StreamStats TrafficGenerator::totals() const {
  StreamStats total;
  for (const Stream& stream : streams_) total.merge(stream.stats);
  return total;
}

}  // namespace canary::traffic
