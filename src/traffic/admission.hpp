// Per-function-class admission control: bounded queues, concurrency
// limits, shed-on-overflow.
//
// Open-loop arrivals cannot be told to slow down, so the only three
// honest outcomes for a request are admit (submit to the platform now),
// queue (bounded buffer, FIFO, submitted when a slot frees), or shed
// (rejected immediately once the buffer is full). The controller is pure
// bookkeeping over those three outcomes; the callbacks it is constructed
// with decide what "submit" and "shed" physically mean (the traffic
// generator routes them at the platform or the Canary control plane, and
// sheds become terminal kShed invocations via Platform::shed_job so
// nothing is ever silently dropped).
//
// Accounting is exactly-once by construction: every offer increments
// `offered` and exactly one of `admitted`/`queued-then-admitted`/`shed`,
// and every admitted request is balanced by exactly one on_complete().
// The conservation oracle (offered == admitted + shed,
// admitted == completed + in-flight) is checked by the chaos campaign.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "faas/function.hpp"

namespace canary::traffic {

struct AdmissionClassConfig {
  /// Requests of this class running (or platform-queued) concurrently.
  unsigned max_concurrent = 8;
  /// Bounded FIFO backlog beyond the concurrency limit; arrivals past
  /// this are shed.
  std::size_t queue_capacity = 32;
  /// Speculative hedge clones racing concurrently for this class. Clones
  /// bypass the platform's account concurrency queue, so this budget is
  /// what keeps hedging from amplifying an overloaded class past
  /// saturation — and any backlog at all denies hedges outright.
  std::size_t hedge_budget = 4;
};

enum class AdmissionOutcome { kAdmitted, kQueued, kShed };

class AdmissionController {
 public:
  using SubmitFn = std::function<void(faas::JobSpec)>;
  using ShedFn = std::function<void(faas::JobSpec)>;

  AdmissionController(SubmitFn submit, ShedFn shed);

  /// Register a class (one per traffic stream); returns its index.
  std::size_t add_class(AdmissionClassConfig config);
  std::size_t class_count() const { return classes_.size(); }

  /// One arrival. Exactly one of: submit fires synchronously (admitted),
  /// the spec is buffered (queued), or shed fires synchronously.
  AdmissionOutcome offer(std::size_t cls, faas::JobSpec spec);

  /// One admitted request of `cls` reached a terminal state; frees its
  /// concurrency slot and pumps the backlog (FIFO).
  void on_complete(std::size_t cls);

  /// The submit callback could not place an admitted request (statically
  /// invalid spec — never load): reclassify it as shed and free its slot.
  /// Callable re-entrantly from inside the submit callback.
  void reject_admitted(std::size_t cls);

  /// A speculative clone wants to launch for an admitted request of
  /// `cls`. Granted only while the class is unsaturated (no backlog) and
  /// under its hedge budget; every grant must be returned exactly-once
  /// via hedge_done when the race resolves.
  bool try_hedge(std::size_t cls);
  void hedge_done(std::size_t cls);

  struct ClassStats {
    std::uint64_t offered = 0;
    std::uint64_t admitted = 0;
    std::uint64_t shed = 0;
    std::uint64_t completed = 0;
    std::uint64_t queue_peak = 0;
    std::uint64_t hedges_granted = 0;
    std::uint64_t hedges_denied = 0;
    std::size_t queued = 0;
    std::size_t in_flight = 0;
    std::size_t hedges_active = 0;
  };
  const ClassStats& stats(std::size_t cls) const;

  std::size_t total_queued() const;
  std::size_t total_in_flight() const;
  /// Nothing buffered and nothing in flight (quiescence input for the
  /// autoscaler's final drain).
  bool drained() const;

 private:
  struct ClassState {
    AdmissionClassConfig config;
    ClassStats stats;
    std::deque<faas::JobSpec> backlog;
  };

  void admit(ClassState& c, faas::JobSpec spec);

  SubmitFn submit_;
  ShedFn shed_;
  std::vector<ClassState> classes_;
};

}  // namespace canary::traffic
