// Open-loop traffic generator: drives ArrivalProcess streams through
// admission control into the platform on the simulation clock.
//
// Each configured stream is one function class: a FunctionSpec template
// stamped per arrival with a unique name ("<stream>-<seq>", so the
// critical-path family grouping aggregates a stream under its base
// name), an ArrivalProcess, an SLA, and an admission class. Arrivals are
// scheduled as simulator events independent of completions — that is
// what "open-loop" means — and each arrival is offered to the
// AdmissionController, which either submits it (through the callback the
// harness wires at the platform or the Canary control plane), buffers
// it, or sheds it into a terminal kShed invocation via
// faas::Platform::shed_job.
//
// JobSpec::enqueued_at carries the arrival instant into the platform, so
// the causal trace gains a kQueued root at arrival time, the SLO
// deadline anchors at arrival (a request that waited is not forgiven its
// wait), and the critical-path analyzer attributes pre-admission wait to
// the `queueing` component instead of scheduling.
//
// Jobs are bound back to their arrival records by function name through
// PlatformObserver::on_job_submitted — robust to the Canary Request
// Validator deferring a submission — and released at on_job_completed
// (jobs always complete, even when request replication discards the
// losing replicas, so admission slots cannot leak). Completions feed
// latency (arrival to completion) and queue-wait (arrival to platform
// submit) histograms plus the exactly-once conservation counters:
//
//   offered == admitted + shed
//   admitted == completed + failed + in-flight
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.hpp"
#include "common/rng.hpp"
#include "faas/events.hpp"
#include "faas/platform.hpp"
#include "obs/histogram.hpp"
#include "sim/simulator.hpp"
#include "traffic/admission.hpp"
#include "traffic/arrival.hpp"

namespace canary::traffic {

struct AutoscalerConfig {
  bool enabled = false;
  /// Reactive sweep cadence.
  Duration sweep_interval = Duration::msec(200);
  /// EWMA smoothing for the per-sweep arrival-rate sample.
  double ewma_alpha = 0.3;
  /// Warm target from rate: ceil(ewma_rate * prewarm_window).
  Duration prewarm_window = Duration::sec(1.0);
  /// Warm target from backlog: ceil(queue_depth * queue_gain).
  double queue_gain = 0.5;
  std::size_t min_warm = 0;
  std::size_t max_warm = 16;
  /// Containers launched / retired per class per sweep, at most.
  std::size_t max_step = 4;
  Duration scale_up_cooldown = Duration::msec(400);
  Duration scale_in_cooldown = Duration::sec(2.0);
  /// Hard stop for the sweep task past the traffic horizon: even if a
  /// run wedges short of quiescence, the autoscaler must not keep the
  /// simulator alive forever.
  Duration drain_grace = Duration::sec(300.0);
};

struct StreamConfig {
  /// Stream label; per-arrival function names are "<name>-<seq>", so the
  /// breakdown's family grouping folds the stream under `name`.
  std::string name = "traffic";
  /// Template stamped per arrival (name and sla overwritten).
  faas::FunctionSpec fn;
  ArrivalSpec arrival;
  /// Per-invocation deadline measured from *arrival*; zero = none.
  Duration sla = Duration::zero();
  AdmissionClassConfig admission;
};

struct TrafficConfig {
  /// Off by default: a disabled traffic subsystem leaves every existing
  /// scenario byte-identical (nothing is constructed, no RNG is drawn).
  bool enabled = false;
  std::vector<StreamConfig> streams;
  /// Arrival generation stops here; admitted work drains afterwards.
  Duration horizon = Duration::sec(30.0);
  AutoscalerConfig autoscaler;
};

/// Per-stream accounting. Histograms record seconds.
struct StreamStats {
  std::uint64_t offered = 0;
  std::uint64_t admitted = 0;
  std::uint64_t shed = 0;
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
  std::uint64_t queue_peak = 0;
  obs::Histogram latency;     // arrival -> completion
  obs::Histogram queue_wait;  // arrival -> platform submission

  void merge(const StreamStats& other);
};

class TrafficGenerator final : public faas::PlatformObserver {
 public:
  /// Submission route; the harness points this at Platform::submit_job or
  /// core::CoreModule::submit_job. A JobId::invalid() success means the
  /// control plane buffered the request (it still counts as admitted and
  /// binds once the deferred submission lands).
  using SubmitFn = std::function<Result<JobId>(faas::JobSpec)>;

  TrafficGenerator(sim::Simulator& sim, faas::Platform& platform,
                   TrafficConfig config, SubmitFn submit, Rng rng);

  /// Schedule the first arrival of every stream. The caller must also
  /// platform.add_observer(this) so completions are seen.
  void start();

  /// Every stream exhausted (horizon reached or trace drained).
  bool finished() const { return active_streams_ == 0; }
  /// Finished and nothing buffered or in flight.
  bool quiescent() const { return finished() && admission_.drained(); }

  const TrafficConfig& config() const { return config_; }
  AdmissionController& admission() { return admission_; }
  const AdmissionController& admission() const { return admission_; }

  const StreamStats& stream_stats(std::size_t stream) const;
  /// All streams merged (histograms merge exactly).
  StreamStats totals() const;
  std::uint64_t in_flight() const { return admission_.total_in_flight(); }

  /// Admission-level hedge policy: grant a speculative clone for `job`
  /// under its stream's per-class budget. Jobs not bound to a stream
  /// (batch work sharing the run) are not budgeted here and always pass.
  bool try_hedge(JobId job);
  /// Release the grant when the race resolves (no-op for unbound jobs).
  void hedge_resolved(JobId job);

  // PlatformObserver
  void on_job_submitted(JobId job) override;
  void on_job_completed(JobId job) override;

 private:
  struct Stream {
    StreamConfig config;
    std::unique_ptr<ArrivalProcess> process;
    std::size_t admission_class = 0;
    std::uint64_t seq = 0;
    StreamStats stats;
    bool active = false;
  };
  /// An admitted arrival awaiting its platform invocation (keyed by the
  /// unique per-arrival function name until on_job_submitted binds it).
  struct PendingArrival {
    std::size_t stream = 0;
    TimePoint arrived;
  };
  struct BoundArrival {
    std::size_t stream = 0;
    TimePoint arrived;
  };

  void handle_arrival(std::size_t stream_idx);
  void schedule_next(std::size_t stream_idx, TimePoint after);
  faas::JobSpec make_job(Stream& stream, TimePoint now);

  sim::Simulator& sim_;
  faas::Platform& platform_;
  TrafficConfig config_;
  SubmitFn submit_;
  Rng rng_;
  AdmissionController admission_;
  std::vector<Stream> streams_;
  std::size_t active_streams_ = 0;
  /// Stream index the admission callbacks are currently serving; offers
  /// and pumps are synchronous, so a single cell replaces plumbing the
  /// index through the type-erased callbacks.
  std::size_t current_stream_ = 0;
  std::unordered_map<std::string, PendingArrival> pending_;
  std::unordered_map<std::uint64_t, BoundArrival> bound_;  // JobId value

  obs::CounterHandle m_offered_{platform_.metrics(), "traffic_offered"};
  obs::CounterHandle m_admitted_{platform_.metrics(), "traffic_admitted"};
  obs::CounterHandle m_queued_{platform_.metrics(), "traffic_queued"};
  obs::CounterHandle m_shed_{platform_.metrics(), "traffic_shed"};
  obs::CounterHandle m_completed_{platform_.metrics(), "traffic_completed"};
  obs::HistogramHandle m_latency_{platform_.metrics(), "traffic_latency"};
  obs::HistogramHandle m_queue_wait_{platform_.metrics(),
                                     "traffic_queue_wait"};
};

}  // namespace canary::traffic
