#include "traffic/admission.hpp"

#include <utility>

#include "common/result.hpp"

namespace canary::traffic {

AdmissionController::AdmissionController(SubmitFn submit, ShedFn shed)
    : submit_(std::move(submit)), shed_(std::move(shed)) {
  CANARY_CHECK(submit_ != nullptr && shed_ != nullptr,
               "admission needs submit and shed callbacks");
}

std::size_t AdmissionController::add_class(AdmissionClassConfig config) {
  CANARY_CHECK(config.max_concurrent > 0,
               "admission class needs a positive concurrency limit");
  classes_.push_back(ClassState{config, {}, {}});
  return classes_.size() - 1;
}

const AdmissionController::ClassStats& AdmissionController::stats(
    std::size_t cls) const {
  CANARY_CHECK(cls < classes_.size(), "unknown admission class");
  return classes_[cls].stats;
}

void AdmissionController::admit(ClassState& c, faas::JobSpec spec) {
  ++c.stats.in_flight;
  ++c.stats.admitted;
  submit_(std::move(spec));
}

AdmissionOutcome AdmissionController::offer(std::size_t cls,
                                            faas::JobSpec spec) {
  CANARY_CHECK(cls < classes_.size(), "unknown admission class");
  ClassState& c = classes_[cls];
  ++c.stats.offered;
  if (c.stats.in_flight < c.config.max_concurrent) {
    admit(c, std::move(spec));
    return AdmissionOutcome::kAdmitted;
  }
  if (c.backlog.size() < c.config.queue_capacity) {
    c.backlog.push_back(std::move(spec));
    c.stats.queued = c.backlog.size();
    if (c.backlog.size() > c.stats.queue_peak) {
      c.stats.queue_peak = c.backlog.size();
    }
    return AdmissionOutcome::kQueued;
  }
  ++c.stats.shed;
  shed_(std::move(spec));
  return AdmissionOutcome::kShed;
}

void AdmissionController::on_complete(std::size_t cls) {
  CANARY_CHECK(cls < classes_.size(), "unknown admission class");
  ClassState& c = classes_[cls];
  CANARY_CHECK(c.stats.in_flight > 0, "admission in-flight underflow");
  --c.stats.in_flight;
  ++c.stats.completed;
  while (c.stats.in_flight < c.config.max_concurrent && !c.backlog.empty()) {
    faas::JobSpec spec = std::move(c.backlog.front());
    c.backlog.pop_front();
    c.stats.queued = c.backlog.size();
    admit(c, std::move(spec));
  }
}

void AdmissionController::reject_admitted(std::size_t cls) {
  CANARY_CHECK(cls < classes_.size(), "unknown admission class");
  ClassState& c = classes_[cls];
  CANARY_CHECK(c.stats.in_flight > 0 && c.stats.admitted > 0,
               "admission reject without a matching admit");
  --c.stats.in_flight;
  --c.stats.admitted;
  ++c.stats.shed;
  while (c.stats.in_flight < c.config.max_concurrent && !c.backlog.empty()) {
    faas::JobSpec spec = std::move(c.backlog.front());
    c.backlog.pop_front();
    c.stats.queued = c.backlog.size();
    admit(c, std::move(spec));
  }
}

bool AdmissionController::try_hedge(std::size_t cls) {
  CANARY_CHECK(cls < classes_.size(), "unknown admission class");
  ClassState& c = classes_[cls];
  // A backlogged class is saturated: every node-second a clone burns
  // would come straight out of queued requests' wait time.
  if (!c.backlog.empty() || c.stats.hedges_active >= c.config.hedge_budget) {
    ++c.stats.hedges_denied;
    return false;
  }
  ++c.stats.hedges_active;
  ++c.stats.hedges_granted;
  return true;
}

void AdmissionController::hedge_done(std::size_t cls) {
  CANARY_CHECK(cls < classes_.size(), "unknown admission class");
  ClassState& c = classes_[cls];
  CANARY_CHECK(c.stats.hedges_active > 0, "hedge release without a grant");
  --c.stats.hedges_active;
}

std::size_t AdmissionController::total_queued() const {
  std::size_t total = 0;
  for (const ClassState& c : classes_) total += c.backlog.size();
  return total;
}

std::size_t AdmissionController::total_in_flight() const {
  std::size_t total = 0;
  for (const ClassState& c : classes_) total += c.stats.in_flight;
  return total;
}

bool AdmissionController::drained() const {
  return total_queued() == 0 && total_in_flight() == 0;
}

}  // namespace canary::traffic
