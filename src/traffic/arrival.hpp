// Open-loop arrival generation.
//
// Closed-loop benches submit a batch and drain it, so the platform never
// sees sustained pressure. An ArrivalProcess is the open-loop half: it
// produces invocation arrival instants independent of completion times,
// which is what makes overload, queueing delay and warm-pool sizing
// observable at all. Four processes cover the space the traffic benches
// sweep:
//
//   * Poisson        — memoryless arrivals at a constant rate;
//   * on/off (MMPP)  — a two-phase Markov-modulated process: exponential
//                      on/off dwell times, each phase Poisson at its own
//                      rate (bursts with calm valleys);
//   * diurnal        — a Poisson process whose rate is sinusoid-modulated
//                      (daily peak/trough), sampled by Lewis-Shedler
//                      thinning against the peak-rate majorant;
//   * trace          — replay of explicit offsets, round-trippable through
//                      a plain-text format (one microsecond offset per
//                      line, '#' comments) so synthetic traces can be
//                      stored next to the benches and replayed bit-exactly.
//
// Every process owns its Rng by value: two processes built from the same
// spec and seed emit byte-identical streams, which is the determinism
// contract the tests pin.
#pragma once

#include <iosfwd>
#include <memory>
#include <optional>
#include <vector>

#include "common/rng.hpp"
#include "common/time.hpp"

namespace canary::traffic {

/// Value-type description of an arrival process; the config half of the
/// subsystem so harness::ScenarioConfig stays copyable.
struct ArrivalSpec {
  enum class Kind { kPoisson, kOnOff, kDiurnal, kTrace };
  Kind kind = Kind::kPoisson;

  /// Poisson rate; on-phase rate for kOnOff; mean rate for kDiurnal.
  double rate_hz = 10.0;

  // kOnOff: off-phase rate and exponential phase dwell means.
  double off_rate_hz = 0.0;
  Duration on_mean = Duration::sec(2.0);
  Duration off_mean = Duration::sec(2.0);

  // kDiurnal: rate(t) = rate_hz * (1 + amplitude * sin(2*pi*t/period)).
  double amplitude = 0.5;  // in [0, 1)
  Duration period = Duration::sec(60.0);

  // kTrace: explicit arrival offsets from the origin, ascending.
  std::vector<Duration> trace;

  /// Long-run mean arrival rate implied by the spec (analytic, used by
  /// the rate-matching property tests and the autoscaler's sanity caps).
  double mean_rate_hz() const;
};

/// A stream of arrival instants. next(now) returns the first arrival
/// strictly after `now`, or nullopt when the stream is exhausted (trace
/// replay past its last entry); the generator applies its own horizon.
class ArrivalProcess {
 public:
  virtual ~ArrivalProcess() = default;
  virtual std::optional<TimePoint> next(TimePoint now) = 0;
};

/// Build the process described by `spec`, seeded with `rng` (taken by
/// value: the caller keeps its own stream untouched).
std::unique_ptr<ArrivalProcess> make_arrival_process(const ArrivalSpec& spec,
                                                     Rng rng);

/// Parse the plain-text trace format: one non-negative integer
/// (microseconds from origin) per line; '#' starts a comment; blank lines
/// are skipped. Offsets are sorted so hand-edited traces stay valid.
std::vector<Duration> parse_trace(std::istream& is);

/// Serialise offsets in the format parse_trace reads back bit-exactly.
void write_trace(std::ostream& os, const std::vector<Duration>& offsets);

}  // namespace canary::traffic
