// Reactive warm-pool autoscaler.
//
// A periodic sweep task sizes the warm container pool for each traffic
// stream from two reactive signals: an EWMA of the stream's arrival rate
// (warm target = expected arrivals in one prewarm window) and the
// admission backlog depth (queue pressure means the pool is behind).
// Scaling is rate-limited by per-direction cooldowns and a per-sweep step
// cap, so one burst cannot slam the cluster with cold launches and one
// lull cannot drain the pool it will need again a second later.
//
// Safety invariant (pinned by tests): the autoscaler retires only
// containers it launched itself *and* that are warm-idle at retirement
// time. It tracks ownership through the platform observer hooks — a
// container it launched that gets adopted by an invocation leaves the
// owned set at on_attempt_started, and destroyed containers leave at
// on_container_destroyed — so a busy container, a runtime replica, a
// request replica or a standby can never be scaled in.
//
// Termination: the sweep rescheduling stops once traffic is quiescent and
// every owned container is retired; a drain-grace hard stop past the
// traffic horizon bounds the simulation even if a run wedges.
#pragma once

#include <cstdint>
#include <set>
#include <vector>

#include "faas/events.hpp"
#include "faas/platform.hpp"
#include "sim/simulator.hpp"
#include "traffic/generator.hpp"

namespace canary::traffic {

class WarmPoolAutoscaler final : public faas::PlatformObserver {
 public:
  /// Uses `generator.config().autoscaler` and one pool class per traffic
  /// stream. The caller must platform.add_observer(this).
  WarmPoolAutoscaler(sim::Simulator& sim, faas::Platform& platform,
                     TrafficGenerator& generator);

  /// Schedule the first sweep.
  void start();

  std::uint64_t scale_ups() const { return scale_ups_; }
  std::uint64_t scale_ins() const { return scale_ins_; }

  /// Every scaling decision, for the invariant tests.
  struct ScaleEvent {
    TimePoint at;
    std::size_t stream = 0;
    unsigned count = 0;
    bool up = false;
  };
  const std::vector<ScaleEvent>& events() const { return events_; }
  /// Containers this autoscaler retired (destroy_warm_container targets).
  const std::vector<ContainerId>& retired() const { return retired_; }

  // PlatformObserver
  void on_attempt_started(const faas::Invocation& inv) override;
  void on_container_destroyed(const faas::Container& c) override;

 private:
  struct PoolClass {
    faas::RuntimeImage image = faas::RuntimeImage::kPython3;
    Bytes memory;
    double ewma_rate_hz = 0.0;
    std::uint64_t last_offered = 0;
    TimePoint last_scale_up = TimePoint::origin();
    TimePoint last_scale_in = TimePoint::origin();
    /// Launched by us, not yet warm.
    std::set<ContainerId> launching;
    /// Launched by us, warm-idle as far as the observer hooks have said.
    std::set<ContainerId> owned_warm;
  };

  void sweep();
  void sweep_class(std::size_t idx);
  void retire_all();

  sim::Simulator& sim_;
  faas::Platform& platform_;
  TrafficGenerator& generator_;
  AutoscalerConfig config_;
  std::vector<PoolClass> classes_;
  std::vector<ScaleEvent> events_;
  std::vector<ContainerId> retired_;
  std::uint64_t scale_ups_ = 0;
  std::uint64_t scale_ins_ = 0;
  bool stopped_ = false;

  obs::CounterHandle m_scale_ups_{platform_.metrics(), "autoscaler_scale_ups"};
  obs::CounterHandle m_scale_ins_{platform_.metrics(), "autoscaler_scale_ins"};
  obs::CounterHandle m_launches_{platform_.metrics(),
                                 "autoscaler_containers_launched"};
  obs::CounterHandle m_retirements_{platform_.metrics(),
                                    "autoscaler_containers_retired"};
};

}  // namespace canary::traffic
