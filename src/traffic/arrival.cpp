#include "traffic/arrival.hpp"

#include <algorithm>
#include <cmath>
#include <istream>
#include <ostream>
#include <string>

#include "common/result.hpp"

namespace canary::traffic {

namespace {

constexpr double kPi = 3.14159265358979323846;

/// Exponential gap in sim time; clamped to at least one tick so a stream
/// can never emit two arrivals at the same microsecond (FIFO tiebreak in
/// the simulator would still order them, but distinct instants keep the
/// trace format lossless).
Duration exp_gap(Rng& rng, double rate_hz) {
  const double gap_s = rng.exponential(1.0 / rate_hz);
  const Duration gap = Duration::sec(gap_s);
  return gap > Duration::usec(1) ? gap : Duration::usec(1);
}

class PoissonProcess final : public ArrivalProcess {
 public:
  PoissonProcess(double rate_hz, Rng rng) : rate_(rate_hz), rng_(rng) {}

  std::optional<TimePoint> next(TimePoint now) override {
    if (rate_ <= 0.0) return std::nullopt;
    return now + exp_gap(rng_, rate_);
  }

 private:
  double rate_;
  Rng rng_;
};

/// Two-phase MMPP: dwell times are exponential, arrivals within a phase
/// are Poisson at the phase rate. Crossing a phase boundary redraws the
/// gap — valid because the exponential is memoryless.
class OnOffProcess final : public ArrivalProcess {
 public:
  OnOffProcess(const ArrivalSpec& spec, Rng rng)
      : on_rate_(spec.rate_hz),
        off_rate_(spec.off_rate_hz),
        on_mean_(spec.on_mean),
        off_mean_(spec.off_mean),
        rng_(rng) {
    phase_end_ = TimePoint::origin() + dwell();
  }

  std::optional<TimePoint> next(TimePoint now) override {
    TimePoint cursor = now;
    // Bounded by construction: every off-phase with a zero rate advances
    // the cursor a full dwell, and positive-rate draws terminate with
    // probability one; the iteration cap turns a degenerate spec (both
    // rates zero) into stream exhaustion instead of a spin.
    for (int guard = 0; guard < 1 << 20; ++guard) {
      while (cursor >= phase_end_) advance_phase();
      const double rate = on_ ? on_rate_ : off_rate_;
      if (rate <= 0.0) {
        cursor = phase_end_;
        continue;
      }
      const TimePoint candidate = cursor + exp_gap(rng_, rate);
      if (candidate <= phase_end_) return candidate;
      cursor = phase_end_;
    }
    return std::nullopt;
  }

 private:
  Duration dwell() {
    const Duration mean = on_ ? on_mean_ : off_mean_;
    const Duration d = Duration::sec(rng_.exponential(mean.to_seconds()));
    return d > Duration::usec(1) ? d : Duration::usec(1);
  }

  void advance_phase() {
    on_ = !on_;
    phase_end_ = phase_end_ + dwell();
  }

  double on_rate_;
  double off_rate_;
  Duration on_mean_;
  Duration off_mean_;
  Rng rng_;
  bool on_ = true;
  TimePoint phase_end_;
};

/// Sinusoid-modulated Poisson via Lewis-Shedler thinning: candidates are
/// drawn at the peak rate and accepted with probability rate(t)/peak.
class DiurnalProcess final : public ArrivalProcess {
 public:
  DiurnalProcess(const ArrivalSpec& spec, Rng rng)
      : base_(spec.rate_hz),
        amplitude_(std::clamp(spec.amplitude, 0.0, 0.999)),
        period_(spec.period),
        rng_(rng) {}

  std::optional<TimePoint> next(TimePoint now) override {
    if (base_ <= 0.0) return std::nullopt;
    const double peak = base_ * (1.0 + amplitude_);
    TimePoint cursor = now;
    for (int guard = 0; guard < 1 << 20; ++guard) {
      cursor = cursor + exp_gap(rng_, peak);
      const double phase =
          2.0 * kPi * (cursor - TimePoint::origin()).to_seconds() /
          period_.to_seconds();
      const double rate = base_ * (1.0 + amplitude_ * std::sin(phase));
      if (rng_.bernoulli(rate / peak)) return cursor;
    }
    return std::nullopt;
  }

 private:
  double base_;
  double amplitude_;
  Duration period_;
  Rng rng_;
};

class TraceProcess final : public ArrivalProcess {
 public:
  explicit TraceProcess(std::vector<Duration> offsets)
      : offsets_(std::move(offsets)) {
    std::sort(offsets_.begin(), offsets_.end());
  }

  std::optional<TimePoint> next(TimePoint now) override {
    while (index_ < offsets_.size() &&
           TimePoint::origin() + offsets_[index_] <= now) {
      ++index_;
    }
    if (index_ >= offsets_.size()) return std::nullopt;
    return TimePoint::origin() + offsets_[index_++];
  }

 private:
  std::vector<Duration> offsets_;
  std::size_t index_ = 0;
};

}  // namespace

double ArrivalSpec::mean_rate_hz() const {
  switch (kind) {
    case Kind::kPoisson:
    case Kind::kDiurnal:
      // The sinusoid integrates to zero over whole periods.
      return rate_hz;
    case Kind::kOnOff: {
      const double on_s = on_mean.to_seconds();
      const double off_s = off_mean.to_seconds();
      if (on_s + off_s <= 0.0) return 0.0;
      return (rate_hz * on_s + off_rate_hz * off_s) / (on_s + off_s);
    }
    case Kind::kTrace: {
      if (trace.size() < 2) return 0.0;
      const auto [lo, hi] = std::minmax_element(trace.begin(), trace.end());
      const double span_s = (*hi - *lo).to_seconds();
      return span_s > 0.0 ? static_cast<double>(trace.size()) / span_s : 0.0;
    }
  }
  return 0.0;
}

std::unique_ptr<ArrivalProcess> make_arrival_process(const ArrivalSpec& spec,
                                                     Rng rng) {
  switch (spec.kind) {
    case ArrivalSpec::Kind::kPoisson:
      return std::make_unique<PoissonProcess>(spec.rate_hz, rng);
    case ArrivalSpec::Kind::kOnOff:
      return std::make_unique<OnOffProcess>(spec, rng);
    case ArrivalSpec::Kind::kDiurnal:
      return std::make_unique<DiurnalProcess>(spec, rng);
    case ArrivalSpec::Kind::kTrace:
      return std::make_unique<TraceProcess>(spec.trace);
  }
  CANARY_CHECK(false, "unknown arrival kind");
  return nullptr;
}

std::vector<Duration> parse_trace(std::istream& is) {
  std::vector<Duration> offsets;
  std::string line;
  while (std::getline(is, line)) {
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::size_t begin = line.find_first_not_of(" \t\r");
    if (begin == std::string::npos) continue;
    const std::size_t end = line.find_last_not_of(" \t\r");
    const std::string token = line.substr(begin, end - begin + 1);
    offsets.push_back(Duration::usec(std::stoll(token)));
  }
  std::sort(offsets.begin(), offsets.end());
  return offsets;
}

void write_trace(std::ostream& os, const std::vector<Duration>& offsets) {
  os << "# canary arrival trace: one microsecond offset per line\n";
  for (const Duration d : offsets) os << d.count_usec() << "\n";
}

}  // namespace canary::traffic
