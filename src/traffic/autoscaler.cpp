#include "traffic/autoscaler.hpp"

#include <algorithm>
#include <cmath>

#include "common/result.hpp"

namespace canary::traffic {

WarmPoolAutoscaler::WarmPoolAutoscaler(sim::Simulator& sim,
                                       faas::Platform& platform,
                                       TrafficGenerator& generator)
    : sim_(sim),
      platform_(platform),
      generator_(generator),
      config_(generator.config().autoscaler) {
  CANARY_CHECK(config_.sweep_interval > Duration::zero(),
               "autoscaler sweep interval must be positive");
  classes_.reserve(generator_.config().streams.size());
  for (const StreamConfig& stream : generator_.config().streams) {
    PoolClass cls;
    cls.image = stream.fn.runtime;
    cls.memory = stream.fn.effective_memory();
    classes_.push_back(std::move(cls));
  }
}

void WarmPoolAutoscaler::start() {
  if (!config_.enabled || classes_.empty()) return;
  sim_.schedule_after(config_.sweep_interval, [this] { sweep(); });
}

void WarmPoolAutoscaler::retire_all() {
  for (std::size_t i = 0; i < classes_.size(); ++i) {
    PoolClass& cls = classes_[i];
    while (!cls.owned_warm.empty()) {
      const ContainerId id = *cls.owned_warm.begin();
      cls.owned_warm.erase(cls.owned_warm.begin());
      if (!platform_.container(id).warm_idle()) continue;
      retired_.push_back(id);
      m_retirements_.add();
      platform_.destroy_warm_container(id);
    }
  }
}

void WarmPoolAutoscaler::sweep() {
  const TimePoint now = sim_.now();
  const TimePoint hard_stop =
      TimePoint::origin() + generator_.config().horizon + config_.drain_grace;
  if (generator_.quiescent() || now >= hard_stop) {
    // Drain: release everything we still hold and stop rescheduling once
    // no launch is in flight (in-flight launches retire on arrival via
    // the on_ready callback checking stopped_).
    stopped_ = true;
    retire_all();
    return;
  }
  for (std::size_t i = 0; i < classes_.size(); ++i) sweep_class(i);
  sim_.schedule_after(config_.sweep_interval, [this] { sweep(); });
}

void WarmPoolAutoscaler::sweep_class(std::size_t idx) {
  PoolClass& cls = classes_[idx];
  const TimePoint now = sim_.now();
  const AdmissionController& admission = generator_.admission();
  const AdmissionController::ClassStats& stats = admission.stats(idx);

  const double interval_s = config_.sweep_interval.to_seconds();
  const std::uint64_t offered = stats.offered;
  const double sample =
      static_cast<double>(offered - cls.last_offered) / interval_s;
  cls.last_offered = offered;
  cls.ewma_rate_hz = config_.ewma_alpha * sample +
                     (1.0 - config_.ewma_alpha) * cls.ewma_rate_hz;

  const double rate_target =
      std::ceil(cls.ewma_rate_hz * config_.prewarm_window.to_seconds());
  const double queue_target =
      std::ceil(static_cast<double>(stats.queued) * config_.queue_gain);
  const std::size_t desired = std::clamp(
      static_cast<std::size_t>(std::max(0.0, rate_target + queue_target)),
      config_.min_warm, config_.max_warm);

  // Supply: everything warm-idle of this image (ours or the reuse pool's)
  // plus our launches still in flight.
  const std::size_t available =
      platform_.warm_idle_count(cls.image, faas::ContainerPurpose::kFunction) +
      cls.launching.size();

  if (available < desired &&
      now - cls.last_scale_up >= config_.scale_up_cooldown) {
    const std::size_t want = std::min(desired - available, config_.max_step);
    unsigned launched = 0;
    for (std::size_t n = 0; n < want; ++n) {
      const std::optional<NodeId> node =
          platform_.cluster().least_loaded(cls.memory);
      if (!node.has_value()) break;  // saturated; retry next sweep
      const Result<ContainerId> id = platform_.launch_warm_container(
          *node, cls.image, faas::ContainerPurpose::kFunction,
          [this, idx](ContainerId ready) {
            PoolClass& c = classes_[idx];
            if (c.launching.erase(ready) == 0) return;  // died / adopted
            if (stopped_) {
              // Landed after the drain began: retire immediately.
              if (platform_.container(ready).warm_idle()) {
                retired_.push_back(ready);
                m_retirements_.add();
                platform_.destroy_warm_container(ready);
              }
              return;
            }
            c.owned_warm.insert(ready);
          });
      if (!id.ok()) break;
      cls.launching.insert(id.value());
      m_launches_.add();
      ++launched;
    }
    if (launched > 0) {
      cls.last_scale_up = now;
      ++scale_ups_;
      m_scale_ups_.add();
      events_.push_back(ScaleEvent{now, idx, launched, true});
    }
    return;  // never scale the same class both ways in one sweep
  }

  if (available > desired &&
      now - cls.last_scale_in >= config_.scale_in_cooldown &&
      !cls.owned_warm.empty()) {
    const std::size_t excess = available - desired;
    const std::size_t want =
        std::min({excess, config_.max_step, cls.owned_warm.size()});
    unsigned drained = 0;
    for (std::size_t n = 0; n < want; ++n) {
      // Highest id first: the most recently launched container is the
      // least likely to be the pool's steady-state working set.
      const auto last = std::prev(cls.owned_warm.end());
      const ContainerId id = *last;
      cls.owned_warm.erase(last);
      if (!platform_.container(id).warm_idle()) continue;
      retired_.push_back(id);
      m_retirements_.add();
      platform_.destroy_warm_container(id);
      ++drained;
    }
    if (drained > 0) {
      cls.last_scale_in = now;
      ++scale_ins_;
      m_scale_ins_.add();
      events_.push_back(ScaleEvent{now, idx, drained, false});
    }
  }
}

void WarmPoolAutoscaler::on_attempt_started(const faas::Invocation& inv) {
  if (!inv.container.valid()) return;
  for (PoolClass& cls : classes_) {
    if (cls.owned_warm.erase(inv.container) > 0) return;
    if (cls.launching.erase(inv.container) > 0) return;
  }
}

void WarmPoolAutoscaler::on_container_destroyed(const faas::Container& c) {
  for (PoolClass& cls : classes_) {
    if (cls.owned_warm.erase(c.id) > 0) return;
    if (cls.launching.erase(c.id) > 0) return;
  }
}

}  // namespace canary::traffic
