// Speculative hedging with exactly-once cancellation (the request-cloning
// model of arXiv:2002.04416, applied as a tail/recovery strategy).
//
// Every submitted function arms a hedge timer at a configurable
// percentile of the *observed* completion-latency distribution (tracked
// online from the platform's HDR histogram samples; a fixed initial
// delay bootstraps the first requests). If the invocation is still
// unfinished when the timer fires — slow node, gray degradation, or
// sitting out a retry backoff after a failure — a clone is dispatched via
// Platform::hedge_clone and the two copies race. The first completion
// wins; the loser is cancelled exactly-once through
// Platform::cancel_hedge, which composes with every other path a copy
// can take:
//
//   * loser completes in the same sim-tick as the winner — the loser is
//     already terminal, cancellation is a no-op;
//   * the clone's node dies mid-race (even before launch) — the clone's
//     failure closes the race instead of restarting it; a clone is never
//     retried, the primary carries the request;
//   * the primary fails mid-race — it retries as usual (optionally after
//     a backoff) while the clone keeps racing; if the clone wins during
//     the backoff window the pending restart is detected as stale and
//     dropped.
//
// Amplification is budgeted twice: a global cap on outstanding clones
// here, and (when the open-loop traffic subsystem drives the run) a
// per-class admission budget wired in through set_budget_hooks so clones
// cannot push an already-saturated class past its concurrency limit.
//
// Race accounting is exactly-once by construction and audited by the
// chaos campaign's hedge oracle:
//
//   hedges_fired == hedge_wins + hedges_cancelled + open_races
//   #kHedged events == hedges_fired
//   #kHedgeCancelled events == resolved races
#pragma once

#include <cstddef>
#include <functional>
#include <unordered_map>

#include "common/time.hpp"
#include "faas/events.hpp"
#include "faas/platform.hpp"
#include "obs/histogram.hpp"
#include "obs/metric_registry.hpp"

namespace canary::recovery {

struct HedgeConfig {
  /// Latency percentile that triggers the clone dispatch.
  double percentile = 95.0;
  /// Completions observed before the percentile trigger is trusted.
  std::size_t min_samples = 20;
  /// Bootstrap delay used until `min_samples` completions are recorded.
  Duration initial_delay = Duration::sec(2.0);
  /// Scale on the percentile-derived delay (>1 hedges later/less).
  double delay_multiplier = 1.0;
  /// Floor on the hedge delay so a tight distribution cannot degenerate
  /// into hedging everything immediately.
  Duration min_delay = Duration::msec(50);
  /// Global cap on concurrently racing clones (the per-class admission
  /// budget additionally applies under open-loop traffic).
  std::size_t max_outstanding = 64;
  /// Retry cap for primary failures; 0 means unlimited (platform default).
  int max_retries = 0;
  /// Wait before restarting a failed primary; zero restarts immediately.
  /// A non-zero backoff opens the window in which a hedge can fire while
  /// the primary is down — the designed hedge-during-backoff edge case.
  Duration retry_backoff = Duration::zero();
};

class HedgeHandler final : public faas::RecoveryHandler,
                           public faas::PlatformObserver {
 public:
  /// Per-request budget gate (wired at the traffic admission layer):
  /// `try_hedge` is consulted before a clone launches and must account
  /// the grant; `done` releases it when the race resolves.
  using TryHedgeFn = std::function<bool(JobId)>;
  using HedgeDoneFn = std::function<void(JobId)>;

  explicit HedgeHandler(faas::Platform& platform, HedgeConfig config = {});

  void set_budget_hooks(TryHedgeFn try_hedge, HedgeDoneFn done);

  /// Current clone-dispatch delay (percentile-derived once warmed up).
  Duration current_delay() const;
  std::size_t open_races() const { return races_.size(); }
  int giveups() const { return giveups_; }

  // RecoveryHandler
  void on_failure(const faas::Invocation& inv,
                  const faas::FailureInfo& info) override;

  // PlatformObserver
  void on_job_submitted(JobId job) override;
  void on_function_completed(const faas::Invocation& inv) override;

 private:
  void maybe_hedge(FunctionId id);
  /// Close the race keyed by `primary`: cancel `loser` in favour of
  /// `winner` and release the hedge budget.
  void finish_race(FunctionId primary, FunctionId loser, FunctionId winner);
  void release_budget(JobId job);

  faas::Platform& platform_;
  HedgeConfig config_;
  TryHedgeFn try_hook_;
  HedgeDoneFn done_hook_;

  /// Completed primary latencies (seconds); drives the online percentile.
  obs::Histogram latency_;
  /// Open races: primary -> clone, plus the reverse index.
  std::unordered_map<FunctionId, FunctionId> races_;
  std::unordered_map<FunctionId, FunctionId> clone_index_;
  std::size_t outstanding_ = 0;
  int giveups_ = 0;
  /// Reentrancy guard: cancel_hedge completes the loser synchronously,
  /// which re-enters on_function_completed.
  bool discarding_ = false;

  obs::CounterHandle m_fired_{platform_.metrics(), "hedges_fired"};
  obs::CounterHandle m_wins_{platform_.metrics(), "hedge_wins"};
  obs::CounterHandle m_cancelled_{platform_.metrics(), "hedges_cancelled"};
  obs::CounterHandle m_denied_{platform_.metrics(), "hedges_denied"};
  obs::CounterHandle m_skipped_{platform_.metrics(), "hedges_skipped"};
  obs::CounterHandle m_retries_{platform_.metrics(), "hedge_retries"};
};

}  // namespace canary::recovery
