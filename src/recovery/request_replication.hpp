// Request replication baseline (paper §V-D5, [65]).
//
// Each logical function runs as a race group of (1 + k) instances started
// together; "the incoming requests are forwarded to all functions and the
// first successful response is accepted and the rest are discarded". A
// failed instance is not restarted while siblings survive; if every
// instance of a group is down simultaneously, the whole group restarts
// from the beginning (there are no checkpoints in RR).
//
// Usage: expand the job with `expand_job`, submit it, then `track_job` so
// the handler can build its groups from the platform's function ids.
#pragma once

#include <unordered_map>
#include <vector>

#include "faas/events.hpp"
#include "faas/platform.hpp"

namespace canary::recovery {

class RequestReplicationHandler final : public faas::RecoveryHandler,
                                        public faas::PlatformObserver {
 public:
  RequestReplicationHandler(faas::Platform& platform, unsigned replicas)
      : platform_(platform), replicas_(replicas) {}

  /// Duplicate every function (1 + replicas) times, preserving order so
  /// group g occupies indices [g*(1+k), (g+1)*(1+k)).
  faas::JobSpec expand_job(const faas::JobSpec& logical) const;

  /// Register the submitted (expanded) job's functions into race groups.
  void track_job(JobId job);

  /// Completion time of logical group `g` of `job` (first winner).
  TimePoint group_completion(JobId job, std::size_t group) const;

  // RecoveryHandler
  void on_failure(const faas::Invocation& inv,
                  const faas::FailureInfo& info) override;

  // PlatformObserver
  void on_function_completed(const faas::Invocation& inv) override;

 private:
  struct Group {
    std::vector<FunctionId> members;
    std::vector<bool> down;  // currently failed, awaiting a sibling win
    bool won = false;
    TimePoint winner_time = TimePoint::max();
  };

  Group* group_of(FunctionId id);

  faas::Platform& platform_;
  unsigned replicas_;
  std::unordered_map<JobId, std::vector<Group>> groups_;
  std::unordered_map<FunctionId, std::pair<JobId, std::size_t>> index_;
  bool discarding_ = false;
};

}  // namespace canary::recovery
