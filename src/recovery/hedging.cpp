#include "recovery/hedging.hpp"

#include <utility>

#include "common/logging.hpp"
#include "common/result.hpp"

namespace canary::recovery {

HedgeHandler::HedgeHandler(faas::Platform& platform, HedgeConfig config)
    : platform_(platform), config_(config) {
  CANARY_CHECK(config_.percentile > 0.0 && config_.percentile <= 100.0,
               "hedge percentile out of range");
  CANARY_CHECK(config_.delay_multiplier > 0.0,
               "hedge delay multiplier must be positive");
}

void HedgeHandler::set_budget_hooks(TryHedgeFn try_hedge, HedgeDoneFn done) {
  CANARY_CHECK((try_hedge == nullptr) == (done == nullptr),
               "hedge budget hooks come as a pair");
  try_hook_ = std::move(try_hedge);
  done_hook_ = std::move(done);
}

Duration HedgeHandler::current_delay() const {
  if (latency_.count() < config_.min_samples) return config_.initial_delay;
  const Duration delay = Duration::sec(latency_.percentile(config_.percentile) *
                                       config_.delay_multiplier);
  return delay > config_.min_delay ? delay : config_.min_delay;
}

void HedgeHandler::on_job_submitted(JobId job) {
  // One timer per function, anchored at submission: the trigger measures
  // request latency the way a caller would, so queueing and retries count
  // against the percentile just like execution does.
  const Duration delay = current_delay();
  for (const FunctionId id : platform_.job_functions(job)) {
    platform_.simulator().schedule_after(delay,
                                         [this, id] { maybe_hedge(id); });
  }
}

void HedgeHandler::maybe_hedge(FunctionId id) {
  const faas::Invocation& inv = platform_.invocation(id);
  if (inv.phase == faas::Phase::kCompleted || inv.phase == faas::Phase::kShed) {
    return;  // finished under the trigger: the common, un-hedged case
  }
  // Clones never hedge, and a primary races at most one clone at a time.
  if (clone_index_.count(id) != 0 || races_.count(id) != 0) return;
  if (inv.phase == faas::Phase::kPending) {
    // Still waiting on account concurrency or node capacity: a clone
    // would only double the queue entry it is supposed to bypass.
    m_skipped_.add();
    return;
  }
  if (outstanding_ >= config_.max_outstanding) {
    m_denied_.add();
    return;
  }
  if (try_hook_ != nullptr && !try_hook_(inv.job)) {
    m_denied_.add();
    return;
  }
  ++outstanding_;
  const FunctionId clone = platform_.hedge_clone(id);
  races_[id] = clone;
  clone_index_[clone] = id;
  m_fired_.add();
  if (auto* series = platform_.time_series()) {
    series->count("hedges_fired", platform_.now());
  }
}

void HedgeHandler::finish_race(FunctionId primary, FunctionId loser,
                               FunctionId winner) {
  const FunctionId clone = races_.at(primary);
  discarding_ = true;
  platform_.cancel_hedge(loser, winner);
  discarding_ = false;
  races_.erase(primary);
  clone_index_.erase(clone);
  release_budget(platform_.invocation(primary).job);
}

void HedgeHandler::release_budget(JobId job) {
  CANARY_CHECK(outstanding_ > 0, "hedge budget release without a grant");
  --outstanding_;
  if (done_hook_ != nullptr) done_hook_(job);
}

void HedgeHandler::on_function_completed(const faas::Invocation& inv) {
  if (discarding_) return;  // the loser's discard-completion, not a win
  if (const auto it = clone_index_.find(inv.id); it != clone_index_.end()) {
    // The clone finished first: the speculation paid off. The request's
    // latency is still measured from the primary's submission.
    const FunctionId primary = it->second;
    latency_.record(
        (inv.completion_time - platform_.invocation(primary).submit_time)
            .to_seconds());
    m_wins_.add();
    if (auto* series = platform_.time_series()) {
      series->count("hedge_wins", platform_.now());
    }
    finish_race(primary, /*loser=*/primary, /*winner=*/inv.id);
    return;
  }
  if (const auto it = races_.find(inv.id); it != races_.end()) {
    // The primary beat its clone: cancel the speculation exactly-once.
    latency_.record((inv.completion_time - inv.submit_time).to_seconds());
    m_cancelled_.add();
    if (auto* series = platform_.time_series()) {
      series->count("hedge_cancelled", platform_.now());
    }
    finish_race(inv.id, /*loser=*/it->second, /*winner=*/inv.id);
    return;
  }
  latency_.record((inv.completion_time - inv.submit_time).to_seconds());
}

void HedgeHandler::on_failure(const faas::Invocation& inv,
                              const faas::FailureInfo& info) {
  (void)info;
  if (const auto it = clone_index_.find(inv.id); it != clone_index_.end()) {
    // A failed clone is never restarted — restarting speculation would
    // turn the budget into a lie. Close the race; the primary carries
    // the request from here.
    const FunctionId primary = it->second;
    platform_.log_recovery_action(inv.id, "hedge_clone_abandoned");
    m_cancelled_.add();
    if (auto* series = platform_.time_series()) {
      series->count("hedge_cancelled", platform_.now());
    }
    finish_race(primary, /*loser=*/inv.id, /*winner=*/primary);
    return;
  }
  // Primary (or plain unhedged) failure: retry like the platform default,
  // optionally after a backoff. An open race keeps racing meanwhile.
  if (config_.max_retries > 0 && inv.failures > config_.max_retries) {
    ++giveups_;
    CANARY_LOG_WARN("hedge: giving up on function " << inv.id.value()
                                                    << " after " << inv.failures
                                                    << " failures");
    return;
  }
  m_retries_.add();
  platform_.log_recovery_action(inv.id, "hedge_retry");
  if (config_.retry_backoff > Duration::zero()) {
    const FunctionId id = inv.id;
    const int attempt = inv.attempt;
    platform_.simulator().schedule_after(
        config_.retry_backoff, [this, id, attempt] {
          const faas::Invocation& target = platform_.invocation(id);
          // The clone may have won (primary discarded) or another failure
          // may have superseded this attempt during the backoff window;
          // either way the pending restart is stale.
          if (target.phase != faas::Phase::kFailed ||
              target.attempt != attempt) {
            return;
          }
          platform_.start_attempt(id, faas::StartSpec{});
        });
  } else {
    platform_.start_attempt(inv.id, faas::StartSpec{});
  }
}

}  // namespace canary::recovery
