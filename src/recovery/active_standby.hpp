// Active-standby baseline (paper §V-D5, [66]).
//
// "AS creates two function instances; one for serving all requests and
// the other as standby." The standby is a warm, initialized container
// kept per function on a different node; when the active instance fails
// the standby takes over — from the beginning, since AS has no
// checkpoints — and the takeover "triggers the creation of a new passive
// instance". The standby consumes resources while dormant, which is what
// drives AS's cost in Fig. 10.
#pragma once

#include <unordered_map>

#include "faas/events.hpp"
#include "faas/platform.hpp"

namespace canary::recovery {

class ActiveStandbyHandler final : public faas::RecoveryHandler,
                                   public faas::PlatformObserver {
 public:
  explicit ActiveStandbyHandler(faas::Platform& platform)
      : platform_(platform) {}

  // RecoveryHandler
  void on_failure(const faas::Invocation& inv,
                  const faas::FailureInfo& info) override;

  // PlatformObserver
  void on_job_submitted(JobId job) override;
  void on_attempt_started(const faas::Invocation& inv) override;
  void on_function_completed(const faas::Invocation& inv) override;
  void on_container_destroyed(const faas::Container& c) override;

  std::size_t ready_standbys() const;

 private:
  struct Standby {
    ContainerId container;
    bool ready = false;
  };

  void provision_standby(FunctionId fn);

  faas::Platform& platform_;
  std::unordered_map<FunctionId, Standby> standbys_;
  std::unordered_map<ContainerId, FunctionId> by_container_;
};

}  // namespace canary::recovery
