#include "recovery/strategies.hpp"

namespace canary::recovery {

std::string_view to_string_view(StrategyKind kind) {
  switch (kind) {
    case StrategyKind::kIdeal: return "ideal";
    case StrategyKind::kRetry: return "retry";
    case StrategyKind::kCanary: return "canary";
    case StrategyKind::kRequestReplication: return "request-replication";
    case StrategyKind::kActiveStandby: return "active-standby";
    case StrategyKind::kHedge: return "hedge";
  }
  return "unknown";
}

StrategyConfig StrategyConfig::canary_full(core::ReplicationMode mode) {
  StrategyConfig config;
  config.kind = StrategyKind::kCanary;
  config.canary.replication.mode = mode;
  return config;
}

StrategyConfig StrategyConfig::canary_replication_only() {
  StrategyConfig config;
  config.kind = StrategyKind::kCanary;
  config.canary.checkpointing.enabled = false;
  return config;
}

StrategyConfig StrategyConfig::canary_checkpoint_only() {
  StrategyConfig config;
  config.kind = StrategyKind::kCanary;
  config.canary.replication.enabled = false;
  return config;
}

StrategyConfig StrategyConfig::request_replication(unsigned replicas) {
  StrategyConfig config;
  config.kind = StrategyKind::kRequestReplication;
  config.rr_replicas = replicas;
  return config;
}

StrategyConfig StrategyConfig::active_standby() {
  StrategyConfig config;
  config.kind = StrategyKind::kActiveStandby;
  return config;
}

StrategyConfig StrategyConfig::hedged(HedgeConfig hedge) {
  StrategyConfig config;
  config.kind = StrategyKind::kHedge;
  config.hedge = hedge;
  return config;
}

std::string StrategyConfig::label() const {
  std::string base{to_string_view(kind)};
  if (kind == StrategyKind::kCanary) {
    if (!canary.replication.enabled) return base + "-ckpt";
    if (!canary.checkpointing.enabled) return base + "-repl";
    switch (canary.replication.mode) {
      case core::ReplicationMode::kDynamic: return base + "-dr";
      case core::ReplicationMode::kAggressive: return base + "-ar";
      case core::ReplicationMode::kLenient: return base + "-lr";
    }
  }
  return base;
}

}  // namespace canary::recovery
