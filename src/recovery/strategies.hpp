// Fault-tolerance strategies compared in the paper's evaluation (§V):
//
//  * Ideal     — failure-free execution (the lower bound);
//  * Retry     — the FaaS default: restart failed functions from scratch;
//  * Canary    — the paper's contribution, in any configuration
//                (replication-only for Fig. 4-5, checkpoint-focused for
//                Fig. 6, full for Fig. 7-12, DR/AR/LR for Fig. 9);
//  * RR        — request replication [65]: every request runs on 1+k
//                instances, first response wins, the rest are discarded;
//  * AS        — active-standby [66]: one warm standby per function,
//                activated (from scratch — no checkpoint) on failure;
//  * Hedge     — speculative hedging: retry for failures, plus a clone
//                dispatched at a latency percentile with exactly-once
//                cancellation of the race's loser (hedging.hpp).
#pragma once

#include <string>
#include <string_view>

#include "canary/core.hpp"
#include "recovery/hedging.hpp"

namespace canary::recovery {

enum class StrategyKind {
  kIdeal,
  kRetry,
  kCanary,
  kRequestReplication,
  kActiveStandby,
  kHedge,
};

std::string_view to_string_view(StrategyKind kind);

struct StrategyConfig {
  StrategyKind kind = StrategyKind::kRetry;
  /// Canary framework configuration (used when kind == kCanary).
  core::CanaryConfig canary;
  /// Replicas per request for RR (the paper launches one per request).
  unsigned rr_replicas = 1;
  /// Hedge trigger/budget configuration (used when kind == kHedge).
  HedgeConfig hedge;

  static StrategyConfig ideal() { return {StrategyKind::kIdeal, {}, 1, {}}; }
  static StrategyConfig retry() { return {StrategyKind::kRetry, {}, 1, {}}; }
  static StrategyConfig canary_full(
      core::ReplicationMode mode = core::ReplicationMode::kDynamic);
  static StrategyConfig canary_replication_only();
  static StrategyConfig canary_checkpoint_only();
  static StrategyConfig request_replication(unsigned replicas = 1);
  static StrategyConfig active_standby();
  static StrategyConfig hedged(HedgeConfig config = {});

  std::string label() const;
};

}  // namespace canary::recovery
