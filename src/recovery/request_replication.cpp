#include "recovery/request_replication.hpp"

#include "common/result.hpp"

namespace canary::recovery {

faas::JobSpec RequestReplicationHandler::expand_job(
    const faas::JobSpec& logical) const {
  faas::JobSpec expanded;
  expanded.name = logical.name + "+rr";
  expanded.account = logical.account;
  expanded.functions.reserve(logical.functions.size() * (1 + replicas_));
  for (const auto& fn : logical.functions) {
    for (unsigned r = 0; r <= replicas_; ++r) {
      faas::FunctionSpec copy = fn;
      if (r > 0) copy.name += "+r" + std::to_string(r);
      expanded.functions.push_back(std::move(copy));
    }
  }
  return expanded;
}

void RequestReplicationHandler::track_job(JobId job) {
  const auto& functions = platform_.job_functions(job);
  const std::size_t stride = 1 + replicas_;
  CANARY_CHECK(functions.size() % stride == 0,
               "job was not expanded with this handler's replica count");
  auto& job_groups = groups_[job];
  job_groups.resize(functions.size() / stride);
  for (std::size_t g = 0; g < job_groups.size(); ++g) {
    auto& group = job_groups[g];
    for (std::size_t r = 0; r < stride; ++r) {
      const FunctionId member = functions[g * stride + r];
      group.members.push_back(member);
      group.down.push_back(false);
      index_[member] = {job, g};
      // Primary and shadows race as one logical request: merge every
      // shadow's causal chain into the primary's trace.
      if (r > 0) platform_.join_trace(member, group.members.front());
    }
  }
}

RequestReplicationHandler::Group* RequestReplicationHandler::group_of(
    FunctionId id) {
  auto it = index_.find(id);
  if (it == index_.end()) return nullptr;
  return &groups_[it->second.first][it->second.second];
}

TimePoint RequestReplicationHandler::group_completion(JobId job,
                                                      std::size_t group) const {
  auto it = groups_.find(job);
  CANARY_CHECK(it != groups_.end(), "job not tracked");
  CANARY_CHECK(group < it->second.size(), "group out of range");
  return it->second[group].winner_time;
}

void RequestReplicationHandler::on_failure(const faas::Invocation& inv,
                                           const faas::FailureInfo& info) {
  (void)info;
  Group* group = group_of(inv.id);
  if (group == nullptr || group->won) return;  // loser dying post-win

  for (std::size_t i = 0; i < group->members.size(); ++i) {
    if (group->members[i] == inv.id) group->down[i] = true;
  }
  const bool all_down =
      std::all_of(group->down.begin(), group->down.end(), [](bool d) { return d; });
  if (!all_down) return;  // a sibling is still racing; no restart

  // Every instance of the request died: restart the whole group from the
  // beginning (no checkpoints in RR).
  platform_.metrics().count("rr_group_restarts");
  if (obs::SpanRecorder* spans = platform_.spans()) {
    spans->instant(obs::SpanKind::kRecovery, "rr_group_restart",
                   platform_.simulator().now(),
                   obs::SpanLabels{inv.job, inv.id, inv.container, inv.node,
                                   inv.attempt});
  }
  for (std::size_t i = 0; i < group->members.size(); ++i) {
    group->down[i] = false;
    platform_.log_recovery_action(group->members[i], "rr_group_restart");
    platform_.start_attempt(group->members[i], faas::StartSpec{});
  }
}

void RequestReplicationHandler::on_function_completed(
    const faas::Invocation& inv) {
  if (discarding_) return;  // completions we caused ourselves
  Group* group = group_of(inv.id);
  if (group == nullptr || group->won) return;
  group->won = true;
  group->winner_time = platform_.simulator().now();
  platform_.metrics().count("rr_group_wins");

  // First successful response accepted; discard the rest.
  discarding_ = true;
  for (const FunctionId member : group->members) {
    if (member == inv.id) continue;
    if (!platform_.invocation(member).completed()) {
      platform_.discard_function(member);
    }
  }
  discarding_ = false;
}

}  // namespace canary::recovery
