#include "recovery/active_standby.hpp"

#include "common/logging.hpp"

namespace canary::recovery {

void ActiveStandbyHandler::provision_standby(FunctionId fn) {
  const auto& inv = platform_.invocation(fn);
  if (inv.completed()) return;
  const faas::RuntimeImage image = inv.spec->runtime;

  // Place the standby away from the active instance so one node failure
  // cannot take both.
  std::vector<NodeId> avoid;
  if (inv.node.valid()) avoid.push_back(inv.node);
  auto node = platform_.cluster().least_loaded_excluding(
      faas::profile(image).memory, avoid);
  if (!node) node = platform_.cluster().least_loaded(faas::profile(image).memory);
  if (!node) {
    CANARY_LOG_WARN("no capacity for a standby of function " << to_string(fn));
    return;
  }

  auto launched = platform_.launch_warm_container(
      *node, image, faas::ContainerPurpose::kStandby, [this](ContainerId cid) {
        auto fn_it = by_container_.find(cid);
        if (fn_it == by_container_.end()) {
          // The function finished while the standby was launching; the
          // orphan would idle (and bill) forever.
          platform_.destroy_warm_container(cid);
          return;
        }
        auto standby = standbys_.find(fn_it->second);
        if (standby != standbys_.end() && standby->second.container == cid) {
          standby->second.ready = true;
        }
      });
  if (!launched.ok()) return;
  standbys_[fn] = Standby{launched.value(), false};
  by_container_[launched.value()] = fn;
}

void ActiveStandbyHandler::on_job_submitted(JobId job) {
  for (const FunctionId fn : platform_.job_functions(job)) {
    provision_standby(fn);
  }
}

void ActiveStandbyHandler::on_attempt_started(const faas::Invocation& inv) {
  (void)inv;  // placement of future standbys reads the live invocation
}

void ActiveStandbyHandler::on_failure(const faas::Invocation& inv,
                                      const faas::FailureInfo& info) {
  (void)info;
  obs::SpanRecorder* spans = platform_.spans();
  const obs::SpanLabels labels{inv.job, inv.id, inv.container, inv.node,
                               inv.attempt};
  auto it = standbys_.find(inv.id);
  if (it != standbys_.end() && it->second.ready) {
    const ContainerId standby = it->second.container;
    by_container_.erase(standby);
    standbys_.erase(it);
    // The standby becomes the active instance; no checkpoint exists, so
    // execution restarts from the first state on the warm container.
    faas::StartSpec start;
    start.from_state = 0;
    start.container = standby;
    platform_.metrics().count("as_standby_activations");
    platform_.log_recovery_action(inv.id, "as_standby_activation");
    if (spans != nullptr) {
      spans->instant(obs::SpanKind::kRecovery, "as_standby_activation",
                     platform_.simulator().now(), labels);
    }
    platform_.start_attempt(inv.id, start);
  } else {
    // Standby not ready (still launching, or lost with its node): cold
    // restart, as a retry would.
    platform_.metrics().count("as_cold_restarts");
    platform_.log_recovery_action(inv.id, "as_cold_restart");
    if (spans != nullptr) {
      spans->instant(obs::SpanKind::kRecovery, "as_cold_restart",
                     platform_.simulator().now(), labels);
    }
    platform_.start_attempt(inv.id, faas::StartSpec{});
  }
  // Takeover triggers the creation of a new passive instance.
  provision_standby(inv.id);
}

void ActiveStandbyHandler::on_function_completed(const faas::Invocation& inv) {
  auto it = standbys_.find(inv.id);
  if (it == standbys_.end()) return;
  const ContainerId standby = it->second.container;
  const bool ready = it->second.ready;
  by_container_.erase(standby);
  standbys_.erase(it);
  if (ready && platform_.container(standby).warm_idle()) {
    platform_.destroy_warm_container(standby);
  }
  // A standby still launching is destroyed by its readiness callback once
  // it finds no by_container_ entry.
}

void ActiveStandbyHandler::on_container_destroyed(const faas::Container& c) {
  auto fn_it = by_container_.find(c.id);
  if (fn_it == by_container_.end()) return;
  const FunctionId fn = fn_it->second;
  by_container_.erase(fn_it);
  auto it = standbys_.find(fn);
  if (it != standbys_.end() && it->second.container == c.id) {
    standbys_.erase(it);
    // The node took the standby down; provision a replacement if the
    // function is still live.
    provision_standby(fn);
  }
}

std::size_t ActiveStandbyHandler::ready_standbys() const {
  std::size_t count = 0;
  for (const auto& [fn, standby] : standbys_) {
    if (standby.ready) ++count;
  }
  return count;
}

}  // namespace canary::recovery
