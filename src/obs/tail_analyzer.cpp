#include "obs/tail_analyzer.hpp"

#include <algorithm>

namespace canary::obs {

namespace {

/// Does `candidate` beat `incumbent` as the representative? The deeper
/// tail wins; ties break toward the smaller trace id so repetition merge
/// order cannot change the outcome.
bool representative_beats(const TailAttribution& candidate,
                          const TailAttribution& incumbent) {
  if (!incumbent.has_exemplar) return candidate.has_exemplar;
  if (!candidate.has_exemplar) return false;
  if (candidate.latency_s != incumbent.latency_s) {
    return candidate.latency_s > incumbent.latency_s;
  }
  return candidate.trace < incumbent.trace;
}

}  // namespace

void TailReport::merge(const TailReport& other) {
  enabled = enabled || other.enabled;
  for (const TailGroup& theirs : other.groups) {
    auto it = std::find_if(
        groups.begin(), groups.end(),
        [&](const TailGroup& g) { return g.metric == theirs.metric; });
    if (it == groups.end()) {
      groups.push_back(theirs);
      continue;
    }
    it->exemplars += theirs.exemplars;
    for (const TailAttribution& attribution : theirs.percentiles) {
      auto pit = std::find_if(it->percentiles.begin(), it->percentiles.end(),
                              [&](const TailAttribution& a) {
                                return a.percentile == attribution.percentile;
                              });
      if (pit == it->percentiles.end()) {
        it->percentiles.push_back(attribution);
        continue;
      }
      pit->samples += attribution.samples;
      if (representative_beats(attribution, *pit)) {
        const std::uint64_t samples = pit->samples;
        *pit = attribution;
        pit->samples = samples;
      }
    }
  }
  std::sort(groups.begin(), groups.end(),
            [](const TailGroup& a, const TailGroup& b) {
              return a.metric < b.metric;
            });
}

TailAnalyzer::TailAnalyzer(const MetricRegistry& metrics, const EventLog& log,
                           const CriticalPathAnalyzer& paths)
    : metrics_(&metrics), log_(&log), paths_(&paths) {}

TailReport TailAnalyzer::analyze(const TailConfig& config) const {
  TailReport report;
  if (!config.enabled) return report;
  report.enabled = true;

  for (const auto& [name, hist] : metrics_->histograms()) {
    if (!hist.exemplars_enabled() || hist.empty()) continue;
    TailGroup group;
    group.metric = name;
    group.exemplars = hist.exemplar_count();
    for (const double percentile : config.percentiles) {
      group.percentiles.push_back(attribute(hist, percentile));
    }
    report.groups.push_back(std::move(group));
  }
  // std::map iteration is already name-ordered; the sort documents the
  // invariant merge() relies on.
  std::sort(report.groups.begin(), report.groups.end(),
            [](const TailGroup& a, const TailGroup& b) {
              return a.metric < b.metric;
            });
  return report;
}

TailAttribution TailAnalyzer::attribute(const Histogram& hist,
                                        double percentile) const {
  TailAttribution out;
  out.percentile = percentile;
  out.samples = hist.count();
  out.bucket_estimate_s = hist.percentile(percentile);

  // Representative: the smallest retained exemplar at or above the
  // nearest-rank estimate — the invocation sitting closest to the target
  // rank from the tail side. When retention holds nothing above the
  // estimate (possible right after a prune), fall back to the largest
  // retained exemplar overall.
  std::vector<Exemplar> candidates =
      hist.exemplars_above(out.bucket_estimate_s);
  Exemplar representative;
  if (!candidates.empty()) {
    representative = candidates.back();
  } else {
    candidates = hist.exemplars_above(0.0);
    if (candidates.empty()) return out;
    representative = candidates.front();
  }

  out.has_exemplar = true;
  out.latency_s = representative.value;
  out.trace = representative.trace;
  out.function = representative.ref;

  const auto& decompositions = paths_->per_function_decomposition();
  const auto it = decompositions.find(FunctionId{representative.ref});
  if (it != decompositions.end()) {
    out.components = it->second.end_to_end;
    out.attributed_s = out.components.total();
  }

  // Chain resolution: every event of the representative's trace, with
  // parents resolving inside the log, anchored by a lifecycle root
  // (queued/submit) and terminated by a completion.
  const TraceId trace{representative.trace};
  bool rooted = false;
  bool completed = false;
  bool parents_ok = true;
  for (const Event& event : log_->events()) {
    if (event.trace != trace) continue;
    ++out.chain_events;
    if (event.kind == EventKind::kQueued ||
        event.kind == EventKind::kSubmit) {
      rooted = true;
    }
    if (event.kind == EventKind::kComplete) completed = true;
    if (event.parent != kNoEvent && log_->find(event.parent) == nullptr) {
      parents_ok = false;
    }
  }
  out.chain_complete =
      rooted && completed && parents_ok && out.chain_events > 0;
  return out;
}

}  // namespace canary::obs
