#include "obs/report.hpp"

#include <fstream>
#include <ostream>
#include <sstream>

#include "obs/json.hpp"

namespace canary::obs {

namespace {

void write_components(JsonWriter& json, const ComponentSums& sums) {
  json.begin_object();
  for (std::size_t i = 0; i < kPathComponentCount; ++i) {
    const auto component = static_cast<PathComponent>(i);
    // Queueing only exists for open-loop (traffic-driven) runs and
    // hedging only for hedged runs; keeping the keys absent otherwise
    // leaves other reports byte-identical to those produced before the
    // components existed.
    if ((component == PathComponent::kQueueing ||
         component == PathComponent::kHedging) &&
        sums.seconds[i] == 0.0) {
      continue;
    }
    json.field(to_string_view(component), sums.seconds[i]);
  }
  json.end_object();
}

void write_health(JsonWriter& json, const RecorderHealth& health) {
  json.begin_object();
  json.field("recorded", health.recorded);
  json.field("dropped", health.dropped);
  json.field("truncated", health.truncated());
  json.end_object();
}

}  // namespace

void RunReport::set_param(const std::string& key, double value) {
  params[key] = JsonWriter::format_double(value);
}

void RunReport::write_json(std::ostream& os) const {
  JsonWriter json(os, /*indent=*/2);
  json.begin_object();
  json.field("schema", kRunReportSchema);
  json.field("name", name);

  json.key("params").begin_object();
  for (const auto& [key, value] : params) json.field(key, value);
  json.end_object();

  json.key("scalars").begin_object();
  for (const auto& [key, value] : scalars) json.field(key, value);
  json.end_object();

  json.key("metrics").begin_object();
  json.key("counters").begin_object();
  for (const auto& [key, value] : metrics.counters()) json.field(key, value);
  json.end_object();
  json.key("gauges").begin_object();
  for (const auto& [key, value] : metrics.gauges()) json.field(key, value);
  json.end_object();
  json.key("histograms").begin_object();
  for (const auto& [key, hist] : metrics.histograms()) {
    json.key(key).begin_object();
    json.field("count", static_cast<std::uint64_t>(hist.count()));
    json.field("mean", hist.mean());
    json.field("min", hist.min());
    json.field("max", hist.max());
    json.field("p50", hist.p50());
    json.field("p95", hist.p95());
    json.field("p99", hist.p99());
    json.end_object();
  }
  json.end_object();
  json.end_object();

  json.key("breakdown").begin_object();
  json.key("recoveries").begin_object();
  json.field("count", breakdown.recovery_count);
  json.field("window_s", breakdown.recovery_window_s);
  json.key("components");
  write_components(json, breakdown.recovery_components);
  json.end_object();
  json.key("end_to_end").begin_object();
  json.key("components");
  write_components(json, breakdown.end_to_end_components);
  json.end_object();
  json.key("per_function").begin_object();
  for (const auto& [family, fb] : breakdown.per_function) {
    json.key(family).begin_object();
    json.field("functions", fb.functions);
    json.field("recoveries", fb.recoveries);
    json.field("window_s", fb.window_s);
    json.key("components");
    write_components(json, fb.recovery_components);
    json.end_object();
  }
  json.end_object();
  json.key("slo").begin_object();
  json.field("targets", breakdown.slo_targets);
  json.field("violations", breakdown.slo_violations);
  json.field("violation_ratio", breakdown.slo_violation_ratio());
  json.key("breaches_by_component").begin_object();
  for (const auto& [component, count] : breakdown.slo_breaches_by_component) {
    json.field(component, count);
  }
  json.end_object();
  json.end_object();
  json.end_object();

  json.key("obs").begin_object();
  json.key("spans");
  write_health(json, span_health);
  json.key("events");
  write_health(json, event_health);
  json.end_object();

  json.key("series").begin_array();
  for (const Series& s : series) {
    json.begin_object();
    json.field("name", s.name);
    json.key("columns").begin_array();
    for (const auto& column : s.columns) json.value(column);
    json.end_array();
    json.key("rows").begin_array();
    for (const auto& row : s.rows) {
      json.begin_array();
      for (const auto& cell : row) json.value(cell);
      json.end_array();
    }
    json.end_array();
    json.end_object();
  }
  json.end_array();

  json.key("claims").begin_array();
  for (const Claim& c : claims) {
    json.begin_object();
    json.field("claim", c.claim);
    json.field("measured", c.measured);
    json.field("unit", c.unit);
    json.end_object();
  }
  json.end_array();

  json.end_object();
  os << '\n';
}

std::string RunReport::to_json() const {
  std::ostringstream os;
  write_json(os);
  return os.str();
}

bool RunReport::save(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  write_json(out);
  return out.good();
}

}  // namespace canary::obs
