#include "obs/report.hpp"

#include <fstream>
#include <ostream>
#include <sstream>

#include "obs/json.hpp"

namespace canary::obs {

namespace {

void write_components(JsonWriter& json, const ComponentSums& sums) {
  json.begin_object();
  for (std::size_t i = 0; i < kPathComponentCount; ++i) {
    const auto component = static_cast<PathComponent>(i);
    // Queueing only exists for open-loop (traffic-driven) runs and
    // hedging only for hedged runs; keeping the keys absent otherwise
    // leaves other reports byte-identical to those produced before the
    // components existed.
    if ((component == PathComponent::kQueueing ||
         component == PathComponent::kHedging) &&
        sums.seconds[i] == 0.0) {
      continue;
    }
    json.field(to_string_view(component), sums.seconds[i]);
  }
  json.end_object();
}

void write_health(JsonWriter& json, const RecorderHealth& health) {
  json.begin_object();
  json.field("recorded", health.recorded);
  json.field("dropped", health.dropped);
  json.field("truncated", health.truncated());
  if (!health.dropped_by_kind.empty()) {
    json.key("dropped_by_kind").begin_object();
    for (const auto& [kind, count] : health.dropped_by_kind) {
      json.field(kind, count);
    }
    json.end_object();
  }
  json.end_object();
}

void write_tail(JsonWriter& json, const TailReport& tail) {
  json.key("tail").begin_object();
  json.key("groups").begin_object();
  for (const TailGroup& group : tail.groups) {
    json.key(group.metric).begin_object();
    json.field("exemplars", group.exemplars);
    json.key("percentiles").begin_array();
    for (const TailAttribution& a : group.percentiles) {
      json.begin_object();
      json.field("p", a.percentile);
      json.field("samples", a.samples);
      json.field("bucket_estimate_s", a.bucket_estimate_s);
      if (a.has_exemplar) {
        json.field("latency_s", a.latency_s);
        json.field("trace", a.trace);
        json.field("function", a.function);
        json.field("attributed_s", a.attributed_s);
        json.field("chain_events", a.chain_events);
        json.field("chain_complete", a.chain_complete);
        json.key("components");
        write_components(json, a.components);
      }
      json.end_object();
    }
    json.end_array();
    json.end_object();
  }
  json.end_object();
  json.end_object();
}

void write_timeseries(JsonWriter& json, const TimeSeries& series) {
  json.key("timeseries").begin_object();
  json.field("window_s", series.config().window.to_seconds());
  json.field("windows", static_cast<std::uint64_t>(series.windows().size()));
  json.field("evicted", series.evicted());

  // Column-major: one row list per named stream, each row [t_s, ...].
  // Names are collected across all windows so sparse streams still line
  // up deterministically.
  std::map<std::string, int> counters;
  std::map<std::string, int> samples;
  std::map<std::string, int> levels;
  for (const TimeSeries::Window& window : series.windows()) {
    for (const auto& [name, value] : window.counters) counters[name] = 1;
    for (const auto& [name, hist] : window.samples) samples[name] = 1;
    for (const auto& [name, value] : window.levels) levels[name] = 1;
  }

  json.key("counters").begin_object();
  for (const auto& [name, unused] : counters) {
    json.key(name).begin_array();
    for (const TimeSeries::Window& window : series.windows()) {
      const auto it = window.counters.find(name);
      json.begin_array();
      json.value(window.start.to_seconds());
      json.value(it != window.counters.end() ? it->second : 0.0);
      json.end_array();
    }
    json.end_array();
  }
  json.end_object();

  json.key("quantiles").begin_object();
  for (const auto& [name, unused] : samples) {
    json.key(name).begin_array();
    for (const TimeSeries::Window& window : series.windows()) {
      const auto it = window.samples.find(name);
      json.begin_array();
      json.value(window.start.to_seconds());
      if (it != window.samples.end()) {
        json.value(static_cast<std::uint64_t>(it->second.count()));
        json.value(it->second.p50());
        json.value(it->second.p99());
      } else {
        json.value(std::uint64_t{0});
        json.value(0.0);
        json.value(0.0);
      }
      json.end_array();
    }
    json.end_array();
  }
  json.end_object();

  json.key("levels").begin_object();
  for (const auto& [name, unused] : levels) {
    json.key(name).begin_array();
    for (const TimeSeries::Window& window : series.windows()) {
      const auto it = window.levels.find(name);
      if (it == window.levels.end()) continue;  // levels may be sparse
      json.begin_array();
      json.value(window.start.to_seconds());
      json.value(it->second);
      json.end_array();
    }
    json.end_array();
  }
  json.end_object();

  json.end_object();
}

}  // namespace

void RunReport::set_param(const std::string& key, double value) {
  params[key] = JsonWriter::format_double(value);
}

void RunReport::write_json(std::ostream& os) const {
  JsonWriter json(os, /*indent=*/2);
  const bool v3 = tail.enabled || timeseries.enabled();
  json.begin_object();
  json.field("schema", v3 ? kRunReportSchemaV3 : kRunReportSchema);
  json.field("name", name);

  json.key("params").begin_object();
  for (const auto& [key, value] : params) json.field(key, value);
  json.end_object();

  json.key("scalars").begin_object();
  for (const auto& [key, value] : scalars) json.field(key, value);
  json.end_object();

  json.key("metrics").begin_object();
  json.key("counters").begin_object();
  for (const auto& [key, value] : metrics.counters()) json.field(key, value);
  json.end_object();
  json.key("gauges").begin_object();
  for (const auto& [key, value] : metrics.gauges()) json.field(key, value);
  json.end_object();
  json.key("histograms").begin_object();
  for (const auto& [key, hist] : metrics.histograms()) {
    json.key(key).begin_object();
    json.field("count", static_cast<std::uint64_t>(hist.count()));
    json.field("mean", hist.mean());
    json.field("min", hist.min());
    json.field("max", hist.max());
    json.field("p50", hist.p50());
    json.field("p95", hist.p95());
    json.field("p99", hist.p99());
    json.end_object();
  }
  json.end_object();
  json.end_object();

  json.key("breakdown").begin_object();
  json.key("recoveries").begin_object();
  json.field("count", breakdown.recovery_count);
  json.field("window_s", breakdown.recovery_window_s);
  json.key("components");
  write_components(json, breakdown.recovery_components);
  json.end_object();
  json.key("end_to_end").begin_object();
  json.key("components");
  write_components(json, breakdown.end_to_end_components);
  json.end_object();
  json.key("per_function").begin_object();
  for (const auto& [family, fb] : breakdown.per_function) {
    json.key(family).begin_object();
    json.field("functions", fb.functions);
    json.field("recoveries", fb.recoveries);
    json.field("window_s", fb.window_s);
    json.key("components");
    write_components(json, fb.recovery_components);
    json.end_object();
  }
  json.end_object();
  json.key("slo").begin_object();
  json.field("targets", breakdown.slo_targets);
  json.field("violations", breakdown.slo_violations);
  json.field("violation_ratio", breakdown.slo_violation_ratio());
  json.key("breaches_by_component").begin_object();
  for (const auto& [component, count] : breakdown.slo_breaches_by_component) {
    json.field(component, count);
  }
  json.end_object();
  json.end_object();
  json.end_object();

  json.key("obs").begin_object();
  json.key("spans");
  write_health(json, span_health);
  json.key("events");
  write_health(json, event_health);
  json.end_object();

  if (tail.enabled) write_tail(json, tail);
  if (timeseries.enabled()) write_timeseries(json, timeseries);

  json.key("series").begin_array();
  for (const Series& s : series) {
    json.begin_object();
    json.field("name", s.name);
    json.key("columns").begin_array();
    for (const auto& column : s.columns) json.value(column);
    json.end_array();
    json.key("rows").begin_array();
    for (const auto& row : s.rows) {
      json.begin_array();
      for (const auto& cell : row) json.value(cell);
      json.end_array();
    }
    json.end_array();
    json.end_object();
  }
  json.end_array();

  json.key("claims").begin_array();
  for (const Claim& c : claims) {
    json.begin_object();
    json.field("claim", c.claim);
    json.field("measured", c.measured);
    json.field("unit", c.unit);
    json.end_object();
  }
  json.end_array();

  json.end_object();
  os << '\n';
}

std::string RunReport::to_json() const {
  std::ostringstream os;
  write_json(os);
  return os.str();
}

bool RunReport::save(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  write_json(out);
  return out.good();
}

}  // namespace canary::obs
