#include "obs/chrome_trace.hpp"

#include <fstream>
#include <ostream>

#include "obs/json.hpp"

namespace canary::obs {

namespace {

void write_event(JsonWriter& json, const Span& span,
                 std::int64_t pid) {
  json.begin_object();
  json.field("name", span.name);
  json.field("cat", to_string_view(span.kind));
  json.field("ph", span.instant ? "i" : "X");
  // Trace timestamps are microseconds; the sim clock already is.
  json.field("ts", span.start.count_usec());
  if (!span.instant) {
    json.field("dur", span.duration().count_usec());
  } else {
    json.field("s", "t");  // thread-scoped instant marker
  }
  json.field("pid", pid);
  // One track per node keeps the cluster timeline readable; spans with no
  // node (e.g. scheduler-side events) share track 0.
  json.field("tid", span.labels.node.valid()
                        ? static_cast<std::int64_t>(span.labels.node.value())
                        : std::int64_t{0});
  json.key("args").begin_object();
  if (span.labels.job.valid()) {
    json.field("job", static_cast<std::int64_t>(span.labels.job.value()));
  }
  if (span.labels.function.valid()) {
    json.field("function",
               static_cast<std::int64_t>(span.labels.function.value()));
  }
  if (span.labels.container.valid()) {
    json.field("container",
               static_cast<std::int64_t>(span.labels.container.value()));
  }
  if (span.labels.attempt > 0) json.field("attempt", span.labels.attempt);
  json.end_object();
  json.end_object();
}

std::int64_t event_tid(const Event& event) {
  return event.labels.node.valid()
             ? static_cast<std::int64_t>(event.labels.node.value())
             : std::int64_t{0};
}

void write_log_event(JsonWriter& json, const Event& event,
                     std::int64_t pid) {
  json.begin_object();
  json.field("name", event.name);
  json.field("cat", to_string_view(event.kind));
  json.field("ph", "i");
  json.field("ts", event.at.count_usec());
  json.field("s", "t");
  json.field("pid", pid);
  json.field("tid", event_tid(event));
  json.key("args").begin_object();
  json.field("event", event.id);
  if (event.trace.valid()) json.field("trace", event.trace.value());
  if (event.parent != kNoEvent) json.field("parent", event.parent);
  if (event.cause != kNoEvent) json.field("cause", event.cause);
  if (event.labels.function.valid()) {
    json.field("function",
               static_cast<std::int64_t>(event.labels.function.value()));
  }
  if (event.labels.attempt > 0) json.field("attempt", event.labels.attempt);
  json.end_object();
  json.end_object();
}

/// A `cause` edge renders as a flow arrow: a start record at the cause
/// event's (time, track) and a binding-point-enclosing finish record at
/// the effect's. Chrome pairs the two through the shared id.
void write_flow_pair(JsonWriter& json, const Event& cause,
                     const Event& effect, std::int64_t pid) {
  json.begin_object();
  json.field("name", effect.name);
  json.field("cat", "causal");
  json.field("ph", "s");
  json.field("id", effect.id);
  json.field("ts", cause.at.count_usec());
  json.field("pid", pid);
  json.field("tid", event_tid(cause));
  json.end_object();

  json.begin_object();
  json.field("name", effect.name);
  json.field("cat", "causal");
  json.field("ph", "f");
  json.field("bp", "e");
  json.field("id", effect.id);
  json.field("ts", effect.at.count_usec());
  json.field("pid", pid);
  json.field("tid", event_tid(effect));
  json.end_object();
}

/// One stepped counter sample: chrome renders consecutive "C" records
/// with the same name as a filled step graph.
void write_counter_sample(JsonWriter& json, const std::string& name,
                          std::int64_t ts_usec, double value,
                          std::int64_t pid) {
  json.begin_object();
  json.field("name", name);
  json.field("cat", "timeseries");
  json.field("ph", "C");
  json.field("ts", ts_usec);
  json.field("pid", pid);
  json.field("tid", std::int64_t{0});
  json.key("args").begin_object();
  json.field("value", value);
  json.end_object();
  json.end_object();
}

void write_counter_tracks(JsonWriter& json, const TimeSeries& series,
                          std::int64_t pid) {
  for (const TimeSeries::Window& window : series.windows()) {
    const std::int64_t ts = window.start.count_usec();
    for (const auto& [name, value] : window.counters) {
      write_counter_sample(json, "ts." + name, ts, value, pid);
    }
    for (const auto& [name, value] : window.levels) {
      write_counter_sample(json, "ts." + name, ts, value, pid);
    }
    for (const auto& [name, hist] : window.samples) {
      write_counter_sample(json, "ts." + name + ".p99", ts, hist.p99(),
                           pid);
    }
  }
}

/// All of one section's trace events under one pid.
void write_section(JsonWriter& json, const TraceSection& section,
                   std::int64_t pid) {
  if (section.spans != nullptr) {
    for (const Span& span : section.spans->spans()) {
      write_event(json, span, pid);
    }
  }
  if (section.events != nullptr) {
    for (const Event& event : section.events->events()) {
      write_log_event(json, event, pid);
      if (event.cause != kNoEvent) {
        if (const Event* cause = section.events->find(event.cause)) {
          write_flow_pair(json, *cause, event, pid);
        }
      }
    }
  }
  if (section.series != nullptr && section.series->enabled()) {
    write_counter_tracks(json, *section.series, pid);
  }
}

/// Perfetto process label so shard lanes are named in the viewer.
void write_process_name(JsonWriter& json, std::int64_t pid,
                        const std::string& name) {
  json.begin_object();
  json.field("name", "process_name");
  json.field("ph", "M");
  json.field("pid", pid);
  json.key("args").begin_object();
  json.field("name", name);
  json.end_object();
  json.end_object();
}

void write_trace_document(std::ostream& os,
                          const std::vector<TraceSection>& sections,
                          bool label_processes) {
  JsonWriter json(os, /*indent=*/0);
  json.begin_object();
  json.key("displayTimeUnit").value("ms");
  json.key("traceEvents").begin_array();
  for (std::size_t i = 0; i < sections.size(); ++i) {
    const std::int64_t pid = static_cast<std::int64_t>(i) + 1;
    if (label_processes) {
      write_process_name(json, pid, "shard " + std::to_string(i));
    }
    write_section(json, sections[i], pid);
  }
  json.end_array();
  // Recorder health: a truncated stream means this timeline is partial.
  std::uint64_t spans_dropped = 0;
  std::uint64_t events_dropped = 0;
  for (const TraceSection& section : sections) {
    if (section.spans != nullptr) spans_dropped += section.spans->dropped();
    if (section.events != nullptr) events_dropped += section.events->dropped();
  }
  json.key("otherData").begin_object();
  json.field("spans_dropped", spans_dropped);
  json.field("events_dropped", events_dropped);
  json.end_object();
  json.end_object();
  os << '\n';
}

}  // namespace

void write_chrome_trace(std::ostream& os, const SpanRecorder& spans) {
  write_chrome_trace(os, &spans, nullptr);
}

void write_chrome_trace(std::ostream& os, const SpanRecorder* spans,
                        const EventLog* events) {
  write_chrome_trace(os, spans, events, nullptr);
}

void write_chrome_trace(std::ostream& os, const SpanRecorder* spans,
                        const EventLog* events, const TimeSeries* series) {
  write_trace_document(os, {TraceSection{spans, events, series}},
                       /*label_processes=*/false);
}

void write_chrome_trace(std::ostream& os,
                        const std::vector<TraceSection>& sections) {
  write_trace_document(os, sections, /*label_processes=*/true);
}

bool write_chrome_trace_file(const std::string& path,
                             const SpanRecorder& spans) {
  return write_chrome_trace_file(path, &spans, nullptr);
}

bool write_chrome_trace_file(const std::string& path,
                             const SpanRecorder* spans,
                             const EventLog* events) {
  return write_chrome_trace_file(path, spans, events, nullptr);
}

bool write_chrome_trace_file(const std::string& path,
                             const SpanRecorder* spans, const EventLog* events,
                             const TimeSeries* series) {
  std::ofstream out(path);
  if (!out) return false;
  write_chrome_trace(out, spans, events, series);
  return out.good();
}

bool write_chrome_trace_file(const std::string& path,
                             const std::vector<TraceSection>& sections) {
  std::ofstream out(path);
  if (!out) return false;
  write_chrome_trace(out, sections);
  return out.good();
}

}  // namespace canary::obs
