#include "obs/chrome_trace.hpp"

#include <fstream>
#include <ostream>

#include "obs/json.hpp"

namespace canary::obs {

namespace {

void write_event(JsonWriter& json, const Span& span) {
  json.begin_object();
  json.field("name", span.name);
  json.field("cat", to_string_view(span.kind));
  json.field("ph", span.instant ? "i" : "X");
  // Trace timestamps are microseconds; the sim clock already is.
  json.field("ts", span.start.count_usec());
  if (!span.instant) {
    json.field("dur", span.duration().count_usec());
  } else {
    json.field("s", "t");  // thread-scoped instant marker
  }
  json.field("pid", std::int64_t{1});
  // One track per node keeps the cluster timeline readable; spans with no
  // node (e.g. scheduler-side events) share track 0.
  json.field("tid", span.labels.node.valid()
                        ? static_cast<std::int64_t>(span.labels.node.value())
                        : std::int64_t{0});
  json.key("args").begin_object();
  if (span.labels.job.valid()) {
    json.field("job", static_cast<std::int64_t>(span.labels.job.value()));
  }
  if (span.labels.function.valid()) {
    json.field("function",
               static_cast<std::int64_t>(span.labels.function.value()));
  }
  if (span.labels.container.valid()) {
    json.field("container",
               static_cast<std::int64_t>(span.labels.container.value()));
  }
  if (span.labels.attempt > 0) json.field("attempt", span.labels.attempt);
  json.end_object();
  json.end_object();
}

}  // namespace

void write_chrome_trace(std::ostream& os, const SpanRecorder& spans) {
  JsonWriter json(os, /*indent=*/0);
  json.begin_object();
  json.key("displayTimeUnit").value("ms");
  json.key("traceEvents").begin_array();
  for (const Span& span : spans.spans()) write_event(json, span);
  json.end_array();
  json.end_object();
  os << '\n';
}

bool write_chrome_trace_file(const std::string& path,
                             const SpanRecorder& spans) {
  std::ofstream out(path);
  if (!out) return false;
  write_chrome_trace(out, spans);
  return out.good();
}

}  // namespace canary::obs
