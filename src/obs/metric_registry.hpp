// Central metric registry: counters, gauges, and latency histograms.
//
// One registry lives per simulation run and every module records into it
// (the platform's lifecycle counters, Canary's checkpoint/replication
// counters, the recovery baselines' bookkeeping). It supersedes the
// private counter maps that used to live in sim::MetricsRecorder,
// faas::UsageLedger summaries, and ad-hoc bench printouts: the experiment
// harness snapshots the whole registry into RunResult, merges repetitions
// exactly, and the report exporter serialises it into run_report.json.
//
// Names are ordered maps so every iteration (export, merge, diff) is
// deterministic. The registry is single-writer per run — repetitions each
// own one and merge after the fact — so no locking is needed on the
// record path.
#pragma once

#include <map>
#include <string>

#include "common/time.hpp"
#include "obs/histogram.hpp"

namespace canary::obs {

class MetricRegistry {
 public:
  // ---- counters (monotonic sums) --------------------------------------
  void count(const std::string& name, double delta = 1.0) {
    counters_[name] += delta;
  }
  double counter(const std::string& name) const;
  const std::map<std::string, double>& counters() const { return counters_; }

  // ---- hot-path handles -----------------------------------------------
  // A per-event count()/sample() pays a map lookup on every call, which
  // dominates the platform's bookkeeping at million-invocation scale.
  // Hot recorders resolve their metric once and increment through the
  // returned reference instead. Map nodes are stable, so handles stay
  // valid for the registry's lifetime — except across clear(), after
  // which they must be re-acquired.
  double& counter_ref(const std::string& name) { return counters_[name]; }
  Histogram& histogram_ref(const std::string& name) {
    return histograms_[name];
  }

  // ---- gauges (last-write-wins levels) --------------------------------
  void set_gauge(const std::string& name, double value) {
    gauges_[name] = value;
  }
  double gauge(const std::string& name) const;
  const std::map<std::string, double>& gauges() const { return gauges_; }

  // ---- histograms (latency-style distributions) -----------------------
  void sample(const std::string& name, double value) {
    histograms_[name].record(value);
  }
  void sample_duration(const std::string& name, Duration d) {
    sample(name, d.to_seconds());
  }
  /// Exemplar-carrying sample: like sample(), but if the named histogram
  /// has exemplars enabled the tail bucket may retain (value, trace, ref).
  void sample_traced(const std::string& name, double value,
                     std::uint64_t trace, std::uint64_t ref) {
    histograms_[name].record_traced(value, trace, ref);
  }
  /// Turn on exemplar retention for one named histogram (creating it if
  /// absent). Opt-in per histogram so attribution-off runs keep the exact
  /// pre-exemplar memory and report bytes.
  void enable_exemplars(const std::string& name, const ExemplarConfig& config) {
    histograms_[name].enable_exemplars(config);
  }
  /// Histogram for `name`; an empty histogram if never sampled.
  const Histogram& histogram(const std::string& name) const;
  const std::map<std::string, Histogram>& histograms() const {
    return histograms_;
  }

  /// Fold `other` into this registry: counters add, histograms merge
  /// exactly, gauges take `other`'s value (last writer wins). Used by the
  /// harness to aggregate per-repetition registries deterministically.
  void merge(const MetricRegistry& other);

  void clear();

 private:
  std::map<std::string, double> counters_;
  std::map<std::string, double> gauges_;
  std::map<std::string, Histogram> histograms_;
};

/// Lazily-resolved counter handle for per-event recorders. The first
/// add() resolves the registry slot (one map lookup); every later add()
/// is a pointer bump. Resolution is lazy on purpose: a counter that
/// never fires must stay absent from the registry, because reports list
/// exactly the counters that were ever recorded.
class CounterHandle {
 public:
  CounterHandle(MetricRegistry& registry, const char* name)
      : registry_(&registry), name_(name) {}

  void add(double delta = 1.0) {
    if (slot_ == nullptr) slot_ = &registry_->counter_ref(name_);
    *slot_ += delta;
  }

 private:
  MetricRegistry* registry_;
  const char* name_;
  double* slot_ = nullptr;
};

/// Histogram counterpart of CounterHandle, with the same lazy-resolution
/// contract.
class HistogramHandle {
 public:
  HistogramHandle(MetricRegistry& registry, const char* name)
      : registry_(&registry), name_(name) {}

  void record(double value) {
    if (slot_ == nullptr) slot_ = &registry_->histogram_ref(name_);
    slot_->record(value);
  }
  void record_duration(Duration d) { record(d.to_seconds()); }
  void record_traced(double value, std::uint64_t trace, std::uint64_t ref) {
    if (slot_ == nullptr) slot_ = &registry_->histogram_ref(name_);
    slot_->record_traced(value, trace, ref);
  }

 private:
  MetricRegistry* registry_;
  const char* name_;
  Histogram* slot_ = nullptr;
};

}  // namespace canary::obs
