// HDR-style log-linear histogram for latency-like quantities.
//
// Values are bucketed on a log-linear grid (64 linear sub-buckets per
// power-of-two octave over integer micro-units), which bounds the relative
// quantile error at ~1.6% while keeping memory at a few KiB regardless of
// sample count. count/sum/min/max are tracked exactly, so mean() is exact
// and only percentile() is approximate. Recording is O(1) with no
// allocation past the high-water bucket; merging two histograms is exact
// (bucket-wise addition), which is what lets the experiment harness fold
// per-repetition histograms into one deterministic aggregate.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace canary::obs {

class Histogram {
 public:
  /// Record one value. Negative values clamp to zero (still counted, and
  /// reflected in min()); values are quantised to 1e-6 units.
  void record(double value);

  /// Bucket-wise addition of `other` into this histogram. Exact: merging
  /// then querying equals querying the concatenated sample streams.
  void merge(const Histogram& other);

  std::size_t count() const { return count_; }
  bool empty() const { return count_ == 0; }
  double sum() const { return sum_; }
  double mean() const { return count_ > 0 ? sum_ / static_cast<double>(count_) : 0.0; }
  double min() const { return count_ > 0 ? min_ : 0.0; }
  double max() const { return count_ > 0 ? max_ : 0.0; }

  /// Approximate percentile, p in [0, 100]. Returns the midpoint of the
  /// bucket holding the rank-p sample, clamped to [min, max]; p <= 0 and
  /// p >= 100 return the exact min/max.
  double percentile(double p) const;
  double p50() const { return percentile(50.0); }
  double p95() const { return percentile(95.0); }
  double p99() const { return percentile(99.0); }

 private:
  // 64 linear sub-buckets per octave: values below 2^6 micro-units are
  // bucketed exactly, larger ones with <= 1/64 relative bucket width.
  static constexpr int kSubBucketBits = 6;
  static constexpr std::uint64_t kSubBuckets = 1ull << kSubBucketBits;

  static std::size_t bucket_index(std::uint64_t ticks);
  /// Midpoint of bucket `index`, in micro-units.
  static double bucket_mid(std::size_t index);

  std::vector<std::uint64_t> buckets_;
  std::size_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace canary::obs
