// HDR-style log-linear histogram for latency-like quantities.
//
// Values are bucketed on a log-linear grid (64 linear sub-buckets per
// power-of-two octave over integer micro-units), which bounds the relative
// quantile error at ~1.6% while keeping memory at a few KiB regardless of
// sample count. count/sum/min/max are tracked exactly, so mean() is exact
// and only percentile() is approximate. Recording is O(1) with no
// allocation past the high-water bucket; merging two histograms is exact
// (bucket-wise addition), which is what lets the experiment harness fold
// per-repetition histograms into one deterministic aggregate.
//
// Exemplars (opt-in): when enabled, tail buckets additionally retain up
// to K exemplar trace ids via a deterministic seeded reservoir, so a
// histogram bucket links back into the causal event DAG — "p99.9 moved"
// becomes "these invocations are the p99.9". A bucket only retains
// exemplars while it sits at or above the configured quantile of the live
// distribution, which keeps retention focused on the tail without
// knowing the final shape in advance. Everything stays deterministic:
// the reservoir is seeded, replacement depends only on the insertion
// order (which the simulator fixes), and merging keeps the K
// largest-valued exemplars per bucket.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace canary::obs {

/// One retained sample: its exact value plus the ids linking it back to
/// the causal event log. `trace` is the obs::TraceId value; `ref` is an
/// opaque caller reference (the platform stores the FunctionId value so
/// the tail analyzer can look up the invocation's decomposition).
struct Exemplar {
  double value = 0.0;
  std::uint64_t trace = 0;
  std::uint64_t ref = 0;
};

struct ExemplarConfig {
  bool enabled = false;
  /// Reservoir capacity per bucket.
  std::size_t per_bucket = 4;
  /// A bucket retains exemplars only while it lies at or above this
  /// quantile (in [0, 1]) of the histogram's current distribution. 0.5
  /// keeps the upper half — enough to anchor p50 while bounding memory.
  double min_quantile = 0.5;
  /// Reservoir seed; replacement draws are splitmix-style hashes of
  /// (seed, bucket, arrival index), so runs are reproducible.
  std::uint64_t seed = 0x9e3779b97f4a7c15ull;
};

class Histogram {
 public:
  /// Record one value. Negative values clamp to zero (still counted, and
  /// reflected in min()); values are quantised to 1e-6 units.
  void record(double value);

  /// Record one value carrying an exemplar reference. Identical to
  /// record() unless exemplars are enabled, in which case the tail
  /// bucket's reservoir may retain (value, trace, ref).
  void record_traced(double value, std::uint64_t trace, std::uint64_t ref);

  /// Enable exemplar retention. Call before recording; enabling on a
  /// populated histogram only affects future samples.
  void enable_exemplars(const ExemplarConfig& config);
  bool exemplars_enabled() const { return exemplar_config_.enabled; }
  const ExemplarConfig& exemplar_config() const { return exemplar_config_; }

  /// Every retained exemplar with value >= min_value, sorted by value
  /// descending (ties by trace id ascending) so iteration order is
  /// deterministic.
  std::vector<Exemplar> exemplars_above(double min_value) const;
  /// Total exemplars currently retained across all buckets.
  std::size_t exemplar_count() const;

  /// Bucket-wise addition of `other` into this histogram. Exact: merging
  /// then querying equals querying the concatenated sample streams.
  /// Exemplar reservoirs merge by keeping the per-bucket K largest
  /// values (deterministic regardless of sample interleaving).
  void merge(const Histogram& other);

  std::size_t count() const { return count_; }
  bool empty() const { return count_ == 0; }
  double sum() const { return sum_; }
  double mean() const { return count_ > 0 ? sum_ / static_cast<double>(count_) : 0.0; }
  double min() const { return count_ > 0 ? min_ : 0.0; }
  double max() const { return count_ > 0 ? max_ : 0.0; }

  /// Approximate percentile, p in [0, 100]. Returns the midpoint of the
  /// bucket holding the rank-p sample (nearest-rank, rank = ceil(p/100*n)
  /// with a guard against floating-point rank inflation), clamped to
  /// [min, max]; p <= 0 and p >= 100 return the exact min/max. An empty
  /// histogram returns 0.
  double percentile(double p) const;
  /// quantile(q) == percentile(q * 100), q in [0, 1].
  double quantile(double q) const { return percentile(q * 100.0); }
  double p50() const { return percentile(50.0); }
  double p95() const { return percentile(95.0); }
  double p99() const { return percentile(99.0); }

 private:
  // 64 linear sub-buckets per octave: values below 2^6 micro-units are
  // bucketed exactly, larger ones with <= 1/64 relative bucket width.
  static constexpr int kSubBucketBits = 6;
  static constexpr std::uint64_t kSubBuckets = 1ull << kSubBucketBits;

  static std::size_t bucket_index(std::uint64_t ticks);
  /// Midpoint of bucket `index`, in micro-units.
  static double bucket_mid(std::size_t index);

  /// Index of the bucket holding the rank-`rank` sample (1-based).
  std::size_t bucket_of_rank(std::uint64_t rank) const;

  struct BucketExemplars {
    std::uint64_t seen = 0;  // reservoir stream length for this bucket
    std::vector<Exemplar> entries;
  };
  void reservoir_insert(std::size_t bucket, const Exemplar& exemplar);
  /// Drop reservoirs from buckets that fell below the retention quantile.
  void prune_exemplars();

  std::vector<std::uint64_t> buckets_;
  std::size_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;

  ExemplarConfig exemplar_config_;
  std::vector<BucketExemplars> exemplars_;  // parallel to buckets_ when enabled
};

}  // namespace canary::obs
