// Span recorder: structured timing of lifecycle phases on the sim clock.
//
// Every function attempt decomposes into the four phases of the paper's
// Eq. (1) — launch, init, exec, finalize — plus the Canary-specific
// windows layered on top: checkpoint writes, replica provisioning,
// checkpoint restore, and failure-to-recovery intervals. The recorder
// captures each as a Span keyed by simulated time, cheap enough to leave
// on in tests and exportable to chrome://tracing for debugging.
//
// Friendly to hot paths by construction: spans live in one append-only
// vector, handles are plain indices (no shared ownership, no lookup maps),
// closing writes a single timestamp, and each run owns a private recorder
// so the record path takes no locks. A capacity cap bounds memory on
// pathological runs; overflow is counted, never reallocated past the cap.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "common/ids.hpp"
#include "common/time.hpp"

namespace canary::obs {

enum class SpanKind {
  kLaunch,       // cold container creation until the runtime is up
  kInit,         // runtime/library initialisation
  kRestore,      // checkpoint restore / warm dispatch / migration setup
  kExec,         // state-machine execution
  kFinalize,     // result persistence (Eq. (1) "fin")
  kCheckpoint,   // checkpoint write epilogue
  kReplication,  // replica provisioning (launch -> warm)
  kRecovery,     // failure detection until the lost work is regained
  kFailure,      // instant: a container/function kill
  kNodeFailure,  // instant: a node-level failure
  kOther,
};

std::string_view to_string_view(SpanKind kind);

struct SpanLabels {
  JobId job;
  FunctionId function;
  ContainerId container;
  NodeId node;
  int attempt = 0;
};

struct Span {
  SpanKind kind = SpanKind::kOther;
  std::string name;
  TimePoint start;
  TimePoint end;
  bool open = false;     // still awaiting close()
  bool instant = false;  // zero-duration marker event
  SpanLabels labels;

  Duration duration() const { return end - start; }
};

/// Index-based handle into the recorder. Default-constructed (or
/// overflow-issued) handles are inert: close() on them is a no-op.
class SpanHandle {
 public:
  SpanHandle() = default;
  bool valid() const { return index_ != kInvalid; }

 private:
  friend class SpanRecorder;
  static constexpr std::size_t kInvalid = static_cast<std::size_t>(-1);
  explicit SpanHandle(std::size_t index) : index_(index) {}
  std::size_t index_ = kInvalid;
};

class SpanRecorder {
 public:
  explicit SpanRecorder(std::size_t capacity = 1u << 20)
      : capacity_(capacity) {}

  /// Open a span starting at `start`. Returns an inert handle once the
  /// capacity cap is reached (the drop is counted).
  SpanHandle open(SpanKind kind, std::string name, TimePoint start,
                  SpanLabels labels = {});

  /// Close an open span at `end`. No-op for inert handles and for spans
  /// that were already closed.
  void close(SpanHandle& handle, TimePoint end);

  /// Record a complete [start, end] span retroactively — used for windows
  /// whose start is only known in hindsight (e.g. failure -> recovery).
  void record(SpanKind kind, std::string name, TimePoint start, TimePoint end,
              SpanLabels labels = {});

  /// Record a zero-duration marker event.
  void instant(SpanKind kind, std::string name, TimePoint at,
               SpanLabels labels = {});

  /// Close every still-open span at `end` (simulation teardown).
  void close_all_open(TimePoint end);

  const std::vector<Span>& spans() const { return spans_; }
  std::size_t size() const { return spans_.size(); }
  std::size_t dropped() const { return dropped_; }
  std::size_t open_count() const;

  std::size_t count_of(SpanKind kind) const;
  /// Sum of closed-span durations of `kind`.
  Duration total_duration(SpanKind kind) const;

  void clear();

 private:
  bool full() {
    if (spans_.size() < capacity_) return false;
    ++dropped_;
    return true;
  }

  std::size_t capacity_;
  std::size_t dropped_ = 0;
  std::vector<Span> spans_;
};

}  // namespace canary::obs
