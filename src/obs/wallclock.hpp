// Wall-clock bridge for the real-execution substrate.
//
// The simulator's spans and metrics are stamped with sim-time TimePoints
// (integer microseconds since run start). The real backend measures with
// CLOCK_MONOTONIC and maps instants into the same TimePoint/Duration
// vocabulary by anchoring an origin at construction, so observability
// code downstream of either substrate sees one clock type and never
// needs to know which kind of time it is looking at.
#pragma once

#include <cstdint>
#include <ctime>

#include "common/time.hpp"

namespace canary::obs {

/// Raw monotonic microseconds (CLOCK_MONOTONIC). Never wall-calendar
/// time: differences are meaningful, absolute values are not.
inline std::int64_t monotonic_usec() {
  timespec ts{};
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<std::int64_t>(ts.tv_sec) * 1'000'000 +
         static_cast<std::int64_t>(ts.tv_nsec) / 1'000;
}

/// Monotonic clock anchored at construction; now() yields TimePoints on
/// the same axis the simulator uses (microseconds since origin).
class WallClock {
 public:
  WallClock() : origin_usec_(monotonic_usec()) {}

  TimePoint now() const {
    return TimePoint::from_usec(monotonic_usec() - origin_usec_);
  }
  /// Re-anchor a raw monotonic stamp captured elsewhere (e.g. inside a
  /// worker process sharing the boot clock) onto this clock's axis.
  TimePoint from_monotonic(std::int64_t raw_usec) const {
    return TimePoint::from_usec(raw_usec - origin_usec_);
  }

 private:
  std::int64_t origin_usec_;
};

}  // namespace canary::obs
