#include "obs/event_log.hpp"

#include <fstream>
#include <ostream>

#include "common/logging.hpp"
#include "obs/json.hpp"

namespace canary::obs {

std::string_view to_string_view(EventKind kind) {
  switch (kind) {
    case EventKind::kSubmit: return "submit";
    case EventKind::kLaunch: return "launch";
    case EventKind::kInit: return "init";
    case EventKind::kRestore: return "restore";
    case EventKind::kExec: return "exec";
    case EventKind::kStateCommit: return "state_commit";
    case EventKind::kCheckpoint: return "checkpoint";
    case EventKind::kFinalize: return "finalize";
    case EventKind::kComplete: return "complete";
    case EventKind::kFailure: return "failure";
    case EventKind::kNodeFailure: return "node_failure";
    case EventKind::kDetect: return "detect";
    case EventKind::kRecoveryAction: return "recovery_action";
    case EventKind::kRecovered: return "recovered";
    case EventKind::kReplica: return "replica";
    case EventKind::kSlaViolation: return "sla_violation";
    case EventKind::kAnnotation: return "annotation";
    case EventKind::kQueued: return "queued";
    case EventKind::kShed: return "shed";
    case EventKind::kHedged: return "hedged";
    case EventKind::kHedgeCancelled: return "hedge_cancelled";
  }
  return "unknown";
}

EventId EventLog::append_raw(TraceId trace, EventId parent, EventKind kind,
                             std::string name, TimePoint at, SpanLabels labels,
                             EventId cause) {
  if (events_.size() >= capacity_) {
    ++dropped_;
    const auto slot = static_cast<std::size_t>(kind);
    ++dropped_by_kind_[slot];
    if (!drop_warned_[slot]) {
      drop_warned_[slot] = true;
      CANARY_LOG_WARN("event log at capacity (" << capacity_ << "): dropping '"
                                                << to_string_view(kind)
                                                << "' events");
    }
    return kNoEvent;
  }
  const EventId id = events_.size();
  Event event;
  event.id = id;
  event.trace = trace;
  event.parent = parent;
  event.cause = cause;
  event.kind = kind;
  event.name = std::move(name);
  event.at = at;
  event.labels = labels;
  events_.push_back(std::move(event));
  maybe_flight_dump(kind);
  return id;
}

EventId EventLog::extend(TraceContext& ctx, EventKind kind, std::string name,
                         TimePoint at, SpanLabels labels, EventId cause) {
  const EventId id =
      append_raw(ctx.trace, ctx.last, kind, std::move(name), at, labels, cause);
  if (id != kNoEvent) ctx.last = id;
  return id;
}

EventId EventLog::append(const TraceContext& ctx, EventKind kind,
                         std::string name, TimePoint at, SpanLabels labels,
                         EventId cause) {
  return append_raw(ctx.trace, ctx.last, kind, std::move(name), at, labels,
                    cause);
}

void EventLog::rebind(EventId event, TraceId trace, EventId parent) {
  if (event >= events_.size()) return;
  events_[event].trace = trace;
  events_[event].parent = parent;
}

std::size_t EventLog::count_of(EventKind kind) const {
  std::size_t count = 0;
  for (const Event& event : events_) {
    if (event.kind == kind) ++count;
  }
  return count;
}

void EventLog::set_flight_recorder(std::string path_prefix,
                                   std::size_t max_dumps, std::size_t tail) {
  flight_prefix_ = std::move(path_prefix);
  flight_max_dumps_ = max_dumps;
  flight_tail_ = tail;
  flight_dumps_ = 0;
}

void EventLog::maybe_flight_dump(EventKind kind) {
  if (flight_prefix_.empty() || flight_dumps_ >= flight_max_dumps_) return;
  if (kind != EventKind::kNodeFailure && kind != EventKind::kSlaViolation) {
    return;
  }
  const std::string path =
      flight_prefix_ + "." + std::to_string(flight_dumps_) + ".json";
  std::ofstream out(path);
  if (!out) return;
  const std::size_t begin =
      events_.size() > flight_tail_ ? events_.size() - flight_tail_ : 0;
  write_json(out, begin);
  if (out.good()) ++flight_dumps_;
}

void EventLog::write_json(std::ostream& os, std::size_t begin) const {
  JsonWriter json(os, /*indent=*/0);
  json.begin_array();
  for (std::size_t i = begin; i < events_.size(); ++i) {
    const Event& event = events_[i];
    json.begin_object();
    json.field("id", event.id);
    if (event.trace.valid()) json.field("trace", event.trace.value());
    if (event.parent != kNoEvent) json.field("parent", event.parent);
    if (event.cause != kNoEvent) json.field("cause", event.cause);
    json.field("kind", to_string_view(event.kind));
    json.field("name", event.name);
    json.field("t_us", event.at.count_usec());
    if (event.labels.job.valid()) {
      json.field("job", event.labels.job.value());
    }
    if (event.labels.function.valid()) {
      json.field("function", event.labels.function.value());
    }
    if (event.labels.container.valid()) {
      json.field("container", event.labels.container.value());
    }
    if (event.labels.node.valid()) {
      json.field("node", event.labels.node.value());
    }
    if (event.labels.attempt > 0) json.field("attempt", event.labels.attempt);
    json.end_object();
  }
  json.end_array();
  os << '\n';
}

void EventLog::clear() {
  events_.clear();
  dropped_ = 0;
  dropped_by_kind_.fill(0);
  drop_warned_.fill(false);
  next_trace_ = 1;
  flight_dumps_ = 0;
}

}  // namespace canary::obs
