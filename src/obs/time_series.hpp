// Windowed time-series rollups over simulated time.
//
// Run-level histograms and counters collapse the whole run into one
// number; the event log keeps everything but answers nothing without a
// walk. The TimeSeries sits between them: fixed sim-interval windows in a
// bounded ring buffer, each holding counter sums (rates once divided by
// the window), per-window latency distributions (windowed quantiles), and
// last-write levels (node/tenant health gauges). It feeds the
// `timeseries` section of a v3 run report and the chrome-trace counter
// track, so "p99 degraded" becomes "p99 degraded in the three windows
// after the node failure, while nodes_up was 7".
//
// Recording is O(log windows) map work per hook and entirely opt-in:
// a disabled TimeSeries ignores every call, and runs without one emit
// reports byte-identical to pre-series builds. Eviction at the ring
// bound is counted, never silent.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <string_view>

#include "common/time.hpp"
#include "obs/histogram.hpp"

namespace canary::obs {

struct TimeSeriesConfig {
  bool enabled = false;
  /// Rollup interval in simulated time.
  Duration window = Duration::sec(1.0);
  /// Ring-buffer bound: oldest windows are evicted (and counted) past it.
  std::size_t max_windows = 512;
};

class TimeSeries {
 public:
  TimeSeries() = default;
  explicit TimeSeries(const TimeSeriesConfig& config) : config_(config) {}

  void configure(const TimeSeriesConfig& config) { config_ = config; }
  bool enabled() const { return config_.enabled; }
  const TimeSeriesConfig& config() const { return config_; }

  // ---- recording hooks (no-ops while disabled) ------------------------
  /// Add to a per-window sum (completions, failures, sheds, ...).
  void count(std::string_view counter, TimePoint at, double delta = 1.0);
  /// Record into the window's distribution (per-window quantiles).
  void sample(std::string_view series, TimePoint at, double value);
  /// Last-write level within the window (nodes up, pool size, ...).
  void set_level(std::string_view level, TimePoint at, double value);

  /// One rollup interval. Keys are ordered maps so serialisation and
  /// merge are deterministic.
  struct Window {
    TimePoint start;
    std::map<std::string, double> counters;
    std::map<std::string, Histogram> samples;
    std::map<std::string, double> levels;
  };

  /// Oldest-to-newest retained windows.
  const std::deque<Window>& windows() const { return windows_; }
  std::uint64_t evicted() const { return evicted_; }

  /// Fold `other` in, aligning windows by start time: counters add,
  /// distributions merge exactly, levels take the max (deterministic and
  /// associative, unlike last-writer-wins across repetitions).
  void merge(const TimeSeries& other);

  void clear();

 private:
  Window& window_at(TimePoint at);

  TimeSeriesConfig config_;
  std::deque<Window> windows_;
  std::uint64_t evicted_ = 0;
};

}  // namespace canary::obs
