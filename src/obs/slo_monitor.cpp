#include "obs/slo_monitor.hpp"

namespace canary::obs {

void SloMonitor::arm(FunctionId fn, TimePoint deadline) {
  targets_[fn] = deadline;
}

std::optional<TimePoint> SloMonitor::deadline(FunctionId fn) const {
  auto it = targets_.find(fn);
  if (it == targets_.end()) return std::nullopt;
  return it->second;
}

bool SloMonitor::record_violation(FunctionId fn, TimePoint at) {
  auto [it, inserted] = violated_.emplace(fn, true);
  if (!inserted) return false;
  breaches_.emplace_back(fn, at);
  return true;
}

void SloMonitor::clear() {
  targets_.clear();
  violated_.clear();
  breaches_.clear();
}

}  // namespace canary::obs
