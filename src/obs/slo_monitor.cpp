#include "obs/slo_monitor.hpp"

#include <algorithm>

namespace canary::obs {

namespace {
constexpr TimePoint kUnarmed = TimePoint::max();

/// Geometric growth by hand: resize(n) alone allocates exactly n, so
/// arming sequential ids would trigger a reallocation per function.
template <typename V, typename T>
void grow_to(V& v, std::size_t slot, const T& fill) {
  if (slot < v.size()) return;
  const std::size_t grown = v.empty() ? 64 : v.size() * 2;
  v.resize(std::max(grown, slot + 1), fill);
}
}  // namespace

void SloMonitor::arm(FunctionId fn, TimePoint deadline) {
  const std::size_t slot = fn.value() - 1;
  grow_to(targets_, slot, kUnarmed);
  if (targets_[slot] == kUnarmed) ++armed_;
  targets_[slot] = deadline;
}

std::optional<TimePoint> SloMonitor::deadline(FunctionId fn) const {
  const std::size_t slot = fn.value() - 1;
  if (slot >= targets_.size() || targets_[slot] == kUnarmed) {
    return std::nullopt;
  }
  return targets_[slot];
}

bool SloMonitor::record_violation(FunctionId fn, TimePoint at) {
  const std::size_t slot = fn.value() - 1;
  grow_to(violated_, slot, false);
  if (violated_[slot]) return false;
  violated_[slot] = true;
  breaches_.emplace_back(fn, at);
  return true;
}

void SloMonitor::clear() {
  targets_.clear();
  violated_.clear();
  armed_ = 0;
  breaches_.clear();
}

}  // namespace canary::obs
