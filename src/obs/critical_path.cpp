#include "obs/critical_path.hpp"

#include <algorithm>
#include <cctype>

namespace canary::obs {

std::string_view to_string_view(PathComponent component) {
  switch (component) {
    case PathComponent::kDetection: return "detection";
    case PathComponent::kScheduling: return "scheduling";
    case PathComponent::kLaunch: return "launch";
    case PathComponent::kInit: return "init";
    case PathComponent::kRestore: return "restore";
    case PathComponent::kExec: return "exec";
    case PathComponent::kReExec: return "re_exec";
    case PathComponent::kFinalize: return "finalize";
    case PathComponent::kQueueing: return "queueing";
    case PathComponent::kHedging: return "hedging";
  }
  return "unknown";
}

double ComponentSums::total() const {
  double sum = 0.0;
  for (const double s : seconds) sum += s;
  return sum;
}

void ComponentSums::merge(const ComponentSums& other) {
  for (std::size_t i = 0; i < seconds.size(); ++i) {
    seconds[i] += other.seconds[i];
  }
}

PathComponent ComponentSums::dominant() const {
  std::size_t best = 0;
  for (std::size_t i = 1; i < seconds.size(); ++i) {
    if (seconds[i] > seconds[best]) best = i;
  }
  return static_cast<PathComponent>(best);
}

void BreakdownReport::FunctionBreakdown::merge(const FunctionBreakdown& other) {
  functions += other.functions;
  recoveries += other.recoveries;
  window_s += other.window_s;
  recovery_components.merge(other.recovery_components);
  end_to_end_components.merge(other.end_to_end_components);
}

void BreakdownReport::merge(const BreakdownReport& other) {
  recovery_count += other.recovery_count;
  recovery_window_s += other.recovery_window_s;
  recovery_components.merge(other.recovery_components);
  end_to_end_components.merge(other.end_to_end_components);
  for (const auto& [family, fb] : other.per_function) {
    per_function[family].merge(fb);
  }
  slo_targets += other.slo_targets;
  slo_violations += other.slo_violations;
  for (const auto& [component, count] : other.slo_breaches_by_component) {
    slo_breaches_by_component[component] += count;
  }
}

std::string base_function_name(std::string_view name) {
  const auto trailing_digits_start = [](std::string_view s) {
    std::size_t i = s.size();
    while (i > 0 && std::isdigit(static_cast<unsigned char>(s[i - 1]))) --i;
    return i;
  };
  std::size_t end = name.size();
  // Replica suffix "+r<k>" (request replication's expand_job).
  std::size_t d = trailing_digits_start(name.substr(0, end));
  if (d < end && d >= 2 && name[d - 1] == 'r' && name[d - 2] == '+') {
    end = d - 2;
  }
  // Instance suffix "-<i>" (workload generators).
  const std::string_view core = name.substr(0, end);
  d = trailing_digits_start(core);
  if (d < core.size() && d >= 1 && core[d - 1] == '-') end = d - 1;
  return std::string(name.substr(0, end));
}

namespace {

constexpr int kStateEnd = -1;  // kComplete: nothing after is attributed

int state_for(EventKind kind) {
  switch (kind) {
    case EventKind::kQueued:
      return static_cast<int>(PathComponent::kQueueing);
    case EventKind::kShed: return kStateEnd;
    case EventKind::kSubmit: return static_cast<int>(PathComponent::kScheduling);
    case EventKind::kLaunch: return static_cast<int>(PathComponent::kLaunch);
    case EventKind::kInit: return static_cast<int>(PathComponent::kInit);
    case EventKind::kRestore: return static_cast<int>(PathComponent::kRestore);
    case EventKind::kExec: return static_cast<int>(PathComponent::kExec);
    case EventKind::kFinalize:
      return static_cast<int>(PathComponent::kFinalize);
    case EventKind::kFailure:
      return static_cast<int>(PathComponent::kDetection);
    case EventKind::kDetect:
      return static_cast<int>(PathComponent::kScheduling);
    case EventKind::kComplete: return kStateEnd;
    default: return -2;  // no phase change
  }
}

}  // namespace

struct CriticalPathAnalyzer::FunctionTimeline {
  std::string family;
  /// (time, phase) transitions in event order; phase kStateEnd terminates.
  std::vector<std::pair<TimePoint, int>> transitions;
  /// Resolved recovery windows [failed, recovered].
  std::vector<std::pair<TimePoint, TimePoint>> windows;
  /// SLA breach instants.
  std::vector<TimePoint> breaches;
  /// Latest event time seen; closes the final open interval on runs that
  /// end mid-execution.
  TimePoint last_seen = TimePoint::origin();
  /// This copy lost a hedge race: its whole lifetime is speculation.
  bool hedge_cancelled = false;

  /// Decompose [from, to] into components. Execution time overlapping a
  /// recovery window counts as re-execution.
  ComponentSums accumulate(TimePoint from, TimePoint to) const {
    ComponentSums sums;
    for (std::size_t i = 0; i < transitions.size(); ++i) {
      const int state = transitions[i].second;
      if (state == kStateEnd) break;
      const TimePoint start = transitions[i].first;
      const TimePoint end =
          i + 1 < transitions.size() ? transitions[i + 1].first : last_seen;
      const TimePoint a = std::max(start, from);
      const TimePoint b = std::min(end, to);
      if (b <= a) continue;
      const double span_s = (b - a).to_seconds();
      if (state == static_cast<int>(PathComponent::kExec)) {
        const double re_s = window_overlap_seconds(a, b);
        sums[PathComponent::kReExec] += re_s;
        sums[PathComponent::kExec] += span_s - re_s;
      } else {
        sums.seconds[static_cast<std::size_t>(state)] += span_s;
      }
    }
    return sums;
  }

  /// Seconds of [a, b] covered by the union of the recovery windows.
  double window_overlap_seconds(TimePoint a, TimePoint b) const {
    // Windows are few per function; clip, sort, and merge.
    std::vector<std::pair<TimePoint, TimePoint>> clipped;
    for (const auto& [failed, recovered] : windows) {
      const TimePoint lo = std::max(failed, a);
      const TimePoint hi = std::min(recovered, b);
      if (hi > lo) clipped.emplace_back(lo, hi);
    }
    std::sort(clipped.begin(), clipped.end());
    double total = 0.0;
    TimePoint cursor = a;
    for (const auto& [lo, hi] : clipped) {
      const TimePoint start = std::max(lo, cursor);
      if (hi > start) {
        total += (hi - start).to_seconds();
        cursor = hi;
      }
    }
    return total;
  }
};

CriticalPathAnalyzer::CriticalPathAnalyzer(const EventLog& log) {
  analyze(log);
}

void CriticalPathAnalyzer::analyze(const EventLog& log) {
  std::map<FunctionId, FunctionTimeline> timelines;
  for (const Event& event : log.events()) {
    const FunctionId fn = event.labels.function;
    if (!fn.valid()) continue;
    FunctionTimeline& tl = timelines[fn];
    if (event.at > tl.last_seen) tl.last_seen = event.at;
    if ((event.kind == EventKind::kSubmit || event.kind == EventKind::kShed ||
         event.kind == EventKind::kQueued) &&
        tl.family.empty()) {
      tl.family = base_function_name(event.name);
    }
    if (event.kind == EventKind::kRecovered && event.cause != kNoEvent) {
      if (const Event* failure = log.find(event.cause)) {
        tl.windows.emplace_back(failure->at, event.at);
      }
      continue;
    }
    if (event.kind == EventKind::kSlaViolation) {
      tl.breaches.push_back(event.at);
      continue;
    }
    if (event.kind == EventKind::kHedgeCancelled) {
      tl.hedge_cancelled = true;
      continue;
    }
    const int state = state_for(event.kind);
    if (state == -2) continue;
    tl.transitions.emplace_back(event.at, state);
  }

  for (auto& [fn, tl] : timelines) {
    if (tl.family.empty()) tl.family = "unknown";
    if (tl.transitions.empty()) continue;
    const TimePoint first = tl.transitions.front().first;

    PerFunction& pf = functions_[fn];
    pf.family = tl.family;
    pf.end_to_end = tl.accumulate(first, tl.last_seen);
    if (tl.hedge_cancelled) {
      // Every second a losing copy spent — launch, init, exec — was
      // speculation, not useful work. Collapsing the loser's whole
      // decomposition into the hedging component keeps family sums a
      // partition of wall time while making the hedge overhead visible.
      ComponentSums speculation;
      speculation[PathComponent::kHedging] = pf.end_to_end.total();
      pf.end_to_end = speculation;
    }

    for (const auto& [failed, recovered] : tl.windows) {
      RecoveryWindow window;
      window.function = fn;
      window.family = tl.family;
      window.failed = failed;
      window.recovered = recovered;
      window.components = tl.accumulate(failed, recovered);
      pf.recoveries += 1;
      pf.window_s += window.window().to_seconds();
      pf.recovery.merge(window.components);
      windows_.push_back(std::move(window));
    }

    for (const TimePoint breach : tl.breaches) {
      const ComponentSums to_breach = tl.accumulate(first, breach);
      breaches_.emplace_back(tl.family, to_breach.dominant());
    }
  }
}

BreakdownReport CriticalPathAnalyzer::report(std::uint64_t slo_targets) const {
  BreakdownReport out;
  out.slo_targets = slo_targets;
  for (const RecoveryWindow& window : windows_) {
    out.recovery_count += 1;
    out.recovery_window_s += window.window().to_seconds();
    out.recovery_components.merge(window.components);
  }
  for (const auto& [fn, pf] : functions_) {
    out.end_to_end_components.merge(pf.end_to_end);
    BreakdownReport::FunctionBreakdown& fb = out.per_function[pf.family];
    fb.functions += 1;
    fb.recoveries += pf.recoveries;
    fb.window_s += pf.window_s;
    fb.recovery_components.merge(pf.recovery);
    fb.end_to_end_components.merge(pf.end_to_end);
  }
  for (const auto& breach : breaches_) {
    out.slo_violations += 1;
    out.slo_breaches_by_component[std::string(to_string_view(breach.second))] +=
        1;
  }
  return out;
}

}  // namespace canary::obs
