// Chrome trace-event exporter.
//
// Serialises a SpanRecorder into the chrome://tracing / Perfetto JSON
// format ("traceEvents" with complete "X" and instant "i" events) so a
// simulated run can be inspected on a real timeline: one track per node,
// lifecycle phases nested per function attempt, checkpoint/replication/
// recovery windows overlaid. Open chrome://tracing (or ui.perfetto.dev)
// and load the file.
//
// The combined overload also serialises an EventLog: causal events become
// instant markers, and every cross-chain `cause` edge (node failure ->
// container kill, failure -> recovery completion) becomes a flow-event
// pair ("ph":"s" / "ph":"f") that renders as an arrow across tracks.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "obs/event_log.hpp"
#include "obs/span.hpp"
#include "obs/time_series.hpp"

namespace canary::obs {

/// One process ("pid") worth of trace inputs — a shard's spans, causal
/// events, and rollups. Any member may be null.
struct TraceSection {
  const SpanRecorder* spans = nullptr;
  const EventLog* events = nullptr;
  const TimeSeries* series = nullptr;
};

/// Write the full trace JSON document for `spans` to `os`.
void write_chrome_trace(std::ostream& os, const SpanRecorder& spans);

/// Combined export: span timeline plus causal events with flow arrows for
/// cause edges. Either input may be null.
void write_chrome_trace(std::ostream& os, const SpanRecorder* spans,
                        const EventLog* events);

/// Full export: spans + causal events + windowed rollups rendered as
/// counter tracks ("ph":"C" — one stepped graph per counter/level/p99
/// stream, named "ts.<stream>"). A null or disabled series emits exactly
/// the two-argument document, byte for byte.
void write_chrome_trace(std::ostream& os, const SpanRecorder* spans,
                        const EventLog* events, const TimeSeries* series);

/// Multi-process export for sharded runs: section i renders under
/// pid == i + 1 with a "shard i" process label, so every partition's
/// node tracks group under their own process lane in the viewer. A
/// single unlabeled section at pid 1 is NOT emitted by this overload —
/// monolithic runs keep using the pointer overloads above, whose output
/// is byte-identical to pre-sharding builds.
void write_chrome_trace(std::ostream& os,
                        const std::vector<TraceSection>& sections);

/// Write to `path`; returns false (and leaves no partial file guarantees)
/// when the file cannot be opened.
bool write_chrome_trace_file(const std::string& path,
                             const SpanRecorder& spans);
bool write_chrome_trace_file(const std::string& path,
                             const SpanRecorder* spans,
                             const EventLog* events);
bool write_chrome_trace_file(const std::string& path,
                             const SpanRecorder* spans, const EventLog* events,
                             const TimeSeries* series);
bool write_chrome_trace_file(const std::string& path,
                             const std::vector<TraceSection>& sections);

}  // namespace canary::obs
