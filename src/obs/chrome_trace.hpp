// Chrome trace-event exporter.
//
// Serialises a SpanRecorder into the chrome://tracing / Perfetto JSON
// format ("traceEvents" with complete "X" and instant "i" events) so a
// simulated run can be inspected on a real timeline: one track per node,
// lifecycle phases nested per function attempt, checkpoint/replication/
// recovery windows overlaid. Open chrome://tracing (or ui.perfetto.dev)
// and load the file.
//
// The combined overload also serialises an EventLog: causal events become
// instant markers, and every cross-chain `cause` edge (node failure ->
// container kill, failure -> recovery completion) becomes a flow-event
// pair ("ph":"s" / "ph":"f") that renders as an arrow across tracks.
#pragma once

#include <iosfwd>
#include <string>

#include "obs/event_log.hpp"
#include "obs/span.hpp"
#include "obs/time_series.hpp"

namespace canary::obs {

/// Write the full trace JSON document for `spans` to `os`.
void write_chrome_trace(std::ostream& os, const SpanRecorder& spans);

/// Combined export: span timeline plus causal events with flow arrows for
/// cause edges. Either input may be null.
void write_chrome_trace(std::ostream& os, const SpanRecorder* spans,
                        const EventLog* events);

/// Full export: spans + causal events + windowed rollups rendered as
/// counter tracks ("ph":"C" — one stepped graph per counter/level/p99
/// stream, named "ts.<stream>"). A null or disabled series emits exactly
/// the two-argument document, byte for byte.
void write_chrome_trace(std::ostream& os, const SpanRecorder* spans,
                        const EventLog* events, const TimeSeries* series);

/// Write to `path`; returns false (and leaves no partial file guarantees)
/// when the file cannot be opened.
bool write_chrome_trace_file(const std::string& path,
                             const SpanRecorder& spans);
bool write_chrome_trace_file(const std::string& path,
                             const SpanRecorder* spans,
                             const EventLog* events);
bool write_chrome_trace_file(const std::string& path,
                             const SpanRecorder* spans, const EventLog* events,
                             const TimeSeries* series);

}  // namespace canary::obs
