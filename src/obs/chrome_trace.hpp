// Chrome trace-event exporter.
//
// Serialises a SpanRecorder into the chrome://tracing / Perfetto JSON
// format ("traceEvents" with complete "X" and instant "i" events) so a
// simulated run can be inspected on a real timeline: one track per node,
// lifecycle phases nested per function attempt, checkpoint/replication/
// recovery windows overlaid. Open chrome://tracing (or ui.perfetto.dev)
// and load the file.
#pragma once

#include <iosfwd>
#include <string>

#include "obs/span.hpp"

namespace canary::obs {

/// Write the full trace JSON document for `spans` to `os`.
void write_chrome_trace(std::ostream& os, const SpanRecorder& spans);

/// Write to `path`; returns false (and leaves no partial file guarantees)
/// when the file cannot be opened.
bool write_chrome_trace_file(const std::string& path,
                             const SpanRecorder& spans);

}  // namespace canary::obs
