// Chrome trace-event exporter.
//
// Serialises a SpanRecorder into the chrome://tracing / Perfetto JSON
// format ("traceEvents" with complete "X" and instant "i" events) so a
// simulated run can be inspected on a real timeline: one track per node,
// lifecycle phases nested per function attempt, checkpoint/replication/
// recovery windows overlaid. Open chrome://tracing (or ui.perfetto.dev)
// and load the file.
//
// The combined overload also serialises an EventLog: causal events become
// instant markers, and every cross-chain `cause` edge (node failure ->
// container kill, failure -> recovery completion) becomes a flow-event
// pair ("ph":"s" / "ph":"f") that renders as an arrow across tracks.
#pragma once

#include <iosfwd>
#include <string>

#include "obs/event_log.hpp"
#include "obs/span.hpp"

namespace canary::obs {

/// Write the full trace JSON document for `spans` to `os`.
void write_chrome_trace(std::ostream& os, const SpanRecorder& spans);

/// Combined export: span timeline plus causal events with flow arrows for
/// cause edges. Either input may be null.
void write_chrome_trace(std::ostream& os, const SpanRecorder* spans,
                        const EventLog* events);

/// Write to `path`; returns false (and leaves no partial file guarantees)
/// when the file cannot be opened.
bool write_chrome_trace_file(const std::string& path,
                             const SpanRecorder& spans);
bool write_chrome_trace_file(const std::string& path,
                             const SpanRecorder* spans,
                             const EventLog* events);

}  // namespace canary::obs
