#include "obs/histogram.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

namespace canary::obs {

namespace {

/// splitmix64-style finalizer: a stateless, deterministic 64-bit mix used
/// for reservoir replacement draws.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Deterministic ordering for exemplar listings and merge truncation:
/// largest value first, ties broken by trace id then ref.
bool exemplar_before(const Exemplar& a, const Exemplar& b) {
  if (a.value != b.value) return a.value > b.value;
  if (a.trace != b.trace) return a.trace < b.trace;
  return a.ref < b.ref;
}

}  // namespace

std::size_t Histogram::bucket_index(std::uint64_t ticks) {
  if (ticks < kSubBuckets) return static_cast<std::size_t>(ticks);
  const int msb = 63 - std::countl_zero(ticks);
  const int shift = msb - (kSubBucketBits - 1);
  // Top kSubBucketBits bits of the value: in [kSubBuckets/2, kSubBuckets).
  const std::uint64_t sub = ticks >> shift;
  return kSubBuckets +
         static_cast<std::size_t>(shift - 1) * (kSubBuckets / 2) +
         static_cast<std::size_t>(sub - kSubBuckets / 2);
}

double Histogram::bucket_mid(std::size_t index) {
  if (index < kSubBuckets) return static_cast<double>(index);
  const std::size_t offset = index - kSubBuckets;
  const int shift = static_cast<int>(offset / (kSubBuckets / 2)) + 1;
  const std::uint64_t sub = kSubBuckets / 2 + offset % (kSubBuckets / 2);
  const double lo = std::ldexp(static_cast<double>(sub), shift);
  const double width = std::ldexp(1.0, shift);
  return lo + width / 2.0;
}

void Histogram::record(double value) {
  if (count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;

  const double clamped = std::max(value, 0.0);
  const auto ticks = static_cast<std::uint64_t>(std::llround(clamped * 1e6));
  const std::size_t index = bucket_index(ticks);
  if (index >= buckets_.size()) buckets_.resize(index + 1, 0);
  ++buckets_[index];
}

void Histogram::record_traced(double value, std::uint64_t trace,
                              std::uint64_t ref) {
  record(value);
  if (!exemplar_config_.enabled) return;

  const double clamped = std::max(value, 0.0);
  const auto ticks = static_cast<std::uint64_t>(std::llround(clamped * 1e6));
  const std::size_t index = bucket_index(ticks);
  if (exemplars_.size() < buckets_.size()) exemplars_.resize(buckets_.size());

  // Retention floor on the live distribution: the bucket holding the
  // min_quantile sample. Buckets below it never retain and are pruned,
  // so memory tracks only the tail the analyzer will ever ask about.
  const double q = std::clamp(exemplar_config_.min_quantile, 0.0, 1.0);
  const auto rank = std::min<std::uint64_t>(
      count_, std::max<std::uint64_t>(
                  1, static_cast<std::uint64_t>(std::ceil(
                         q * static_cast<double>(count_) - 1e-9))));
  const std::size_t floor_bucket = bucket_of_rank(rank);
  if (index >= floor_bucket) {
    reservoir_insert(index, Exemplar{value, trace, ref});
  }
  prune_exemplars();
}

void Histogram::enable_exemplars(const ExemplarConfig& config) {
  exemplar_config_ = config;
  if (!config.enabled) {
    exemplars_.clear();
    exemplars_.shrink_to_fit();
  }
}

void Histogram::reservoir_insert(std::size_t bucket,
                                 const Exemplar& exemplar) {
  BucketExemplars& slot = exemplars_[bucket];
  ++slot.seen;
  if (slot.entries.size() < exemplar_config_.per_bucket) {
    slot.entries.push_back(exemplar);
    return;
  }
  // Classic reservoir step, drawn from a stateless hash of
  // (seed, bucket, stream position) so the choice is reproducible.
  const std::uint64_t draw =
      mix64(exemplar_config_.seed ^ mix64(bucket * 0x100000001b3ull) ^
            slot.seen) %
      slot.seen;
  if (draw < slot.entries.size()) {
    slot.entries[static_cast<std::size_t>(draw)] = exemplar;
  }
}

void Histogram::prune_exemplars() {
  if (count_ == 0 || exemplars_.empty()) return;
  const double q = std::clamp(exemplar_config_.min_quantile, 0.0, 1.0);
  const auto rank = std::min<std::uint64_t>(
      count_, std::max<std::uint64_t>(
                  1, static_cast<std::uint64_t>(std::ceil(
                         q * static_cast<double>(count_) - 1e-9))));
  const std::size_t floor_bucket = bucket_of_rank(rank);
  const std::size_t limit = std::min(floor_bucket, exemplars_.size());
  for (std::size_t i = 0; i < limit; ++i) {
    if (!exemplars_[i].entries.empty()) {
      exemplars_[i].entries.clear();
      exemplars_[i].seen = 0;  // re-entering the tail restarts the stream
    }
  }
}

std::vector<Exemplar> Histogram::exemplars_above(double min_value) const {
  std::vector<Exemplar> out;
  for (const BucketExemplars& slot : exemplars_) {
    for (const Exemplar& exemplar : slot.entries) {
      if (exemplar.value >= min_value) out.push_back(exemplar);
    }
  }
  std::sort(out.begin(), out.end(), exemplar_before);
  return out;
}

std::size_t Histogram::exemplar_count() const {
  std::size_t total = 0;
  for (const BucketExemplars& slot : exemplars_) total += slot.entries.size();
  return total;
}

void Histogram::merge(const Histogram& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
  if (other.buckets_.size() > buckets_.size()) {
    buckets_.resize(other.buckets_.size(), 0);
  }
  for (std::size_t i = 0; i < other.buckets_.size(); ++i) {
    buckets_[i] += other.buckets_[i];
  }

  if (!exemplar_config_.enabled && other.exemplar_config_.enabled) {
    exemplar_config_ = other.exemplar_config_;
  }
  if (!other.exemplars_.empty()) {
    if (exemplars_.size() < other.exemplars_.size()) {
      exemplars_.resize(other.exemplars_.size());
    }
    for (std::size_t i = 0; i < other.exemplars_.size(); ++i) {
      const BucketExemplars& theirs = other.exemplars_[i];
      if (theirs.entries.empty() && theirs.seen == 0) continue;
      BucketExemplars& ours = exemplars_[i];
      ours.seen += theirs.seen;
      ours.entries.insert(ours.entries.end(), theirs.entries.begin(),
                          theirs.entries.end());
      if (ours.entries.size() > exemplar_config_.per_bucket) {
        // Keep the K largest values: a deterministic rule independent of
        // which repetition finished first.
        std::sort(ours.entries.begin(), ours.entries.end(), exemplar_before);
        ours.entries.resize(exemplar_config_.per_bucket);
      }
    }
    prune_exemplars();
  }
}

std::size_t Histogram::bucket_of_rank(std::uint64_t rank) const {
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    cumulative += buckets_[i];
    if (cumulative >= rank && buckets_[i] > 0) return i;
  }
  return buckets_.empty() ? 0 : buckets_.size() - 1;
}

double Histogram::percentile(double p) const {
  if (count_ == 0) return 0.0;
  if (p <= 0.0) return min_;
  if (p >= 100.0) return max_;
  // Nearest-rank with a guard: p/100*count can land an ulp above its
  // exact value (e.g. 40 samples at p=97.5), which would inflate the
  // rank by one full position. Shaving 1e-9 before ceil() keeps exact
  // boundaries on the correct side without disturbing interior ranks.
  const auto rank = std::min<std::uint64_t>(
      count_, std::max<std::uint64_t>(
                  1, static_cast<std::uint64_t>(std::ceil(
                         p / 100.0 * static_cast<double>(count_) - 1e-9))));
  const std::size_t index = bucket_of_rank(rank);
  const double value = bucket_mid(index) / 1e6;
  return std::clamp(value, min_, max_);
}

}  // namespace canary::obs
