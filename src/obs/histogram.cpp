#include "obs/histogram.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

namespace canary::obs {

std::size_t Histogram::bucket_index(std::uint64_t ticks) {
  if (ticks < kSubBuckets) return static_cast<std::size_t>(ticks);
  const int msb = 63 - std::countl_zero(ticks);
  const int shift = msb - (kSubBucketBits - 1);
  // Top kSubBucketBits bits of the value: in [kSubBuckets/2, kSubBuckets).
  const std::uint64_t sub = ticks >> shift;
  return kSubBuckets +
         static_cast<std::size_t>(shift - 1) * (kSubBuckets / 2) +
         static_cast<std::size_t>(sub - kSubBuckets / 2);
}

double Histogram::bucket_mid(std::size_t index) {
  if (index < kSubBuckets) return static_cast<double>(index);
  const std::size_t offset = index - kSubBuckets;
  const int shift = static_cast<int>(offset / (kSubBuckets / 2)) + 1;
  const std::uint64_t sub = kSubBuckets / 2 + offset % (kSubBuckets / 2);
  const double lo = std::ldexp(static_cast<double>(sub), shift);
  const double width = std::ldexp(1.0, shift);
  return lo + width / 2.0;
}

void Histogram::record(double value) {
  if (count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;

  const double clamped = std::max(value, 0.0);
  const auto ticks = static_cast<std::uint64_t>(std::llround(clamped * 1e6));
  const std::size_t index = bucket_index(ticks);
  if (index >= buckets_.size()) buckets_.resize(index + 1, 0);
  ++buckets_[index];
}

void Histogram::merge(const Histogram& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
  if (other.buckets_.size() > buckets_.size()) {
    buckets_.resize(other.buckets_.size(), 0);
  }
  for (std::size_t i = 0; i < other.buckets_.size(); ++i) {
    buckets_[i] += other.buckets_[i];
  }
}

double Histogram::percentile(double p) const {
  if (count_ == 0) return 0.0;
  if (p <= 0.0) return min_;
  if (p >= 100.0) return max_;
  const auto rank = static_cast<std::uint64_t>(
      std::ceil(p / 100.0 * static_cast<double>(count_)));
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    cumulative += buckets_[i];
    if (cumulative >= rank && buckets_[i] > 0) {
      const double value = bucket_mid(i) / 1e6;
      return std::clamp(value, min_, max_);
    }
  }
  return max_;
}

}  // namespace canary::obs
