// Causal event log: the per-invocation trace DAG behind the span timeline.
//
// Spans (span.hpp) answer "how long did this phase take"; the event log
// answers "why did it happen". Every invocation carries a TraceContext —
// a trace id plus the id of its most recent event — and each lifecycle
// step (submit, launch, init, restore, exec, state commit, finalize,
// complete), every failure, every detection, and every recovery action
// appends an Event whose `parent` points at the previous event of the
// same causal chain. Cross-chain causality (a node failure killing many
// containers, a failure whose lost work is later regained) is expressed
// through the secondary `cause` edge, which the chrome-trace exporter
// renders as flow arrows.
//
// Like SpanRecorder, the log is one append-only vector with a capacity
// cap: overflow is counted (truncated()), never reallocated past the cap,
// and each run owns a private log so the record path takes no locks.
//
// Flight recorder: when configured with an output prefix, the log dumps
// its most recent events to disk whenever a node failure or an SLA breach
// is appended — a bounded number of post-mortem snapshots for runs too
// big to keep full traces of.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/ids.hpp"
#include "common/time.hpp"
#include "obs/span.hpp"

namespace canary::obs {

struct TraceTag {};
/// One causal chain: an invocation and everything done on its behalf.
/// TraceId::invalid() marks ambient events (platform/injector scope).
using TraceId = Id<TraceTag>;

/// Index of an event within its EventLog. kNoEvent marks "no parent" /
/// "no cause" / "dropped by the capacity cap".
using EventId = std::uint64_t;
inline constexpr EventId kNoEvent = ~EventId{0};

/// Propagated alongside an invocation: which trace it belongs to and the
/// last event appended on its behalf (the parent of the next one).
struct TraceContext {
  TraceId trace;
  EventId last = kNoEvent;

  bool valid() const { return trace.valid(); }
};

enum class EventKind {
  kSubmit,          // invocation created at job submission
  kLaunch,          // cold container launch begins
  kInit,            // runtime initialisation begins
  kRestore,         // checkpoint restore / warm dispatch begins
  kExec,            // state-machine execution begins
  kStateCommit,     // one state finished (work_done advanced)
  kCheckpoint,      // checkpoint persisted for the committed state
  kFinalize,        // fin_f begins
  kComplete,        // invocation done
  kFailure,         // container/function kill
  kNodeFailure,     // node-level failure (ambient root of its victims)
  kDetect,          // the platform noticed the failure
  kRecoveryAction,  // a recovery strategy chose its path
  kRecovered,       // lost work regained (cause = the kFailure event)
  kReplica,         // replica/standby provisioning milestones
  kSlaViolation,    // deadline passed without completion
  kAnnotation,      // freeform marker (log mirror, injector notes)
  kQueued,          // open-loop arrival entered admission control
  kShed,            // admission control rejected the request (terminal)
  kHedged,          // a speculative clone was dispatched for this chain
  kHedgeCancelled,  // this copy lost the hedge race (cause = winner)
};

/// Number of EventKind values; sized per-kind arrays (drop counters).
inline constexpr std::size_t kEventKindCount =
    static_cast<std::size_t>(EventKind::kHedgeCancelled) + 1;

std::string_view to_string_view(EventKind kind);

struct Event {
  EventId id = kNoEvent;
  TraceId trace;
  EventId parent = kNoEvent;  // previous event of the same chain
  EventId cause = kNoEvent;   // cross-chain causal edge (flow arrow)
  EventKind kind = EventKind::kAnnotation;
  std::string name;
  TimePoint at;
  SpanLabels labels;
};

class EventLog {
 public:
  explicit EventLog(std::size_t capacity = 1u << 20)
      : capacity_(capacity) {}

  TraceId new_trace() { return TraceId{next_trace_++}; }

  /// Append an event chained onto `ctx` (parent = ctx.last) and advance
  /// the context. Returns kNoEvent once the capacity cap is reached (the
  /// drop is counted and the context is left unchanged).
  EventId extend(TraceContext& ctx, EventKind kind, std::string name,
                 TimePoint at, SpanLabels labels = {},
                 EventId cause = kNoEvent);

  /// Append a leaf event hanging off `ctx` without advancing it — side
  /// branches such as checkpoint writes recorded by the Canary modules.
  EventId append(const TraceContext& ctx, EventKind kind, std::string name,
                 TimePoint at, SpanLabels labels = {},
                 EventId cause = kNoEvent);

  /// Append an event with explicit edges (ambient events pass
  /// TraceId::invalid() and kNoEvent).
  EventId append_raw(TraceId trace, EventId parent, EventKind kind,
                     std::string name, TimePoint at, SpanLabels labels = {},
                     EventId cause = kNoEvent);

  /// Re-home an existing event onto another trace under a new parent.
  /// Request replication merges each shadow's submit event into the
  /// primary's trace so the whole race shares one DAG.
  void rebind(EventId event, TraceId trace, EventId parent);

  const std::vector<Event>& events() const { return events_; }
  const Event* find(EventId id) const {
    return id < events_.size() ? &events_[id] : nullptr;
  }
  std::size_t size() const { return events_.size(); }
  std::size_t dropped() const { return dropped_; }
  /// Drops attributed to one EventKind: which part of the causal record
  /// is incomplete, not just that something is. A chain missing kDetect
  /// drops reads very differently from one missing kAnnotation drops.
  std::size_t dropped_of(EventKind kind) const {
    return dropped_by_kind_[static_cast<std::size_t>(kind)];
  }
  /// True when the capacity cap discarded at least one event — consumers
  /// must treat counts derived from the log as lower bounds.
  bool truncated() const { return dropped_ > 0; }

  std::size_t count_of(EventKind kind) const;

  /// Enable post-mortem dumps: on every kNodeFailure / kSlaViolation
  /// append, write the most recent `tail` events to
  /// "<prefix>.<n>.json" (n = 0..max_dumps-1, then stop).
  void set_flight_recorder(std::string path_prefix, std::size_t max_dumps = 4,
                           std::size_t tail = 256);
  std::size_t flight_dumps_written() const { return flight_dumps_; }

  /// Serialise events [begin, size) as a deterministic JSON array of
  /// objects (the flight-recorder format; also handy in tests).
  void write_json(std::ostream& os, std::size_t begin = 0) const;

  void clear();

 private:
  void maybe_flight_dump(EventKind kind);

  std::size_t capacity_;
  std::size_t dropped_ = 0;
  std::array<std::size_t, kEventKindCount> dropped_by_kind_{};
  std::array<bool, kEventKindCount> drop_warned_{};
  std::uint64_t next_trace_ = 1;
  std::vector<Event> events_;

  std::string flight_prefix_;
  std::size_t flight_max_dumps_ = 0;
  std::size_t flight_tail_ = 256;
  std::size_t flight_dumps_ = 0;
};

}  // namespace canary::obs
