#include "obs/span.hpp"

namespace canary::obs {

std::string_view to_string_view(SpanKind kind) {
  switch (kind) {
    case SpanKind::kLaunch: return "launch";
    case SpanKind::kInit: return "init";
    case SpanKind::kRestore: return "restore";
    case SpanKind::kExec: return "exec";
    case SpanKind::kFinalize: return "finalize";
    case SpanKind::kCheckpoint: return "checkpoint";
    case SpanKind::kReplication: return "replication";
    case SpanKind::kRecovery: return "recovery";
    case SpanKind::kFailure: return "failure";
    case SpanKind::kNodeFailure: return "node_failure";
    case SpanKind::kOther: return "other";
  }
  return "unknown";
}

SpanHandle SpanRecorder::open(SpanKind kind, std::string name, TimePoint start,
                              SpanLabels labels) {
  if (full()) return SpanHandle{};
  Span span;
  span.kind = kind;
  span.name = std::move(name);
  span.start = start;
  span.end = start;
  span.open = true;
  span.labels = labels;
  spans_.push_back(std::move(span));
  return SpanHandle{spans_.size() - 1};
}

void SpanRecorder::close(SpanHandle& handle, TimePoint end) {
  if (!handle.valid() || handle.index_ >= spans_.size()) return;
  Span& span = spans_[handle.index_];
  if (span.open) {
    span.end = end;
    span.open = false;
  }
  handle = SpanHandle{};
}

void SpanRecorder::record(SpanKind kind, std::string name, TimePoint start,
                          TimePoint end, SpanLabels labels) {
  if (full()) return;
  Span span;
  span.kind = kind;
  span.name = std::move(name);
  span.start = start;
  span.end = end;
  span.labels = labels;
  spans_.push_back(std::move(span));
}

void SpanRecorder::instant(SpanKind kind, std::string name, TimePoint at,
                           SpanLabels labels) {
  if (full()) return;
  Span span;
  span.kind = kind;
  span.name = std::move(name);
  span.start = at;
  span.end = at;
  span.instant = true;
  span.labels = labels;
  spans_.push_back(std::move(span));
}

void SpanRecorder::close_all_open(TimePoint end) {
  for (Span& span : spans_) {
    if (span.open) {
      span.end = end;
      span.open = false;
    }
  }
}

std::size_t SpanRecorder::open_count() const {
  std::size_t open = 0;
  for (const Span& span : spans_) {
    if (span.open) ++open;
  }
  return open;
}

std::size_t SpanRecorder::count_of(SpanKind kind) const {
  std::size_t count = 0;
  for (const Span& span : spans_) {
    if (span.kind == kind) ++count;
  }
  return count;
}

Duration SpanRecorder::total_duration(SpanKind kind) const {
  Duration total = Duration::zero();
  for (const Span& span : spans_) {
    if (span.kind == kind && !span.open && !span.instant) {
      total += span.duration();
    }
  }
  return total;
}

void SpanRecorder::clear() {
  spans_.clear();
  dropped_ = 0;
}

}  // namespace canary::obs
