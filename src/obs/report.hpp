// Machine-readable run report (the `run_report.json` schema, v2).
//
// Every bench binary and the experiment CLI emit one of these so results
// stop living in ad-hoc stdout tables: CI archives BENCH_<name>.json per
// commit and can diff the perf trajectory mechanically. The schema is
// deliberately small and stable:
//
//   {
//     "schema": "canary.run_report/v2",
//     "name": "<binary or experiment id>",
//     "params": { "<key>": "<string value>", ... },
//     "scalars": { "<key>": <number>, ... },
//     "metrics": {
//       "counters": { "<name>": <number>, ... },
//       "gauges": { "<name>": <number>, ... },
//       "histograms": {
//         "<name>": { "count", "mean", "min", "max", "p50", "p95", "p99" }
//       }
//     },
//     "breakdown": {                    // v2: critical-path decomposition
//       "recoveries": { "count", "window_s", "components": {..} },
//       "end_to_end": { "components": {..} },
//       "per_function": { "<family>": { "functions", "recoveries",
//                                       "window_s", "components": {..} } },
//       "slo": { "targets", "violations", "violation_ratio",
//                "breaches_by_component": {..} }
//     },
//     "obs": {                          // v2: recorder health
//       "spans":  { "recorded", "dropped", "truncated" },
//       "events": { "recorded", "dropped", "truncated" }
//     },
//     "tail": { ... },                  // v3 only: tail attribution
//     "timeseries": { ... },            // v3 only: windowed rollups
//     "series": [ { "name", "columns": [..], "rows": [[..], ..] }, .. ],
//     "claims": [ { "claim", "measured", "unit" }, .. ]
//   }
//
// With tail attribution enabled the schema string becomes
// "canary.run_report/v3" and the `tail` / `timeseries` sections appear;
// otherwise the report is exactly the v2 document above.
//
// Serialisation is deterministic: map keys are ordered, numbers are
// formatted locale-free, and nothing wall-clock-dependent is embedded —
// two identical seeded runs produce byte-identical reports.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "obs/critical_path.hpp"
#include "obs/metric_registry.hpp"
#include "obs/tail_analyzer.hpp"
#include "obs/time_series.hpp"

namespace canary::obs {

inline constexpr std::string_view kRunReportSchema = "canary.run_report/v2";
/// Emitted instead of v2 when the report carries `tail` / `timeseries`
/// sections (attribution enabled). Attribution-off reports keep the v2
/// string and stay byte-identical to pre-attribution builds.
inline constexpr std::string_view kRunReportSchemaV3 = "canary.run_report/v3";

/// Health of one capacity-capped recorder stream. A truncated stream means
/// every count derived from it is a lower bound — the report says so
/// explicitly instead of silently under-reporting.
struct RecorderHealth {
  std::uint64_t recorded = 0;
  std::uint64_t dropped = 0;
  /// Drops attributed to one event kind (event stream only; empty unless
  /// the cap actually discarded something, so clean runs serialise
  /// exactly as before the per-kind split existed).
  std::map<std::string, std::uint64_t> dropped_by_kind;

  bool truncated() const { return dropped > 0; }
  void merge(const RecorderHealth& other) {
    recorded += other.recorded;
    dropped += other.dropped;
    for (const auto& [kind, count] : other.dropped_by_kind) {
      dropped_by_kind[kind] += count;
    }
  }
};

struct RunReport {
  std::string name;
  /// Experiment configuration, stringly-typed on purpose: params document
  /// the run, they are not re-parsed.
  std::map<std::string, std::string> params;
  /// Headline measurements (means, reductions, overheads).
  std::map<std::string, double> scalars;
  /// Full metric registry snapshot (merged across repetitions).
  MetricRegistry metrics;
  /// Critical-path decomposition (merged across repetitions); zero-valued
  /// when the run recorded no causal events.
  BreakdownReport breakdown;
  /// Recorder capacity-cap health for the span and event streams.
  RecorderHealth span_health;
  RecorderHealth event_health;

  /// Tail-latency attribution (v3; absent from the JSON unless enabled).
  TailReport tail;
  /// Windowed rollups (v3; absent from the JSON unless enabled).
  TimeSeries timeseries;

  /// A named table, e.g. one reproduced figure's series.
  struct Series {
    std::string name;
    std::vector<std::string> columns;
    std::vector<std::vector<std::string>> rows;
  };
  std::vector<Series> series;

  /// Paper-claim vs measured-value pairs from the bench printouts.
  struct Claim {
    std::string claim;
    double measured = 0.0;
    std::string unit;
  };
  std::vector<Claim> claims;

  void set_param(const std::string& key, const std::string& value) {
    params[key] = value;
  }
  void set_param(const std::string& key, double value);
  void set_scalar(const std::string& key, double value) {
    scalars[key] = value;
  }
  void add_claim(const std::string& claim, double measured,
                 const std::string& unit) {
    claims.push_back({claim, measured, unit});
  }

  void write_json(std::ostream& os) const;
  std::string to_json() const;
  /// Write to `path`; returns false when the file cannot be opened.
  bool save(const std::string& path) const;
};

}  // namespace canary::obs
