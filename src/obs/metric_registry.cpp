#include "obs/metric_registry.hpp"

namespace canary::obs {

double MetricRegistry::counter(const std::string& name) const {
  auto it = counters_.find(name);
  return it == counters_.end() ? 0.0 : it->second;
}

double MetricRegistry::gauge(const std::string& name) const {
  auto it = gauges_.find(name);
  return it == gauges_.end() ? 0.0 : it->second;
}

const Histogram& MetricRegistry::histogram(const std::string& name) const {
  static const Histogram kEmpty;
  auto it = histograms_.find(name);
  return it == histograms_.end() ? kEmpty : it->second;
}

void MetricRegistry::merge(const MetricRegistry& other) {
  for (const auto& [name, value] : other.counters_) counters_[name] += value;
  for (const auto& [name, value] : other.gauges_) gauges_[name] = value;
  for (const auto& [name, hist] : other.histograms_) {
    histograms_[name].merge(hist);
  }
}

void MetricRegistry::clear() {
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

}  // namespace canary::obs
