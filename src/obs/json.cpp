#include "obs/json.hpp"

#include <cmath>
#include <cstdio>

namespace canary::obs {

std::string JsonWriter::escape(std::string_view raw) {
  std::string out;
  out.reserve(raw.size() + 2);
  for (const char c : raw) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string JsonWriter::format_double(double v) {
  if (!std::isfinite(v)) return "null";
  // Integer-valued doubles (counters, counts) print without a fraction so
  // reports read naturally and diff cleanly.
  if (v == std::floor(v) && std::fabs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", v);
    return buf;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.12g", v);
  return buf;
}

void JsonWriter::newline_indent() {
  if (indent_ <= 0) return;
  os_ << '\n';
  for (std::size_t i = 0; i < has_element_.size(); ++i) {
    for (int s = 0; s < indent_; ++s) os_ << ' ';
  }
}

void JsonWriter::before_value() {
  if (pending_key_) {
    pending_key_ = false;
    return;  // the key already handled separator and indent
  }
  if (!has_element_.empty()) {
    if (has_element_.back()) os_ << ',';
    has_element_.back() = true;
    newline_indent();
  }
}

JsonWriter& JsonWriter::begin_object() {
  before_value();
  os_ << '{';
  has_element_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  const bool had = !has_element_.empty() && has_element_.back();
  has_element_.pop_back();
  if (had) newline_indent();
  os_ << '}';
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  before_value();
  os_ << '[';
  has_element_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  const bool had = !has_element_.empty() && has_element_.back();
  has_element_.pop_back();
  if (had) newline_indent();
  os_ << ']';
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view name) {
  if (!has_element_.empty()) {
    if (has_element_.back()) os_ << ',';
    has_element_.back() = true;
    newline_indent();
  }
  os_ << '"' << escape(name) << "\":";
  if (indent_ > 0) os_ << ' ';
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view v) {
  before_value();
  os_ << '"' << escape(v) << '"';
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  before_value();
  os_ << format_double(v);
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  before_value();
  os_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  before_value();
  os_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  before_value();
  os_ << (v ? "true" : "false");
  return *this;
}

}  // namespace canary::obs
