#include "obs/time_series.hpp"

#include <algorithm>

namespace canary::obs {

TimeSeries::Window& TimeSeries::window_at(TimePoint at) {
  const std::int64_t width = std::max<std::int64_t>(
      1, config_.window.count_usec());
  std::int64_t start_us = (at.count_usec() / width) * width;
  if (at.count_usec() < 0) start_us = 0;  // defensive; sim time is >= 0

  if (windows_.empty()) {
    windows_.push_back(Window{TimePoint::from_usec(start_us), {}, {}, {}});
    return windows_.back();
  }

  // Retroactive timestamps (kQueued is stamped at enqueue time) can land
  // before the oldest retained window; fold them into it rather than
  // resurrecting evicted history.
  if (start_us <= windows_.front().start.count_usec()) {
    return windows_.front();
  }

  // Append empty windows up to the target so the series has no gaps —
  // a window with zero completions is data, not absence of data.
  while (windows_.back().start.count_usec() < start_us) {
    const TimePoint next =
        TimePoint::from_usec(windows_.back().start.count_usec() + width);
    windows_.push_back(Window{next, {}, {}, {}});
    while (windows_.size() > std::max<std::size_t>(1, config_.max_windows)) {
      windows_.pop_front();
      ++evicted_;
    }
  }
  return windows_.back();
}

void TimeSeries::count(std::string_view counter, TimePoint at, double delta) {
  if (!config_.enabled) return;
  window_at(at).counters[std::string(counter)] += delta;
}

void TimeSeries::sample(std::string_view series, TimePoint at, double value) {
  if (!config_.enabled) return;
  window_at(at).samples[std::string(series)].record(value);
}

void TimeSeries::set_level(std::string_view level, TimePoint at,
                           double value) {
  if (!config_.enabled) return;
  window_at(at).levels[std::string(level)] = value;
}

void TimeSeries::merge(const TimeSeries& other) {
  if (!other.config_.enabled && other.windows_.empty()) return;
  if (!config_.enabled) config_ = other.config_;
  evicted_ += other.evicted_;
  for (const Window& theirs : other.windows_) {
    auto it = std::find_if(windows_.begin(), windows_.end(),
                           [&](const Window& w) {
                             return w.start == theirs.start;
                           });
    if (it == windows_.end()) {
      // Keep windows_ sorted by start so serialisation stays ordered.
      auto pos = std::find_if(windows_.begin(), windows_.end(),
                              [&](const Window& w) {
                                return w.start > theirs.start;
                              });
      windows_.insert(pos, theirs);
      continue;
    }
    for (const auto& [name, value] : theirs.counters) {
      it->counters[name] += value;
    }
    for (const auto& [name, hist] : theirs.samples) {
      it->samples[name].merge(hist);
    }
    for (const auto& [name, value] : theirs.levels) {
      auto [lit, inserted] = it->levels.emplace(name, value);
      if (!inserted) lit->second = std::max(lit->second, value);
    }
  }
  while (windows_.size() > std::max<std::size_t>(1, config_.max_windows)) {
    windows_.pop_front();
    ++evicted_;
  }
}

void TimeSeries::clear() {
  windows_.clear();
  evicted_ = 0;
}

}  // namespace canary::obs
