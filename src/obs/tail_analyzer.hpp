// Tail-latency attribution: from "p99.9 moved" to "these invocations are
// the p99.9, and 61% of their latency is detection".
//
// Histograms answer the *what* (the latency distribution) and the causal
// event DAG answers the *why* (per-invocation lifecycle), but until now
// nothing connected them: a percentile is an anonymous bucket midpoint.
// The TailAnalyzer closes the loop through exemplars — trace ids retained
// per tail bucket (histogram.hpp) — by, for each exemplar-enabled
// histogram and each target percentile, picking the retained invocation
// nearest that rank and decomposing its submit-to-completion window with
// the CriticalPathAnalyzer's exact partition. Because the partition is
// exact, the per-component attribution sums to the representative's
// measured latency to within one simulated millisecond, and every
// reported trace id resolves to a complete causal chain in the log.
//
// Everything is opt-in (TailConfig::enabled) and deterministic: with
// attribution off no exemplars are retained, no tail section is emitted,
// and reports stay byte-identical to pre-attribution builds.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/critical_path.hpp"
#include "obs/event_log.hpp"
#include "obs/metric_registry.hpp"

namespace canary::obs {

/// Run-level switch for the attribution layer. Carried by the scenario
/// config; the platform enables exemplar retention on its tail histograms
/// from this and the harness runs the analyzer at teardown.
struct TailConfig {
  bool enabled = false;
  /// Target percentiles, in [0, 100], analyzed per histogram.
  std::vector<double> percentiles{50.0, 99.0, 99.9};
  /// Exemplar reservoir shape (histogram.hpp semantics).
  std::size_t exemplars_per_bucket = 4;
  double min_quantile = 0.5;
  std::uint64_t seed = 0x9e3779b97f4a7c15ull;

  ExemplarConfig exemplar_config() const {
    ExemplarConfig config;
    config.enabled = enabled;
    config.per_bucket = exemplars_per_bucket;
    config.min_quantile = min_quantile;
    config.seed = seed;
    return config;
  }
};

/// Attribution of one target percentile of one histogram.
struct TailAttribution {
  double percentile = 0.0;        // target, in [0, 100]
  double bucket_estimate_s = 0.0; // histogram nearest-rank estimate
  std::uint64_t samples = 0;      // histogram count backing the estimate

  /// Representative invocation: the retained exemplar nearest the target
  /// rank (at or above it when one exists). latency_s is its *exact*
  /// measured latency — the value the attribution below partitions.
  bool has_exemplar = false;
  double latency_s = 0.0;
  std::uint64_t trace = 0;
  std::uint64_t function = 0;

  /// Exact component partition of the representative's end-to-end window
  /// (CriticalPathAnalyzer decomposition); attributed_s is its total and
  /// matches latency_s to within 1 sim-ms.
  ComponentSums components;
  double attributed_s = 0.0;

  /// Causal-chain resolution for the representative's trace.
  std::uint64_t chain_events = 0;
  bool chain_complete = false;
};

/// All percentile attributions for one exemplar-enabled histogram.
struct TailGroup {
  std::string metric;
  std::uint64_t exemplars = 0;  // retained exemplars across buckets
  std::vector<TailAttribution> percentiles;
};

/// The `tail` section of a v3 run report. Merging across repetitions is
/// deterministic and associative: sample counts add and the deeper-tail
/// representative wins (ties toward the smaller trace id).
struct TailReport {
  bool enabled = false;
  std::vector<TailGroup> groups;  // sorted by metric name

  void merge(const TailReport& other);
};

class TailAnalyzer {
 public:
  /// All three inputs must outlive the analyzer. `paths` is the same
  /// analyzer the harness already builds for the breakdown section, so
  /// attribution reuses its partition instead of re-deriving one.
  TailAnalyzer(const MetricRegistry& metrics, const EventLog& log,
               const CriticalPathAnalyzer& paths);

  /// Analyze every exemplar-enabled histogram at each configured
  /// percentile. Returns a disabled report when config.enabled is false.
  TailReport analyze(const TailConfig& config) const;

 private:
  TailAttribution attribute(const Histogram& hist, double percentile) const;

  const MetricRegistry* metrics_;
  const EventLog* log_;
  const CriticalPathAnalyzer* paths_;
};

}  // namespace canary::obs
