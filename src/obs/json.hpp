// Minimal deterministic JSON writer.
//
// The exporters (run_report.json, chrome://tracing) need byte-stable
// output: two identical seeded runs must serialise to identical bytes so
// CI can diff reports across commits. This writer therefore controls
// number formatting itself (locale-free, integer-valued doubles print as
// integers, everything else shortest-ish %.12g) and keeps no ambient
// state beyond the comma/nesting stack.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace canary::obs {

class JsonWriter {
 public:
  /// `indent` <= 0 emits compact single-line JSON.
  explicit JsonWriter(std::ostream& os, int indent = 2)
      : os_(os), indent_(indent) {}

  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Object key; must be followed by a value or a begin_*().
  JsonWriter& key(std::string_view name);

  JsonWriter& value(std::string_view v);
  JsonWriter& value(const char* v) { return value(std::string_view(v)); }
  JsonWriter& value(double v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(bool v);

  /// Shorthand for key(name).value(v).
  template <typename T>
  JsonWriter& field(std::string_view name, T v) {
    key(name);
    return value(v);
  }

  static std::string escape(std::string_view raw);
  /// Locale-independent double formatting (NaN/Inf serialise as null,
  /// which JSON requires).
  static std::string format_double(double v);

 private:
  void before_value();
  void newline_indent();

  std::ostream& os_;
  int indent_;
  // One frame per open container: true once the first element is written.
  std::vector<bool> has_element_;
  bool pending_key_ = false;
};

}  // namespace canary::obs
