// Critical-path decomposition of the causal event DAG.
//
// The paper's Eq. (1) decomposes a function's latency into launch, init,
// exec and finalize; its recovery analysis (Figures 4-6) further splits a
// failure-to-recovery window into detection lag, scheduling, container
// launch, runtime init, checkpoint restore and re-execution. The analyzer
// rebuilds exactly those components from an EventLog: each function's
// events drive a small phase state machine whose intervals partition the
// timeline, so for every resolved recovery window
//
//   detection + scheduling + launch + init + restore + re_exec == window
//
// holds by construction (execution time inside a recovery window is
// re-execution; nothing else can occur there). The per-run aggregation
// groups functions by their workload family (the spec name with the
// per-instance "-<i>" / replica "+r<k>" suffixes stripped) so reports
// stay small and byte-deterministic.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/time.hpp"
#include "obs/event_log.hpp"

namespace canary::obs {

enum class PathComponent {
  kDetection,   // failure until the platform notices
  kScheduling,  // queueing + controller overhead + capacity waits
  kLaunch,      // cold container launch
  kInit,        // runtime initialisation
  kRestore,     // checkpoint restore / warm dispatch / migration setup
  kExec,        // first-try state execution
  kReExec,      // execution inside a recovery window (regaining lost work)
  kFinalize,    // fin_f
  kQueueing,    // open-loop admission wait before platform submission
  kHedging,     // time spent on a speculative copy that lost its race
};
inline constexpr std::size_t kPathComponentCount = 10;

std::string_view to_string_view(PathComponent component);

/// Seconds attributed to each component; a tiny fixed-size map.
struct ComponentSums {
  std::array<double, kPathComponentCount> seconds{};

  double& operator[](PathComponent c) {
    return seconds[static_cast<std::size_t>(c)];
  }
  double operator[](PathComponent c) const {
    return seconds[static_cast<std::size_t>(c)];
  }
  double total() const;
  void merge(const ComponentSums& other);
  /// Largest component; ties break toward the earlier enumerator so the
  /// result is deterministic.
  PathComponent dominant() const;
};

/// The `breakdown` section of a v2 run report. Mergeable across
/// repetitions (sums add, counts add).
struct BreakdownReport {
  /// Resolved failure-to-recovery windows.
  std::uint64_t recovery_count = 0;
  double recovery_window_s = 0.0;  // sum of window lengths
  ComponentSums recovery_components;

  /// Submit-to-completion decomposition over every function.
  ComponentSums end_to_end_components;

  struct FunctionBreakdown {
    std::uint64_t functions = 0;  // instances aggregated into this family
    std::uint64_t recoveries = 0;
    double window_s = 0.0;
    ComponentSums recovery_components;
    ComponentSums end_to_end_components;
    void merge(const FunctionBreakdown& other);
  };
  /// Keyed by workload family (base spec name).
  std::map<std::string, FunctionBreakdown> per_function;

  /// SLO watchdog summary.
  std::uint64_t slo_targets = 0;
  std::uint64_t slo_violations = 0;
  /// For each breached function, the component that dominated the time
  /// from submission to the breach.
  std::map<std::string, std::uint64_t> slo_breaches_by_component;

  double slo_violation_ratio() const {
    return slo_targets == 0
               ? 0.0
               : static_cast<double>(slo_violations) /
                     static_cast<double>(slo_targets);
  }
  void merge(const BreakdownReport& other);
};

/// Strip the per-instance suffixes workload generators append to spec
/// names: "web-service-17" -> "web-service", "map-3+r1" -> "map".
std::string base_function_name(std::string_view name);

class CriticalPathAnalyzer {
 public:
  explicit CriticalPathAnalyzer(const EventLog& log);

  struct RecoveryWindow {
    FunctionId function;
    std::string family;  // base spec name
    TimePoint failed;
    TimePoint recovered;
    ComponentSums components;

    Duration window() const { return recovered - failed; }
  };

  /// Every resolved failure-to-recovery window, in event order.
  const std::vector<RecoveryWindow>& recovery_windows() const {
    return windows_;
  }

  /// Aggregate everything into a report. `slo_targets` comes from the
  /// SloMonitor (the log only holds breaches, not armed targets).
  BreakdownReport report(std::uint64_t slo_targets = 0) const;

  // Per-function end-to-end component sums + metadata, keyed by id.
  struct PerFunction {
    std::string family;
    ComponentSums end_to_end;
    std::uint64_t recoveries = 0;
    double window_s = 0.0;
    ComponentSums recovery;
  };
  /// Per-instance decomposition (not family-aggregated): the exact
  /// submit-to-completion partition of one invocation. The tail analyzer
  /// resolves exemplar refs (FunctionId values) through this map.
  const std::map<FunctionId, PerFunction>& per_function_decomposition() const {
    return functions_;
  }

 private:
  struct FunctionTimeline;
  void analyze(const EventLog& log);

  std::vector<RecoveryWindow> windows_;
  std::map<FunctionId, PerFunction> functions_;
  // (family, dominant component) per SLA breach, in event order.
  std::vector<std::pair<std::string, PathComponent>> breaches_;
};

}  // namespace canary::obs
