// SLO watchdog bookkeeping.
//
// The platform registers one deadline per SLA-carrying function at
// submission (faas::FunctionSpec::sla, falling back to the job-level
// deadline) and arms a sim-timer; when the timer fires before the
// function completed in time, it reports the breach here and appends a
// kSlaViolation event to the invocation's causal chain. The monitor is
// pure bookkeeping — targets, breaches, ratios — so it stays free of sim
// and faas dependencies; the CriticalPathAnalyzer later attributes each
// breach to the critical-path component that dominated it.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "common/ids.hpp"
#include "common/time.hpp"

namespace canary::obs {

class SloMonitor {
 public:
  /// Register a completion deadline for `fn`. Re-arming replaces the
  /// previous target (retries keep the original submission deadline, so
  /// the platform arms exactly once per function).
  void arm(FunctionId fn, TimePoint deadline);

  std::optional<TimePoint> deadline(FunctionId fn) const;

  /// Record a breach; returns false when this function's breach was
  /// already recorded (violations are per-function, not per-attempt).
  bool record_violation(FunctionId fn, TimePoint at);

  std::size_t targets() const { return armed_; }
  std::size_t violations() const { return breaches_.size(); }
  double violation_ratio() const {
    return armed_ == 0 ? 0.0
                       : static_cast<double>(breaches_.size()) /
                             static_cast<double>(armed_);
  }
  /// Breaches in detection order.
  const std::vector<std::pair<FunctionId, TimePoint>>& breaches() const {
    return breaches_;
  }

  void clear();

 private:
  /// Deadlines and breach flags indexed by function id - 1. Function ids
  /// are sequential slab indices, so flat vectors (TimePoint::max() =
  /// unarmed) replace the old std::map — arm() runs once per submitted
  /// function, and a tree node per invocation was a measurable slice of
  /// the platform's allocation budget.
  std::vector<TimePoint> targets_;
  std::vector<bool> violated_;
  std::size_t armed_ = 0;
  std::vector<std::pair<FunctionId, TimePoint>> breaches_;
};

}  // namespace canary::obs
