// Storage hierarchy (paper §IV-C4a, §V-C1).
//
// Checkpoints live primarily in the in-memory KV store (Apache Ignite in
// the paper). When a checkpoint payload exceeds the per-entry database
// limit, the Checkpointing Module spills it to "a faster storage tier
// available in the system such as persistent memory, Ramdisk, or to a
// shared storage accessible to all cluster nodes" and records only the
// location in the KV store. The hierarchy is fixed at deployment time and
// can be overridden by a custom endpoint (e.g. an S3 bucket).
#pragma once

#include <optional>
#include <string_view>
#include <vector>

#include "common/bytes.hpp"
#include "common/time.hpp"

namespace canary::cluster {

enum class StorageTier {
  kKvStore,    // replicated in-memory KV store (Ignite)
  kRamdisk,    // node-local RAM-backed filesystem
  kPmem,       // Intel Optane PMem in AppDirect mode
  kNfs,        // cluster-wide shared filesystem
  kLocalDisk,  // node-local SSD/HDD
  kExternal,   // custom endpoint (e.g. S3)
};

std::string_view to_string_view(StorageTier tier);

struct TierProfile {
  StorageTier tier;
  Duration access_latency;     // fixed per-operation latency
  double write_mib_per_sec;
  double read_mib_per_sec;
  Bytes capacity;              // spill capacity for checkpoints
  bool shared;                 // reachable from every node
  bool survives_node_failure;  // data remains after the hosting node dies
};

/// Deployment-time description of the tiers available for checkpoint
/// spill, ordered fastest-first. Mirrors the paper's testbed: Ignite KV,
/// Optane PMem / Ramdisk for large files, NFS shared across the cluster.
class StorageHierarchy {
 public:
  /// The testbed configuration from §V-C1.
  static StorageHierarchy testbed();

  explicit StorageHierarchy(std::vector<TierProfile> tiers);

  const TierProfile& profile(StorageTier tier) const;
  bool has_tier(StorageTier tier) const;
  const std::vector<TierProfile>& tiers() const { return tiers_; }

  /// Fastest spill tier that can absorb `payload`. Tiers are consulted in
  /// deployment order; the paper prefers PMem/Ramdisk and falls back to
  /// shared NFS. Returns nullopt only if no tier has capacity.
  std::optional<StorageTier> spill_tier_for(Bytes payload) const;

  /// Fastest *shared* (or failure-surviving) tier for `payload`; used for
  /// checkpoints that must outlive node failures (Fig. 11's node-level
  /// failure experiments rely on shared-storage checkpoints).
  std::optional<StorageTier> shared_tier_for(Bytes payload) const;

  Duration write_time(StorageTier tier, Bytes payload) const;
  Duration read_time(StorageTier tier, Bytes payload) const;

 private:
  std::vector<TierProfile> tiers_;
};

}  // namespace canary::cluster
