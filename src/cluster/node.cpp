#include "cluster/node.hpp"

namespace canary::cluster {

std::string_view to_string_view(CpuClass c) {
  switch (c) {
    case CpuClass::kXeonGold6126: return "Xeon-Gold-6126";
    case CpuClass::kXeonGold6240R: return "Xeon-Gold-6240R";
    case CpuClass::kXeonGold6242: return "Xeon-Gold-6242";
  }
  return "unknown";
}

double speed_factor(CpuClass c) {
  switch (c) {
    case CpuClass::kXeonGold6126: return 1.18;   // oldest, slowest
    case CpuClass::kXeonGold6240R: return 0.95;  // newest
    case CpuClass::kXeonGold6242: return 1.00;   // nominal
  }
  return 1.0;
}

double failure_weight(CpuClass c) {
  switch (c) {
    case CpuClass::kXeonGold6126: return 1.45;
    case CpuClass::kXeonGold6240R: return 0.85;
    case CpuClass::kXeonGold6242: return 1.00;
  }
  return 1.0;
}

Status Node::reserve(Bytes memory) {
  if (!alive_) return Error::unavailable("node is down");
  if (used_slots_ >= spec_.container_slots) {
    return Error::resource_exhausted("no container slots free");
  }
  if (used_memory_.count() + memory.count() > spec_.memory.count()) {
    return Error::resource_exhausted("insufficient node memory");
  }
  ++used_slots_;
  used_memory_ += memory;
  notify(used_slots_ - 1, /*was_alive=*/true);
  return Status::ok_status();
}

void Node::release(Bytes memory) {
  if (!alive_) return;  // capacity was cleared when the node died
  CANARY_CHECK(used_slots_ > 0, "release without reserve");
  CANARY_CHECK(used_memory_.count() >= memory.count(),
               "memory release exceeds reservation");
  --used_slots_;
  used_memory_ = Bytes::of(used_memory_.count() - memory.count());
  notify(used_slots_ + 1, /*was_alive=*/true);
}

}  // namespace canary::cluster
