// Interconnect model: 10G Ethernet with rack locality (paper §V-C1).
//
// Transfer time = propagation latency (higher across racks) + payload
// size over effective bandwidth. Used for checkpoint movement between
// nodes, replica warm-up traffic, and restoring checkpoints from shared
// storage on a remote node.
#pragma once

#include "common/bytes.hpp"
#include "common/time.hpp"
#include "cluster/cluster.hpp"

namespace canary::cluster {

struct NetworkProfile {
  Duration same_rack_latency = Duration::usec(80);
  Duration cross_rack_latency = Duration::usec(220);
  double bandwidth_mib_per_sec = 1100.0;  // ~10GbE effective
  /// Fraction of nominal bandwidth available under contention; applied by
  /// callers that model simultaneous bulk transfers.
  double congestion_floor = 0.35;
};

class NetworkModel {
 public:
  NetworkModel(const Cluster* cluster, NetworkProfile profile)
      : cluster_(cluster), profile_(profile) {}

  const NetworkProfile& profile() const { return profile_; }

  /// One-way latency between two nodes (zero for loopback).
  Duration latency(NodeId a, NodeId b) const;

  /// Time to move `payload` from node `a` to node `b` assuming
  /// `concurrent_flows` bulk transfers share the path (>= 1).
  Duration transfer_time(NodeId a, NodeId b, Bytes payload,
                         unsigned concurrent_flows = 1) const;

 private:
  const Cluster* cluster_;
  NetworkProfile profile_;
};

}  // namespace canary::cluster
