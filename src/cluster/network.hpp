// Interconnect model: 10G Ethernet with rack locality (paper §V-C1).
//
// Transfer time = propagation latency (higher across racks) + payload
// size over effective bandwidth. Used for checkpoint movement between
// nodes, replica warm-up traffic, and restoring checkpoints from shared
// storage on a remote node.
#pragma once

#include <cstdint>
#include <vector>

#include "common/bytes.hpp"
#include "common/time.hpp"
#include "cluster/cluster.hpp"

namespace canary::cluster {

struct NetworkProfile {
  Duration same_rack_latency = Duration::usec(80);
  Duration cross_rack_latency = Duration::usec(220);
  double bandwidth_mib_per_sec = 1100.0;  // ~10GbE effective
  /// Fraction of nominal bandwidth available under contention; applied by
  /// callers that model simultaneous bulk transfers.
  double congestion_floor = 0.35;
};

class NetworkModel {
 public:
  NetworkModel(const Cluster* cluster, NetworkProfile profile)
      : cluster_(cluster), profile_(profile) {}

  const NetworkProfile& profile() const { return profile_; }

  /// One-way latency between two nodes (zero for loopback).
  Duration latency(NodeId a, NodeId b) const;

  /// Time to move `payload` from node `a` to node `b` assuming
  /// `concurrent_flows` bulk transfers share the path (>= 1).
  Duration transfer_time(NodeId a, NodeId b, Bytes payload,
                         unsigned concurrent_flows = 1) const;

  // ---- reachability (network partitions) --------------------------------
  //
  // Directed block rules model asymmetric partitions: a rule blocks every
  // packet from a node in `from` to a node in `to` while the reverse
  // direction flows unless a second rule blocks it too. Rules are
  // installed/removed at event fire time by the failure injector; every
  // query reflects the rules active at sim-now. With no rules installed
  // (the default) every query short-circuits to "reachable", so runs that
  // never schedule a partition are byte-identical to builds without this
  // surface.

  using RuleId = std::uint64_t;

  /// Install a directed block rule; returns the handle for unblock().
  RuleId block(std::vector<NodeId> from, std::vector<NodeId> to);
  /// Remove a rule (heal); unknown ids are ignored.
  void unblock(RuleId id);

  /// True when any block rule is installed — the fast path guard.
  bool has_partitions() const { return !rules_.empty(); }
  std::size_t active_rules() const { return rules_.size(); }

  /// Directed reachability: can a packet from `from` reach `to` now?
  bool reachable(NodeId from, NodeId to) const;

  /// Quorum predicate: `node` is alive and can exchange traffic (both
  /// directions) with a strict majority of the cluster's alive nodes,
  /// itself included. The side of a partition that fails this test cannot
  /// commit state — the fencing layer builds on it.
  bool reaches_majority(NodeId node) const;

 private:
  struct Rule {
    RuleId id;
    std::vector<NodeId> from;
    std::vector<NodeId> to;
  };

  const Cluster* cluster_;
  NetworkProfile profile_;
  std::vector<Rule> rules_;
  RuleId next_rule_ = 1;
};

}  // namespace canary::cluster
