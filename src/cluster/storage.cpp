#include "cluster/storage.hpp"

#include "common/result.hpp"

namespace canary::cluster {

std::string_view to_string_view(StorageTier tier) {
  switch (tier) {
    case StorageTier::kKvStore: return "kvstore";
    case StorageTier::kRamdisk: return "ramdisk";
    case StorageTier::kPmem: return "pmem";
    case StorageTier::kNfs: return "nfs";
    case StorageTier::kLocalDisk: return "local-disk";
    case StorageTier::kExternal: return "external";
  }
  return "unknown";
}

StorageHierarchy StorageHierarchy::testbed() {
  // Latency/bandwidth figures follow published measurements: Ignite-class
  // KV ops ~0.5 ms; Ramdisk multi-GiB/s; Optane AppDirect ~1-2 GiB/s
  // writes, faster reads; NFS over 10GbE ~100 MiB/s effective; SATA SSD
  // ~400 MiB/s.
  return StorageHierarchy({
      {StorageTier::kKvStore, Duration::usec(500), 900.0, 1200.0,
       Bytes::gib(8), /*shared=*/true, /*survives=*/true},
      {StorageTier::kRamdisk, Duration::usec(30), 4000.0, 6000.0,
       Bytes::gib(32), /*shared=*/false, /*survives=*/false},
      {StorageTier::kPmem, Duration::usec(60), 1400.0, 2600.0,
       Bytes::gib(128), /*shared=*/false, /*survives=*/true},
      {StorageTier::kNfs, Duration::msec(1), 110.0, 160.0,
       Bytes::gib(1024), /*shared=*/true, /*survives=*/true},
      {StorageTier::kLocalDisk, Duration::usec(120), 420.0, 520.0,
       Bytes::gib(512), /*shared=*/false, /*survives=*/false},
  });
}

StorageHierarchy::StorageHierarchy(std::vector<TierProfile> tiers)
    : tiers_(std::move(tiers)) {
  CANARY_CHECK(!tiers_.empty(), "storage hierarchy needs at least one tier");
}

const TierProfile& StorageHierarchy::profile(StorageTier tier) const {
  for (const auto& t : tiers_) {
    if (t.tier == tier) return t;
  }
  CANARY_CHECK(false, "storage tier not configured");
  return tiers_.front();  // unreachable
}

bool StorageHierarchy::has_tier(StorageTier tier) const {
  for (const auto& t : tiers_) {
    if (t.tier == tier) return true;
  }
  return false;
}

std::optional<StorageTier> StorageHierarchy::spill_tier_for(Bytes payload) const {
  for (const auto& t : tiers_) {
    if (t.tier == StorageTier::kKvStore) continue;  // spill leaves the KV
    if (payload.count() <= t.capacity.count()) return t.tier;
  }
  return std::nullopt;
}

std::optional<StorageTier> StorageHierarchy::shared_tier_for(Bytes payload) const {
  for (const auto& t : tiers_) {
    if (t.tier == StorageTier::kKvStore) continue;
    if (!t.shared && !t.survives_node_failure) continue;
    if (payload.count() <= t.capacity.count()) return t.tier;
  }
  return std::nullopt;
}

Duration StorageHierarchy::write_time(StorageTier tier, Bytes payload) const {
  const auto& p = profile(tier);
  return p.access_latency + Duration::sec(payload.to_mib() / p.write_mib_per_sec);
}

Duration StorageHierarchy::read_time(StorageTier tier, Bytes payload) const {
  const auto& p = profile(tier);
  return p.access_latency + Duration::sec(payload.to_mib() / p.read_mib_per_sec);
}

}  // namespace canary::cluster
