#include "cluster/cluster.hpp"

#include <algorithm>

#include "common/result.hpp"

namespace canary::cluster {

Cluster::Cluster(std::vector<NodeSpec> specs) {
  CANARY_CHECK(!specs.empty(), "cluster needs at least one node");
  nodes_.reserve(specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    nodes_.emplace_back(NodeId{i + 1}, specs[i]);
  }
}

Cluster Cluster::testbed(std::size_t node_count) {
  static constexpr CpuClass kClasses[] = {
      CpuClass::kXeonGold6126, CpuClass::kXeonGold6240R,
      CpuClass::kXeonGold6242};
  std::vector<NodeSpec> specs;
  specs.reserve(node_count);
  for (std::size_t i = 0; i < node_count; ++i) {
    NodeSpec spec;
    spec.cpu = kClasses[i % 3];
    spec.rack = static_cast<std::uint32_t>(i / 4);
    specs.push_back(spec);
  }
  return Cluster(std::move(specs));
}

std::size_t Cluster::alive_count() const {
  return static_cast<std::size_t>(
      std::count_if(nodes_.begin(), nodes_.end(),
                    [](const Node& n) { return n.alive(); }));
}

std::size_t Cluster::index_of(NodeId id) const {
  CANARY_CHECK(id.valid() && id.value() <= nodes_.size(), "unknown node id");
  return id.value() - 1;
}

Node& Cluster::node(NodeId id) { return nodes_[index_of(id)]; }
const Node& Cluster::node(NodeId id) const { return nodes_[index_of(id)]; }

bool Cluster::contains(NodeId id) const {
  return id.valid() && id.value() <= nodes_.size();
}

std::vector<NodeId> Cluster::node_ids() const {
  std::vector<NodeId> ids;
  ids.reserve(nodes_.size());
  for (const auto& n : nodes_) ids.push_back(n.id());
  return ids;
}

std::vector<NodeId> Cluster::alive_node_ids() const {
  std::vector<NodeId> ids;
  for (const auto& n : nodes_) {
    if (n.alive()) ids.push_back(n.id());
  }
  return ids;
}

std::optional<NodeId> Cluster::least_loaded(Bytes memory) const {
  return least_loaded_excluding(memory, {});
}

std::optional<NodeId> Cluster::least_loaded_excluding(
    Bytes memory, const std::vector<NodeId>& excluded) const {
  const Node* best = nullptr;
  for (const auto& n : nodes_) {
    if (!n.can_host(memory)) continue;
    if (std::find(excluded.begin(), excluded.end(), n.id()) != excluded.end()) {
      continue;
    }
    if (best == nullptr || n.used_slots() < best->used_slots()) best = &n;
  }
  if (best == nullptr) return std::nullopt;
  return best->id();
}

std::optional<NodeId> Cluster::weighted_random_alive(Rng& rng) const {
  double total = 0.0;
  for (const auto& n : nodes_) {
    if (n.alive()) total += n.fail_weight();
  }
  if (total <= 0.0) return std::nullopt;
  double pick = rng.uniform(0.0, total);
  for (const auto& n : nodes_) {
    if (!n.alive()) continue;
    pick -= n.fail_weight();
    if (pick <= 0.0) return n.id();
  }
  // Floating-point slack: fall back to the last alive node.
  for (auto it = nodes_.rbegin(); it != nodes_.rend(); ++it) {
    if (it->alive()) return it->id();
  }
  return std::nullopt;
}

std::uint32_t Cluster::rack_distance(NodeId a, NodeId b) const {
  const auto ra = node(a).spec().rack;
  const auto rb = node(b).spec().rack;
  return ra == rb ? 0 : 1;
}

void Cluster::fail_node(NodeId id) { node(id).mark_failed(); }
void Cluster::restore_node(NodeId id) { node(id).mark_restored(); }

}  // namespace canary::cluster
