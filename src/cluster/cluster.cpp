#include "cluster/cluster.hpp"

#include <algorithm>

#include "common/result.hpp"

namespace canary::cluster {

Cluster::Cluster(std::vector<NodeSpec> specs) {
  CANARY_CHECK(!specs.empty(), "cluster needs at least one node");
  nodes_.reserve(specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    nodes_.emplace_back(NodeId{i + 1}, specs[i]);
  }
  attach_and_rebuild_index();
}

Cluster::Cluster(Cluster&& other) noexcept : nodes_(std::move(other.nodes_)) {
  attach_and_rebuild_index();
}

Cluster& Cluster::operator=(Cluster&& other) noexcept {
  if (this != &other) {
    nodes_ = std::move(other.nodes_);
    attach_and_rebuild_index();
  }
  return *this;
}

void Cluster::attach_and_rebuild_index() {
  std::uint32_t max_slots = 0;
  for (const auto& n : nodes_) {
    max_slots = std::max(max_slots, n.spec().container_slots);
  }
  occupancy_.assign(max_slots + 1, {});
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    nodes_[i].set_usage_listener(this);
    if (nodes_[i].alive()) {
      bucket_insert(nodes_[i].used_slots(), static_cast<std::uint32_t>(i));
    }
  }
}

void Cluster::bucket_insert(std::uint32_t slots, std::uint32_t idx) {
  std::vector<std::uint32_t>& bucket = occupancy_[slots];
  bucket.insert(std::lower_bound(bucket.begin(), bucket.end(), idx), idx);
}

void Cluster::bucket_erase(std::uint32_t slots, std::uint32_t idx) {
  std::vector<std::uint32_t>& bucket = occupancy_[slots];
  const auto it = std::lower_bound(bucket.begin(), bucket.end(), idx);
  if (it != bucket.end() && *it == idx) bucket.erase(it);
}

void Cluster::on_node_usage_changed(const Node& node,
                                    std::uint32_t old_used_slots,
                                    bool was_alive) {
  const auto idx = static_cast<std::uint32_t>(index_of(node.id()));
  if (was_alive) bucket_erase(old_used_slots, idx);
  if (node.alive()) bucket_insert(node.used_slots(), idx);
}

Cluster Cluster::testbed(std::size_t node_count) {
  static constexpr CpuClass kClasses[] = {
      CpuClass::kXeonGold6126, CpuClass::kXeonGold6240R,
      CpuClass::kXeonGold6242};
  std::vector<NodeSpec> specs;
  specs.reserve(node_count);
  for (std::size_t i = 0; i < node_count; ++i) {
    NodeSpec spec;
    spec.cpu = kClasses[i % 3];
    spec.rack = static_cast<std::uint32_t>(i / 4);
    spec.zone = spec.rack;  // testbed: one fault domain per rack
    specs.push_back(spec);
  }
  return Cluster(std::move(specs));
}

std::size_t Cluster::alive_count() const {
  return static_cast<std::size_t>(
      std::count_if(nodes_.begin(), nodes_.end(),
                    [](const Node& n) { return n.alive(); }));
}

std::size_t Cluster::index_of(NodeId id) const {
  CANARY_CHECK(id.valid() && id.value() <= nodes_.size(), "unknown node id");
  return id.value() - 1;
}

Node& Cluster::node(NodeId id) { return nodes_[index_of(id)]; }
const Node& Cluster::node(NodeId id) const { return nodes_[index_of(id)]; }

bool Cluster::contains(NodeId id) const {
  return id.valid() && id.value() <= nodes_.size();
}

std::vector<NodeId> Cluster::node_ids() const {
  std::vector<NodeId> ids;
  ids.reserve(nodes_.size());
  for (const auto& n : nodes_) ids.push_back(n.id());
  return ids;
}

std::vector<NodeId> Cluster::alive_node_ids() const {
  std::vector<NodeId> ids;
  for (const auto& n : nodes_) {
    if (n.alive()) ids.push_back(n.id());
  }
  return ids;
}

std::optional<NodeId> Cluster::least_loaded(Bytes memory) const {
  return least_loaded_excluding(memory, {});
}

std::optional<NodeId> Cluster::least_loaded_excluding(
    Bytes memory, const std::vector<NodeId>& excluded) const {
  // Emptiest bucket first, lowest id inside a bucket: the first node that
  // passes the memory/exclusion checks is exactly the node the old full
  // scan would have picked.
  for (const auto& bucket : occupancy_) {
    for (const std::uint32_t idx : bucket) {
      const Node& n = nodes_[idx];
      if (!n.can_host(memory)) continue;
      if (std::find(excluded.begin(), excluded.end(), n.id()) !=
          excluded.end()) {
        continue;
      }
      return n.id();
    }
  }
  return std::nullopt;
}

std::optional<NodeId> Cluster::weighted_random_alive(Rng& rng) const {
  double total = 0.0;
  for (const auto& n : nodes_) {
    if (n.alive()) total += n.fail_weight();
  }
  if (total <= 0.0) return std::nullopt;
  double pick = rng.uniform(0.0, total);
  for (const auto& n : nodes_) {
    if (!n.alive()) continue;
    pick -= n.fail_weight();
    if (pick <= 0.0) return n.id();
  }
  // Floating-point slack: fall back to the last alive node.
  for (auto it = nodes_.rbegin(); it != nodes_.rend(); ++it) {
    if (it->alive()) return it->id();
  }
  return std::nullopt;
}

std::uint32_t Cluster::rack_distance(NodeId a, NodeId b) const {
  const auto ra = node(a).spec().rack;
  const auto rb = node(b).spec().rack;
  return ra == rb ? 0 : 1;
}

std::uint32_t Cluster::zone_of(NodeId id) const { return node(id).spec().zone; }

std::vector<NodeId> Cluster::nodes_in_zone(std::uint32_t zone) const {
  std::vector<NodeId> ids;
  for (const auto& n : nodes_) {
    if (n.spec().zone == zone) ids.push_back(n.id());
  }
  return ids;
}

std::vector<std::uint32_t> Cluster::zones() const {
  std::vector<std::uint32_t> out;
  for (const auto& n : nodes_) out.push_back(n.spec().zone);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::optional<NodeId> Cluster::least_loaded_avoiding_zone(
    Bytes memory, std::uint32_t avoid_zone,
    const std::vector<NodeId>& excluded) const {
  // Same walk as least_loaded_excluding with a zone filter; a second pass
  // without the filter keeps placement total — capacity beats spreading.
  for (const auto& bucket : occupancy_) {
    for (const std::uint32_t idx : bucket) {
      const Node& n = nodes_[idx];
      if (n.spec().zone == avoid_zone) continue;
      if (!n.can_host(memory)) continue;
      if (std::find(excluded.begin(), excluded.end(), n.id()) !=
          excluded.end()) {
        continue;
      }
      return n.id();
    }
  }
  return least_loaded_excluding(memory, excluded);
}

void Cluster::fail_node(NodeId id) { node(id).mark_failed(); }
void Cluster::restore_node(NodeId id) { node(id).mark_restored(); }

}  // namespace canary::cluster
