// Worker-node model.
//
// The paper's testbed is 16 bare-metal Chameleon servers with two Xeon
// Gold 6126/6240R/6242 processors and 192 GB RAM (§V-C1). We model each
// node with a CPU class (heterogeneous speed and failure proneness — §I:
// "older hardware is more prone to failure", "slower computing devices
// ... can significantly increase application recovery time"), a memory
// budget, and a bounded number of container slots.
#pragma once

#include <cstdint>
#include <string_view>

#include "common/bytes.hpp"
#include "common/ids.hpp"
#include "common/result.hpp"

namespace canary::cluster {

enum class CpuClass {
  kXeonGold6126,   // Skylake, 2017 — oldest/slowest in the testbed
  kXeonGold6240R,  // Cascade Lake, 2020
  kXeonGold6242,   // Cascade Lake, 2019
};

std::string_view to_string_view(CpuClass c);

/// Relative duration multiplier for work executed on this CPU class
/// (1.0 = nominal). Older parts run slower.
double speed_factor(CpuClass c);

/// Relative weight for failure targeting; older hardware fails more often
/// (paper §I cites [29], [30]).
double failure_weight(CpuClass c);

struct NodeSpec {
  CpuClass cpu = CpuClass::kXeonGold6242;
  Bytes memory = Bytes::gib(192);
  std::uint32_t container_slots = 64;
  std::uint32_t rack = 0;
  /// Fault domain (availability zone). Racks in the same zone share power
  /// and uplinks, so zone-level failures take them out together. Defaults
  /// to rack-granularity domains in the testbed.
  std::uint32_t zone = 0;
};

class Node;

/// Observes node capacity/liveness transitions. The Cluster installs one
/// on every node to keep its least-loaded index current even though
/// callers mutate nodes directly through Cluster::node().
class NodeUsageListener {
 public:
  virtual void on_node_usage_changed(const Node& node,
                                     std::uint32_t old_used_slots,
                                     bool was_alive) = 0;

 protected:
  ~NodeUsageListener() = default;
};

/// Mutable node state: capacity accounting plus liveness. Containers
/// reserve a slot and a memory allocation for their lifetime.
class Node {
 public:
  Node(NodeId id, NodeSpec spec) : id_(id), spec_(spec) {}

  NodeId id() const { return id_; }
  const NodeSpec& spec() const { return spec_; }
  double speed() const { return speed_factor(spec_.cpu) * slowdown_; }
  double fail_weight() const { return failure_weight(spec_.cpu); }

  /// Gray-failure multiplier on top of the CPU class: > 1.0 makes every
  /// duration scheduled on this node that much longer (a straggler that
  /// trips timeouts without dying). Sampled at scheduling time only —
  /// already-scheduled state transitions keep their original end time.
  double slowdown() const { return slowdown_; }
  void set_slowdown(double factor) { slowdown_ = factor < 1.0 ? 1.0 : factor; }

  bool alive() const { return alive_; }
  void mark_failed() {
    const std::uint32_t old_slots = used_slots_;
    const bool was_alive = alive_;
    alive_ = false;
    notify(old_slots, was_alive);
  }
  void mark_restored() {
    const std::uint32_t old_slots = used_slots_;
    const bool was_alive = alive_;
    alive_ = true;
    used_slots_ = 0;
    used_memory_ = Bytes::zero();
    notify(old_slots, was_alive);
  }

  void set_usage_listener(NodeUsageListener* listener) {
    listener_ = listener;
  }

  std::uint32_t used_slots() const { return used_slots_; }
  std::uint32_t free_slots() const {
    return alive_ ? spec_.container_slots - used_slots_ : 0;
  }
  Bytes used_memory() const { return used_memory_; }

  bool can_host(Bytes memory) const {
    return alive_ && used_slots_ < spec_.container_slots &&
           used_memory_.count() + memory.count() <= spec_.memory.count();
  }

  /// Reserve one container slot plus `memory`. Fails (does not abort) when
  /// the node is dead or full, so schedulers can probe.
  Status reserve(Bytes memory);
  void release(Bytes memory);

 private:
  void notify(std::uint32_t old_slots, bool was_alive) {
    if (listener_ != nullptr) {
      listener_->on_node_usage_changed(*this, old_slots, was_alive);
    }
  }

  NodeId id_;
  NodeSpec spec_;
  double slowdown_ = 1.0;
  bool alive_ = true;
  std::uint32_t used_slots_ = 0;
  Bytes used_memory_ = Bytes::zero();
  NodeUsageListener* listener_ = nullptr;
};

}  // namespace canary::cluster
