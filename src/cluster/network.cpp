#include "cluster/network.hpp"

#include <algorithm>

namespace canary::cluster {

Duration NetworkModel::latency(NodeId a, NodeId b) const {
  if (a == b) return Duration::zero();
  return cluster_->rack_distance(a, b) == 0 ? profile_.same_rack_latency
                                            : profile_.cross_rack_latency;
}

Duration NetworkModel::transfer_time(NodeId a, NodeId b, Bytes payload,
                                     unsigned concurrent_flows) const {
  if (a == b) return Duration::zero();
  concurrent_flows = std::max(1u, concurrent_flows);
  // Flows share bandwidth fairly but never drop below the congestion
  // floor (TCP keeps some goodput even under heavy incast).
  const double share = std::max(1.0 / static_cast<double>(concurrent_flows),
                                profile_.congestion_floor);
  const double eff_mib_s = profile_.bandwidth_mib_per_sec * share;
  const double seconds = payload.to_mib() / eff_mib_s;
  return latency(a, b) + Duration::sec(seconds);
}

NetworkModel::RuleId NetworkModel::block(std::vector<NodeId> from,
                                         std::vector<NodeId> to) {
  const RuleId id = next_rule_++;
  rules_.push_back(Rule{id, std::move(from), std::move(to)});
  return id;
}

void NetworkModel::unblock(RuleId id) {
  for (auto it = rules_.begin(); it != rules_.end(); ++it) {
    if (it->id == id) {
      rules_.erase(it);
      return;
    }
  }
}

bool NetworkModel::reachable(NodeId from, NodeId to) const {
  if (rules_.empty() || from == to) return true;
  for (const Rule& rule : rules_) {
    const bool src = std::find(rule.from.begin(), rule.from.end(), from) !=
                     rule.from.end();
    if (!src) continue;
    if (std::find(rule.to.begin(), rule.to.end(), to) != rule.to.end()) {
      return false;
    }
  }
  return true;
}

bool NetworkModel::reaches_majority(NodeId node) const {
  if (rules_.empty()) return true;
  if (!cluster_->contains(node) || !cluster_->node(node).alive()) return false;
  std::size_t alive = 0;
  std::size_t reached = 0;
  for (const NodeId peer : cluster_->alive_node_ids()) {
    ++alive;
    if (peer == node || (reachable(node, peer) && reachable(peer, node))) {
      ++reached;
    }
  }
  return reached * 2 > alive;
}

}  // namespace canary::cluster
