#include "cluster/network.hpp"

#include <algorithm>

namespace canary::cluster {

Duration NetworkModel::latency(NodeId a, NodeId b) const {
  if (a == b) return Duration::zero();
  return cluster_->rack_distance(a, b) == 0 ? profile_.same_rack_latency
                                            : profile_.cross_rack_latency;
}

Duration NetworkModel::transfer_time(NodeId a, NodeId b, Bytes payload,
                                     unsigned concurrent_flows) const {
  if (a == b) return Duration::zero();
  concurrent_flows = std::max(1u, concurrent_flows);
  // Flows share bandwidth fairly but never drop below the congestion
  // floor (TCP keeps some goodput even under heavy incast).
  const double share = std::max(1.0 / static_cast<double>(concurrent_flows),
                                profile_.congestion_floor);
  const double eff_mib_s = profile_.bandwidth_mib_per_sec * share;
  const double seconds = payload.to_mib() / eff_mib_s;
  return latency(a, b) + Duration::sec(seconds);
}

}  // namespace canary::cluster
