// Cluster topology: a set of worker nodes grouped into racks.
//
// Mirrors the paper's testbed (§V-C1): 16 servers, heterogeneous Xeon
// classes, connected by 10G Ethernet. Placement helpers used by the FaaS
// scheduler and by Canary's replica placement (§IV-C5b: first replica
// co-located with a job function, further replicas anti-affine to avoid a
// single point of failure; decisions are locality aware).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/ids.hpp"
#include "common/rng.hpp"
#include "cluster/node.hpp"

namespace canary::cluster {

/// The scheduler probes for the least-loaded host on every container
/// placement, so a linear scan over hundreds of nodes sits on the
/// million-invocation hot path. The cluster keeps an occupancy index —
/// alive nodes bucketed by used slot count, id-ordered inside a bucket —
/// maintained through NodeUsageListener, so a probe walks the emptiest
/// bucket first and usually returns after one membership test. Selection
/// is identical to the old full scan: minimum used_slots among hosts that
/// can take the memory, lowest id on ties.
class Cluster : private NodeUsageListener {
 public:
  explicit Cluster(std::vector<NodeSpec> specs);
  Cluster(Cluster&& other) noexcept;
  Cluster& operator=(Cluster&& other) noexcept;
  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  /// Builds an n-node cluster mirroring the Chameleon testbed: CPU
  /// classes interleaved 6126 / 6240R / 6242, four nodes per rack.
  static Cluster testbed(std::size_t node_count);

  std::size_t size() const { return nodes_.size(); }
  std::size_t alive_count() const;

  Node& node(NodeId id);
  const Node& node(NodeId id) const;
  bool contains(NodeId id) const;

  std::vector<NodeId> node_ids() const;
  std::vector<NodeId> alive_node_ids() const;

  /// Least-loaded alive node that can host `memory`; ties broken by lowest
  /// id for determinism. nullopt when the cluster is saturated.
  std::optional<NodeId> least_loaded(Bytes memory) const;

  /// Least-loaded alive candidate excluding `excluded`; used for
  /// anti-affine replica placement.
  std::optional<NodeId> least_loaded_excluding(
      Bytes memory, const std::vector<NodeId>& excluded) const;

  /// Sample an alive node with probability proportional to its hardware
  /// failure weight; used by the failure injector to model older hardware
  /// failing more often. nullopt when no node is alive.
  std::optional<NodeId> weighted_random_alive(Rng& rng) const;

  /// Number of inter-rack hops between two nodes (0 = same rack).
  std::uint32_t rack_distance(NodeId a, NodeId b) const;

  /// Fault domain of a node (NodeSpec::zone).
  std::uint32_t zone_of(NodeId id) const;

  /// All node ids in `zone`, ascending.
  std::vector<NodeId> nodes_in_zone(std::uint32_t zone) const;

  /// Sorted unique fault domains present in the cluster.
  std::vector<std::uint32_t> zones() const;

  /// Least-loaded alive candidate preferring nodes OUTSIDE `avoid_zone`;
  /// falls back to in-zone hosts only when no other zone has capacity.
  /// The fault-domain-spreading placement primitive: two copies land in
  /// one zone only when the cluster leaves no alternative.
  std::optional<NodeId> least_loaded_avoiding_zone(
      Bytes memory, std::uint32_t avoid_zone,
      const std::vector<NodeId>& excluded) const;

  void fail_node(NodeId id);
  void restore_node(NodeId id);

 private:
  std::size_t index_of(NodeId id) const;
  void on_node_usage_changed(const Node& node, std::uint32_t old_used_slots,
                             bool was_alive) override;
  void attach_and_rebuild_index();
  void bucket_insert(std::uint32_t slots, std::uint32_t idx);
  void bucket_erase(std::uint32_t slots, std::uint32_t idx);

  std::vector<Node> nodes_;
  /// occupancy_[k] = indices of alive nodes with k used slots, ascending.
  /// Sorted vectors, not sets: bucket moves are memmoves within retained
  /// capacity, so the per-placement index maintenance never allocates in
  /// steady state.
  std::vector<std::vector<std::uint32_t>> occupancy_;
};

}  // namespace canary::cluster
