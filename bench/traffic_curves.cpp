// Open-loop traffic curves: the bench the closed-loop figures cannot
// produce. Sweeps offered load against a fixed admission capacity and
// reports goodput and tail latency per point — goodput tracks offered
// load until saturation then plateaus while p99 diverges and admission
// sheds the excess (the classic open-loop overload shape). Two extra
// sections exercise the reactive warm-pool autoscaler against an on/off
// burst (with vs. without) and overload concurrent with a node failure
// under the full Canary strategy.
//
// Emits a machine-readable canary.traffic/v1 report and self-checks the
// conservation identities on every run:
//
//   offered == admitted + shed + queued_end
//   admitted == completed + failed + in_flight
//
// plus "no shedding below 0.75x capacity". Violations exit 1.
//
// Usage: traffic_curves [--quick]
// Environment: CANARY_QUICK=1 (same as --quick), CANARY_REPORT_DIR.
#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/table.hpp"
#include "harness/scenario.hpp"
#include "recovery/strategies.hpp"
#include "traffic/generator.hpp"

namespace {

using canary::Duration;
using canary::TextTable;
using canary::harness::RunResult;
using canary::harness::ScenarioConfig;
using canary::harness::ScenarioRunner;

bool quick_mode() {
  const char* v = std::getenv("CANARY_QUICK");
  return v != nullptr && *v != '\0' && *v != '0';
}

std::string num(double v) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(4) << v;
  return os.str();
}

// The sweep's nominal service capacity is the tighter of two pipeline
// bottlenecks: `max_concurrent` admission slots each turning over one
// invocation per warm service time (reuse is forced for traffic runs, so
// steady-state service skips launch+init), and the platform's serial
// scheduler, which dispatches one invocation per `scheduler_overhead`
// tick regardless of slot availability.
constexpr std::size_t kMaxConcurrent = 32;
constexpr std::size_t kQueueCapacity = 64;
const Duration kStateWork = Duration::msec(100);
const Duration kFinalize = Duration::msec(50);

double capacity_rps() {
  const double service_s = (kStateWork * 2.0 + kFinalize).to_seconds();
  const double slot_rps = static_cast<double>(kMaxConcurrent) / service_s;
  const double scheduler_rps =
      1.0 / canary::faas::PlatformConfig{}.scheduler_overhead.to_seconds();
  return std::min(slot_rps, scheduler_rps);
}

canary::traffic::StreamConfig web_stream(double rate_hz) {
  canary::traffic::StreamConfig stream;
  stream.name = "web";
  stream.fn.runtime = canary::faas::RuntimeImage::kPython3;
  stream.fn.states.push_back({kStateWork, {}});
  stream.fn.states.push_back({kStateWork, {}});
  stream.fn.finalize = kFinalize;
  stream.arrival.kind = canary::traffic::ArrivalSpec::Kind::kPoisson;
  stream.arrival.rate_hz = rate_hz;
  stream.admission.max_concurrent = kMaxConcurrent;
  stream.admission.queue_capacity = kQueueCapacity;
  return stream;
}

ScenarioConfig base_config(Duration horizon) {
  ScenarioConfig config;
  config.strategy = canary::recovery::StrategyConfig::retry();
  config.error_rate = 0.0;
  config.cluster_nodes = 8;
  config.seed = 20240801;
  config.traffic.enabled = true;
  config.traffic.horizon = horizon;
  return config;
}

struct Point {
  double load = 0.0;
  RunResult::TrafficSummary t;
  double horizon_s = 0.0;

  double offered_rps() const {
    return static_cast<double>(t.offered) / horizon_s;
  }
  double goodput_rps() const {
    return static_cast<double>(t.completed) / horizon_s;
  }
};

void write_summary_json(std::ostream& os, const std::string& indent,
                        const RunResult::TrafficSummary& t) {
  os << indent << "\"offered\": " << t.offered << ",\n";
  os << indent << "\"admitted\": " << t.admitted << ",\n";
  os << indent << "\"shed\": " << t.shed << ",\n";
  os << indent << "\"completed\": " << t.completed << ",\n";
  os << indent << "\"failed\": " << t.failed << ",\n";
  os << indent << "\"in_flight\": " << t.in_flight << ",\n";
  os << indent << "\"queued_end\": " << t.queued_end << ",\n";
  os << indent << "\"queue_peak\": " << t.queue_peak << ",\n";
  os << indent << "\"p50_ms\": " << num(t.latency_p50_ms) << ",\n";
  os << indent << "\"p99_ms\": " << num(t.latency_p99_ms) << ",\n";
  os << indent << "\"queue_wait_p99_ms\": " << num(t.queue_wait_p99_ms)
     << ",\n";
  os << indent << "\"conservation_ok\": "
     << (t.conservation_ok ? "true" : "false");
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = quick_mode();
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--quick") {
      quick = true;
    } else {
      std::cerr << "usage: traffic_curves [--quick]\n";
      return 2;
    }
  }

  const Duration horizon = quick ? Duration::sec(10.0) : Duration::sec(40.0);
  const double capacity = capacity_rps();
  const std::vector<double> loads =
      quick ? std::vector<double>{0.5, 0.9, 1.25}
            : std::vector<double>{0.25, 0.5, 0.75, 0.9, 1.0, 1.25, 1.5};

  std::cout << "traffic curves: capacity " << num(capacity)
            << " rps, horizon " << horizon.to_seconds() << " s"
            << (quick ? " (quick)" : "") << "\n\n";

  std::vector<std::string> violations;

  // ---- offered-load sweep ----------------------------------------------
  std::vector<Point> points;
  for (const double load : loads) {
    ScenarioConfig config = base_config(horizon);
    config.traffic.streams.push_back(web_stream(load * capacity));
    const RunResult result = ScenarioRunner::run(config, {});
    Point p;
    p.load = load;
    p.t = result.traffic;
    p.horizon_s = horizon.to_seconds();
    if (!p.t.conservation_ok) {
      violations.push_back("conservation violated at load " + num(load));
    }
    if (load <= 0.75 && p.t.shed != 0) {
      violations.push_back("shed " + std::to_string(p.t.shed) +
                           " arrival(s) at subcritical load " + num(load));
    }
    points.push_back(p);
  }

  TextTable curve({"load", "offered [rps]", "goodput [rps]", "shed",
                   "p50 [ms]", "p99 [ms]", "queue peak"});
  for (const Point& p : points) {
    curve.add_row({num(p.load), num(p.offered_rps()), num(p.goodput_rps()),
                   std::to_string(p.t.shed), num(p.t.latency_p50_ms),
                   num(p.t.latency_p99_ms), std::to_string(p.t.queue_peak)});
  }
  curve.print(std::cout);

  // ---- burst response: autoscaler off vs. on ----------------------------
  const auto burst_config = [&](bool autoscale) {
    ScenarioConfig config = base_config(horizon);
    canary::traffic::StreamConfig stream = web_stream(0.0);
    stream.name = "burst";
    stream.arrival.kind = canary::traffic::ArrivalSpec::Kind::kOnOff;
    stream.arrival.rate_hz = 0.9 * capacity;
    stream.arrival.off_rate_hz = 0.05 * capacity;
    stream.arrival.on_mean = Duration::sec(2.0);
    stream.arrival.off_mean = Duration::sec(3.0);
    config.traffic.streams.push_back(std::move(stream));
    config.traffic.autoscaler.enabled = autoscale;
    config.traffic.autoscaler.max_warm = 16;
    return config;
  };
  const RunResult burst_off = ScenarioRunner::run(burst_config(false), {});
  const RunResult burst_on = ScenarioRunner::run(burst_config(true), {});
  if (!burst_off.traffic.conservation_ok || !burst_on.traffic.conservation_ok) {
    violations.push_back("conservation violated in burst section");
  }

  TextTable burst({"autoscaler", "offered", "completed", "shed", "p99 [ms]",
                   "scale ups", "scale ins", "launched", "retired"});
  for (const RunResult* r : {&burst_off, &burst_on}) {
    const auto& t = r->traffic;
    burst.add_row({r == &burst_off ? "off" : "on", std::to_string(t.offered),
                   std::to_string(t.completed), std::to_string(t.shed),
                   num(t.latency_p99_ms), std::to_string(t.scale_ups),
                   std::to_string(t.scale_ins),
                   std::to_string(t.containers_launched),
                   std::to_string(t.containers_retired)});
  }
  std::cout << "\nburst response (on/off arrivals, 90%/5% of capacity):\n";
  burst.print(std::cout);

  // ---- overload concurrent with a node failure --------------------------
  ScenarioConfig overload = base_config(horizon);
  overload.strategy = canary::recovery::StrategyConfig::canary_full();
  overload.traffic.streams.push_back(web_stream(1.2 * capacity));
  overload.node_failure_offsets.push_back(horizon * 0.4);
  const RunResult failure_run = ScenarioRunner::run(overload, {});
  if (!failure_run.traffic.conservation_ok) {
    violations.push_back("conservation violated in overload+failure section");
  }
  const auto& ft = failure_run.traffic;
  std::cout << "\noverload (1.2x) + node failure at "
            << (horizon * 0.4).to_seconds() << " s: offered " << ft.offered
            << ", completed " << ft.completed << ", shed " << ft.shed
            << ", p99 " << num(ft.latency_p99_ms) << " ms, node kills "
            << failure_run.injected_node_kills << "\n";

  // ---- canary.traffic/v1 report ----------------------------------------
  const char* dir = std::getenv("CANARY_REPORT_DIR");
  std::string path =
      (dir != nullptr && *dir != '\0') ? std::string(dir) + "/" : "";
  path += "BENCH_traffic_curves.json";
  std::ofstream os(path);
  if (!os) {
    std::cerr << "failed to write " << path << "\n";
    return 1;
  }
  os << "{\n";
  os << "  \"schema\": \"canary.traffic/v1\",\n";
  os << "  \"name\": \"traffic_curves\",\n";
  os << "  \"params\": {\n";
  os << "    \"quick\": " << (quick ? "true" : "false") << ",\n";
  os << "    \"horizon_s\": " << num(horizon.to_seconds()) << ",\n";
  os << "    \"capacity_rps\": " << num(capacity) << ",\n";
  os << "    \"max_concurrent\": " << kMaxConcurrent << ",\n";
  os << "    \"queue_capacity\": " << kQueueCapacity << ",\n";
  os << "    \"seed\": 20240801\n";
  os << "  },\n";
  os << "  \"curves\": [";
  for (std::size_t i = 0; i < points.size(); ++i) {
    const Point& p = points[i];
    os << (i == 0 ? "\n" : ",\n");
    os << "    {\n";
    os << "      \"load_factor\": " << num(p.load) << ",\n";
    os << "      \"offered_rps\": " << num(p.offered_rps()) << ",\n";
    os << "      \"goodput_rps\": " << num(p.goodput_rps()) << ",\n";
    write_summary_json(os, "      ", p.t);
    os << "\n    }";
  }
  os << "\n  ],\n";
  os << "  \"burst\": {\n";
  os << "    \"without_autoscaler\": {\n";
  write_summary_json(os, "      ", burst_off.traffic);
  os << "\n    },\n";
  os << "    \"with_autoscaler\": {\n";
  write_summary_json(os, "      ", burst_on.traffic);
  os << ",\n      \"scale_ups\": " << burst_on.traffic.scale_ups << ",\n";
  os << "      \"scale_ins\": " << burst_on.traffic.scale_ins << ",\n";
  os << "      \"containers_launched\": " << burst_on.traffic.containers_launched
     << ",\n";
  os << "      \"containers_retired\": " << burst_on.traffic.containers_retired
     << "\n    }\n";
  os << "  },\n";
  os << "  \"overload_failure\": {\n";
  write_summary_json(os, "    ", failure_run.traffic);
  os << ",\n    \"node_kills\": " << failure_run.injected_node_kills << "\n";
  os << "  },\n";
  os << "  \"conservation\": {\n";
  os << "    \"ok\": " << (violations.empty() ? "true" : "false") << ",\n";
  os << "    \"violations\": " << violations.size() << "\n";
  os << "  }\n";
  os << "}\n";
  os.close();
  std::cout << "\nreport: " << path << "\n";

  if (!violations.empty()) {
    std::cerr << "\ntraffic curves FAILED:\n";
    for (const std::string& v : violations) std::cerr << "  - " << v << "\n";
    return 1;
  }
  std::cout << "\ntraffic curves passed: conservation held at every point\n";
  return 0;
}
