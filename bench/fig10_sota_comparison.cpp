// Figure 10: Canary vs. the state-of-the-art fault-tolerance baselines —
// request replication (RR, one replica per request) and active-standby
// (AS).
//
// Paper: RR and AS cost up to 2.7x and 2.8x Canary respectively (extra
// replica/standby instances); Canary's execution time is within ~5% of RR
// (checkpoint-restore overhead), and AS runs up to 34% longer than Canary
// because standby takeovers restart functions from the beginning.
#include "support.hpp"

using namespace canary;
using namespace canary::bench;

int main() {
  Reporter reporter("fig10_sota_comparison");
  print_figure_header(
      "Figure 10", "Canary vs request replication (RR) and active-standby "
                   "(AS)",
      "web-service workload, 100 invocations, 16 nodes, error rate 1-50%, "
      "avg of 5 runs");

  const std::vector<faas::JobSpec> jobs = {
      workloads::make_job(workloads::WorkloadKind::kWebService, 100)};

  const recovery::StrategyConfig strategies[] = {
      recovery::StrategyConfig::canary_full(),
      recovery::StrategyConfig::request_replication(1),
      recovery::StrategyConfig::active_standby(),
  };

  TextTable table({"error %", "canary $", "RR $", "AS $", "canary [s]",
                   "RR [s]", "AS [s]"});
  double max_rr_cost_ratio = 0.0;
  double max_as_cost_ratio = 0.0;
  double max_as_time_overhead = 0.0;
  double rr_time_delta_sum = 0.0;
  int rr_low_rate_points = 0;
  for (const double rate : error_rates()) {
    double costs[3], times[3];
    int idx = 0;
    for (const auto& strategy : strategies) {
      // Per-attempt injection (the harness default) exposes replica and
      // standby instances independently, like the paper's "probability of
      // active, standby, and replicas functions being killed at the same
      // time".
      const auto agg =
          harness::run_repetitions(scenario(strategy, rate), jobs, kReps);
      costs[idx] = agg.cost_usd.mean();
      times[idx] = agg.makespan_s.mean();
      ++idx;
    }
    max_rr_cost_ratio = std::max(max_rr_cost_ratio, costs[1] / costs[0]);
    max_as_cost_ratio = std::max(max_as_cost_ratio, costs[2] / costs[0]);
    max_as_time_overhead =
        std::max(max_as_time_overhead, harness::overhead_pct(times[0], times[2]));
    // The paper's "within ~5% of RR" holds in RR's favourable regime (low
    // error rates, where the loser-replica race rarely restarts); at high
    // rates whole-group restarts make RR strictly slower than Canary.
    if (rate <= 0.10) {
      rr_time_delta_sum += harness::overhead_pct(times[1], times[0]);
      ++rr_low_rate_points;
    }
    table.add_row({TextTable::num(rate * 100, 0), TextTable::num(costs[0], 4),
                   TextTable::num(costs[1], 4), TextTable::num(costs[2], 4),
                   TextTable::num(times[0]), TextTable::num(times[1]),
                   TextTable::num(times[2])});
  }
  table.print(std::cout);
  reporter.add_table("sota_sweep", table);

  reporter.claim("RR costs up to 2.7x Canary", max_rr_cost_ratio, "x");
  reporter.claim("AS costs up to 2.8x Canary", max_as_cost_ratio, "x");
  reporter.claim("AS execution time up to 34% above Canary",
                 max_as_time_overhead);
  reporter.claim("Canary's time within ~5% of RR (low error rates)",
                 rr_time_delta_sum / std::max(1, rr_low_rate_points));
  return reporter.save() ? 0 : 1;
}
