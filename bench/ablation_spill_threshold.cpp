// Ablation: the KV store's per-entry limit (Algorithm 1's db_limit),
// which decides when a checkpoint spills from the in-memory KV store to a
// storage tier.
//
// A small limit spills even modest checkpoints (paying tier + metadata
// writes and a slower restore); a huge limit keeps everything in the KV
// store (fast, but pressures cache memory — reported as KV logical
// bytes). The DL workload's 98 MiB weights always spill; the graph-BFS
// workload's 6 MiB frontier sits right at the paper-era Ignite defaults.
#include "support.hpp"

using namespace canary;
using namespace canary::bench;

int main() {
  Reporter reporter("ablation_spill_threshold");
  print_figure_header(
      "Ablation", "Checkpoint spill threshold (KV per-entry limit)",
      "graph-bfs workload, 100 invocations, 16 nodes, error 20%, avg of 5 "
      "runs");

  const std::vector<faas::JobSpec> jobs = {
      workloads::make_job(workloads::WorkloadKind::kGraphBfs, 100)};

  TextTable table({"kv entry limit", "makespan [s]", "recovery [s]",
                   "cost $"});
  for (const auto limit :
       {Bytes::kib(256), Bytes::mib(1), Bytes::mib(4), Bytes::mib(16),
        Bytes::mib(128)}) {
    harness::ScenarioConfig config =
        scenario(recovery::StrategyConfig::canary_full(), 0.20);
    config.kv.max_entry_size = limit;
    const auto agg = harness::run_repetitions(config, jobs, kReps);
    table.add_row({std::to_string(limit.count() / 1024) + " KiB",
                   TextTable::num(agg.makespan_s.mean()),
                   TextTable::num(agg.total_recovery_s.mean()),
                   TextTable::num(agg.cost_usd.mean(), 4)});
  }
  table.print(std::cout);
  reporter.add_table("spill_sweep", table);
  std::cout << "\nreading: spilling to the node-local RAM tier writes faster "
               "than the replicated KV path (4 GiB/s vs ~0.9 GiB/s), so small "
               "limits are slightly cheaper in failure-free time; the KV "
               "path's value is durability — it never loses a checkpoint to "
               "a node failure, where an unflushed spill can (see "
               "ablation_retention and Fig. 11).\n";
  return reporter.save() ? 0 : 1;
}
