// Chaos campaign: hundreds of seeded multi-fault scenarios (container
// kills, node failures, gray slowdowns, heartbeat delay/drop, KV
// checkpoint loss/corruption) run under Canary with heartbeat detection
// and the recovery watchdog, each checked against the invariant oracles
// in harness/chaos.hpp. Any violation fails the binary (exit 1) — this is
// the robustness gate CI runs in quick mode on every push.
//
// A second scenario family layers open-loop burst traffic (on/off
// arrivals through admission control and the warm-pool autoscaler) over
// the fault mix, with one node failure guaranteed inside the burst
// window, and additionally checks the traffic conservation oracle:
// every offered arrival is admitted, shed, or still queued — exactly once.
//
// A third family re-arms the base scenarios with the hedge strategy:
// speculative clones race their primaries through a gray window while a
// guaranteed node failure lands mid-race, and the hedge exactly-once
// oracle checks that every fired hedge resolves exactly once.
//
// A fourth family runs the base scenarios sharded over the conservative
// parallel engine (4 partitions x 4 worker threads, cluster grown 4x so
// each partition keeps a base-sized slice): cross-shard KV mirroring and
// completion beacons ride along, and all eight oracles are evaluated
// inside every partition plus on the merged scalars.
//
// A fifth family injects the partition surface: long zone bipartitions
// that fence a minority fault domain, short asymmetric windows (one-way
// heartbeat loss that must un-suspect on heal), and correlated zone
// outages racing the cuts, with fault-domain-aware placement on for half
// the seeds. Two additional oracles apply: no-split-brain (every commit
// attempted by a fenced minority-side zombie is rejected at the store's
// epoch gate) and heal-convergence (all windows healed, no reachability
// rule outlives the run, metadata liveness views agree at the end).
// Every fourth partition seed runs sharded over the parallel engine.
//
// Usage: chaos_campaign [--quick] [--scenarios N] [--seed BASE]
//                       [--traffic-scenarios N] [--hedge-scenarios N]
//                       [--sharded-scenarios N] [--partition-scenarios N]
// Environment: CANARY_QUICK=1 (same as --quick), CANARY_REPORT_DIR.
#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <future>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/table.hpp"
#include "harness/chaos.hpp"

namespace {

bool quick_mode_env() {
  const char* v = std::getenv("CANARY_QUICK");
  return v != nullptr && *v != '\0' && *v != '0';
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string num(double v) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(6) << v;
  return os.str();
}

}  // namespace

int main(int argc, char** argv) {
  using canary::harness::ChaosOutcome;

  bool quick = quick_mode_env();
  std::size_t scenarios = 0;          // 0 = derive from quick flag below
  std::size_t traffic_scenarios = 0;  // 0 = derive from quick flag below
  std::size_t hedge_scenarios = 0;    // 0 = derive from quick flag below
  std::size_t sharded_scenarios = 0;  // 0 = derive from quick flag below
  std::size_t partition_scenarios = 0;  // 0 = derive from quick flag below
  std::uint64_t base_seed = 90001;
  std::uint64_t traffic_base_seed = 70001;
  std::uint64_t hedge_base_seed = 50001;
  std::uint64_t sharded_base_seed = 30001;
  std::uint64_t partition_base_seed = 10001;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      quick = true;
    } else if (arg == "--scenarios" && i + 1 < argc) {
      scenarios = static_cast<std::size_t>(std::atoll(argv[++i]));
    } else if (arg == "--seed" && i + 1 < argc) {
      base_seed = static_cast<std::uint64_t>(std::atoll(argv[++i]));
    } else if (arg == "--traffic-scenarios" && i + 1 < argc) {
      traffic_scenarios = static_cast<std::size_t>(std::atoll(argv[++i]));
    } else if (arg == "--hedge-scenarios" && i + 1 < argc) {
      hedge_scenarios = static_cast<std::size_t>(std::atoll(argv[++i]));
    } else if (arg == "--sharded-scenarios" && i + 1 < argc) {
      sharded_scenarios = static_cast<std::size_t>(std::atoll(argv[++i]));
    } else if (arg == "--partition-scenarios" && i + 1 < argc) {
      partition_scenarios = static_cast<std::size_t>(std::atoll(argv[++i]));
    } else {
      std::cerr << "usage: chaos_campaign [--quick] [--scenarios N] "
                   "[--seed BASE] [--traffic-scenarios N] "
                   "[--hedge-scenarios N] [--sharded-scenarios N] "
                   "[--partition-scenarios N]\n";
      return 2;
    }
  }
  if (scenarios == 0) scenarios = quick ? 24 : 240;
  if (traffic_scenarios == 0) traffic_scenarios = quick ? 12 : 120;
  if (hedge_scenarios == 0) hedge_scenarios = quick ? 12 : 120;
  if (sharded_scenarios == 0) sharded_scenarios = quick ? 8 : 64;
  if (partition_scenarios == 0) partition_scenarios = quick ? 8 : 64;

  std::cout << "chaos campaign: " << scenarios << " scenarios, base seed "
            << base_seed << " + " << traffic_scenarios
            << " traffic scenarios, base seed " << traffic_base_seed << " + "
            << hedge_scenarios << " hedge scenarios, base seed "
            << hedge_base_seed << " + " << sharded_scenarios
            << " sharded scenarios, base seed " << sharded_base_seed << " + "
            << partition_scenarios << " partition scenarios, base seed "
            << partition_base_seed << (quick ? " (quick)" : "") << "\n";

  // Seeded scenarios are independent; run them in parallel batches. The
  // traffic and hedge families ride in the same pool, indexed past the
  // base family.
  const std::size_t total_scenarios = scenarios + traffic_scenarios +
                                      hedge_scenarios + sharded_scenarios +
                                      partition_scenarios;
  std::vector<ChaosOutcome> outcomes(total_scenarios);
  const std::size_t workers = std::max(1u, std::thread::hardware_concurrency());
  std::size_t next = 0;
  while (next < total_scenarios) {
    const std::size_t batch = std::min(workers, total_scenarios - next);
    std::vector<std::future<ChaosOutcome>> futures;
    futures.reserve(batch);
    for (std::size_t i = 0; i < batch; ++i) {
      const std::size_t index = next + i;
      enum class Family {
        kBase,
        kTraffic,
        kHedge,
        kSharded,
        kPartition,
        kShardedPartition,
      };
      Family family = Family::kBase;
      std::uint64_t seed = base_seed + index;
      if (index >=
          scenarios + traffic_scenarios + hedge_scenarios + sharded_scenarios) {
        const std::size_t off = index - scenarios - traffic_scenarios -
                                hedge_scenarios - sharded_scenarios;
        // Every fourth partition seed runs sharded over the parallel
        // engine, so the split-brain oracles also cover cross-shard runs.
        family = off % 4 == 3 ? Family::kShardedPartition : Family::kPartition;
        seed = partition_base_seed + off;
      } else if (index >= scenarios + traffic_scenarios + hedge_scenarios) {
        family = Family::kSharded;
        seed = sharded_base_seed +
               (index - scenarios - traffic_scenarios - hedge_scenarios);
      } else if (index >= scenarios + traffic_scenarios) {
        family = Family::kHedge;
        seed = hedge_base_seed + (index - scenarios - traffic_scenarios);
      } else if (index >= scenarios) {
        family = Family::kTraffic;
        seed = traffic_base_seed + (index - scenarios);
      }
      futures.push_back(std::async(std::launch::async, [seed, family] {
        switch (family) {
          case Family::kTraffic:
            return canary::harness::run_traffic_chaos_scenario(seed);
          case Family::kHedge:
            return canary::harness::run_hedge_chaos_scenario(seed);
          case Family::kSharded:
            return canary::harness::run_sharded_chaos_scenario(seed);
          case Family::kPartition:
            return canary::harness::run_partition_chaos_scenario(seed);
          case Family::kShardedPartition:
            return canary::harness::run_sharded_partition_chaos_scenario(seed);
          case Family::kBase: break;
        }
        return canary::harness::run_chaos_scenario(seed);
      }));
    }
    for (std::size_t i = 0; i < batch; ++i) {
      outcomes[next + i] = futures[i].get();
    }
    next += batch;
  }

  // ---- aggregate --------------------------------------------------------
  std::uint64_t violations = 0;
  std::uint64_t node_kills = 0, gray = 0, hb_dropped = 0, hb_delayed = 0;
  std::uint64_t store_dropped = 0, store_corrupted = 0;
  std::uint64_t suspicions = 0, false_suspicions = 0, stalls = 0;
  std::uint64_t traffic_offered = 0, traffic_admitted = 0;
  std::uint64_t traffic_shed = 0, traffic_completed = 0;
  std::uint64_t hedges_fired = 0, hedge_wins = 0, hedges_cancelled = 0;
  std::uint64_t partitions_started = 0, partitions_healed = 0;
  std::uint64_t zone_outages = 0, hb_partition_dropped = 0;
  std::uint64_t stale_epoch_rejects = 0, quorum_blocked = 0;
  std::uint64_t zombie_attempts = 0, zombie_rejected = 0;
  double total_failures = 0.0;
  double max_detection = 0.0;
  std::vector<const ChaosOutcome*> failed;
  for (const ChaosOutcome& out : outcomes) {
    violations += out.violations.size();
    node_kills += out.node_kills;
    gray += out.gray_windows;
    hb_dropped += out.heartbeats_dropped;
    hb_delayed += out.heartbeats_delayed;
    store_dropped += out.store_entries_dropped;
    store_corrupted += out.store_entries_corrupted;
    suspicions += out.detector_suspicions;
    false_suspicions += out.detector_false_suspicions;
    stalls += out.recovery_stalls;
    traffic_offered += out.traffic_offered;
    traffic_admitted += out.traffic_admitted;
    traffic_shed += out.traffic_shed;
    traffic_completed += out.traffic_completed;
    hedges_fired += out.hedges_fired;
    hedge_wins += out.hedge_wins;
    hedges_cancelled += out.hedges_cancelled;
    partitions_started += out.partitions_started;
    partitions_healed += out.partitions_healed;
    zone_outages += out.zone_outages;
    hb_partition_dropped += out.heartbeats_partition_dropped;
    stale_epoch_rejects += out.stale_epoch_rejects;
    quorum_blocked += out.quorum_blocked_puts;
    zombie_attempts += out.zombie_commit_attempts;
    zombie_rejected += out.zombie_commits_rejected;
    total_failures += out.failures;
    max_detection = std::max(max_detection, out.max_detection_latency_s);
    if (!out.violations.empty()) failed.push_back(&out);
  }

  canary::TextTable table({"metric", "total"});
  table.add_row({"scenarios", std::to_string(scenarios)});
  table.add_row({"traffic scenarios", std::to_string(traffic_scenarios)});
  table.add_row({"hedge scenarios", std::to_string(hedge_scenarios)});
  table.add_row({"sharded scenarios", std::to_string(sharded_scenarios)});
  table.add_row({"partition scenarios", std::to_string(partition_scenarios)});
  table.add_row({"function failures", canary::TextTable::num(total_failures, 0)});
  table.add_row({"node kills", std::to_string(node_kills)});
  table.add_row({"gray windows", std::to_string(gray)});
  table.add_row({"heartbeats dropped", std::to_string(hb_dropped)});
  table.add_row({"heartbeats delayed", std::to_string(hb_delayed)});
  table.add_row({"checkpoints destroyed", std::to_string(store_dropped)});
  table.add_row({"checkpoints corrupted", std::to_string(store_corrupted)});
  table.add_row({"worker suspicions", std::to_string(suspicions)});
  table.add_row({"false suspicions", std::to_string(false_suspicions)});
  table.add_row({"recovery stalls", std::to_string(stalls)});
  table.add_row({"max detection latency [s]",
                 canary::TextTable::num(max_detection, 3)});
  table.add_row({"arrivals offered", std::to_string(traffic_offered)});
  table.add_row({"arrivals shed", std::to_string(traffic_shed)});
  table.add_row({"hedges fired", std::to_string(hedges_fired)});
  table.add_row({"hedge wins", std::to_string(hedge_wins)});
  table.add_row({"partitions started", std::to_string(partitions_started)});
  table.add_row({"partitions healed", std::to_string(partitions_healed)});
  table.add_row({"zone outages", std::to_string(zone_outages)});
  table.add_row({"stale-epoch rejects", std::to_string(stale_epoch_rejects)});
  table.add_row({"zombie commit attempts", std::to_string(zombie_attempts)});
  table.add_row({"oracle violations", std::to_string(violations)});
  table.print(std::cout);

  if (!failed.empty()) {
    std::cout << "\nFAILED scenarios:\n";
    for (const ChaosOutcome* out : failed) {
      std::cout << "  seed " << out->seed << ":\n";
      for (const std::string& v : out->violations) {
        std::cout << "    - " << v << "\n";
      }
    }
  }

  // ---- canary.chaos/v1 report ------------------------------------------
  const char* dir = std::getenv("CANARY_REPORT_DIR");
  std::string path =
      (dir != nullptr && *dir != '\0') ? std::string(dir) + "/" : "";
  path += "BENCH_chaos_campaign.json";
  std::ofstream os(path);
  if (!os) {
    std::cerr << "failed to write " << path << "\n";
    return 1;
  }
  os << "{\n";
  os << "  \"schema\": \"canary.chaos/v1\",\n";
  os << "  \"name\": \"chaos_campaign\",\n";
  os << "  \"params\": {\n";
  os << "    \"quick\": " << (quick ? "true" : "false") << ",\n";
  os << "    \"scenarios\": " << scenarios << ",\n";
  os << "    \"base_seed\": " << base_seed << ",\n";
  os << "    \"traffic_scenarios\": " << traffic_scenarios << ",\n";
  os << "    \"traffic_base_seed\": " << traffic_base_seed << ",\n";
  os << "    \"hedge_scenarios\": " << hedge_scenarios << ",\n";
  os << "    \"hedge_base_seed\": " << hedge_base_seed << ",\n";
  os << "    \"sharded_scenarios\": " << sharded_scenarios << ",\n";
  os << "    \"sharded_base_seed\": " << sharded_base_seed << ",\n";
  os << "    \"partition_scenarios\": " << partition_scenarios << ",\n";
  os << "    \"partition_base_seed\": " << partition_base_seed << "\n";
  os << "  },\n";
  os << "  \"fault_totals\": {\n";
  os << "    \"function_failures\": " << num(total_failures) << ",\n";
  os << "    \"node_kills\": " << node_kills << ",\n";
  os << "    \"gray_windows\": " << gray << ",\n";
  os << "    \"heartbeats_dropped\": " << hb_dropped << ",\n";
  os << "    \"heartbeats_delayed\": " << hb_delayed << ",\n";
  os << "    \"store_entries_dropped\": " << store_dropped << ",\n";
  os << "    \"store_entries_corrupted\": " << store_corrupted << "\n";
  os << "  },\n";
  os << "  \"detection\": {\n";
  os << "    \"suspicions\": " << suspicions << ",\n";
  os << "    \"false_suspicions\": " << false_suspicions << ",\n";
  os << "    \"recovery_stalls\": " << stalls << ",\n";
  os << "    \"max_latency_s\": " << num(max_detection) << "\n";
  os << "  },\n";
  os << "  \"traffic_totals\": {\n";
  os << "    \"offered\": " << traffic_offered << ",\n";
  os << "    \"admitted\": " << traffic_admitted << ",\n";
  os << "    \"shed\": " << traffic_shed << ",\n";
  os << "    \"completed\": " << traffic_completed << "\n";
  os << "  },\n";
  os << "  \"hedge_totals\": {\n";
  os << "    \"fired\": " << hedges_fired << ",\n";
  os << "    \"wins\": " << hedge_wins << ",\n";
  os << "    \"cancelled\": " << hedges_cancelled << "\n";
  os << "  },\n";
  os << "  \"partition_totals\": {\n";
  os << "    \"partitions_started\": " << partitions_started << ",\n";
  os << "    \"partitions_healed\": " << partitions_healed << ",\n";
  os << "    \"zone_outages\": " << zone_outages << ",\n";
  os << "    \"heartbeats_partition_dropped\": " << hb_partition_dropped
     << ",\n";
  os << "    \"stale_epoch_rejects\": " << stale_epoch_rejects << ",\n";
  os << "    \"quorum_blocked_puts\": " << quorum_blocked << ",\n";
  os << "    \"zombie_commit_attempts\": " << zombie_attempts << ",\n";
  os << "    \"zombie_commits_rejected\": " << zombie_rejected << "\n";
  os << "  },\n";
  os << "  \"oracles\": {\n";
  os << "    \"checked\": [\"completion\", \"exactly_once\", "
        "\"no_corrupt_restore\", \"detection_bound\", \"ledger_balance\", "
        "\"no_stranded_failures\", \"conservation\", "
        "\"hedge_exactly_once\", \"no_split_brain\", "
        "\"heal_convergence\"],\n";
  os << "    \"violations\": " << violations << "\n";
  os << "  },\n";
  os << "  \"failed_scenarios\": [";
  for (std::size_t i = 0; i < failed.size(); ++i) {
    os << (i == 0 ? "\n" : ",\n");
    os << "    {\"seed\": " << failed[i]->seed << ", \"violations\": [";
    const auto& vs = failed[i]->violations;
    for (std::size_t v = 0; v < vs.size(); ++v) {
      os << (v == 0 ? "" : ", ") << "\"" << json_escape(vs[v]) << "\"";
    }
    os << "]}";
  }
  os << (failed.empty() ? "]\n" : "\n  ]\n");
  os << "}\n";
  os.close();
  std::cout << "\nreport: " << path << "\n";

  if (violations > 0) {
    std::cerr << "\nchaos campaign FAILED: " << violations
              << " oracle violation(s)\n";
    return 1;
  }
  std::cout << "\nchaos campaign passed: " << total_scenarios
            << " scenarios, zero oracle violations\n";
  return 0;
}
