// Million-invocation scale stress for the simulation substrate.
//
// Unlike the figure benches (which reproduce the paper's plots) this
// binary answers an engineering question: how fast is the event engine
// and the platform above it, and does the hot path allocate? It runs
// three phases and emits a machine-readable canary.bench/v1 report that
// CI diffs against a committed baseline (>20% events/sec regression
// fails the perf-smoke job):
//
//   engine_steady   schedule/dispatch churn on a bare sim::Simulator
//   engine_cancel   timer churn: every work event cancels a timeout
//                   event, exercising lazy deletion + compaction
//   platform_scale  >= 1M invocations across 256 nodes through the full
//                   FaaS platform (quick mode: 32k across 64 nodes)
//
// A second sweep reruns the platform phase over the sharded engine (the
// same topology split into 8 partitions) at 1, 2 and 4 worker threads
// and writes its own canary.bench/v1 report (BENCH_shard.json, gated
// against bench/BENCH_shard.baseline.json in CI). The merged event count
// is invariant in the worker count by construction, so the phases
// measure pure scheduling overhead/parallelism, not different workloads.
//
// Allocation counts come from interposing global operator new in this
// binary, so allocations/event is exact, not sampled. Peak RSS comes
// from getrusage(RUSAGE_SELF).
//
// Usage: scale_stress [--quick] [--out=PATH] [--shard-out=PATH]
//   --quick       shrink the workload for CI smoke runs (also CANARY_QUICK=1)
//   --out=PATH    write the JSON report to PATH (default:
//                 $CANARY_REPORT_DIR/BENCH_scale.json or ./BENCH_scale.json)
//   --shard-out=PATH  write the shard-sweep report to PATH (default:
//                 $CANARY_REPORT_DIR/BENCH_shard.json or ./BENCH_shard.json)
#include <sys/resource.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <new>
#include <string>
#include <vector>

#include "support.hpp"

#include "common/table.hpp"
#include "harness/scenario.hpp"
#include "obs/json.hpp"
#include "sim/simulator.hpp"
#include "workloads/workloads.hpp"

// ---------------------------------------------------------------------
// Global operator new/delete interposition: exact allocation counting.
// ---------------------------------------------------------------------

namespace {
std::atomic<std::uint64_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size != 0 ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

void* operator new(std::size_t size, std::align_val_t align) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  const std::size_t al = static_cast<std::size_t>(align);
  const std::size_t rounded = (size + al - 1) / al * al;
  if (void* p = std::aligned_alloc(al, rounded != 0 ? rounded : al)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace canary::bench {
namespace {

std::uint64_t allocations_now() {
  return g_allocations.load(std::memory_order_relaxed);
}

double wall_seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

std::uint64_t peak_rss_bytes() {
  rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
  // Linux reports ru_maxrss in kilobytes.
  return static_cast<std::uint64_t>(usage.ru_maxrss) * 1024ull;
}

struct PhaseResult {
  std::string name;
  std::uint64_t events = 0;       // events dispatched or resolved
  double wall_s = 0.0;
  std::uint64_t allocations = 0;  // operator new calls during the phase
  double events_per_sec() const {
    return wall_s > 0.0 ? static_cast<double>(events) / wall_s : 0.0;
  }
  double allocations_per_event() const {
    return events > 0
               ? static_cast<double>(allocations) / static_cast<double>(events)
               : 0.0;
  }
};

/// Deterministic xorshift so phase workloads don't depend on libstdc++
/// distribution internals (and never allocate).
struct XorShift {
  std::uint64_t state = 0x9e3779b97f4a7c15ull;
  std::uint64_t next() {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  }
};

/// Pure schedule/dispatch churn: batches of short timers drained to
/// empty, repeated until `target` events have fired. One untimed batch
/// first warms the slab, heap, and callback storage so the measured
/// steady state reflects reuse, not growth.
PhaseResult engine_steady(std::uint64_t target) {
  constexpr std::uint64_t kBatch = 4096;
  sim::Simulator sim;
  XorShift rng;
  std::uint64_t fired = 0;

  auto run_batch = [&](std::uint64_t count) {
    for (std::uint64_t i = 0; i < count; ++i) {
      sim.schedule_after(Duration::usec(static_cast<std::int64_t>(
                             rng.next() % 1000)),
                         [&fired] { ++fired; });
    }
    sim.run();
  };

  run_batch(kBatch);  // warm-up, not measured
  fired = 0;

  const std::uint64_t alloc_start = allocations_now();
  const auto start = std::chrono::steady_clock::now();
  while (fired < target) {
    run_batch(std::min<std::uint64_t>(kBatch, target - fired));
  }
  PhaseResult result;
  result.name = "engine_steady";
  result.events = fired;
  result.wall_s = wall_seconds_since(start);
  result.allocations = allocations_now() - alloc_start;
  return result;
}

/// Timer churn modelled on the platform's execution kill timers: every
/// work event cancels a companion timeout that would otherwise fire
/// later, leaving tombstones for the lazy-deletion compactor. `target`
/// counts resolved pairs (one dispatch + one cancellation each).
PhaseResult engine_cancel(std::uint64_t target) {
  constexpr std::uint64_t kBatch = 4096;
  sim::Simulator sim;
  XorShift rng;
  std::uint64_t resolved = 0;
  std::vector<sim::EventHandle> timeouts(kBatch);

  auto run_batch = [&](std::uint64_t count) {
    for (std::uint64_t i = 0; i < count; ++i) {
      timeouts[i] = sim.schedule_after(
          Duration::usec(2000 + static_cast<std::int64_t>(rng.next() % 1000)),
          [] {});
      sim.schedule_after(
          Duration::usec(static_cast<std::int64_t>(rng.next() % 1000)),
          [&resolved, &timeouts, i] {
            timeouts[i].cancel();
            ++resolved;
          });
    }
    sim.run();
  };

  run_batch(kBatch);  // warm-up, not measured
  resolved = 0;

  const std::uint64_t alloc_start = allocations_now();
  const auto start = std::chrono::steady_clock::now();
  while (resolved < target) {
    run_batch(std::min<std::uint64_t>(kBatch, target - resolved));
  }
  PhaseResult result;
  result.name = "engine_cancel";
  // Each resolved pair is two scheduled events: one fired, one cancelled.
  result.events = resolved * 2;
  result.wall_s = wall_seconds_since(start);
  result.allocations = allocations_now() - alloc_start;
  return result;
}

/// The full stack at scale: `jobs` x `functions_per_job` web-service
/// invocations over `nodes` nodes with a small hazard error rate, event
/// and span recording off (this phase measures the platform, not the
/// recorders). Reports simulated events/sec.
PhaseResult platform_scale(std::size_t nodes, std::size_t jobs,
                           std::size_t functions_per_job,
                           std::uint64_t* invocations_out) {
  harness::ScenarioConfig config =
      scenario(recovery::StrategyConfig::retry(), /*error_rate=*/0.02, nodes);
  config.record_spans = false;
  config.record_events = false;

  std::vector<faas::JobSpec> batch;
  batch.reserve(jobs);
  for (std::size_t j = 0; j < jobs; ++j) {
    batch.push_back(workloads::make_job(workloads::WorkloadKind::kWebService,
                                        functions_per_job,
                                        "scale_" + std::to_string(j)));
  }
  *invocations_out =
      static_cast<std::uint64_t>(jobs) * functions_per_job;

  const std::uint64_t alloc_start = allocations_now();
  const auto start = std::chrono::steady_clock::now();
  const harness::RunResult run = harness::ScenarioRunner::run(config, batch);
  PhaseResult result;
  result.name = "platform_scale";
  result.events = run.simulated_events;
  result.wall_s = wall_seconds_since(start);
  result.allocations = allocations_now() - alloc_start;
  if (!run.completed) {
    std::cerr << "platform_scale: run did not complete\n";
    std::exit(1);
  }
  return result;
}

/// The platform phase over the sharded engine: the same topology split
/// into 8 partitions, advanced by `workers` threads with the default
/// 5 ms harness lookahead. The merged simulated event total is invariant
/// in `workers` (the determinism suite proves it byte-for-byte), so the
/// per-worker-count phases compare like against like.
PhaseResult platform_shard(std::size_t nodes, std::size_t jobs,
                           std::size_t functions_per_job, unsigned workers) {
  harness::ScenarioConfig config =
      scenario(recovery::StrategyConfig::retry(), /*error_rate=*/0.02, nodes);
  config.record_spans = false;
  config.record_events = false;
  config.sharding.enabled = true;
  config.sharding.partitions = 8;
  config.sharding.workers = workers;

  std::vector<faas::JobSpec> batch;
  batch.reserve(jobs);
  for (std::size_t j = 0; j < jobs; ++j) {
    batch.push_back(workloads::make_job(workloads::WorkloadKind::kWebService,
                                        functions_per_job,
                                        "scale_" + std::to_string(j)));
  }

  const std::uint64_t alloc_start = allocations_now();
  const auto start = std::chrono::steady_clock::now();
  const harness::RunResult run = harness::ScenarioRunner::run(config, batch);
  PhaseResult result;
  result.name = "platform_shard_w" + std::to_string(workers);
  result.events = run.simulated_events;
  result.wall_s = wall_seconds_since(start);
  result.allocations = allocations_now() - alloc_start;
  if (!run.completed) {
    std::cerr << result.name << ": run did not complete\n";
    std::exit(1);
  }
  std::cout << "  " << result.name << ": " << run.shards.size()
            << " partitions, " << run.shard_epochs << " epochs, "
            << run.shard_messages << " cross-shard messages;";
  for (std::size_t p = 0; p < run.shards.size(); ++p) {
    std::cout << (p == 0 ? " per-shard events " : " / ")
              << run.shards[p]->simulated_events;
  }
  std::cout << "\n";
  return result;
}

void write_report(const std::string& path, const std::string& name,
                  bool quick, std::size_t nodes, std::uint64_t invocations,
                  const std::vector<PhaseResult>& phases) {
  std::ofstream out(path);
  if (!out) {
    std::cerr << "failed to open " << path << "\n";
    std::exit(1);
  }
  obs::JsonWriter json(out, /*indent=*/2);
  json.begin_object();
  json.field("schema", "canary.bench/v1");
  json.field("name", name);
  json.field("quick", quick);
  json.key("config").begin_object();
  json.field("nodes", static_cast<std::uint64_t>(nodes));
  json.field("invocations", invocations);
  json.end_object();
  json.key("phases").begin_array();
  for (const PhaseResult& phase : phases) {
    json.begin_object();
    json.field("name", phase.name);
    json.field("events", phase.events);
    json.field("wall_s", phase.wall_s);
    json.field("events_per_sec", phase.events_per_sec());
    json.field("allocations", phase.allocations);
    json.field("allocations_per_event", phase.allocations_per_event());
    json.end_object();
  }
  json.end_array();
  json.field("peak_rss_bytes", peak_rss_bytes());
  json.end_object();
  out << '\n';
  std::cout << "\nreport: " << path << "\n";
}

int run(int argc, char** argv) {
  bool quick = quick_mode();
  std::string out_path;
  std::string shard_out_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      quick = true;
    } else if (arg.rfind("--out=", 0) == 0) {
      out_path = arg.substr(6);
    } else if (arg.rfind("--shard-out=", 0) == 0) {
      shard_out_path = arg.substr(12);
    } else {
      std::cerr << "usage: scale_stress [--quick] [--out=PATH] "
                   "[--shard-out=PATH]\n";
      return 2;
    }
  }
  const char* dir = std::getenv("CANARY_REPORT_DIR");
  const std::string report_dir =
      (dir != nullptr && *dir != '\0') ? std::string(dir) + "/" : "";
  if (out_path.empty()) out_path = report_dir + "BENCH_scale.json";
  if (shard_out_path.empty()) shard_out_path = report_dir + "BENCH_shard.json";

  // Full mode: >= 1M invocations over 256 nodes, 4M-event engine phases.
  // Quick mode: 32k invocations over 64 nodes, 256k-event engine phases —
  // large enough that events/sec is stable, small enough for CI.
  const std::uint64_t engine_events = quick ? 262'144 : 4'194'304;
  const std::uint64_t cancel_pairs = quick ? 131'072 : 2'097'152;
  const std::size_t nodes = quick ? 64 : 256;
  const std::size_t jobs = quick ? 8 : 245;
  const std::size_t functions_per_job = 4096;  // 245 * 4096 = 1,003,520

  std::cout << "=== scale_stress (" << (quick ? "quick" : "full")
            << "): engine + platform hot-path throughput ===\n";

  std::vector<PhaseResult> phases;
  phases.push_back(engine_steady(engine_events));
  phases.push_back(engine_cancel(cancel_pairs));
  std::uint64_t invocations = 0;
  phases.push_back(
      platform_scale(nodes, jobs, functions_per_job, &invocations));

  std::cout << "\nshard sweep (8 partitions):\n";
  std::vector<PhaseResult> shard_phases;
  for (const unsigned workers : {1u, 2u, 4u}) {
    shard_phases.push_back(
        platform_shard(nodes, jobs, functions_per_job, workers));
  }

  TextTable table(
      {"phase", "events", "wall [s]", "events/sec", "allocs", "allocs/event"});
  for (const std::vector<PhaseResult>* set : {&phases, &shard_phases}) {
    for (const PhaseResult& phase : *set) {
      table.add_row({phase.name, std::to_string(phase.events),
                     TextTable::num(phase.wall_s, 3),
                     TextTable::num(phase.events_per_sec(), 0),
                     std::to_string(phase.allocations),
                     TextTable::num(phase.allocations_per_event(), 4)});
    }
  }
  std::cout << "\n";
  table.print(std::cout);
  std::cout << "\nplatform invocations: " << invocations << " across " << nodes
            << " nodes\npeak rss: " << peak_rss_bytes() / (1024 * 1024)
            << " MiB\n";

  write_report(out_path, "scale", quick, nodes, invocations, phases);
  write_report(shard_out_path, "shard", quick, nodes, invocations,
               shard_phases);
  return 0;
}

}  // namespace
}  // namespace canary::bench

int main(int argc, char** argv) { return canary::bench::run(argc, argv); }
