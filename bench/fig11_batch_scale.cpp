// Figure 11: recovery time for large concurrent batches (200-1000
// functions) on the 16-node cluster, with the failure count growing
// proportionally to the batch size and including node-level failures.
//
// Paper: as the number of functions grows, Canary's batch recovery time
// stays fairly constant and close to zero (the failure-free optimum); the
// retry strategy's recovery under node-level failure collapses to the
// longest single-function recovery because all functions of the node
// restart at once; checkpoints in shared storage let Canary recover
// node-level failures too. Overall up to 80% lower average recovery time.
#include "support.hpp"

using namespace canary;
using namespace canary::bench;

int main() {
  Reporter reporter("fig11_batch_scale");
  print_figure_header(
      "Figure 11", "Recovery time for large batches (incl. node failures)",
      "mixed workload batches, 16 nodes, error rate proportional to batch, "
      "one node failure per run, avg of 5 runs");

  const std::vector<std::size_t> batches =
      quick_mode() ? std::vector<std::size_t>{200, 400}
                   : std::vector<std::size_t>{200, 400, 800, 1000};

  TextTable table({"functions", "error %", "ideal [s]", "retry [s]",
                   "canary [s]", "reduction %"});
  double max_reduction = 0.0;
  for (const std::size_t count : batches) {
    // Failure rate proportional to the number of functions launched.
    const double rate = std::min(0.5, 0.025 * static_cast<double>(count) / 100.0);
    const std::vector<faas::JobSpec> jobs = {workloads::make_mixed_batch(count)};
    auto with_node_failure = [&](recovery::StrategyConfig strategy) {
      harness::ScenarioConfig config = scenario(strategy, rate);
      config.node_failure_offsets = {Duration::sec(10.0)};
      return harness::run_repetitions(config, jobs, kReps);
    };
    const auto ideal =
        with_node_failure(recovery::StrategyConfig::ideal());
    const auto retry = with_node_failure(recovery::StrategyConfig::retry());
    const auto canary =
        with_node_failure(recovery::StrategyConfig::canary_full());
    const double reduction = harness::reduction_pct(
        retry.total_recovery_s.mean(), canary.total_recovery_s.mean());
    max_reduction = std::max(max_reduction, reduction);
    table.add_row({std::to_string(count), TextTable::num(rate * 100, 0),
                   TextTable::num(ideal.total_recovery_s.mean()),
                   TextTable::num(retry.total_recovery_s.mean()),
                   TextTable::num(canary.total_recovery_s.mean()),
                   TextTable::num(reduction, 1)});
  }
  table.print(std::cout);
  reporter.add_table("batch_sweep", table);

  reporter.claim("up to 80% lower average recovery time than retry",
                 max_reduction);
  return reporter.save() ? 0 : 1;
}
