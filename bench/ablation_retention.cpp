// Ablation: dynamic latest-n checkpoint retention (paper §IV-C4b: n
// starts at 3 and adapts to payload size and state frequency) vs. fixed
// retention values.
//
// Larger n costs KV/storage space but tolerates unflushed-checkpoint loss
// on node failures; smaller n risks falling back further after a node
// dies. The ablation runs the graph-BFS workload (frequent, mid-sized
// checkpoints that spill) with node failures and compares recovery time.
#include "support.hpp"

using namespace canary;
using namespace canary::bench;

int main() {
  Reporter reporter("ablation_retention");
  print_figure_header(
      "Ablation", "Checkpoint retention policy (dynamic vs fixed n)",
      "graph-bfs workload, 100 invocations, 16 nodes, error 20%, two node "
      "failures, avg of 5 runs");

  const std::vector<faas::JobSpec> jobs = {
      workloads::make_job(workloads::WorkloadKind::kGraphBfs, 100)};

  auto run_with = [&](unsigned fixed_n, bool dynamic) {
    recovery::StrategyConfig strategy = recovery::StrategyConfig::canary_full();
    if (!dynamic) {
      strategy.canary.checkpointing.initial_retention = fixed_n;
      strategy.canary.checkpointing.min_retention = fixed_n;
      strategy.canary.checkpointing.max_retention = fixed_n;
    }
    harness::ScenarioConfig config = scenario(strategy, 0.20);
    config.node_failure_offsets = {Duration::sec(6.0), Duration::sec(12.0)};
    return harness::run_repetitions(config, jobs, kReps);
  };

  TextTable table({"retention", "recovery [s]", "makespan [s]", "cost $",
                   "lost work [s]"});
  for (const unsigned n : {1u, 2u, 3u, 5u}) {
    const auto agg = run_with(n, /*dynamic=*/false);
    table.add_row({"fixed " + std::to_string(n),
                   TextTable::num(agg.total_recovery_s.mean()),
                   TextTable::num(agg.makespan_s.mean()),
                   TextTable::num(agg.cost_usd.mean(), 4),
                   TextTable::num(agg.lost_work_s.mean())});
  }
  const auto dynamic = run_with(0, /*dynamic=*/true);
  table.add_row({"dynamic (canary)",
                 TextTable::num(dynamic.total_recovery_s.mean()),
                 TextTable::num(dynamic.makespan_s.mean()),
                 TextTable::num(dynamic.cost_usd.mean(), 4),
                 TextTable::num(dynamic.lost_work_s.mean())});
  table.print(std::cout);
  reporter.add_table("retention_sweep", table);
  std::cout << "\nreading: retention 1 loses the only (often not yet flushed) "
               "checkpoint with its node and falls back to a from-scratch "
               "restart; >= 2 keeps an older flushed checkpoint reachable "
               "via shared storage, and beyond the flush horizon extra "
               "copies stop mattering — which is why the paper's dynamic "
               "policy starts at 3 and adapts rather than growing n.\n";
  return reporter.save() ? 0 : 1;
}
