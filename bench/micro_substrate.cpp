// Microbenchmarks of the substrate hot paths: event queue throughput,
// KV store operations, and end-to-end simulated-platform throughput.
#include <benchmark/benchmark.h>

#include "micro_report.hpp"

#include "cluster/network.hpp"
#include "faas/platform.hpp"
#include "faas/retry.hpp"
#include "harness/scenario.hpp"
#include "kvstore/kvstore.hpp"
#include "sim/simulator.hpp"
#include "workloads/workloads.hpp"

namespace {

using namespace canary;

void BM_EventQueueScheduleRun(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(state.range(0));
  for (auto _ : state) {
    sim::Simulator sim;
    std::uint64_t fired = 0;
    for (std::uint64_t i = 0; i < n; ++i) {
      sim.schedule_after(Duration::usec(static_cast<std::int64_t>(i % 1000)),
                         [&fired] { ++fired; });
    }
    sim.run();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(n) * state.iterations());
}
BENCHMARK(BM_EventQueueScheduleRun)->Arg(1000)->Arg(100000);

void BM_EventCancellation(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    std::vector<sim::EventHandle> handles;
    handles.reserve(10000);
    for (int i = 0; i < 10000; ++i) {
      handles.push_back(sim.schedule_after(Duration::msec(1), [] {}));
    }
    for (auto& h : handles) h.cancel();
    sim.run();
    benchmark::DoNotOptimize(sim.executed_events());
  }
  state.SetItemsProcessed(10000 * state.iterations());
}
BENCHMARK(BM_EventCancellation);

void BM_EventTimerChurn(benchmark::State& state) {
  // The platform's kill-timer pattern: every work event cancels a
  // companion timeout scheduled further out, so the heap carries a
  // moving population of tombstones and the lazy-deletion compactor
  // runs continuously.
  const auto n = static_cast<std::uint64_t>(state.range(0));
  for (auto _ : state) {
    sim::Simulator sim;
    std::vector<sim::EventHandle> timeouts(n);
    std::uint64_t resolved = 0;
    for (std::uint64_t i = 0; i < n; ++i) {
      timeouts[i] = sim.schedule_after(
          Duration::usec(2000 + static_cast<std::int64_t>(i % 1000)), [] {});
      sim.schedule_after(Duration::usec(static_cast<std::int64_t>(i % 1000)),
                         [&resolved, &timeouts, i] {
                           timeouts[i].cancel();
                           ++resolved;
                         });
    }
    sim.run();
    benchmark::DoNotOptimize(resolved);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(2 * n) *
                          state.iterations());
}
BENCHMARK(BM_EventTimerChurn)->Arg(10000)->Arg(100000);

void BM_EventQueueHeapArity(benchmark::State& state) {
  // Same schedule/run workload across heap arities: dispatch order is
  // identical by construction (total order on (time, seq)), so this
  // isolates the cache behaviour of the d-ary sift loops.
  sim::SimulatorOptions options;
  options.heap_arity = static_cast<unsigned>(state.range(0));
  constexpr std::uint64_t kEvents = 100000;
  for (auto _ : state) {
    sim::Simulator sim(options);
    std::uint64_t fired = 0;
    for (std::uint64_t i = 0; i < kEvents; ++i) {
      sim.schedule_after(
          Duration::usec(static_cast<std::int64_t>((i * 2654435761u) % 10000)),
          [&fired] { ++fired; });
    }
    sim.run();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(kEvents) *
                          state.iterations());
}
BENCHMARK(BM_EventQueueHeapArity)->Arg(2)->Arg(4)->Arg(8);

void BM_KvPut(benchmark::State& state) {
  std::vector<NodeId> nodes;
  for (std::uint64_t i = 1; i <= 4; ++i) nodes.push_back(NodeId{i});
  kv::KvStore store(kv::KvConfig{}, nodes);
  std::uint64_t key = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        store.put("key" + std::to_string(key++ % 4096), "payload"));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_KvPut);

void BM_KvGet(benchmark::State& state) {
  std::vector<NodeId> nodes;
  for (std::uint64_t i = 1; i <= 4; ++i) nodes.push_back(NodeId{i});
  kv::KvStore store(kv::KvConfig{}, nodes);
  for (int i = 0; i < 4096; ++i) {
    (void)store.put("key" + std::to_string(i), "payload");
  }
  std::uint64_t key = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(store.get("key" + std::to_string(key++ % 4096)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_KvGet);

void BM_KvConcurrentMixed(benchmark::State& state) {
  static kv::KvStore* store = [] {
    std::vector<NodeId> nodes;
    for (std::uint64_t i = 1; i <= 4; ++i) nodes.push_back(NodeId{i});
    return new kv::KvStore(kv::KvConfig{}, nodes);
  }();
  std::uint64_t i = 0;
  for (auto _ : state) {
    const std::string key = "key" + std::to_string(i++ % 1024);
    if (i % 4 == 0) {
      benchmark::DoNotOptimize(store->put(key, "v"));
    } else {
      benchmark::DoNotOptimize(store->get(key));
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_KvConcurrentMixed)->Threads(1)->Threads(4)->Threads(8);

void BM_PlatformEndToEnd(benchmark::State& state) {
  // Full simulated run: N web-service functions under Canary at 20% error.
  const auto count = static_cast<std::size_t>(state.range(0));
  const std::vector<faas::JobSpec> jobs = {
      workloads::make_job(workloads::WorkloadKind::kWebService, count)};
  harness::ScenarioConfig config;
  config.strategy = recovery::StrategyConfig::canary_full();
  config.error_rate = 0.2;
  config.cluster_nodes = 16;
  std::uint64_t events = 0;
  for (auto _ : state) {
    const auto result = harness::ScenarioRunner::run(config, jobs);
    events += result.simulated_events;
    benchmark::DoNotOptimize(result.makespan_s);
  }
  state.counters["sim_events_per_s"] = benchmark::Counter(
      static_cast<double>(events), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_PlatformEndToEnd)->Arg(50)->Arg(200)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  return canary::bench::run_micro_benchmarks(argc, argv, "micro_substrate");
}
