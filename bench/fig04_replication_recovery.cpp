// Figure 4: impact of replicated runtimes on recovery time for 100
// function invocations, error rate 1%-50%.
//
// The paper reports the recovery time of 100 invocations of the python /
// nodejs / java container runtimes and, across the five workload classes,
// an average recovery-time reduction of 76% / 81% / 78% / 79% / 80%
// (DL / web / spark / compression / graph) vs. the default retry strategy,
// with Canary staying "fairly constant" and close to the no-failure ideal
// while retry grows almost linearly with the error rate.
#include "support.hpp"

using namespace canary;
using namespace canary::bench;

namespace {

double recovery_of(const recovery::StrategyConfig& strategy, double rate,
                   const std::vector<faas::JobSpec>& jobs) {
  return harness::run_repetitions(scenario(strategy, rate), jobs, kReps)
      .total_recovery_s.mean();
}

}  // namespace

int main() {
  Reporter reporter("fig04_replication_recovery");
  print_figure_header(
      "Figure 4", "Impact of replicated runtimes on recovery time",
      "100 invocations, 16 nodes, error rate 1-50%, avg of 5 runs");

  // Part 1: the three plain container runtimes from the figure.
  const faas::RuntimeImage images[] = {faas::RuntimeImage::kPython3,
                                       faas::RuntimeImage::kNodeJs14,
                                       faas::RuntimeImage::kJava8};
  TextTable runtimes({"error %", "py retry [s]", "py canary [s]",
                      "njs retry [s]", "njs canary [s]", "java retry [s]",
                      "java canary [s]"});
  for (const double rate : error_rates()) {
    std::vector<std::string> row = {TextTable::num(rate * 100, 0)};
    for (const auto image : images) {
      faas::JobSpec job;
      job.name = "probe";
      for (int i = 0; i < 100; ++i) {
        job.functions.push_back(workloads::runtime_probe_function(image));
      }
      const std::vector<faas::JobSpec> jobs = {job};
      row.push_back(TextTable::num(
          recovery_of(recovery::StrategyConfig::retry(), rate, jobs)));
      row.push_back(TextTable::num(
          recovery_of(recovery::StrategyConfig::canary_full(), rate, jobs)));
    }
    runtimes.add_row(std::move(row));
  }
  runtimes.print(std::cout);
  reporter.add_table("runtime_recovery", runtimes);

  // Part 2: per-workload average reduction across the error-rate sweep.
  std::cout << "\nper-workload average recovery-time reduction vs retry:\n";
  const double paper_reduction[] = {76, 81, 78, 79, 80};
  TextTable summary(
      {"workload", "retry avg [s]", "canary avg [s]", "reduction %",
       "paper %"});
  int idx = 0;
  double best_reduction = 0.0;
  for (const auto kind : workloads::kAllWorkloads) {
    const std::vector<faas::JobSpec> jobs = {workloads::make_job(kind, 100)};
    double retry_sum = 0.0, canary_sum = 0.0;
    for (const double rate : error_rates()) {
      retry_sum += recovery_of(recovery::StrategyConfig::retry(), rate, jobs);
      canary_sum +=
          recovery_of(recovery::StrategyConfig::canary_full(), rate, jobs);
    }
    const double n = static_cast<double>(error_rates().size());
    const double reduction = harness::reduction_pct(retry_sum, canary_sum);
    best_reduction = std::max(best_reduction, reduction);
    summary.add_row(
        {std::string(workloads::to_string_view(kind)),
         TextTable::num(retry_sum / n), TextTable::num(canary_sum / n),
         TextTable::num(reduction, 1),
         TextTable::num(paper_reduction[idx], 0)});
    ++idx;
  }
  summary.print(std::cout);
  reporter.add_table("workload_reduction", summary);

  // Part 3: where the recovery window goes. Critical-path breakdown of a
  // representative cell (web-service at the sweep midpoint) — the causal
  // trace decomposes each failure-to-recovery window into detection /
  // scheduling / launch / init / restore / re-execution.
  const double mid_rate = error_rates()[error_rates().size() / 2];
  const std::vector<faas::JobSpec> web_jobs = {
      workloads::make_job(workloads::WorkloadKind::kWebService, 100)};
  report_breakdown(
      reporter, "retry",
      harness::run_repetitions(
          scenario(recovery::StrategyConfig::retry(), mid_rate), web_jobs,
          kReps));
  report_breakdown(
      reporter, "canary",
      harness::run_repetitions(
          scenario(recovery::StrategyConfig::canary_full(), mid_rate),
          web_jobs, kReps));
  std::cout << "\n";
  reporter.claim(
      "replicated runtimes reduce recovery time by up to 81% vs retry",
      best_reduction);
  return reporter.save() ? 0 : 1;
}
