// Figure 12: scalability with cluster size — 5000 function invocations at
// a fixed 15% failure rate on 1-16 nodes.
//
// Paper: total execution time of the batch decreases for all three
// scenarios as nodes are added; Canary stays within ~2.75% of the ideal
// on average and beats retry by up to 17%; the 1->16-node speedups are
// ~1.2x (ideal), ~1.18x (Canary) and ~1.10x (retry).
#include "support.hpp"

using namespace canary;
using namespace canary::bench;

int main() {
  Reporter reporter("fig12_cluster_scale");
  print_figure_header(
      "Figure 12", "Cluster-size scaling",
      "5000 invocations (mixed batch), error rate 15%, 1-16 nodes, avg of 3 "
      "runs");

  const std::size_t node_counts[] = {1, 2, 4, 8, 16};
  constexpr double kRate = 0.15;
  const int kScaleReps =
      quick_mode() ? 1 : 3;  // 5000-function runs are the heavy ones
  const int kJobSize = quick_mode() ? 50 : 500;

  // Submit the batch as ten 500-function jobs, as the paper batches jobs.
  std::vector<faas::JobSpec> jobs;
  for (int j = 0; j < 10; ++j) {
    jobs.push_back(
        workloads::make_mixed_batch(kJobSize, "batch-" + std::to_string(j)));
  }

  TextTable table({"nodes", "ideal [s]", "retry [s]", "canary [s]",
                   "canary vs ideal %", "canary vs retry %"});
  double first[3] = {0, 0, 0}, last[3] = {0, 0, 0};
  double overhead_sum = 0.0;
  double max_retry_reduction = 0.0;
  for (const std::size_t nodes : node_counts) {
    const auto ideal = harness::run_repetitions(
        scenario(recovery::StrategyConfig::ideal(), kRate, nodes), jobs,
        kScaleReps);
    const auto retry = harness::run_repetitions(
        scenario(recovery::StrategyConfig::retry(), kRate, nodes), jobs,
        kScaleReps);
    const auto canary = harness::run_repetitions(
        scenario(recovery::StrategyConfig::canary_full(), kRate, nodes), jobs,
        kScaleReps);
    const double values[3] = {ideal.makespan_s.mean(), canary.makespan_s.mean(),
                              retry.makespan_s.mean()};
    if (nodes == node_counts[0]) {
      for (int i = 0; i < 3; ++i) first[i] = values[i];
    }
    for (int i = 0; i < 3; ++i) last[i] = values[i];
    const double overhead = harness::overhead_pct(values[0], values[1]);
    const double reduction = harness::reduction_pct(values[2], values[1]);
    overhead_sum += overhead;
    max_retry_reduction = std::max(max_retry_reduction, reduction);
    table.add_row({std::to_string(nodes), TextTable::num(values[0]),
                   TextTable::num(values[2]), TextTable::num(values[1]),
                   TextTable::num(overhead, 1), TextTable::num(reduction, 1)});
  }
  table.print(std::cout);
  reporter.add_table("cluster_sweep", table);

  const auto n = static_cast<double>(std::size(node_counts));
  reporter.claim("Canary within ~2.75% of the ideal on average",
                 overhead_sum / n);
  reporter.claim("Canary up to 17% faster than retry", max_retry_reduction);
  std::cout << "  1->16-node speedups (paper 1.20x / 1.18x / 1.10x): ideal "
            << TextTable::num(first[0] / last[0], 2) << "x, canary "
            << TextTable::num(first[1] / last[1], 2) << "x, retry "
            << TextTable::num(first[2] / last[2], 2) << "x\n";
  reporter.report().set_scalar("speedup_ideal", first[0] / last[0]);
  reporter.report().set_scalar("speedup_canary", first[1] / last[1]);
  reporter.report().set_scalar("speedup_retry", first[2] / last[2]);
  return reporter.save() ? 0 : 1;
}
