// Ablation: checkpoint compression — spend CPU (zstd-class throughput)
// to shrink checkpoint payloads. Smaller payloads fit the KV store's
// per-entry limit (no spill + metadata round trip), move faster across
// the network on restore, and relieve storage-tier pressure; the cost is
// per-checkpoint compression time on the critical path.
//
// Strongest on the DL workload (98 MiB weight checkpoints every state).
#include "support.hpp"

using namespace canary;
using namespace canary::bench;

int main() {
  Reporter reporter("ablation_compression");
  print_figure_header(
      "Ablation", "Checkpoint compression",
      "DL workload, 100 invocations, 16 nodes, error sweep, avg of 5 runs");

  const std::vector<faas::JobSpec> jobs = {
      workloads::make_job(workloads::WorkloadKind::kDlTraining, 100)};

  // Two deployments: the testbed hierarchy (RAM-speed spill tiers) and a
  // lean deployment whose only spill target is shared NFS — commodity
  // clusters without PMem/ramdisk provisioning.
  const auto nfs_only = cluster::StorageHierarchy({
      {cluster::StorageTier::kKvStore, Duration::usec(500), 900.0, 1200.0,
       Bytes::gib(8), true, true},
      {cluster::StorageTier::kNfs, Duration::msec(1), 110.0, 160.0,
       Bytes::gib(1024), true, true},
  });

  auto run_with = [&](bool compress, double rate, bool lean_storage) {
    recovery::StrategyConfig strategy = recovery::StrategyConfig::canary_full();
    strategy.canary.checkpointing.compress = compress;
    harness::ScenarioConfig config = scenario(strategy, rate);
    if (lean_storage) config.storage = nfs_only;
    return harness::run_repetitions(config, jobs, kReps);
  };

  TextTable table({"storage", "error %", "makespan off [s]",
                   "makespan on [s]", "recovery off [s]", "recovery on [s]"});
  for (const bool lean : {false, true}) {
    for (const double rate : {0.05, 0.20, 0.40}) {
      const auto off = run_with(false, rate, lean);
      const auto on = run_with(true, rate, lean);
      table.add_row({lean ? "nfs-only" : "testbed",
                     TextTable::num(rate * 100, 0),
                     TextTable::num(off.makespan_s.mean()),
                     TextTable::num(on.makespan_s.mean()),
                     TextTable::num(off.total_recovery_s.mean()),
                     TextTable::num(on.total_recovery_s.mean())});
    }
  }
  table.print(std::cout);
  reporter.add_table("compression_sweep", table);
  std::cout << "\nreading: on the testbed's RAM-speed spill tiers the "
               "per-checkpoint compression CPU (~0.25s) is a net loss. On a "
               "lean NFS-only deployment the 98 MiB weight write costs "
               "~0.9s, so shrinking it ~2.8x wins despite the CPU — "
               "compression is a property of the storage hierarchy, not of "
               "checkpointing per se.\n";
  return reporter.save() ? 0 : 1;
}
