// Figure 9: impact of the replication strategy — aggressive (AR), lenient
// (LR) and dynamic (DR, Canary's default) — on the cost and execution
// time of the DL workload.
//
// Paper: AR yields the lowest execution time at a significantly higher
// cost; LR is slightly cheaper than DR but its execution time degrades
// faster with the error rate; DR saves ~25% cost vs AR and ~2% vs LR on
// average, scaling the replication factor with the observed failure rate.
#include "support.hpp"

using namespace canary;
using namespace canary::bench;

int main() {
  Reporter reporter("fig09_replication_strategies");
  print_figure_header(
      "Figure 9", "Replication strategies: aggressive / lenient / dynamic",
      "DL workload, 100 invocations, 16 nodes, error rate 1-50%, avg of 5 "
      "runs");

  const std::vector<faas::JobSpec> jobs = {
      workloads::make_job(workloads::WorkloadKind::kDlTraining, 100)};

  recovery::StrategyConfig aggressive =
      recovery::StrategyConfig::canary_full(core::ReplicationMode::kAggressive);
  // AR maintains a high replica-to-function ratio ("a higher replication
  // factor for each running job").
  aggressive.canary.replication.aggressive_fraction = 0.5;
  const recovery::StrategyConfig strategies[] = {
      recovery::StrategyConfig::canary_full(core::ReplicationMode::kDynamic),
      aggressive,
      recovery::StrategyConfig::canary_full(core::ReplicationMode::kLenient),
  };

  TextTable table({"error %", "DR $", "AR $", "LR $", "DR [s]", "AR [s]",
                   "LR [s]"});
  double sum_cost[3] = {0, 0, 0};
  double sum_time[3] = {0, 0, 0};
  for (const double rate : error_rates()) {
    std::vector<std::string> cost_cells, time_cells;
    int idx = 0;
    for (const auto& strategy : strategies) {
      const auto agg =
          harness::run_repetitions(scenario(strategy, rate), jobs, kReps);
      sum_cost[idx] += agg.cost_usd.mean();
      sum_time[idx] += agg.makespan_s.mean();
      cost_cells.push_back(TextTable::num(agg.cost_usd.mean(), 3));
      time_cells.push_back(TextTable::num(agg.makespan_s.mean()));
      ++idx;
    }
    table.add_row({TextTable::num(rate * 100, 0), cost_cells[0],
                   cost_cells[1], cost_cells[2], time_cells[0], time_cells[1],
                   time_cells[2]});
  }
  table.print(std::cout);
  reporter.add_table("strategy_sweep", table);

  reporter.claim("DR saves ~25% dollar cost vs AR on average",
                 harness::reduction_pct(sum_cost[1], sum_cost[0]));
  reporter.claim("DR saves ~2% dollar cost vs LR on average",
                 harness::reduction_pct(sum_cost[2], sum_cost[0]));
  std::cout << "  AR vs DR execution time delta: "
            << TextTable::num(harness::reduction_pct(sum_time[0], sum_time[1]),
                              1)
            << "% (paper: AR has the lowest time, at the highest cost)\n";
  reporter.report().set_scalar(
      "ar_vs_dr_time_delta_pct",
      harness::reduction_pct(sum_time[0], sum_time[1]));
  return reporter.save() ? 0 : 1;
}
