// Figure 13 (extension): network partitions, correlated fault-domain
// outages, and split-brain-safe fencing.
//
// A 12-node / 3-zone cluster runs a fixed batch workload under the full
// Canary strategy with heartbeat detection while the partition surface
// fires: a correlated zone outage (every node of one fault domain dies as
// one causal event), a zone bipartition (one domain is cut off, its
// workers logically fenced as minority-side zombies), and the two
// combined (the outage lands inside the cut, on already-fenced nodes).
//
// Each configuration compares two placement policies over the same
// workload and fault schedule:
//
//   domain_blind — the default placement: replicas, checkpoint KV-shard
//                  owners, and recovery re-dispatch ignore zones;
//   domain_aware — fault-domain spreading on: replicas and checkpoint
//                  owners avoid the primary's zone, recovery re-dispatch
//                  avoids the failed zone.
//
// Reported per strategy: recovery time, makespan, and the
// double-execution-attempt count — commits attempted by fenced zombies
// while the majority side re-executes the same invocation. Every such
// attempt must be rejected at the store's epoch gate (split-brain
// safety); domain-aware placement must strictly reduce correlated-loss
// recovery time in at least one configuration.
//
// Emits a machine-readable canary.partition/v1 report. The report is
// byte-identical across repeated runs and across engine worker counts
// (--shard-workers N runs the scenario sharded over the parallel engine
// with the partition count pinned; the worker count is deliberately kept
// out of the report so the bytes can be compared). Violations exit 1.
//
// Usage: fig13_partitions [--quick] [--shard-workers N]
// Environment: CANARY_QUICK=1 (same as --quick), CANARY_REPORT_DIR.
#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/table.hpp"
#include "harness/scenario.hpp"
#include "recovery/strategies.hpp"

namespace {

using canary::Bytes;
using canary::Duration;
using canary::TextTable;
using canary::harness::RunResult;
using canary::harness::ScenarioConfig;
using canary::harness::ScenarioRunner;

bool quick_mode() {
  const char* v = std::getenv("CANARY_QUICK");
  return v != nullptr && *v != '\0' && *v != '0';
}

std::string num(double v) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(4) << v;
  return os.str();
}

constexpr std::uint64_t kSeed = 20260808;
constexpr std::size_t kNodes = 12;  // zones {0, 1, 2}, four nodes each
constexpr std::uint32_t kFaultZone = 2;

/// The three partition-surface configurations. The fault schedule is
/// identical for both placement policies within a configuration.
struct Variant {
  const char* name;
  bool outage;     // correlated kill of kFaultZone
  bool cut;        // zone bipartition of kFaultZone
};

constexpr Variant kVariants[] = {
    {"zone_outage", true, false},
    {"zone_cut", false, true},
    {"cut_then_outage", true, true},
};

/// Long-running functions so the fault window lands mid-execution on
/// every variant: ~3.8 s of state work per function, 30 functions over
/// 12 nodes. `copies` scales the job list for sharded execution — the
/// engine round-robins jobs over its slices, so 4 copies give each of
/// the 4 slices the same 30-function load the monolithic cluster sees.
std::vector<canary::faas::JobSpec> make_jobs(int copies) {
  std::vector<canary::faas::JobSpec> jobs;
  for (int j = 0; j < 3 * copies; ++j) {
    canary::faas::JobSpec job;
    job.name = "fig13-job-" + std::to_string(j);
    job.account = canary::AccountId{1};
    for (int f = 0; f < 10; ++f) {
      canary::faas::FunctionSpec fn;
      fn.name = "fig13-fn-" + std::to_string(j) + "-" + std::to_string(f);
      fn.runtime = canary::faas::RuntimeImage::kPython3;
      for (int s = 0; s < 4; ++s) {
        canary::faas::StateSpec state;
        state.duration = Duration::msec(900);
        state.checkpoint_payload = Bytes::of(1024 * 1024);
        fn.states.push_back(state);
      }
      fn.finalize = Duration::msec(200);
      job.functions.push_back(std::move(fn));
    }
    jobs.push_back(std::move(job));
  }
  return jobs;
}

ScenarioConfig variant_config(const Variant& variant, bool spread,
                              unsigned shard_workers, std::uint64_t seed) {
  ScenarioConfig config;
  config.seed = seed;
  config.cluster_nodes = kNodes;
  config.error_rate = 0.0;  // faults come from the partition surface alone
  config.strategy = canary::recovery::StrategyConfig::canary_full();
  config.detection.enabled = true;
  config.detection.heartbeat_interval = Duration::msec(250);
  config.detection.timeout_multiplier = 2.0;
  config.detection.confirm_multiplier = 1.0;
  config.detection.sweep_interval = Duration::msec(100);
  config.detection.horizon = Duration::sec(600.0);
  // Partitioned KV with one backup: checkpoint survival depends on where
  // the owners live, which is exactly what domain-aware spreading moves.
  config.kv.mode = canary::kv::CacheMode::kPartitioned;
  config.kv.backups = 1;
  config.fault_domain_spread = spread;

  if (variant.cut) {
    // Cut the fault zone off mid-execution, long enough that the
    // majority confirms-and-redeploys (confirm threshold ~1.2 s) while
    // the fenced minority keeps executing into its commit attempts.
    ScenarioConfig::PartitionFault window;
    window.at = Duration::sec(1.0);
    window.duration = Duration::sec(5.0);
    window.zone = kFaultZone;
    config.partitions.push_back(window);
  }
  if (variant.outage) {
    // With the cut active the outage kills already-fenced nodes (the
    // injector counts them as skipped, not as second deaths); alone it
    // is the pure correlated-loss case.
    ScenarioConfig::ZoneOutage outage;
    outage.at = Duration::sec(variant.cut ? 3.0 : 1.5);
    outage.zone = kFaultZone;
    config.zone_outages.push_back(outage);
  }

  if (shard_workers > 0) {
    // Sharded execution for the worker-count byte-identity check: the
    // partition count fixes the model (4 slices, each a full 12-node /
    // 3-zone replica of the monolithic cluster); the worker count must
    // not change a single output byte.
    config.sharding.enabled = true;
    config.sharding.partitions = 4;
    config.sharding.workers = shard_workers;
    config.cluster_nodes = kNodes * 4;
  }
  return config;
}

/// One placement policy's aggregate over the repetition sweep.
struct StrategyResult {
  std::string name;
  double recovery_s = 0.0;
  double makespan_s = 0.0;
  std::uint64_t double_execution_attempts = 0;  // zombie commit attempts
  std::uint64_t zombie_commits_rejected = 0;
  std::uint64_t zombie_commits_committed = 0;
  std::uint64_t stale_epoch_rejects = 0;
  std::uint64_t quorum_blocked_puts = 0;
  std::uint64_t partitions_started = 0;
  std::uint64_t partitions_healed = 0;
  std::uint64_t zone_outages = 0;
  std::uint64_t partitions_active_end = 0;
  bool completed = true;
};

StrategyResult run_strategy(const Variant& variant, bool spread,
                            unsigned shard_workers, int reps) {
  StrategyResult out;
  out.name = spread ? "domain_aware" : "domain_blind";
  const std::vector<canary::faas::JobSpec> jobs =
      make_jobs(shard_workers > 0 ? 4 : 1);
  for (int rep = 0; rep < reps; ++rep) {
    const RunResult result = ScenarioRunner::run(
        variant_config(variant, spread, shard_workers,
                       kSeed + static_cast<std::uint64_t>(rep)),
        jobs);
    out.recovery_s += result.total_recovery_s;
    out.makespan_s += result.makespan_s;
    auto counter = [&result](const char* name) -> std::uint64_t {
      auto it = result.counters.find(name);
      return it == result.counters.end()
                 ? 0
                 : static_cast<std::uint64_t>(it->second);
    };
    out.double_execution_attempts += counter("zombie_commit_attempts");
    out.zombie_commits_rejected += counter("zombie_commits_rejected");
    out.zombie_commits_committed += counter("zombie_commits_committed");
    out.stale_epoch_rejects += result.kv_stale_epoch_rejects;
    out.quorum_blocked_puts += result.kv_quorum_blocked_puts;
    out.partitions_started += result.injected_partitions;
    out.partitions_healed += result.injected_partition_heals;
    out.zone_outages += result.injected_zone_outages;
    out.partitions_active_end += result.partitions_active_end;
    out.completed = out.completed && result.completed;
  }
  return out;
}

void write_strategy_json(std::ostream& os, const std::string& indent,
                         const StrategyResult& s) {
  os << indent << "\"name\": \"" << s.name << "\",\n";
  os << indent << "\"recovery_s\": " << num(s.recovery_s) << ",\n";
  os << indent << "\"makespan_s\": " << num(s.makespan_s) << ",\n";
  os << indent << "\"double_execution_attempts\": "
     << s.double_execution_attempts << ",\n";
  os << indent << "\"zombie_commits_rejected\": " << s.zombie_commits_rejected
     << ",\n";
  os << indent << "\"zombie_commits_committed\": "
     << s.zombie_commits_committed << ",\n";
  os << indent << "\"stale_epoch_rejects\": " << s.stale_epoch_rejects
     << ",\n";
  os << indent << "\"quorum_blocked_puts\": " << s.quorum_blocked_puts
     << ",\n";
  os << indent << "\"partitions_started\": " << s.partitions_started << ",\n";
  os << indent << "\"partitions_healed\": " << s.partitions_healed << ",\n";
  os << indent << "\"zone_outages\": " << s.zone_outages << ",\n";
  os << indent << "\"completed\": " << (s.completed ? "true" : "false");
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = quick_mode();
  unsigned shard_workers = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      quick = true;
    } else if (arg == "--shard-workers" && i + 1 < argc) {
      shard_workers = static_cast<unsigned>(std::atoi(argv[++i]));
    } else {
      std::cerr << "usage: fig13_partitions [--quick] [--shard-workers N]\n";
      return 2;
    }
  }

  const int reps = quick ? 2 : 3;
  std::cout << "partition surface: " << kNodes << " nodes / 3 zones, 30 "
               "functions, zone outage + bipartition + combined, "
            << reps << " reps"
            << (shard_workers > 0 ? " (sharded)" : "")
            << (quick ? " (quick)" : "") << "\n\n";

  struct VariantResult {
    const Variant* variant;
    StrategyResult blind;
    StrategyResult aware;
    double reduction_pct = 0.0;
  };
  std::vector<VariantResult> results;
  for (const Variant& variant : kVariants) {
    VariantResult vr;
    vr.variant = &variant;
    vr.blind = run_strategy(variant, false, shard_workers, reps);
    vr.aware = run_strategy(variant, true, shard_workers, reps);
    vr.reduction_pct =
        vr.blind.recovery_s > 0.0
            ? 100.0 * (vr.blind.recovery_s - vr.aware.recovery_s) /
                  vr.blind.recovery_s
            : 0.0;
    results.push_back(std::move(vr));
  }

  TextTable table({"configuration", "blind rec [s]", "aware rec [s]",
                   "reduction %", "double-exec", "rejected"});
  for (const VariantResult& vr : results) {
    table.add_row({vr.variant->name, num(vr.blind.recovery_s),
                   num(vr.aware.recovery_s), num(vr.reduction_pct),
                   std::to_string(vr.blind.double_execution_attempts +
                                  vr.aware.double_execution_attempts),
                   std::to_string(vr.blind.zombie_commits_rejected +
                                  vr.aware.zombie_commits_rejected)});
  }
  table.print(std::cout);

  // ---- self-checks ------------------------------------------------------
  std::vector<std::string> violations;
  int strictly_faster = 0;
  double max_reduction = 0.0;
  std::uint64_t attempts_total = 0, committed_total = 0;
  for (const VariantResult& vr : results) {
    for (const StrategyResult* s : {&vr.blind, &vr.aware}) {
      if (!s->completed) {
        violations.push_back(std::string(vr.variant->name) + "/" + s->name +
                             ": run ended with incomplete jobs");
      }
      if (s->zombie_commits_committed > 0) {
        violations.push_back(
            std::string(vr.variant->name) + "/" + s->name + ": " +
            std::to_string(s->zombie_commits_committed) +
            " fenced-writer commit(s) reached the store");
      }
      if (s->partitions_healed != s->partitions_started ||
          s->partitions_active_end != 0) {
        violations.push_back(std::string(vr.variant->name) + "/" + s->name +
                             ": partition windows did not all heal");
      }
      attempts_total += s->double_execution_attempts;
      committed_total += s->zombie_commits_committed;
    }
    if (vr.aware.recovery_s < vr.blind.recovery_s) ++strictly_faster;
    max_reduction = std::max(max_reduction, vr.reduction_pct);
  }
  if (strictly_faster == 0) {
    violations.push_back(
        "domain-aware placement did not strictly reduce recovery time in "
        "any configuration");
  }
  if (attempts_total == 0) {
    violations.push_back(
        "no double-execution attempt was ever made: the zombie probe is "
        "not firing");
  }

  std::cout << "\ndomain-aware strictly faster in " << strictly_faster << "/"
            << results.size() << " configurations; max recovery reduction "
            << num(max_reduction) << "%; " << attempts_total
            << " double-execution attempt(s), " << committed_total
            << " committed\n";

  // ---- canary.partition/v1 report ---------------------------------------
  const char* dir = std::getenv("CANARY_REPORT_DIR");
  std::string path =
      (dir != nullptr && *dir != '\0') ? std::string(dir) + "/" : "";
  path += "BENCH_fig13_partitions.json";
  std::ofstream os(path);
  if (!os) {
    std::cerr << "failed to write " << path << "\n";
    return 1;
  }
  os << "{\n";
  os << "  \"schema\": \"canary.partition/v1\",\n";
  os << "  \"name\": \"fig13_partitions\",\n";
  os << "  \"params\": {\n";
  os << "    \"quick\": " << (quick ? "true" : "false") << ",\n";
  os << "    \"nodes\": " << kNodes << ",\n";
  os << "    \"zones\": 3,\n";
  os << "    \"fault_zone\": " << kFaultZone << ",\n";
  os << "    \"repetitions\": " << reps << ",\n";
  os << "    \"seed\": " << kSeed << "\n";
  os << "  },\n";
  os << "  \"configurations\": [";
  for (std::size_t i = 0; i < results.size(); ++i) {
    os << (i == 0 ? "\n" : ",\n");
    os << "    {\n";
    os << "      \"name\": \"" << results[i].variant->name << "\",\n";
    os << "      \"strategies\": [\n";
    os << "        {\n";
    write_strategy_json(os, "          ", results[i].blind);
    os << "\n        },\n";
    os << "        {\n";
    write_strategy_json(os, "          ", results[i].aware);
    os << "\n        }\n";
    os << "      ],\n";
    os << "      \"recovery_reduction_pct\": " << num(results[i].reduction_pct)
       << "\n";
    os << "    }";
  }
  os << "\n  ],\n";
  os << "  \"claims\": {\n";
  os << "    \"aware_strictly_faster_configs\": " << strictly_faster << ",\n";
  os << "    \"max_recovery_reduction_pct\": " << num(max_reduction) << ",\n";
  os << "    \"double_execution_attempts\": " << attempts_total << ",\n";
  os << "    \"zombie_commits_committed\": " << committed_total << "\n";
  os << "  },\n";
  os << "  \"checks\": {\n";
  os << "    \"ok\": " << (violations.empty() ? "true" : "false") << ",\n";
  os << "    \"violations\": " << violations.size() << "\n";
  os << "  }\n";
  os << "}\n";
  os.close();
  std::cout << "\nreport: " << path << "\n";

  if (!violations.empty()) {
    std::cerr << "\nfig13 partitions FAILED:\n";
    for (const std::string& v : violations) std::cerr << "  - " << v << "\n";
    return 1;
  }
  std::cout << "\nfig13 partitions passed: split-brain-safe fencing held and "
               "domain-aware placement cut correlated-loss recovery\n";
  return 0;
}
