// Ablation: container reuse (the paper's future work — "consolidating
// multiple functions in a single container to reduce the cold start
// latency for future work", §V-A).
//
// Sequential waves of same-runtime jobs: with reuse, wave n+1 adopts
// wave n's warm containers and skips launch+init entirely. The effect is
// strongest for heavy runtimes (DL: 7.4s cold start) and compounds with
// Canary's recovery, which also benefits from a larger warm population.
#include "support.hpp"

using namespace canary;
using namespace canary::bench;

int main() {
  Reporter reporter("ablation_reuse");
  print_figure_header(
      "Ablation", "Container reuse across job waves",
      "4 sequential waves x 40 functions, 16 nodes, error 15%, Canary, "
      "avg of 5 runs");

  auto run_with = [&](workloads::WorkloadKind kind, bool reuse) {
    std::vector<faas::JobSpec> jobs;
    for (int wave = 0; wave < 4; ++wave) {
      jobs.push_back(
          workloads::make_job(kind, 40, "wave-" + std::to_string(wave)));
    }
    harness::ScenarioConfig config =
        scenario(recovery::StrategyConfig::canary_full(), 0.15);
    config.platform.reuse_containers = reuse;
    // Keep concurrency below one wave so the waves actually serialize and
    // later waves can adopt earlier waves' containers.
    config.platform.limits.max_concurrent_invocations = 40;
    return harness::run_repetitions(config, jobs, kReps);
  };

  TextTable table({"workload", "reuse", "makespan [s]", "cold starts",
                   "pool reuses", "cost $"});
  for (const auto kind : {workloads::WorkloadKind::kDlTraining,
                          workloads::WorkloadKind::kWebService}) {
    for (const bool reuse : {false, true}) {
      const auto agg = run_with(kind, reuse);
      table.add_row({std::string(workloads::to_string_view(kind)),
                     reuse ? "on" : "off",
                     TextTable::num(agg.makespan_s.mean()),
                     TextTable::num(agg.counter_mean("cold_starts"), 0),
                     TextTable::num(agg.counter_mean("pool_reuses"), 0),
                     TextTable::num(agg.cost_usd.mean(), 4)});
    }
  }
  table.print(std::cout);
  reporter.add_table("reuse", table);
  std::cout << "\nreading: reuse removes most cold starts after the first "
               "wave; the win scales with the runtime's launch+init cost "
               "(DL ~7.4s vs web ~1.2s).\n";
  return reporter.save() ? 0 : 1;
}
