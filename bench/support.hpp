// Shared helpers for the figure-reproduction benchmark binaries.
//
// Each bench regenerates one figure of the paper's evaluation (§V): it
// sweeps the figure's x-axis, runs the compared strategies with the
// paper's repetition discipline (averaged repetitions, fixed seeds), and
// prints (a) the figure's series as an aligned table and (b) the paper's
// headline claim next to the measured value. Every bench also emits a
// machine-readable BENCH_<name>.json run report (obs::RunReport) so CI
// can archive and diff results across commits.
//
// Environment:
//   CANARY_QUICK=1        shrink sweeps/repetitions for CI smoke runs
//   CANARY_REPORT_DIR=dir where BENCH_<name>.json is written (default .)
#pragma once

#include <algorithm>
#include <cstdlib>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "common/table.hpp"
#include "harness/experiment.hpp"
#include "obs/critical_path.hpp"
#include "obs/report.hpp"
#include "workloads/workloads.hpp"

namespace canary::bench {

/// CI smoke mode: a cut-down sweep that exercises every code path in
/// seconds instead of minutes.
inline bool quick_mode() {
  const char* v = std::getenv("CANARY_QUICK");
  return v != nullptr && *v != '\0' && *v != '0';
}

/// Error-rate sweep used across Figures 4-10 ("vary the error rate from
/// 1% to 50%", §V-B). Quick mode keeps the endpoints and the midpoint.
inline const std::vector<double>& error_rates() {
  static const std::vector<double> rates =
      quick_mode() ? std::vector<double>{0.01, 0.10, 0.50}
                   : std::vector<double>{0.01, 0.05, 0.10, 0.20,
                                         0.30, 0.40, 0.50};
  return rates;
}

inline void print_figure_header(const std::string& figure,
                                const std::string& title,
                                const std::string& setup) {
  std::cout << "\n=== " << figure << ": " << title << " ===\n"
            << "setup: " << setup << "\n\n";
}

inline void print_claim(const std::string& claim, double measured,
                        const std::string& unit = "%") {
  std::cout << "  paper: " << claim << "\n  measured: "
            << TextTable::num(measured, 1) << unit << "\n";
}

/// Default repetition count. The paper averages 10 runs; 5 keeps every
/// bench binary in the seconds range while staying within the paper's
/// <5% run-to-run variance. Quick mode drops to 2.
inline const int kReps = quick_mode() ? 2 : 5;

inline harness::ScenarioConfig scenario(recovery::StrategyConfig strategy,
                                        double error_rate,
                                        std::size_t nodes = 16,
                                        std::uint64_t seed = 20220101) {
  harness::ScenarioConfig config;
  config.strategy = strategy;
  config.error_rate = error_rate;
  config.cluster_nodes = nodes;
  config.seed = seed;
  return config;
}

/// Collects one bench binary's output into a run report: the printed
/// tables become `series`, the printed paper-claim lines become `claims`,
/// and `save()` writes BENCH_<name>.json next to the binary (or into
/// $CANARY_REPORT_DIR).
class Reporter {
 public:
  explicit Reporter(std::string name) {
    report_.name = std::move(name);
    report_.set_param("quick", quick_mode() ? "1" : "0");
    report_.set_param("repetitions", static_cast<double>(kReps));
  }

  obs::RunReport& report() { return report_; }

  /// Attach a printed table as a named series.
  void add_table(const std::string& series_name, const TextTable& table) {
    report_.series.push_back({series_name, table.headers(), table.rows()});
  }

  /// Print the paper-claim-vs-measured pair and record it in the report.
  void claim(const std::string& claim, double measured,
             const std::string& unit = "%") {
    print_claim(claim, measured, unit);
    report_.add_claim(claim, measured, unit);
  }

  /// Write BENCH_<name>.json; returns false (and complains) on I/O error.
  bool save() const {
    const char* dir = std::getenv("CANARY_REPORT_DIR");
    std::string path =
        (dir != nullptr && *dir != '\0') ? std::string(dir) + "/" : "";
    path += "BENCH_" + report_.name + ".json";
    if (!report_.save(path)) {
      std::cerr << "failed to write " << path << "\n";
      return false;
    }
    std::cout << "\nreport: " << path << "\n";
    return true;
  }

 private:
  obs::RunReport report_;
};

/// Print one aggregate's recovery critical-path breakdown and attach it to
/// the report (both as a series and merged into the report's `breakdown`
/// section). Benches call this on a representative sweep cell so the
/// figure output also says *where* the recovery window went.
inline void report_breakdown(Reporter& reporter, const std::string& label,
                             const harness::Aggregate& agg) {
  const obs::BreakdownReport& bd = agg.breakdown;
  TextTable table({"component", "recovery [s]", "end-to-end [s]"});
  for (std::size_t c = 0; c < obs::kPathComponentCount; ++c) {
    const auto component = static_cast<obs::PathComponent>(c);
    // Queueing only appears in open-loop (traffic-driven) runs and
    // hedging only in hedged runs; skipping the all-zero rows keeps the
    // other bench reports byte-identical.
    if ((component == obs::PathComponent::kQueueing ||
         component == obs::PathComponent::kHedging) &&
        bd.recovery_components[component] == 0.0 &&
        bd.end_to_end_components[component] == 0.0) {
      continue;
    }
    table.add_row({std::string(obs::to_string_view(component)),
                   TextTable::num(bd.recovery_components[component], 3),
                   TextTable::num(bd.end_to_end_components[component], 3)});
  }
  std::cout << "\nrecovery critical path (" << label << ", "
            << bd.recovery_count << " recoveries over "
            << TextTable::num(bd.recovery_window_s, 3) << " s):\n";
  table.print(std::cout);
  reporter.add_table("breakdown_" + label, table);
  reporter.report().breakdown.merge(bd);
}

}  // namespace canary::bench
