// Shared helpers for the figure-reproduction benchmark binaries.
//
// Each bench regenerates one figure of the paper's evaluation (§V): it
// sweeps the figure's x-axis, runs the compared strategies with the
// paper's repetition discipline (averaged repetitions, fixed seeds), and
// prints (a) the figure's series as an aligned table and (b) the paper's
// headline claim next to the measured value.
#pragma once

#include <iostream>
#include <string>
#include <vector>

#include "common/table.hpp"
#include "harness/experiment.hpp"
#include "workloads/workloads.hpp"

namespace canary::bench {

/// Error-rate sweep used across Figures 4-10 ("vary the error rate from
/// 1% to 50%", §V-B).
inline const std::vector<double>& error_rates() {
  static const std::vector<double> rates = {0.01, 0.05, 0.10, 0.20,
                                            0.30, 0.40, 0.50};
  return rates;
}

inline void print_figure_header(const std::string& figure,
                                const std::string& title,
                                const std::string& setup) {
  std::cout << "\n=== " << figure << ": " << title << " ===\n"
            << "setup: " << setup << "\n\n";
}

inline void print_claim(const std::string& claim, double measured,
                        const std::string& unit = "%") {
  std::cout << "  paper: " << claim << "\n  measured: "
            << TextTable::num(measured, 1) << unit << "\n";
}

/// Default repetition count. The paper averages 10 runs; 5 keeps every
/// bench binary in the seconds range while staying within the paper's
/// <5% run-to-run variance.
inline constexpr int kReps = 5;

inline harness::ScenarioConfig scenario(recovery::StrategyConfig strategy,
                                        double error_rate,
                                        std::size_t nodes = 16,
                                        std::uint64_t seed = 20220101) {
  harness::ScenarioConfig config;
  config.strategy = strategy;
  config.error_rate = error_rate;
  config.cluster_nodes = nodes;
  config.seed = seed;
  return config;
}

}  // namespace canary::bench
