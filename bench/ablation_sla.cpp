// Ablation: SLA-aware recovery (the paper's future-work extension, §VII:
// "incorporate user requirements into the failure recovery strategy").
//
// Deadline-carrying DL jobs under lenient replication (a scarce replica
// pool): when a failure finds no warm replica, the default path pays a
// full cold start; the SLA-aware path lets deadline-threatened functions
// claim a replica that is still initializing instead. Reported: SLA
// violation rate and makespan with the feature off vs on.
#include "support.hpp"

using namespace canary;
using namespace canary::bench;

int main() {
  Reporter reporter("ablation_sla");
  print_figure_header(
      "Ablation", "SLA-aware recovery for time-sensitive jobs",
      "6 DL jobs x 4 functions, 55s deadline, lenient replication, 8 "
      "nodes, error sweep, avg of 5 runs");

  // A clean DL function finishes around 31-35s; 42s leaves headroom for
  // one cheap recovery but not for a cold restart — the regime where the
  // promised-replica path decides the SLA.
  std::vector<faas::JobSpec> jobs;
  for (int j = 0; j < 6; ++j) {
    auto job = workloads::make_job(workloads::WorkloadKind::kDlTraining, 4,
                                   "sla-job-" + std::to_string(j));
    job.sla = Duration::sec(42.0);
    jobs.push_back(std::move(job));
  }

  auto run_with = [&](bool sla_aware, double rate) {
    recovery::StrategyConfig strategy =
        recovery::StrategyConfig::canary_full(core::ReplicationMode::kLenient);
    strategy.canary.sla_aware = sla_aware;
    harness::ScenarioConfig config = scenario(strategy, rate, /*nodes=*/8);
    return harness::run_repetitions(config, jobs, kReps);
  };

  TextTable table({"error %", "violations (off)", "violations (on)",
                   "makespan off [s]", "makespan on [s]", "promises/run"});
  double off_total = 0.0, on_total = 0.0;
  for (const double rate : {0.10, 0.25, 0.40}) {
    const auto off = run_with(false, rate);
    const auto on = run_with(true, rate);
    off_total += off.sla_violations.mean();
    on_total += on.sla_violations.mean();
    table.add_row({TextTable::num(rate * 100, 0),
                   TextTable::num(off.sla_violations.mean(), 1) + "/6",
                   TextTable::num(on.sla_violations.mean(), 1) + "/6",
                   TextTable::num(off.makespan_s.mean()),
                   TextTable::num(on.makespan_s.mean()),
                   TextTable::num(on.counter_mean("sla_promised_recoveries"),
                                  1)});
  }
  table.print(std::cout);
  reporter.add_table("sla_sweep", table);
  std::cout << "\ntotal violations across the sweep: off "
            << TextTable::num(off_total, 1) << ", on "
            << TextTable::num(on_total, 1)
            << " (lower is better; equal means the replica pool was never "
               "the binding constraint)\n";
  reporter.report().set_scalar("violations_off_total", off_total);
  reporter.report().set_scalar("violations_on_total", on_total);
  return reporter.save() ? 0 : 1;
}
