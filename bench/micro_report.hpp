// Run-report bridge for the google-benchmark microbenchmarks: a console
// reporter that mirrors every benchmark run into an obs::RunReport, so
// the micro benches emit the same BENCH_<name>.json artifacts as the
// figure benches and CI can diff them across commits.
//
// Wall-clock measurements are inherently non-deterministic; the reports
// exist for trend diffing, not byte-identity (unlike the seeded
// simulation reports).
#pragma once

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "obs/report.hpp"

namespace canary::bench {

class ObsBenchReporter : public benchmark::ConsoleReporter {
 public:
  explicit ObsBenchReporter(obs::RunReport* report) : report_(report) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    benchmark::ConsoleReporter::ReportRuns(runs);
    for (const Run& run : runs) {
      if (run.error_occurred) continue;
      if (run.run_type == Run::RT_Aggregate) continue;
      const std::string name = run.benchmark_name();
      report_->set_scalar(name + "/real_time", run.GetAdjustedRealTime());
      report_->set_scalar(name + "/cpu_time", run.GetAdjustedCPUTime());
      report_->set_scalar(name + "/iterations",
                          static_cast<double>(run.iterations));
      for (const auto& [counter_name, counter] : run.counters) {
        report_->set_scalar(name + "/" + counter_name,
                            static_cast<double>(counter));
      }
    }
  }

 private:
  obs::RunReport* report_;
};

/// Drop-in replacement for BENCHMARK_MAIN()'s body that also writes
/// BENCH_<name>.json (honouring $CANARY_REPORT_DIR).
inline int run_micro_benchmarks(int argc, char** argv,
                                const std::string& name) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  obs::RunReport report;
  report.name = name;
  ObsBenchReporter reporter(&report);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();

  const char* dir = std::getenv("CANARY_REPORT_DIR");
  std::string path =
      (dir != nullptr && *dir != '\0') ? std::string(dir) + "/" : "";
  path += "BENCH_" + name + ".json";
  if (!report.save(path)) {
    std::cerr << "failed to write " << path << "\n";
    return 1;
  }
  std::cout << "report: " << path << "\n";
  return 0;
}

}  // namespace canary::bench
