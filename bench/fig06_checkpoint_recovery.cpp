// Figure 6: impact of checkpointing on recovery time for 100 function
// invocations with error rates 1%-50% (functions killed at random times).
//
// Paper: checkpoint-based recovery reduces recovery time by up to 83%,
// with per-workload averages 82 / 81 / 79 / 83 / 82 % (DL / web / spark /
// compression / graph); "Canary ensures that the function is recovered
// from the latest checkpoint ... keeping it consistent regardless of when
// the failure occurs", while retry's recovery is largest when failures
// land close to function completion.
#include "support.hpp"

using namespace canary;
using namespace canary::bench;

int main() {
  Reporter reporter("fig06_checkpoint_recovery");
  print_figure_header(
      "Figure 6", "Impact of checkpointing on recovery time",
      "100 invocations, 16 nodes, error rate 1-50%, checkpoint-only Canary, "
      "avg of 5 runs");

  const auto ckpt_only = recovery::StrategyConfig::canary_checkpoint_only();

  TextTable table({"error %", "workload", "ideal [s]", "retry [s]",
                   "canary-ckpt [s]", "reduction %"});
  const double paper_reduction[] = {82, 81, 79, 83, 82};
  double sum_reduction[5] = {0, 0, 0, 0, 0};
  double max_reduction = 0.0;

  for (const double rate : error_rates()) {
    int idx = 0;
    for (const auto kind : workloads::kAllWorkloads) {
      const std::vector<faas::JobSpec> jobs = {workloads::make_job(kind, 100)};
      const auto ideal = harness::run_repetitions(
          scenario(recovery::StrategyConfig::ideal(), rate), jobs, kReps);
      const auto retry = harness::run_repetitions(
          scenario(recovery::StrategyConfig::retry(), rate), jobs, kReps);
      const auto canary =
          harness::run_repetitions(scenario(ckpt_only, rate), jobs, kReps);
      const double reduction = harness::reduction_pct(
          retry.total_recovery_s.mean(), canary.total_recovery_s.mean());
      sum_reduction[idx] += reduction;
      max_reduction = std::max(max_reduction, reduction);
      table.add_row({TextTable::num(rate * 100, 0),
                     std::string(workloads::to_string_view(kind)),
                     TextTable::num(ideal.total_recovery_s.mean()),
                     TextTable::num(retry.total_recovery_s.mean()),
                     TextTable::num(canary.total_recovery_s.mean()),
                     TextTable::num(reduction, 1)});
      ++idx;
    }
  }
  table.print(std::cout);
  reporter.add_table("checkpoint_sweep", table);

  std::cout << "\nper-workload mean reduction (paper in parentheses):\n";
  int idx = 0;
  for (const auto kind : workloads::kAllWorkloads) {
    std::cout << "  " << workloads::to_string_view(kind) << ": "
              << TextTable::num(
                     sum_reduction[idx] /
                         static_cast<double>(error_rates().size()),
                     1)
              << "% (" << paper_reduction[idx] << "%)\n";
    ++idx;
  }
  // Critical-path view of a representative cell: with checkpoint restore
  // in the recovery path, restore time replaces most of the re-execution
  // that dominates retry's windows.
  const double mid_rate = error_rates()[error_rates().size() / 2];
  const std::vector<faas::JobSpec> dl_jobs = {
      workloads::make_job(workloads::WorkloadKind::kDlTraining, 100)};
  report_breakdown(
      reporter, "retry",
      harness::run_repetitions(
          scenario(recovery::StrategyConfig::retry(), mid_rate), dl_jobs,
          kReps));
  report_breakdown(reporter, "canary_ckpt",
                   harness::run_repetitions(scenario(ckpt_only, mid_rate),
                                            dl_jobs, kReps));

  reporter.claim("checkpointing reduces recovery time by up to 83%",
                 max_reduction);
  return reporter.save() ? 0 : 1;
}
