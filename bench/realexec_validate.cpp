// Real-vs-simulated recovery validation (the calibration bench).
//
// Runs the three miniature kernels (BFS, compression, census) on the
// real-execution backend — forked worker processes SIGKILLed
// mid-execution, heartbeat detection, epoch-fenced KV commits — then
// configures the simulator twin from the measured step times /
// checkpoint sizes / kill offsets and replays the same fail/recover
// scenario in simulated time. Emits a canary.realexec/v1 report with
// the per-component (detection / scheduling / launch / init / restore /
// re-exec) recovery deltas; tools/check_report.py --calibrate gates the
// real/sim ratios against the committed tolerance band in
// bench/BENCH_realexec.baseline.json.
//
// Self-checks (exit 1): every scenario completes with the reference
// checksum, kills >= 1 real worker per scenario, exactly-once holds
// (no unfenced stale commits, no duplicates), restores only use intact
// checkpoints.
//
// Usage: realexec_validate [--quick]
// Environment: CANARY_QUICK=1 (same as --quick), CANARY_REPORT_DIR.
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/table.hpp"
#include "harness/calibration.hpp"
#include "realexec/backend.hpp"

using namespace canary;

namespace {

bool env_quick() {
  const char* v = std::getenv("CANARY_QUICK");
  return v != nullptr && *v != '\0' && *v != '0';
}

struct Case {
  realexec::KernelKind kernel;
  realexec::RecoveryPolicy policy;
  std::uint64_t size_param;
  std::uint32_t steps;
  std::uint32_t kill_after_step;
  std::uint32_t kills;
};

struct CaseResult {
  Case scenario;
  realexec::RealScenarioResult real;
  harness::CalibrationTwinResult sim;
};

recovery::StrategyConfig strategy_for(realexec::RecoveryPolicy policy) {
  switch (policy) {
    case realexec::RecoveryPolicy::kRetry:
      return recovery::StrategyConfig::retry();
    case realexec::RecoveryPolicy::kCheckpointRestore:
      return recovery::StrategyConfig::canary_checkpoint_only();
    case realexec::RecoveryPolicy::kWarmSpare:
      return recovery::StrategyConfig::active_standby();
  }
  return recovery::StrategyConfig::retry();
}

double num_or_zero(double v) { return v > 0 ? v : 0.0; }

void write_components(std::ostream& os, const std::string& indent,
                      double window, double detection, double scheduling,
                      double launch, double init, double restore,
                      double re_exec) {
  os << indent << "\"window_s\": " << TextTable::num(window, 6) << ",\n";
  os << indent << "\"detection_s\": " << TextTable::num(detection, 6) << ",\n";
  os << indent << "\"scheduling_s\": " << TextTable::num(scheduling, 6)
     << ",\n";
  os << indent << "\"launch_s\": " << TextTable::num(launch, 6) << ",\n";
  os << indent << "\"init_s\": " << TextTable::num(init, 6) << ",\n";
  os << indent << "\"restore_s\": " << TextTable::num(restore, 6) << ",\n";
  os << indent << "\"re_exec_s\": " << TextTable::num(re_exec, 6) << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = env_quick();
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else {
      std::cerr << "usage: realexec_validate [--quick]\n";
      return 2;
    }
  }

  const Duration heartbeat = Duration::msec(40);
  const double timeout_multiplier = 4.0;

  std::vector<Case> cases;
  if (quick) {
    cases = {
        {realexec::KernelKind::kGraphBfs,
         realexec::RecoveryPolicy::kCheckpointRestore, 4u << 20, 6, 2, 1},
        {realexec::KernelKind::kCompression,
         realexec::RecoveryPolicy::kCheckpointRestore, 3u << 20, 6, 2, 1},
        {realexec::KernelKind::kCensus,
         realexec::RecoveryPolicy::kCheckpointRestore, 200'000, 6, 2, 1},
    };
  } else {
    cases = {
        {realexec::KernelKind::kGraphBfs,
         realexec::RecoveryPolicy::kCheckpointRestore, 8u << 20, 8, 2, 1},
        {realexec::KernelKind::kCompression,
         realexec::RecoveryPolicy::kCheckpointRestore, 4u << 20, 8, 2, 1},
        {realexec::KernelKind::kCensus,
         realexec::RecoveryPolicy::kCheckpointRestore, 300'000, 8, 2, 1},
        {realexec::KernelKind::kGraphBfs, realexec::RecoveryPolicy::kRetry,
         8u << 20, 8, 2, 1},
        {realexec::KernelKind::kCompression, realexec::RecoveryPolicy::kRetry,
         4u << 20, 8, 2, 1},
        {realexec::KernelKind::kCensus, realexec::RecoveryPolicy::kRetry,
         300'000, 8, 2, 1},
        {realexec::KernelKind::kGraphBfs,
         realexec::RecoveryPolicy::kWarmSpare, 8u << 20, 8, 2, 1},
    };
  }

  std::cout << "\n=== realexec_validate: real vs simulated recovery ===\n"
            << "setup: forked workers, SIGKILL mid-execution, heartbeat "
            << heartbeat.to_msec() << "ms x" << timeout_multiplier
            << (quick ? " (quick)" : "") << "\n\n";

  std::vector<CaseResult> results;
  std::vector<std::string> violations;
  realexec::ControllerConfig base;
  // Mid-BFS checkpoints carry the whole frontier (up to n/2 vertices on
  // a binary tree) plus the visited bitmap — far beyond the store's
  // default 4MiB entry cap, so widen it for the validation workloads.
  base.kv.max_entry_size = Bytes::mib(64);
  realexec::RealBackend backend(base);

  for (const Case& c : cases) {
    realexec::RealScenarioConfig rc;
    rc.kernel = c.kernel;
    rc.seed = 7;
    rc.size_param = c.size_param;
    rc.steps_total = c.steps;
    rc.policy = c.policy;
    rc.kill_after_commit_step = c.kill_after_step;
    rc.kill_delay = Duration::msec(5);
    rc.kills = c.kills;
    rc.heartbeat_interval = heartbeat;
    rc.timeout_multiplier = timeout_multiplier;

    const std::string label = std::string(realexec::to_string(c.kernel)) +
                              "/" + realexec::to_string(c.policy);
    std::cerr << "[realexec] " << label << ": real run..." << std::endl;

    CaseResult cr;
    cr.scenario = c;
    cr.real = backend.run(rc);
    for (const auto& v : cr.real.violations) {
      violations.push_back(label + ": " + v);
    }
    if (cr.real.stats.sigkills_sent < 1) {
      violations.push_back(label + ": no real worker process was killed");
    }
    if (cr.real.recoveries < 1) {
      violations.push_back(label + ": no recovery was measured");
    }

    // Configure the twin from what the real run measured.
    harness::CalibrationWorkload twin;
    twin.name = realexec::to_string(c.kernel);
    twin.steps = c.steps;
    twin.step_exec = Duration::usec(static_cast<std::int64_t>(
        std::max(cr.real.first_step_exec_s, 1e-4) * 1e6));
    twin.checkpoint_bytes = Bytes::of(cr.real.checkpoint_bytes);
    twin.kill_offset = Duration::usec(static_cast<std::int64_t>(
        std::max(cr.real.kill_offset_s, 1e-3) * 1e6));
    twin.strategy = strategy_for(c.policy);
    twin.heartbeat_interval = heartbeat;
    twin.timeout_multiplier = timeout_multiplier;
    twin.repetitions = quick ? 3 : 5;
    std::cerr << "[realexec] " << label << ": sim twin..." << std::endl;
    cr.sim = harness::run_calibration_twin(twin);
    if (cr.sim.recoveries == 0) {
      violations.push_back(label + ": sim twin produced no recovery");
    }
    results.push_back(std::move(cr));
  }

  TextTable table({"kernel", "policy", "real win [ms]", "sim win [ms]",
                   "ratio", "real det [ms]", "sim det [ms]", "ckpt [KiB]"});
  for (const auto& cr : results) {
    const double n = std::max<double>(1.0, cr.real.recoveries);
    const double real_window = cr.real.recovery.window_s() / n;
    table.add_row(
        {std::string(realexec::to_string(cr.scenario.kernel)),
         std::string(realexec::to_string(cr.scenario.policy)),
         TextTable::num(real_window * 1e3, 1),
         TextTable::num(cr.sim.window_s * 1e3, 1),
         TextTable::num(cr.sim.window_s > 0 ? real_window / cr.sim.window_s
                                            : 0.0,
                        2),
         TextTable::num(cr.real.recovery.detection_s / n * 1e3, 1),
         TextTable::num(cr.sim.detection_s * 1e3, 1),
         TextTable::num(static_cast<double>(cr.real.checkpoint_bytes) / 1024.0,
                        1)});
  }
  table.print(std::cout);

  // ---- canary.realexec/v1 report ---------------------------------------
  const char* dir = std::getenv("CANARY_REPORT_DIR");
  const std::string path =
      std::string(dir != nullptr && *dir != '\0' ? dir : ".") +
      "/BENCH_realexec.json";
  std::ofstream os(path);
  if (!os) {
    std::cerr << "failed to write " << path << "\n";
    return 1;
  }
  os << "{\n";
  os << "  \"schema\": \"canary.realexec/v1\",\n";
  os << "  \"name\": \"realexec_validate\",\n";
  os << "  \"params\": {\n";
  os << "    \"quick\": " << (quick ? "true" : "false") << ",\n";
  os << "    \"heartbeat_interval_ms\": " << TextTable::num(heartbeat.to_msec(), 1)
     << ",\n";
  os << "    \"timeout_multiplier\": " << TextTable::num(timeout_multiplier, 1)
     << ",\n";
  os << "    \"seed\": 7\n";
  os << "  },\n";
  os << "  \"scenarios\": [";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& cr = results[i];
    const double n = std::max<double>(1.0, cr.real.recoveries);
    os << (i == 0 ? "\n" : ",\n");
    os << "    {\n";
    os << "      \"kernel\": \"" << realexec::to_string(cr.scenario.kernel)
       << "\",\n";
    os << "      \"policy\": \"" << realexec::to_string(cr.scenario.policy)
       << "\",\n";
    os << "      \"completed\": " << (cr.real.completed ? "true" : "false")
       << ",\n";
    os << "      \"kills\": " << cr.real.stats.sigkills_sent << ",\n";
    os << "      \"recoveries\": " << cr.real.recoveries << ",\n";
    os << "      \"workers_spawned\": " << cr.real.stats.workers_spawned
       << ",\n";
    os << "      \"commits_accepted\": " << cr.real.stats.commits_accepted
       << ",\n";
    os << "      \"commits_torn\": " << cr.real.stats.commits_torn << ",\n";
    os << "      \"stale_epoch_rejects\": " << cr.real.kv_stale_epoch_rejects
       << ",\n";
    os << "      \"duplicate_commits\": " << cr.real.stats.duplicate_commits
       << ",\n";
    os << "      \"unfenced_stale_commits\": "
       << cr.real.stats.unfenced_stale_commits << ",\n";
    os << "      \"checkpoint_bytes\": " << cr.real.checkpoint_bytes << ",\n";
    os << "      \"step_exec_ms\": "
       << TextTable::num(cr.real.first_step_exec_s * 1e3, 3) << ",\n";
    os << "      \"kill_offset_ms\": "
       << TextTable::num(cr.real.kill_offset_s * 1e3, 3) << ",\n";
    os << "      \"real\": {\n";
    write_components(os, "        ", cr.real.recovery.window_s() / n,
                     cr.real.recovery.detection_s / n,
                     cr.real.recovery.scheduling_s / n,
                     cr.real.recovery.launch_s / n,
                     cr.real.recovery.init_s / n,
                     cr.real.recovery.restore_s / n,
                     cr.real.recovery.re_exec_s / n);
    os << "      },\n";
    os << "      \"sim\": {\n";
    write_components(os, "        ", num_or_zero(cr.sim.window_s),
                     num_or_zero(cr.sim.detection_s),
                     num_or_zero(cr.sim.scheduling_s),
                     num_or_zero(cr.sim.launch_s), num_or_zero(cr.sim.init_s),
                     num_or_zero(cr.sim.restore_s),
                     num_or_zero(cr.sim.re_exec_s));
    os << "      }\n";
    os << "    }";
  }
  os << "\n  ],\n";
  os << "  \"violations\": [";
  for (std::size_t i = 0; i < violations.size(); ++i) {
    os << (i == 0 ? "\n" : ",\n") << "    \"" << violations[i] << "\"";
  }
  os << (violations.empty() ? "" : "\n  ") << "],\n";
  os << "  \"oracles\": {\n";
  os << "    \"completion\": "
     << (violations.empty() ? "true" : "false") << ",\n";
  bool exactly_once = true;
  for (const auto& cr : results) {
    if (cr.real.stats.unfenced_stale_commits > 0 ||
        cr.real.stats.duplicate_commits > 0) {
      exactly_once = false;
    }
  }
  os << "    \"exactly_once\": " << (exactly_once ? "true" : "false") << ",\n";
  os << "    \"no_corrupt_restore\": true\n";
  os << "  }\n";
  os << "}\n";
  os.close();
  std::cout << "\nreport: " << path << "\n";

  if (!violations.empty()) {
    std::cout << "\nSELF-CHECK VIOLATIONS:\n";
    for (const auto& v : violations) std::cout << "  - " << v << "\n";
    return 1;
  }
  std::cout << "\nall recovery oracles held (exactly-once, no-corrupt-"
               "restore, completion)\n";
  return 0;
}
