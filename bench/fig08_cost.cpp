// Figure 8: impact of failures on the dollar cost and execution time of
// training ResNet50 over 50 epochs (DL workload), error rates 1%-50%.
//
// Paper ($0.000017 /s/GB, IBM Cloud Functions): both costs grow with the
// error rate; Canary costs up to 12% less than retry (the gap widens with
// the error rate), carries an 8% average cost overhead over the ideal,
// and executes 43% faster than retry on average.
#include "support.hpp"

using namespace canary;
using namespace canary::bench;

int main() {
  Reporter reporter("fig08_cost");
  print_figure_header(
      "Figure 8", "Cost and time of DL training under failures",
      "ResNet50-class training, 100 invocations, 16 nodes, IBM pricing, "
      "avg of 5 runs");

  const std::vector<faas::JobSpec> jobs = {
      workloads::make_job(workloads::WorkloadKind::kDlTraining, 100)};

  TextTable table({"error %", "ideal $", "retry $", "canary $",
                   "ideal [s]", "retry [s]", "canary [s]"});
  double cost_saving_max = 0.0;
  double cost_overhead_sum = 0.0;
  double time_reduction_sum = 0.0;
  for (const double rate : error_rates()) {
    const auto ideal = harness::run_repetitions(
        scenario(recovery::StrategyConfig::ideal(), rate), jobs, kReps);
    const auto retry = harness::run_repetitions(
        scenario(recovery::StrategyConfig::retry(), rate), jobs, kReps);
    const auto canary = harness::run_repetitions(
        scenario(recovery::StrategyConfig::canary_full(), rate), jobs, kReps);
    cost_saving_max = std::max(
        cost_saving_max,
        harness::reduction_pct(retry.cost_usd.mean(), canary.cost_usd.mean()));
    cost_overhead_sum +=
        harness::overhead_pct(ideal.cost_usd.mean(), canary.cost_usd.mean());
    time_reduction_sum += harness::reduction_pct(retry.makespan_s.mean(),
                                                 canary.makespan_s.mean());
    table.add_row({TextTable::num(rate * 100, 0),
                   TextTable::num(ideal.cost_usd.mean(), 3),
                   TextTable::num(retry.cost_usd.mean(), 3),
                   TextTable::num(canary.cost_usd.mean(), 3),
                   TextTable::num(ideal.makespan_s.mean()),
                   TextTable::num(retry.makespan_s.mean()),
                   TextTable::num(canary.makespan_s.mean())});
  }
  table.print(std::cout);
  reporter.add_table("cost_sweep", table);

  const auto n = static_cast<double>(error_rates().size());
  reporter.claim("Canary costs up to 12% less than retry", cost_saving_max);
  reporter.claim("8% average cost overhead vs the ideal",
                 cost_overhead_sum / n);
  reporter.claim("execution time 43% lower than retry on average",
                 time_reduction_sum / n);
  return reporter.save() ? 0 : 1;
}
