// Figure 5: impact of replicated runtimes on recovery time with a fixed
// failure rate of 15% and a growing number of function invocations.
//
// Paper: "the runtime replication strategy performs better than the
// default retry-based strategy by up to 82%", with per-workload average
// reductions of 63 / 82 / 80 / 70 / 71 % (DL / web / spark / compression /
// graph); Canary's recovery remains close to the ideal, the residual gap
// being replica-migration time plus waiting for replicas when many
// functions fail simultaneously.
#include "support.hpp"

using namespace canary;
using namespace canary::bench;

int main() {
  Reporter reporter("fig05_replication_scale");
  print_figure_header(
      "Figure 5", "Replicated runtimes under growing invocation counts",
      "error rate 15%, 16 nodes, 100-1000 invocations, avg of 5 runs");

  const std::size_t sizes[] = {100, 200, 400, 700, 1000};
  constexpr double kRate = 0.15;

  TextTable table({"invocations", "workload", "retry [s]", "canary [s]",
                   "reduction %"});
  const double paper_reduction[] = {63, 82, 80, 70, 71};
  double measured_sum[5] = {0, 0, 0, 0, 0};
  double retry_max_reduction = 0.0;

  for (const std::size_t count : sizes) {
    int idx = 0;
    for (const auto kind : workloads::kAllWorkloads) {
      const std::vector<faas::JobSpec> jobs = {workloads::make_job(kind, count)};
      const auto retry = harness::run_repetitions(
          scenario(recovery::StrategyConfig::retry(), kRate), jobs, kReps);
      const auto canary = harness::run_repetitions(
          scenario(recovery::StrategyConfig::canary_full(), kRate), jobs,
          kReps);
      const double reduction = harness::reduction_pct(
          retry.total_recovery_s.mean(), canary.total_recovery_s.mean());
      retry_max_reduction = std::max(retry_max_reduction, reduction);
      measured_sum[idx] += reduction;
      table.add_row({std::to_string(count),
                     std::string(workloads::to_string_view(kind)),
                     TextTable::num(retry.total_recovery_s.mean()),
                     TextTable::num(canary.total_recovery_s.mean()),
                     TextTable::num(reduction, 1)});
      ++idx;
    }
  }
  table.print(std::cout);
  reporter.add_table("scale_sweep", table);

  std::cout << "\nper-workload mean reduction across sizes (paper in "
               "parentheses):\n";
  int idx = 0;
  for (const auto kind : workloads::kAllWorkloads) {
    std::cout << "  " << workloads::to_string_view(kind) << ": "
              << TextTable::num(measured_sum[idx] / 5.0, 1) << "% ("
              << paper_reduction[idx] << "%)\n";
    ++idx;
  }
  reporter.claim("replication outperforms retry by up to 82%",
                 retry_max_reduction);
  return reporter.save() ? 0 : 1;
}
