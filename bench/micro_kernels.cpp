// Microbenchmarks of the real workload kernels: BFS traversal, diversity
// aggregation (sequential vs parallel), LZ compression, and the
// data-parallel mini-MLP training epoch.
#include <benchmark/benchmark.h>

#include "micro_report.hpp"

#include "workloads/kernels/census.hpp"
#include "workloads/kernels/compress.hpp"
#include "workloads/kernels/graph_bfs.hpp"
#include "workloads/kernels/mini_dl.hpp"

namespace {

using namespace canary::workloads::kernels;

void BM_BfsBinaryTree(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(state.range(0));
  const auto g = CsrGraph::binary_tree(n);
  for (auto _ : state) {
    BfsRunner bfs(g, 0);
    bfs.step(n + 1);
    benchmark::DoNotOptimize(bfs.checksum());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(n) * state.iterations());
}
BENCHMARK(BM_BfsBinaryTree)->Arg(1 << 16)->Arg(1 << 20);

void BM_BfsCheckpoint(benchmark::State& state) {
  const auto g = CsrGraph::binary_tree(1 << 20);
  BfsRunner bfs(g, 0);
  bfs.step(1 << 19);
  for (auto _ : state) {
    const auto bytes = bfs.checkpoint().serialize();
    benchmark::DoNotOptimize(bytes.size());
  }
}
BENCHMARK(BM_BfsCheckpoint);

void BM_DiversityIndex(benchmark::State& state) {
  const auto records = synthesize_census(50000, 42);
  const auto threads = static_cast<unsigned>(state.range(0));
  for (auto _ : state) {
    const auto result = diversity_index(records, threads);
    benchmark::DoNotOptimize(result.national_index);
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(records.size()) * state.iterations());
}
BENCHMARK(BM_DiversityIndex)->Arg(1)->Arg(4)->Arg(8);

void BM_LzCompress(benchmark::State& state) {
  const auto data = make_compressible_data(
      static_cast<std::size_t>(state.range(0)), 7);
  for (auto _ : state) {
    const auto compressed = lz_compress(data);
    benchmark::DoNotOptimize(compressed.size());
  }
  state.SetBytesProcessed(state.range(0) * state.iterations());
}
BENCHMARK(BM_LzCompress)->Arg(1 << 14)->Arg(1 << 17);

void BM_LzDecompress(benchmark::State& state) {
  const auto data = make_compressible_data(1 << 17, 7);
  const auto compressed = lz_compress(data);
  for (auto _ : state) {
    const auto restored = lz_decompress(compressed);
    benchmark::DoNotOptimize(restored.size());
  }
  state.SetBytesProcessed((1 << 17) * state.iterations());
}
BENCHMARK(BM_LzDecompress);

void BM_MlpTrainEpoch(benchmark::State& state) {
  const auto data = Dataset::synthesize(2048, 32, 8, 5);
  MiniMlp model(32, 64, 8, 7);
  const auto threads = static_cast<unsigned>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.train_epoch(data, 0.05, threads));
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(data.size()) * state.iterations());
}
BENCHMARK(BM_MlpTrainEpoch)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  return canary::bench::run_micro_benchmarks(argc, argv, "micro_kernels");
}
