// Hedged requests vs. request replication vs. retry under gray failures
// (the request-cloning model of arXiv:2002.04416 as a tail-latency
// mechanism; ROADMAP "request cloning & speculative hedging").
//
// An open-loop Poisson stream runs against a cluster where gray slowdown
// windows manufacture stragglers (no hard failures: the tail is pure
// contention). Three strategies serve the same arrivals:
//
//   retry  — the no-hedge baseline; stragglers ride out the slowdown;
//   hedge  — a clone races each request that outlives the observed
//            latency percentile, first completion wins, loser cancelled;
//   rr     — full request replication (1 + 1 copies up-front, §V-D5).
//
// Hedging should recover most of replication's p99/p999 win at a
// fraction of its cost: clones launch only for the slow tail, so the
// duplicated work is bounded by (1 - percentile) instead of 100%.
//
// Emits a machine-readable canary.hedge/v1 report and self-checks the
// exactly-once race accounting on every run:
//
//   hedges_fired == hedge_wins + hedges_cancelled   (no race left open)
//   hedges_fired <= admitted                        (at most one per request)
//   hedge p99    <= no-hedge p99                    (the point of hedging)
//
// Violations exit 1.
//
// Usage: fig09_hedging [--quick]
// Environment: CANARY_QUICK=1 (same as --quick), CANARY_REPORT_DIR.
#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/table.hpp"
#include "harness/scenario.hpp"
#include "obs/histogram.hpp"
#include "recovery/strategies.hpp"
#include "traffic/generator.hpp"

namespace {

using canary::Duration;
using canary::TextTable;
using canary::harness::RunResult;
using canary::harness::ScenarioConfig;
using canary::harness::ScenarioRunner;

bool quick_mode() {
  const char* v = std::getenv("CANARY_QUICK");
  return v != nullptr && *v != '\0' && *v != '0';
}

std::string num(double v) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(4) << v;
  return os.str();
}

constexpr std::uint64_t kSeed = 20250807;
const Duration kStateWork = Duration::msec(250);
const Duration kFinalize = Duration::msec(50);

canary::traffic::StreamConfig request_stream(double rate_hz) {
  canary::traffic::StreamConfig stream;
  stream.name = "req";
  stream.fn.runtime = canary::faas::RuntimeImage::kPython3;
  stream.fn.states.push_back({kStateWork, {}});
  stream.fn.states.push_back({kStateWork, {}});
  stream.fn.finalize = kFinalize;
  stream.arrival.kind = canary::traffic::ArrivalSpec::Kind::kPoisson;
  stream.arrival.rate_hz = rate_hz;
  // Generous admission: the comparison is about service-side tails, not
  // queueing; the hedge budget still bounds concurrent clones per class.
  stream.admission.max_concurrent = 64;
  stream.admission.queue_capacity = 128;
  stream.admission.hedge_budget = 16;
  return stream;
}

ScenarioConfig strategy_config(canary::recovery::StrategyConfig strategy,
                               Duration horizon, std::uint64_t seed) {
  ScenarioConfig config;
  config.strategy = std::move(strategy);
  config.error_rate = 0.0;  // the tail comes from gray slowdowns alone
  config.cluster_nodes = 16;
  config.seed = seed;
  config.traffic.enabled = true;
  config.traffic.horizon = horizon;
  config.traffic.streams.push_back(request_stream(10.0));
  // Gray windows staggered across the horizon, two random victims per
  // epoch degraded ~8x: least-loaded placement steers new arrivals away
  // from a lingering-slow node, so it takes a few percent of node-time
  // under degradation before the no-hedge p99 is a genuine straggler —
  // exactly the population hedging exists to rescue.
  const double h = horizon.to_seconds();
  for (double at = 0.1 * h; at < 0.9 * h; at += 0.2 * h) {
    for (int victim = 0; victim < 2; ++victim) {
      ScenarioConfig::GrayFailure gray;
      gray.at = Duration::sec(at);
      gray.duration = Duration::sec(0.18 * h);
      gray.slowdown = 8.0;
      config.gray_failures.push_back(gray);
    }
  }
  return config;
}

canary::recovery::HedgeConfig hedge_config() {
  canary::recovery::HedgeConfig cfg;
  // p90 trigger: a rescued straggler finishes at roughly the observed p90
  // plus one warm service time, which must land below the no-hedge p99
  // for hedging to move that percentile (stragglers here run ~8x).
  cfg.percentile = 90.0;
  cfg.min_samples = 16;
  // Bootstrap above the warm service time but far below a straggler, so
  // early stragglers are hedged too.
  cfg.initial_delay = Duration::msec(1000);
  cfg.max_outstanding = 32;
  return cfg;
}

/// One strategy's aggregate over the repetition sweep.
struct StrategyResult {
  std::string name;
  canary::obs::Histogram latency;  // merged arrival->completion seconds
  std::uint64_t admitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t shed = 0;
  double cost_usd = 0.0;  // summed over reps
  std::uint64_t hedges_fired = 0;
  std::uint64_t hedge_wins = 0;
  std::uint64_t hedges_cancelled = 0;
  std::uint64_t hedges_denied = 0;
  std::uint64_t open_races = 0;
  bool completed_ok = true;

  double p50_ms() const { return latency.p50() * 1e3; }
  double p99_ms() const { return latency.p99() * 1e3; }
  double p999_ms() const { return latency.percentile(99.9) * 1e3; }
};

StrategyResult run_strategy(const std::string& name,
                            const canary::recovery::StrategyConfig& strategy,
                            Duration horizon, int reps) {
  StrategyResult out;
  out.name = name;
  for (int rep = 0; rep < reps; ++rep) {
    const RunResult result = ScenarioRunner::run(
        strategy_config(strategy, horizon,
                        kSeed + static_cast<std::uint64_t>(rep)),
        {});
    out.latency.merge(result.metrics.histogram("traffic_latency"));
    out.admitted += result.traffic.admitted;
    out.completed += result.traffic.completed;
    out.shed += result.traffic.shed;
    out.cost_usd += result.cost_usd;
    out.hedges_fired += result.hedge.fired;
    out.hedge_wins += result.hedge.wins;
    out.hedges_cancelled += result.hedge.cancelled;
    out.hedges_denied += result.hedge.denied;
    out.open_races += result.hedge.open;
    out.completed_ok = out.completed_ok && result.completed;
  }
  return out;
}

void write_strategy_json(std::ostream& os, const std::string& indent,
                         const StrategyResult& s) {
  os << indent << "\"name\": \"" << s.name << "\",\n";
  os << indent << "\"p50_ms\": " << num(s.p50_ms()) << ",\n";
  os << indent << "\"p99_ms\": " << num(s.p99_ms()) << ",\n";
  os << indent << "\"p999_ms\": " << num(s.p999_ms()) << ",\n";
  os << indent << "\"cost_usd\": " << num(s.cost_usd) << ",\n";
  os << indent << "\"admitted\": " << s.admitted << ",\n";
  os << indent << "\"completed\": " << s.completed << ",\n";
  os << indent << "\"shed\": " << s.shed << ",\n";
  os << indent << "\"hedges_fired\": " << s.hedges_fired << ",\n";
  os << indent << "\"hedge_wins\": " << s.hedge_wins << ",\n";
  os << indent << "\"hedges_cancelled\": " << s.hedges_cancelled << ",\n";
  os << indent << "\"hedges_denied\": " << s.hedges_denied << ",\n";
  os << indent << "\"open_races\": " << s.open_races;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = quick_mode();
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--quick") {
      quick = true;
    } else {
      std::cerr << "usage: fig09_hedging [--quick]\n";
      return 2;
    }
  }

  const Duration horizon = quick ? Duration::sec(8.0) : Duration::sec(30.0);
  const int reps = quick ? 2 : 3;

  std::cout << "hedged requests: 16 nodes, 10 rps Poisson, gray slowdowns "
               "5x, horizon "
            << horizon.to_seconds() << " s x " << reps << " reps"
            << (quick ? " (quick)" : "") << "\n\n";

  const StrategyResult retry = run_strategy(
      "retry", canary::recovery::StrategyConfig::retry(), horizon, reps);
  const StrategyResult hedge = run_strategy(
      "hedge", canary::recovery::StrategyConfig::hedged(hedge_config()),
      horizon, reps);
  const StrategyResult rr = run_strategy(
      "rr", canary::recovery::StrategyConfig::request_replication(1), horizon,
      reps);

  TextTable table({"strategy", "p50 [ms]", "p99 [ms]", "p999 [ms]",
                   "cost [$]", "admitted", "hedges", "wins"});
  for (const StrategyResult* s : {&retry, &hedge, &rr}) {
    table.add_row({s->name, num(s->p50_ms()), num(s->p99_ms()),
                   num(s->p999_ms()), num(s->cost_usd),
                   std::to_string(s->admitted),
                   std::to_string(s->hedges_fired),
                   std::to_string(s->hedge_wins)});
  }
  table.print(std::cout);

  const double p99_cut =
      retry.p99_ms() > 0.0
          ? 100.0 * (retry.p99_ms() - hedge.p99_ms()) / retry.p99_ms()
          : 0.0;
  const double cost_vs_rr =
      rr.cost_usd > 0.0 ? 100.0 * (rr.cost_usd - hedge.cost_usd) / rr.cost_usd
                        : 0.0;
  std::cout << "\nhedge vs retry p99: " << num(p99_cut)
            << "% lower; hedge vs rr cost: " << num(cost_vs_rr)
            << "% cheaper\n";

  // ---- self-checks ------------------------------------------------------
  std::vector<std::string> violations;
  if (!retry.completed_ok || !hedge.completed_ok || !rr.completed_ok) {
    violations.push_back("a run ended with incomplete jobs");
  }
  if (hedge.hedges_fired != hedge.hedge_wins + hedge.hedges_cancelled) {
    violations.push_back(
        "exactly-once: fired " + std::to_string(hedge.hedges_fired) +
        " != wins " + std::to_string(hedge.hedge_wins) + " + cancelled " +
        std::to_string(hedge.hedges_cancelled));
  }
  if (hedge.open_races != 0) {
    violations.push_back(std::to_string(hedge.open_races) +
                         " race(s) left open after completed runs");
  }
  if (hedge.hedges_fired > hedge.admitted) {
    violations.push_back("fired " + std::to_string(hedge.hedges_fired) +
                         " hedges for only " +
                         std::to_string(hedge.admitted) + " admitted");
  }
  if (hedge.hedges_fired == 0) {
    violations.push_back("no hedge ever fired: the gray tail is missing");
  }
  if (hedge.p99_ms() > retry.p99_ms()) {
    violations.push_back("hedge p99 " + num(hedge.p99_ms()) +
                         " ms above no-hedge p99 " + num(retry.p99_ms()) +
                         " ms");
  }
  if (hedge.cost_usd >= rr.cost_usd) {
    violations.push_back("hedge cost " + num(hedge.cost_usd) +
                         " not below replication cost " + num(rr.cost_usd));
  }

  // ---- canary.hedge/v1 report ------------------------------------------
  const char* dir = std::getenv("CANARY_REPORT_DIR");
  std::string path =
      (dir != nullptr && *dir != '\0') ? std::string(dir) + "/" : "";
  path += "BENCH_fig09_hedging.json";
  std::ofstream os(path);
  if (!os) {
    std::cerr << "failed to write " << path << "\n";
    return 1;
  }
  os << "{\n";
  os << "  \"schema\": \"canary.hedge/v1\",\n";
  os << "  \"name\": \"fig09_hedging\",\n";
  os << "  \"params\": {\n";
  os << "    \"quick\": " << (quick ? "true" : "false") << ",\n";
  os << "    \"horizon_s\": " << num(horizon.to_seconds()) << ",\n";
  os << "    \"repetitions\": " << reps << ",\n";
  os << "    \"nodes\": 16,\n";
  os << "    \"rate_hz\": " << num(10.0) << ",\n";
  os << "    \"hedge_percentile\": " << num(hedge_config().percentile)
     << ",\n";
  os << "    \"seed\": " << kSeed << "\n";
  os << "  },\n";
  os << "  \"baseline\": {\n";
  write_strategy_json(os, "    ", retry);
  os << "\n  },\n";
  os << "  \"strategies\": [";
  bool first = true;
  for (const StrategyResult* s : {&hedge, &rr}) {
    os << (first ? "\n" : ",\n");
    first = false;
    os << "    {\n";
    write_strategy_json(os, "      ", *s);
    os << "\n    }";
  }
  os << "\n  ],\n";
  os << "  \"claims\": {\n";
  os << "    \"hedge_vs_retry_p99_reduction_pct\": " << num(p99_cut) << ",\n";
  os << "    \"hedge_vs_rr_cost_reduction_pct\": " << num(cost_vs_rr) << "\n";
  os << "  },\n";
  os << "  \"checks\": {\n";
  os << "    \"ok\": " << (violations.empty() ? "true" : "false") << ",\n";
  os << "    \"violations\": " << violations.size() << "\n";
  os << "  }\n";
  os << "}\n";
  os.close();
  std::cout << "\nreport: " << path << "\n";

  if (!violations.empty()) {
    std::cerr << "\nfig09 hedging FAILED:\n";
    for (const std::string& v : violations) std::cerr << "  - " << v << "\n";
    return 1;
  }
  std::cout << "\nfig09 hedging passed: exactly-once held and hedging beat "
               "the no-hedge tail\n";
  return 0;
}
