// Ablation: Canary's replica placement rules (paper §IV-C5b — first
// replica co-located with a job function, further replicas anti-affine to
// avoid a single point of failure, rack locality) vs. naive least-loaded
// packing.
//
// Under node-level failures, packed replicas die with their node exactly
// when they are needed, forcing cold-fallback recoveries.
#include "support.hpp"

using namespace canary;
using namespace canary::bench;

int main() {
  Reporter reporter("ablation_placement");
  print_figure_header(
      "Ablation", "Replica placement: anti-SPOF + locality vs naive packing",
      "mixed batch of 300, 16 nodes, error 20%, aggressive replication, "
      "three node failures, avg of 5 runs");

  const std::vector<faas::JobSpec> jobs = {workloads::make_mixed_batch(300)};

  auto run_with = [&](bool anti_spof) {
    recovery::StrategyConfig strategy =
        recovery::StrategyConfig::canary_full(core::ReplicationMode::kAggressive);
    strategy.canary.replication.anti_spof_placement = anti_spof;
    harness::ScenarioConfig config = scenario(strategy, 0.20);
    config.node_failure_offsets = {Duration::sec(5.0), Duration::sec(10.0),
                                   Duration::sec(15.0)};
    return harness::run_repetitions(config, jobs, kReps);
  };

  const auto with_rules = run_with(true);
  const auto naive = run_with(false);

  TextTable table({"placement", "recovery [s]", "makespan [s]"});
  table.add_row({"anti-SPOF + locality",
                 TextTable::num(with_rules.total_recovery_s.mean()),
                 TextTable::num(with_rules.makespan_s.mean())});
  table.add_row({"first-fit packing",
                 TextTable::num(naive.total_recovery_s.mean()),
                 TextTable::num(naive.makespan_s.mean())});
  table.print(std::cout);
  reporter.add_table("placement", table);

  const double penalty = harness::overhead_pct(
      with_rules.total_recovery_s.mean(), naive.total_recovery_s.mean());
  std::cout << "\nrecovery-time penalty of naive packing: "
            << TextTable::num(penalty, 1) << "%\n";
  reporter.report().set_scalar("naive_packing_recovery_penalty_pct", penalty);
  return reporter.save() ? 0 : 1;
}
