// Ablation: proactive failure prediction and mitigation (the paper's
// future-work extension, §VII) under correlated node failures.
//
// The scenario: nodes degrade before dying — a burst of container kills
// on the victim precedes its node-level failure. With the mitigator
// enabled, Canary marks the degrading worker suspect, steers replica
// placement and recovery away from it, and pre-scales the replica pool,
// so the terminal node failure finds warm homes ready elsewhere.
#include "support.hpp"

using namespace canary;
using namespace canary::bench;

int main() {
  Reporter reporter("ablation_proactive");
  print_figure_header(
      "Ablation", "Proactive failure mitigation under correlated failures",
      "mixed batch of 300, 16 nodes, error 10%, two degrading-node "
      "failures, avg of 5 runs");

  const std::vector<faas::JobSpec> jobs = {workloads::make_mixed_batch(300)};

  auto run_with = [&](bool proactive) {
    recovery::StrategyConfig strategy = recovery::StrategyConfig::canary_full();
    strategy.canary.proactive.enabled = proactive;
    strategy.canary.proactive.suspect_threshold = 2;
    strategy.canary.proactive.prescale_factor = 2.0;
    harness::ScenarioConfig config = scenario(strategy, 0.10);
    harness::ScenarioConfig::CorrelatedNodeFailure first;
    first.at = Duration::sec(14.0);
    harness::ScenarioConfig::CorrelatedNodeFailure second;
    second.at = Duration::sec(26.0);
    config.correlated_node_failures = {first, second};
    return harness::run_repetitions(config, jobs, kReps);
  };

  const auto reactive = run_with(false);
  const auto proactive = run_with(true);

  TextTable table({"mitigation", "recovery [s]", "makespan [s]", "cost $"});
  table.add_row({"reactive only",
                 TextTable::num(reactive.total_recovery_s.mean()),
                 TextTable::num(reactive.makespan_s.mean()),
                 TextTable::num(reactive.cost_usd.mean(), 4)});
  table.add_row({"proactive (predict + pre-scale + steer)",
                 TextTable::num(proactive.total_recovery_s.mean()),
                 TextTable::num(proactive.makespan_s.mean()),
                 TextTable::num(proactive.cost_usd.mean(), 4)});
  table.print(std::cout);
  reporter.add_table("mitigation", table);

  const double change = harness::reduction_pct(
      reactive.total_recovery_s.mean(), proactive.total_recovery_s.mean());
  std::cout << "\nrecovery-time change from proactive mitigation: "
            << TextTable::num(change, 1) << "% (positive = improvement)\n";
  reporter.report().set_scalar("proactive_recovery_change_pct", change);
  return reporter.save() ? 0 : 1;
}
