// Figure 7: execution makespan of 100 function invocations of the DL
// workload with replication and checkpointing, error rates 1%-50%.
//
// Paper: retry diverges from the ideal as the error rate grows; Canary's
// execution time stays comparable to the ideal, adding 14% on average over
// the failure-free run (worst case: the function dies right before a
// checkpoint), and at a 50% failure rate Canary cuts total execution time
// by up to 83% vs. retry. The same trend holds for the web-service and
// Spark workloads.
#include "support.hpp"

using namespace canary;
using namespace canary::bench;

int main() {
  Reporter reporter("fig07_makespan_dl");
  print_figure_header(
      "Figure 7", "Execution makespan, DL workload (replication + ckpt)",
      "100 invocations, 16 nodes, error rate 1-50%, avg of 5 runs");

  const std::vector<faas::JobSpec> jobs = {
      workloads::make_job(workloads::WorkloadKind::kDlTraining, 100)};

  TextTable table(
      {"error %", "ideal [s]", "retry [s]", "canary [s]", "canary vs ideal %",
       "canary vs retry %"});
  double overhead_sum = 0.0;
  double reduction_at_50 = 0.0;
  for (const double rate : error_rates()) {
    const auto ideal = harness::run_repetitions(
        scenario(recovery::StrategyConfig::ideal(), rate), jobs, kReps);
    const auto retry = harness::run_repetitions(
        scenario(recovery::StrategyConfig::retry(), rate), jobs, kReps);
    const auto canary = harness::run_repetitions(
        scenario(recovery::StrategyConfig::canary_full(), rate), jobs, kReps);
    const double overhead = harness::overhead_pct(ideal.makespan_s.mean(),
                                                  canary.makespan_s.mean());
    const double reduction = harness::reduction_pct(retry.makespan_s.mean(),
                                                    canary.makespan_s.mean());
    overhead_sum += overhead;
    if (rate == 0.50) reduction_at_50 = reduction;
    table.add_row({TextTable::num(rate * 100, 0),
                   TextTable::num(ideal.makespan_s.mean()),
                   TextTable::num(retry.makespan_s.mean()),
                   TextTable::num(canary.makespan_s.mean()),
                   TextTable::num(overhead, 1), TextTable::num(reduction, 1)});
  }
  table.print(std::cout);
  reporter.add_table("makespan_sweep", table);

  reporter.claim("Canary adds 14% avg execution time over the ideal",
                 overhead_sum / static_cast<double>(error_rates().size()));
  reporter.claim(
      "up to 83% lower total execution time than retry at 50% errors",
      reduction_at_50);
  return reporter.save() ? 0 : 1;
}
